// Ablation A2: the scoring and retrieval variants the paper leaves
// under-specified (DESIGN.md Section 5), compared head-to-head on three
// experiment datasets:
//   - pair scoring: Eq. 3/4 tf-idf vs Eq. 2 raw q-gram counts;
//   - Eq. 5 normalization: global vs strict per-parent-column;
//   - Algorithm 6 filter: prefer-sharing (default) vs hard vs off;
//   - LCS tie-break: hashed ("arbitrary") vs strict leftmost.
#include <functional>

#include "bench/bench_util.h"

using namespace mcsm;

namespace {

struct Variant {
  const char* name;
  std::function<void(core::SearchOptions*)> apply;
};

struct Scenario {
  const char* name;
  datagen::Dataset data;
  std::vector<std::string> expected;  // any of these formulas counts as OK
  bool separators = false;
};

void Run(const std::vector<Scenario>& scenarios, const Variant& variant) {
  std::printf("%-22s", variant.name);
  for (const auto& scenario : scenarios) {
    core::SearchOptions so;
    so.detect_separators = scenario.separators;
    variant.apply(&so);
    auto d = core::DiscoverTranslation(scenario.data.source,
                                       scenario.data.target,
                                       scenario.data.target_column, so);
    bool ok = false;
    if (d.ok()) {
      std::string rendered =
          d->formula().ToString(scenario.data.source.schema());
      for (const auto& e : scenario.expected) ok = ok || rendered == e;
    }
    double coverage =
        d.ok() ? 100.0 * static_cast<double>(d->coverage.matched_rows()) /
                     static_cast<double>(scenario.data.target.num_rows())
               : 0.0;
    std::printf("   %s(%5.1f%%)", ok ? "OK  " : "MISS", coverage);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::Banner("Ablation A2", "scoring/retrieval variants across datasets");

  std::vector<Scenario> scenarios;
  {
    datagen::UserIdOptions o;
    o.rows = bench::ScaledRows(6000, 0.5);
    scenarios.push_back({"userid", datagen::MakeUserIdDataset(o),
                         {"first[1-1]last[1-n]",
                          "first[1-1]middle[1-1]last[1-n]"},
                         false});
  }
  {
    datagen::TimeOptions o;
    o.rows = bench::ScaledRows(10000, 0.5);
    scenarios.push_back({"time", datagen::MakeTimeDataset(o),
                         {"hrs[1-2]mins[1-2]secs[1-2]"}, false});
  }
  {
    datagen::MergedNamesOptions o;
    o.rows = bench::ScaledRows(700000, 0.01);
    o.distinct_names = std::max<size_t>(500, o.rows / 10);
    o.comma_separator = true;
    scenarios.push_back({"comma", datagen::MakeMergedNamesDataset(o),
                         {"last[1-n]\", \"first[1-n]"}, true});
  }
  {
    // The plain merged-names dataset at a size where serendipitous
    // one-character matches are plentiful — the scenario that exposes the
    // leftmost tie-break pile-up (DESIGN.md item 4).
    datagen::MergedNamesOptions o;
    o.rows = bench::ScaledRows(700000, 0.07);
    o.distinct_names = std::max<size_t>(500, o.rows / 10);
    scenarios.push_back({"fullname", datagen::MakeMergedNamesDataset(o),
                         {"first[1-n]last[1-n]"}, false});
  }

  std::printf("%-22s", "variant");
  for (const auto& s : scenarios) std::printf("   %-13s", s.name);
  std::printf("\n");

  const Variant variants[] = {
      {"default", [](core::SearchOptions*) {}},
      {"pair=qgram-count",
       [](core::SearchOptions* so) {
         so->pair_mode = core::SearchOptions::PairScoreMode::kQGramCount;
       }},
      {"norm=per-column",
       [](core::SearchOptions* so) {
         so->score_normalization =
             core::SearchOptions::ScoreNormalization::kPerColumn;
       }},
      {"filter=hard",
       [](core::SearchOptions* so) {
         so->refinement_filter = core::SearchOptions::RefinementFilter::kHard;
       }},
      {"filter=off",
       [](core::SearchOptions* so) {
         so->refinement_filter = core::SearchOptions::RefinementFilter::kOff;
       }},
      {"tie=leftmost",
       [](core::SearchOptions* so) {
         so->lcs_tie_break = text::LcsTieBreak::kLeftmost;
       }},
      {"restarts=1 (paper)",
       [](core::SearchOptions* so) {
         so->initial_candidates = 1;
         so->start_column_candidates = 1;
       }},
      {"strict-paper combo",
       [](core::SearchOptions* so) {
         // Every under-specified knob set to its most literal reading at
         // once: Eq. 5 per-column normalization with sigma = 2, hard
         // Algorithm 6 filter, leftmost tie-break, no restarts, no vote
         // weighting surrogate (weighting is built in; the remaining knobs
         // are toggled).
         so->score_normalization =
             core::SearchOptions::ScoreNormalization::kPerColumn;
         so->sigma = 2.0;
         so->refinement_filter = core::SearchOptions::RefinementFilter::kHard;
         so->lcs_tie_break = text::LcsTieBreak::kLeftmost;
         so->initial_candidates = 1;
         so->start_column_candidates = 1;
       }},
  };
  for (const auto& v : variants) Run(scenarios, v);

  std::printf(
      "\n# reading: OK = one of the dataset's genuine formulas found exactly\n"
      "# (userid has two). The default row must be OK everywhere. Single-knob\n"
      "# strict variants are often rescued by the remaining defenses (the\n"
      "# resolutions of DESIGN.md \u00a75 are mutually redundant); the hard\n"
      "# Algorithm 6 filter and the all-strict combo are not.\n");
  return 0;
}
