// Ablation A1: the Eq. 5 width penalty. Sweeps sigma (and the penalty-off
// mode) on the UserID dataset and on a worst-case wide-random-noise variant
// (the Section 3.4.4 scenario: a very wide random-text column). Shows why
// the penalty exists (wide noise wins without it) and how the onset
// calibration matters (DESIGN.md item 2).
#include "bench/bench_util.h"
#include "common/rng.h"

using namespace mcsm;

namespace {

// UserID dataset with an extra ~80-char random-text column (the paper's
// "worst-case scenario for study", Section 3.4.4).
datagen::Dataset WithWideNoise(datagen::Dataset data, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names;
  for (size_t c = 0; c < data.source.num_columns(); ++c) {
    names.push_back(data.source.schema().column(c).name);
  }
  names.push_back("wide");
  relational::Table wider = relational::Table::WithTextColumns(names);
  for (size_t r = 0; r < data.source.num_rows(); ++r) {
    std::vector<relational::Value> row = data.source.GetRow(r);
    row.emplace_back(rng.RandomString(80, "abcdefghijklmnopqrstuvwxyz"));
    (void)wider.AppendRow(std::move(row));
  }
  data.source = std::move(wider);
  return data;
}

void Sweep(const datagen::Dataset& data, const char* label) {
  std::printf("\n-- %s --\n", label);
  std::printf("%-18s %-44s %10s\n", "sigma", "formula", "coverage");
  for (double sigma : {0.0, 2.0, 4.0, 8.0}) {
    core::SearchOptions so;
    so.sigma = sigma;
    auto d = core::DiscoverTranslation(data.source, data.target,
                                       data.target_column, so);
    std::printf("%-18.1f %-44s %10zu\n", sigma,
                d.ok() ? d->formula().ToString(data.source.schema()).c_str()
                       : "(failed)",
                d.ok() ? d->coverage.matched_rows() : 0);
  }
  core::SearchOptions off;
  off.disable_width_penalty = true;
  auto d = core::DiscoverTranslation(data.source, data.target,
                                     data.target_column, off);
  std::printf("%-18s %-44s %10zu\n", "penalty off",
              d.ok() ? d->formula().ToString(data.source.schema()).c_str()
                     : "(failed)",
              d.ok() ? d->coverage.matched_rows() : 0);
}

}  // namespace

int main() {
  bench::Banner("Ablation A1", "ScoreTrans width penalty (Eq. 5 sigma)");
  datagen::UserIdOptions options;
  options.rows = bench::ScaledRows(6000, 0.5);
  datagen::Dataset data = datagen::MakeUserIdDataset(options);
  Sweep(data, "UserID (standard noise columns)");
  Sweep(WithWideNoise(std::move(data), 99),
        "UserID + 80-char random column (Section 3.4.4 worst case)");
  std::printf(
      "\n# reading: both login formulas are genuine; sigma shifts which one the\n"
      "# greedy adopts first (the penalty discounts the wider first-name column\n"
      "# relative to the 1-char middle-initial column). The wide-random column\n"
      "# must never win at any sigma — that is the Section 3.4.4 claim.\n");
  return 0;
}
