// Section 7 extension: automated sampling-parameter selection. For each
// experiment dataset, reports the smallest sample fraction at which the
// Step-1 column choice and the Step-2 initial formula stabilize — the
// criterion behind Figures 1 and 2 — and verifies a search at that fraction
// succeeds.
#include "bench/bench_util.h"
#include "core/autotune.h"

using namespace mcsm;

namespace {

void Report(const char* name, const datagen::Dataset& data,
            const core::SearchOptions& base) {
  bench::Stopwatch watch;
  auto tuned = core::AutoTuneSampleFraction(data.source, data.target,
                                            data.target_column, base);
  if (!tuned.ok()) {
    std::printf("%-12s tuning failed: %s\n", name,
                tuned.status().ToString().c_str());
    return;
  }
  core::SearchOptions options = base;
  options.sample_fraction = tuned->sample_fraction;
  auto d = core::DiscoverTranslation(data.source, data.target,
                                     data.target_column, options);
  std::printf("%-12s fraction %-7.3f start=%-8s initial=%-22s probes=%zu  "
              "search: %s (%.1fs)\n",
              name, tuned->sample_fraction,
              data.source.schema().column(tuned->start_column).name.c_str(),
              tuned->initial_formula.c_str(), tuned->probed_fractions.size(),
              d.ok() && d->formula().IsComplete() ? "complete" : "incomplete",
              watch.Seconds());
}

}  // namespace

int main() {
  bench::Banner("Section 7 extension", "automated sampling-parameter selection");
  {
    datagen::UserIdOptions o;
    o.rows = bench::ScaledRows(6000, 1.0);
    Report("userid", datagen::MakeUserIdDataset(o), {});
  }
  {
    datagen::TimeOptions o;
    o.rows = bench::ScaledRows(10000, 1.0);
    Report("time", datagen::MakeTimeDataset(o), {});
  }
  {
    datagen::MergedNamesOptions o;
    o.rows = bench::ScaledRows(700000, 0.05);
    o.distinct_names = std::max<size_t>(500, o.rows / 10);
    Report("fullname", datagen::MakeMergedNamesDataset(o), {});
  }
  {
    datagen::CitationOptions o;
    o.rows = bench::ScaledRows(526000, 0.02);
    Report("citeseer", datagen::MakeCitationDataset(o), {});
  }
  std::printf(
      "\n# reading: larger corpora stabilize at smaller fractions (the\n"
      "# paper's Figure 2 claim); the paper's fixed 10%% would oversample\n"
      "# every large dataset.\n");
  return 0;
}
