// Section 4.4: the Citeseer-style citation dataset. Paper: 526,000 records,
// 17 source columns (15 of them author columns from a single domain), 1%
// samples; recovered citation = year[1-n] + title[1-n] + author1[1-n] in
// under 20 minutes on a Sunfire v880.
#include "bench/bench_util.h"

using namespace mcsm;

int main(int argc, char** argv) {
  bench::BenchCli cli(argc, argv, "bench_citeseer");
  bench::Banner("Section 4.4", "citation = year || title || author1 (1% samples)");
  datagen::CitationOptions options;
  options.rows = bench::ScaledRows(526000, 0.1);
  datagen::Dataset data = datagen::MakeCitationDataset(options);

  core::SearchOptions search_options;
  search_options.sample_fraction = 0.01;  // the paper's 1% sampling
  search_options.max_sample = 4000;
  search_options.num_threads = cli.threads();
  search_options.env.trace = cli.trace();

  bench::Stopwatch watch;
  auto d = core::DiscoverTranslation(data.source, data.target,
                                     data.target_column, search_options);
  if (!d.ok()) {
    std::printf("search failed: %s\n", d.status().ToString().c_str());
    return 1;
  }
  bench::ReportDiscovery(data, *d, watch.Seconds());
  cli.Row("citeseer", watch.Seconds() * 1000.0);
  std::printf(
      "# paper: citation = year[1-n] + title[1-n] + author1[1-n]\n"
      "# (year[1-4] is the same formula: every year is 4 characters wide)\n"
      "# paper runtime: <20 min at 526k rows on a 750MHz Sunfire v880.\n");
  return 0;
}
