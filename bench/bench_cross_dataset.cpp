// Section 4.5: the cross-dataset (Citeseer vs DBLP) experiment. The paper
// links 526k Citeseer citations to 233k DBLP records with only 714 exact
// matches and 378 matches with the first two authors swapped. Their search
// returned year+title+author2 first (the swapped block!), and, after
// removing the matched rows, year+title+author1. Which comes first is
// sample-dependent (the paper says so explicitly); the bench verifies both
// formulas are found and that their coverages equal the planted overlaps.
#include "bench/bench_util.h"

using namespace mcsm;

int main() {
  bench::Banner("Section 4.5", "cross-dataset linkage with ~0.5% overlap");
  datagen::CrossCitationOptions options;
  // Default: 1/10 of the paper's sizes with the same overlap ratios.
  double scale = GetEnvDouble("MCSM_SCALE", 0.1);
  options.target_rows = static_cast<size_t>(526000 * scale);
  options.source_rows = static_cast<size_t>(233000 * scale);
  options.exact_overlap = static_cast<size_t>(714 * scale);
  options.swapped_overlap = static_cast<size_t>(378 * scale);
  std::printf("# target %zu rows, source %zu rows, exact overlap %zu, "
              "swapped %zu\n",
              options.target_rows, options.source_rows, options.exact_overlap,
              options.swapped_overlap);
  datagen::Dataset data = datagen::MakeCrossCitationDataset(options);

  core::SearchOptions search_options;
  // The paper used 1% of 233k = ~2,300 keys. At reduced scale the overlap
  // shrinks with the tables, so keep the expected number of sampled keys
  // that hit an overlapping record (~7) constant rather than the fraction.
  search_options.sample_fraction = std::min(0.5, 0.02 / scale);
  search_options.max_sample = 5000;
  // Bound the restart work: the signal here is a handful of rows.
  search_options.start_column_candidates = 2;
  search_options.initial_candidates = 2;

  bench::Stopwatch watch;
  // The paper ran the search, removed the matched rows, and re-ran it once
  // ("re-running the program then produced the expected formula"): 2 rounds.
  auto all = core::DiscoverAllTranslations(data.source, data.target,
                                           data.target_column, search_options,
                                           2, 5);
  if (!all.ok()) {
    std::printf("search failed: %s\n", all.status().ToString().c_str());
    return 1;
  }
  std::printf("-- match-and-remove rounds (%.1f s total) --\n", watch.Seconds());
  for (size_t i = 0; i < all->size(); ++i) {
    const auto& d = (*all)[i];
    std::printf("round %zu: %-42s coverage %zu\n", i + 1,
                d.formula().ToString(data.source.schema()).c_str(),
                d.coverage.matched_rows());
  }
  std::printf(
      "# paper round 1: year[1-n]+title[1-n]+author2[1-n] (378 swapped rows)\n"
      "# paper round 2: year[1-n]+title[1-n]+author1[1-n] (714 exact rows)\n"
      "# expected here: both formulas, coverages = planted overlap counts\n"
      "# (order is sampling-dependent, as the paper notes).\n");
  return 0;
}
