// Figure 1: effect of sample size on the Step-1 column scores, on the UserID
// dataset (~6,000 rows, name columns + the four standard noise columns).
// The paper's claim: the ranking stabilizes with ~10% of distinct values,
// the name columns (especially last) far outscore every noise column.
#include <vector>

#include "bench/bench_util.h"
#include "core/column_scorer.h"
#include "relational/column_index.h"

using namespace mcsm;

int main() {
  bench::Banner("Figure 1", "column score vs sample percentage (UserID, 6k rows)");
  datagen::UserIdOptions options;
  options.rows = bench::ScaledRows(6000, 1.0);
  datagen::Dataset data = datagen::MakeUserIdDataset(options);

  relational::ColumnIndex::Options idx_options;
  relational::ColumnIndex target_index(data.target, data.target_column,
                                       idx_options);
  std::vector<relational::ColumnIndex> source_indexes;
  for (size_t c = 0; c < data.source.num_columns(); ++c) {
    source_indexes.emplace_back(data.source, c, idx_options);
  }

  std::printf("%-8s", "sample%");
  for (size_t c = 0; c < data.source.num_columns(); ++c) {
    std::printf("%12s", data.source.schema().column(c).name.c_str());
  }
  std::printf("\n");

  for (double percent : {1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
    std::printf("%-8.0f", percent);
    for (size_t c = 0; c < data.source.num_columns(); ++c) {
      core::ColumnScorer::Options scorer;
      scorer.sample_fraction = percent / 100.0;
      double score = core::ColumnScorer::ScoreColumn(source_indexes[c],
                                                     target_index, scorer);
      std::printf("%12.0f", score);
    }
    std::printf("\n");
  }
  std::printf(
      "\n# paper shape: name columns dominate at every sample size; scores\n"
      "# are stable from ~10%% samples on; noise columns stay near zero.\n");
  return 0;
}
