// Figure 2: column scores vs absolute rows sampled, on the large merged-names
// dataset (paper: 700,000 rows of first||last against first, last, random
// text and addresses). The paper's claim: even a few hundred sampled rows
// rank the columns correctly (last > first >> noise).
#include "bench/bench_util.h"
#include "core/column_scorer.h"
#include "relational/column_index.h"
#include "relational/sampler.h"

using namespace mcsm;

int main() {
  bench::Banner("Figure 2", "column score vs rows sampled (merged names)");
  datagen::MergedNamesOptions options;
  options.rows = bench::ScaledRows(700000, 0.5);
  options.distinct_names =
      std::max<size_t>(1000, options.rows / 10);  // paper: ~70k distinct
  datagen::Dataset data = datagen::MakeMergedNamesDataset(options);

  relational::ColumnIndex::Options idx_options;
  relational::ColumnIndex target_index(data.target, 0, idx_options);

  // Figure 2 uses first, last, random text and addresses.
  std::vector<std::string> wanted = {"first", "last", "text", "addr"};
  std::vector<size_t> columns;
  std::vector<relational::ColumnIndex> indexes;
  for (const auto& name : wanted) {
    columns.push_back(*data.source.schema().FindColumn(name));
  }
  for (size_t c : columns) {
    indexes.emplace_back(data.source, c, idx_options);
  }

  std::printf("%-10s", "rows");
  for (const auto& name : wanted) std::printf("%14s", name.c_str());
  std::printf("\n");
  for (size_t rows_sampled : {100, 250, 500, 750, 1000, 1500, 2000, 2500}) {
    std::printf("%-10zu", rows_sampled);
    for (size_t i = 0; i < columns.size(); ++i) {
      const auto& distinct = indexes[i].sorted_distinct();
      std::vector<std::string> keys;
      for (size_t idx :
           relational::EquidistantIndices(distinct.size(), rows_sampled)) {
        keys.push_back(distinct[idx]);
      }
      double score =
          core::ColumnScorer::ScoreKeys(keys, target_index, {});
      std::printf("%14.3g", score);
    }
    std::printf("\n");
  }
  std::printf("\n# paper shape: last > first >> addr > text at every sample "
              "size,\n# stable from a few hundred rows on (paper Fig. 2).\n");
  return 0;
}
