// Figure 3: cumulative wall-clock time at the end of each step of the method
// versus the fraction of the citation dataset processed. The paper's shape:
// steps 1 and 2 are cheap; the FIRST refinement iteration dominates (few
// constraints -> all columns searched); later iterations are cheaper again.
#include "bench/bench_util.h"
#include "core/search.h"

using namespace mcsm;

int main(int argc, char** argv) {
  bench::BenchCli cli(argc, argv, "bench_fig3_scaling");
  bench::Banner("Figure 3", "cumulative time per step vs dataset fraction");
  datagen::CitationOptions base;
  base.rows = bench::ScaledRows(526000, 0.05);
  datagen::Dataset full = datagen::MakeCitationDataset(base);

  core::SearchOptions search_options;
  search_options.sample_fraction = 0.01;
  search_options.max_sample = 2000;
  search_options.initial_candidates = 1;  // time the paper's single pass
  search_options.num_threads = cli.threads();
  search_options.env.trace = cli.trace();

  bench::Stopwatch total_watch;
  std::printf("%-8s %10s %10s %10s %10s   (cumulative seconds)\n", "percent",
              "step1", "step2", "iter1", "iter2");
  for (int percent : {10, 30, 50, 70, 90}) {
    size_t rows = base.rows * static_cast<size_t>(percent) / 100;
    datagen::Dataset data;
    data.source = full.source;
    data.target = full.target;
    data.source.Truncate(rows);
    data.target.Truncate(rows);

    core::TranslationSearch search(data.source, data.target, 0, search_options);
    auto column = search.SelectStartColumn();
    if (!column.ok()) continue;
    auto formula = search.BuildInitialFormula(column->best_column);
    if (!formula.ok()) continue;
    double step1 = search.stats().step1_seconds;
    double step2 = step1 + search.stats().step2_seconds;
    double iter1 = step2, iter2 = step2;
    core::TranslationFormula f = *formula;
    core::IterationInfo info;
    auto improved = search.RefineOnce(&f, &info);
    if (improved.ok()) {
      iter1 += info.seconds;
      iter2 = iter1;
      if (*improved && !f.IsComplete()) {
        core::IterationInfo info2;
        auto improved2 = search.RefineOnce(&f, &info2);
        if (improved2.ok()) iter2 += info2.seconds;
      }
    }
    std::printf("%-8d %10.2f %10.2f %10.2f %10.2f\n", percent, step1, step2,
                iter1, iter2);
    char dataset[32];
    std::snprintf(dataset, sizeof(dataset), "citation@%d%%", percent);
    cli.Row(dataset, iter2 * 1000.0);
  }
  cli.Row("citation@all", total_watch.Seconds() * 1000.0);
  std::printf(
      "\n# paper shape (Fig. 3): step1/step2 nearly flat and cheap; the first\n"
      "# refinement iteration dominates the cost and grows with dataset size;\n"
      "# the second iteration adds much less (constraints prune the search).\n");
  return 0;
}
