// Figure 4: histogram of candidate separator characters over relative
// positions within the `full` column of the "last, first" dataset
// (paper: 700,000 instances, ~15 relative positions; comma and space peak
// together mid-string).
#include <map>

#include "bench/bench_util.h"
#include "core/separator.h"

using namespace mcsm;

int main() {
  bench::Banner("Figure 4", "separator histogram over relative positions");
  datagen::MergedNamesOptions options;
  options.rows = bench::ScaledRows(700000, 0.1);
  options.distinct_names = std::max<size_t>(1000, options.rows / 10);
  options.comma_separator = true;
  datagen::Dataset data = datagen::MakeMergedNamesDataset(options);

  auto histogram =
      core::SeparatorDetector::BuildHistogram(data.target, data.target_column);
  std::map<size_t, std::map<char, size_t>> by_position;
  size_t max_position = 0;
  for (const auto& e : histogram) {
    by_position[e.position][e.separator] = e.count;
    max_position = std::max(max_position, e.position);
  }
  std::printf("%-10s %12s %12s\n", "position", "comma", "space");
  for (size_t pos = 1; pos <= max_position; ++pos) {
    std::printf("%-10zu %12zu %12zu\n", pos, by_position[pos][','],
                by_position[pos][' ']);
  }

  auto tmpl = core::SeparatorDetector::Detect(data.target, data.target_column);
  std::printf("\nrecovered separator template: %s\n",
              tmpl.has_value() ? tmpl->ToLikeString().c_str() : "(none)");
  std::printf("# paper shape (Fig. 4): comma and space counts cluster over the\n"
              "# middle relative positions; the threshold search recovers the\n"
              "# template \"%%, %%\".\n");
  return 0;
}
