// Section 4.3: the name-concatenation dataset. Paper: ~700,000 rows with
// ~70,000 distinct values per name column; full = first[1-n] + last[1-n];
// the search returns `select first || last as full ...`.
#include "bench/bench_util.h"

using namespace mcsm;

int main(int argc, char** argv) {
  bench::BenchCli cli(argc, argv, "bench_fullname");
  bench::Banner("Section 4.3", "merged names: full = first || last (700k rows)");
  datagen::MergedNamesOptions options;
  options.rows = bench::ScaledRows(700000, 0.5);
  options.distinct_names = std::max<size_t>(1000, options.rows / 10);
  datagen::Dataset data = datagen::MakeMergedNamesDataset(options);

  core::SearchOptions search_options;
  search_options.num_threads = cli.threads();

  bench::Stopwatch watch;
  auto d = core::DiscoverTranslation(data.source, data.target,
                                     data.target_column, search_options);
  if (!d.ok()) {
    std::printf("search failed: %s\n", d.status().ToString().c_str());
    return 1;
  }
  bench::ReportDiscovery(data, *d, watch.Seconds());
  cli.Row("fullname", watch.Seconds() * 1000.0);
  std::printf("# paper: full = first[1-n] + last[1-n], i.e.\n"
              "#   select first || last as full from table where ...\n");
  return 0;
}
