// Section 6.2: many-to-many translations (Table 12). One translation
// (login) is already known; its row linkage constrains the search for the
// second target column (DOB), which the paper reports "dramatically
// reduce[s] the number of instances to be evaluated".
#include "bench/bench_util.h"

using namespace mcsm;

int main() {
  bench::Banner("Section 6.2", "many-to-many targets: login is known, find DOB");
  datagen::UserIdOptions options;
  options.rows = bench::ScaledRows(6000, 1.0);
  options.with_dates = true;
  datagen::Dataset data = datagen::MakeUserIdDataset(options);
  const size_t login_col = 0, dob_col = 1;

  // Step 1: discover (or accept from the integration framework) the login
  // translation, build the row linkage it induces.
  auto login = core::DiscoverTranslation(data.source, data.target, login_col, {});
  if (!login.ok()) {
    std::printf("login search failed: %s\n", login.status().ToString().c_str());
    return 1;
  }
  std::printf("known translation: login = %s (links %zu rows)\n",
              login->formula().ToString(data.source.schema()).c_str(),
              login->coverage.matched_rows());
  auto linkage =
      core::BuildLinkage(login->formula(), data.source, data.target, login_col);

  core::SearchOptions so;
  so.detect_separators = true;

  // Step 2a: DOB search WITH the linkage constraint.
  bench::Stopwatch watch;
  core::TranslationSearch linked(data.source, data.target, dob_col, so);
  linked.SetLinkage(linkage);
  auto linked_result = linked.Run();
  double linked_seconds = watch.Seconds();

  // Step 2b: the same search WITHOUT the linkage, for comparison.
  watch.Reset();
  core::TranslationSearch unlinked(data.source, data.target, dob_col, so);
  auto unlinked_result = unlinked.Run();
  double unlinked_seconds = watch.Seconds();

  std::printf("\n%-12s %-44s %10s %12s %10s\n", "mode", "dob formula",
              "coverage", "recipes", "seconds");
  for (int mode = 0; mode < 2; ++mode) {
    const auto& result = mode == 0 ? linked_result : unlinked_result;
    const auto& search = mode == 0 ? linked : unlinked;
    double seconds = mode == 0 ? linked_seconds : unlinked_seconds;
    if (!result.ok()) {
      std::printf("%-12s (failed: %s)\n", mode == 0 ? "linked" : "unlinked",
                  result.status().ToString().c_str());
      continue;
    }
    auto coverage = core::TranslationSearch::ComputeCoverage(
        result->formula, data.source, data.target, dob_col);
    std::printf("%-12s %-44s %10zu %12zu %10.2f\n",
                mode == 0 ? "linked" : "unlinked",
                result->formula.ToString(data.source.schema()).c_str(),
                coverage.matched_rows(), search.stats().recipes_built, seconds);
  }
  std::printf(
      "\n# paper claim: the known translation's row linkage constrains the\n"
      "# instance retrieval, dramatically reducing the instances evaluated\n"
      "# (compare the recipes column) while finding the same translation\n"
      "# dob = birth[1-2] + \"/\" + birth[4-5] + \"/\" + birth[9-10].\n");
  return 0;
}
