// Micro-benchmarks (google-benchmark) for the block-compressed posting
// layer and the SIMD q-gram kernels behind it (DESIGN.md §11): building the
// store from Zipfian lists, whole-list block decoding, galloping
// intersection at several candidate densities, frozen-dictionary batched
// lookups, and the rarest-first similarity retrieval they feed. Run with
// MCSM_SIMD_LEVEL=scalar|sse42|avx2 to compare dispatch tiers on the same
// binary.
#include <benchmark/benchmark.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "relational/column_index.h"
#include "relational/postings.h"
#include "relational/table.h"
#include "text/qgram.h"
#include "text/simd.h"

namespace {

using namespace mcsm;
using relational::kPostingBlockSize;
using relational::Posting;
using relational::PostingStore;

/// Zipfian posting lists over `universe` rows: gram 0 is the most common
/// (appears in ~universe/2 rows), frequencies decay as 1/(rank+1). This is
/// the shape real bigram lists take on the paper's datasets.
std::vector<std::vector<Posting>> ZipfianLists(size_t grams, size_t universe,
                                               uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Posting>> lists(grams);
  for (size_t g = 0; g < grams; ++g) {
    const double p = 0.5 / static_cast<double>(g + 1);
    std::vector<Posting>& list = lists[g];
    for (size_t row = 0; row < universe; ++row) {
      if (rng.UniformDouble() < p) {
        list.push_back({static_cast<uint32_t>(row),
                        rng.UniformInt(0, 9) == 0 ? 2u : 1u});
      }
    }
  }
  return lists;
}

void BM_PostingStoreBuild(benchmark::State& state) {
  const size_t universe = static_cast<size_t>(state.range(0));
  const auto lists = ZipfianLists(64, universe, 101);
  size_t postings = 0;
  for (const auto& l : lists) postings += l.size();
  for (auto _ : state) {
    auto copy = lists;
    PostingStore store = PostingStore::Build(std::move(copy));
    benchmark::DoNotOptimize(store.data_size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(postings) *
                          state.iterations());
}
BENCHMARK(BM_PostingStoreBuild)->Range(4096, 65536);

void BM_PostingStoreDecode(benchmark::State& state) {
  const size_t universe = static_cast<size_t>(state.range(0));
  PostingStore store = PostingStore::Build(ZipfianLists(64, universe, 102));
  std::vector<uint32_t> rows;
  std::vector<uint32_t> tfs;
  size_t postings = 0;
  for (auto _ : state) {
    postings = 0;
    for (uint32_t g = 0; g < 64; ++g) {
      postings += store.Decode(g, &rows, &tfs);
    }
    benchmark::DoNotOptimize(rows.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(postings) *
                          state.iterations());
}
BENCHMARK(BM_PostingStoreDecode)->Range(4096, 65536);

void BM_PostingStoreIntersect(benchmark::State& state) {
  // Intersect the rarest list's rows against a denser list — the
  // RowsMatchingPattern shape. range(0) controls the candidate density the
  // galloping search has to survive: sparse candidates skip whole blocks,
  // dense ones decode nearly all of them.
  const size_t universe = 65536;
  PostingStore store = PostingStore::Build(ZipfianLists(64, universe, 103));
  const size_t stride = static_cast<size_t>(state.range(0));
  std::vector<uint32_t> seed_cand;
  for (size_t row = 0; row < universe; row += stride) {
    seed_cand.push_back(static_cast<uint32_t>(row));
  }
  std::vector<uint32_t> cand;
  for (auto _ : state) {
    cand = seed_cand;
    store.Intersect(0, &cand);  // gram 0: the densest list
    benchmark::DoNotOptimize(cand.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(seed_cand.size()) *
                          state.iterations());
}
BENCHMARK(BM_PostingStoreIntersect)->Arg(2)->Arg(16)->Arg(256);

/// A synthetic name column for the end-to-end retrieval benchmarks.
relational::Table NameTable(size_t rows, uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::string> first = {"alice", "bob",   "carol", "dave",
                                          "erin",  "frank", "grace", "heidi"};
  const std::vector<std::string> last = {"smith", "jones",  "brown",
                                         "davis", "miller", "wilson"};
  relational::Table t = relational::Table::WithTextColumns({"name"});
  for (size_t i = 0; i < rows; ++i) {
    std::string v = rng.Choice(first);
    v += " ";
    v += rng.Choice(last);
    v += std::to_string(rng.UniformInt(0, 999));
    if (!t.AppendTextRow({v}).ok()) break;
  }
  return t;
}

void BM_FrozenFindIds(benchmark::State& state) {
  relational::Table t = NameTable(20000, 104);
  relational::ColumnIndex::Options o;
  o.build_postings = true;
  relational::ColumnIndex idx(t, 0, o);
  const text::QGramDictionary& dict = idx.tfidf().dictionary();
  const std::string key = "alice miller842";
  std::vector<uint32_t> ids;
  size_t grams = 0;
  for (auto _ : state) {
    ids.clear();
    dict.FindIds(key, &ids);
    grams += ids.size();
    benchmark::DoNotOptimize(ids.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(grams));
}
BENCHMARK(BM_FrozenFindIds);

void BM_SimilarRows(benchmark::State& state) {
  relational::Table t = NameTable(static_cast<size_t>(state.range(0)), 105);
  relational::ColumnIndex::Options o;
  o.build_postings = true;
  relational::ColumnIndex idx(t, 0, o);
  for (auto _ : state) {
    auto rows = idx.SimilarRows("carol jones17", 0.0, 10);
    benchmark::DoNotOptimize(rows.data());
  }
}
BENCHMARK(BM_SimilarRows)->Range(4096, 65536);

void BM_RowsMatchingPattern(benchmark::State& state) {
  relational::Table t = NameTable(static_cast<size_t>(state.range(0)), 106);
  relational::ColumnIndex::Options o;
  o.build_postings = true;
  relational::ColumnIndex idx(t, 0, o);
  const auto pattern = relational::SearchPattern::FromLikeString("%wilson%");
  for (auto _ : state) {
    auto rows = idx.RowsMatchingPattern(pattern);
    benchmark::DoNotOptimize(rows.data());
  }
}
BENCHMARK(BM_RowsMatchingPattern)->Range(4096, 65536);

}  // namespace

BENCHMARK_MAIN();
