// Storage microbenchmark (DESIGN.md §13): the same rows ingested and scanned
// under the three backends —
//   legacy         : vector-of-Value row store (the rollback lever),
//   columnar       : arena-backed segments, fully resident,
//   columnar+paged : arena segments spilled through the byte-budgeted pager
//                    (budget far below the text payload).
// Measures ingest wall time, full-scan wall time (TextCursor over every text
// cell), and the resident-memory footprint from Table::Stats(). PR 10's
// acceptance bar is resident_bytes(legacy) / resident_bytes(columnar) >= 2
// on at least one text-heavy dataset; --json rows carry the ratio so CI can
// track it.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/datasets.h"
#include "relational/column_store.h"
#include "relational/table.h"

using namespace mcsm;

namespace {

struct JsonSink {
  std::string path;

  void Row(const std::string& dataset, const char* encoding, size_t rows,
           double ingest_ms, double scan_ms, uint64_t resident_bytes,
           uint64_t spilled_bytes, uint64_t spilled_pages,
           double ratio_vs_legacy) const {
    if (path.empty()) return;
    std::FILE* f = std::fopen(path.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s for append\n", path.c_str());
      return;
    }
    std::fprintf(f,
                 "{\"bench\": \"micro_storage\", \"dataset\": \"%s\", "
                 "\"encoding\": \"%s\", \"rows\": %zu, "
                 "\"ingest_ms\": %.3f, \"scan_ms\": %.3f, "
                 "\"resident_bytes\": %llu, \"spilled_bytes\": %llu, "
                 "\"spilled_pages\": %llu, "
                 "\"legacy_resident_ratio\": %.2f}\n",
                 dataset.c_str(), encoding, rows, ingest_ms, scan_ms,
                 static_cast<unsigned long long>(resident_bytes),
                 static_cast<unsigned long long>(spilled_bytes),
                 static_cast<unsigned long long>(spilled_pages),
                 ratio_vs_legacy);
    std::fclose(f);
  }
};

// Ingest: append every row of `rows` into a fresh table under `options`.
relational::Table Ingest(const relational::Table& src,
                         const relational::TableOptions& options,
                         double* wall_ms) {
  bench::Stopwatch timer;
  relational::Table t(src.schema(), options);
  for (size_t r = 0; r < src.num_rows(); ++r) {
    Status st = t.AppendRow(src.GetRow(r));
    if (!st.ok()) {
      std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  }
  *wall_ms = timer.Seconds() * 1000.0;
  return t;
}

// Scan: walk every text cell in column order through a TextCursor (the
// pattern every verification loop in the matcher uses) and checksum bytes
// so the work cannot be optimized away.
uint64_t Scan(const relational::Table& t, double* wall_ms) {
  bench::Stopwatch timer;
  uint64_t sum = 0;
  for (size_t c = 0; c < t.num_columns(); ++c) {
    const relational::ColumnView view = t.Column(c);
    if (view.type() != relational::ColumnType::kText) continue;
    relational::TextCursor cell(view);
    for (size_t r = 0; r < t.num_rows(); ++r) {
      std::string_view v = cell.Get(r);
      sum += v.size();
      if (!v.empty()) sum += static_cast<unsigned char>(v.front());
    }
  }
  *wall_ms = timer.Seconds() * 1000.0;
  return sum;
}

struct Workload {
  std::string name;
  relational::Table table;
};

std::vector<Workload> Workloads() {
  std::vector<Workload> out;
  {
    // Text-heavy: 17 text columns of titles/authors/words (the acceptance
    // dataset for the resident-bytes ratio).
    datagen::CitationOptions o;
    o.rows = 20000;
    out.push_back({"citation", datagen::MakeCitationDataset(o).source});
  }
  {
    datagen::UserIdOptions o;
    o.rows = 50000;
    out.push_back({"userid", datagen::MakeUserIdDataset(o).source});
  }
  {
    datagen::MergedNamesOptions o;
    o.rows = 50000;
    o.distinct_names = 4000;
    out.push_back({"mergednames", datagen::MakeMergedNamesDataset(o).source});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  JsonSink json;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json.path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json.path = argv[i] + 7;
    }
  }

  struct Backend {
    const char* name;
    relational::TableOptions options;
  };
  relational::TableOptions legacy;
  legacy.use_legacy_store = true;
  relational::TableOptions columnar;
  relational::TableOptions paged;
  paged.page_budget_bytes = 256 * 1024;  // far below every workload's text

  for (Workload& w : Workloads()) {
    uint64_t legacy_resident = 0;
    uint64_t checksum = 0;
    for (const Backend& backend : {Backend{"legacy", legacy},
                                   Backend{"columnar", columnar},
                                   Backend{"columnar+paged", paged}}) {
      double ingest_ms = 0, scan_ms = 0;
      relational::Table t = Ingest(w.table, backend.options, &ingest_ms);
      const uint64_t sum = Scan(t, &scan_ms);
      if (checksum == 0) {
        checksum = sum;
      } else if (sum != checksum) {
        std::fprintf(stderr, "scan checksum mismatch on %s/%s\n",
                     w.name.c_str(), backend.name);
        return 1;
      }
      relational::TableStats stats = t.Stats();
      if (std::strcmp(backend.name, "legacy") == 0) {
        legacy_resident = stats.resident_bytes;
      }
      const double ratio =
          stats.resident_bytes > 0
              ? static_cast<double>(legacy_resident) /
                    static_cast<double>(stats.resident_bytes)
              : 0;
      std::printf(
          "%-12s %-15s rows=%-7llu ingest=%8.1fms scan=%7.1fms "
          "resident=%9llu spilled=%9llu (%llu pages)  legacy/this=%.2fx\n",
          w.name.c_str(), backend.name,
          static_cast<unsigned long long>(stats.rows), ingest_ms, scan_ms,
          static_cast<unsigned long long>(stats.resident_bytes),
          static_cast<unsigned long long>(stats.spilled_bytes),
          static_cast<unsigned long long>(stats.spilled_pages), ratio);
      json.Row(w.name, backend.name, t.num_rows(), ingest_ms, scan_ms,
               stats.resident_bytes, stats.spilled_bytes, stats.spilled_pages,
               ratio);
    }
  }
  return 0;
}
