// Micro-benchmarks (google-benchmark) for the string kernels behind the
// Section 5 complexity analysis: O(|s1|*|s2|) quadratic alignment kernels
// (Hirschberg-style LCS, edit scripts) vs the O((n+R) log n) Hunt-Szymanski
// subsequence, plus q-gram indexing and tf-idf pair scoring.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "relational/column_index.h"
#include "relational/pattern.h"
#include "text/alignment.h"
#include "text/edit_distance.h"
#include "text/lcs.h"
#include "text/qgram.h"
#include "text/tfidf.h"

namespace {

using namespace mcsm;

std::string RandomString(uint64_t seed, size_t length, const char* alphabet) {
  Rng rng(seed);
  return rng.RandomString(length, alphabet);
}

void BM_LevenshteinDistance(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::string a = RandomString(1, n, "abcdefgh");
  std::string b = RandomString(2, n, "abcdefgh");
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::LevenshteinDistance(a, b));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_LevenshteinDistance)->Range(8, 512)->Complexity(benchmark::oNSquared);

void BM_EditScript(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::string a = RandomString(3, n, "abcdefgh");
  std::string b = RandomString(4, n, "abcdefgh");
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::EditScript(a, b));
  }
}
BENCHMARK(BM_EditScript)->Range(8, 256);

void BM_LongestCommonSubstring(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::string a = RandomString(5, n, "abcdefgh");
  std::string b = RandomString(6, n, "abcdefgh");
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::LongestCommonSubstring(a, b));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_LongestCommonSubstring)
    ->Range(8, 512)
    ->Complexity(benchmark::oNSquared);

void BM_HirschbergLcs(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::string a = RandomString(7, n, "abcdefgh");
  std::string b = RandomString(8, n, "abcdefgh");
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::HirschbergLcs(a, b));
  }
}
BENCHMARK(BM_HirschbergLcs)->Range(8, 512);

void BM_HuntSzymanskiLcs(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  // Large alphabet => few matches R => Hunt-Szymanski shines.
  std::string a = RandomString(9, n,
                               "abcdefghijklmnopqrstuvwxyz0123456789ABCDEF");
  std::string b = RandomString(10, n,
                               "abcdefghijklmnopqrstuvwxyz0123456789ABCDEF");
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::HuntSzymanskiLcs(a, b));
  }
}
BENCHMARK(BM_HuntSzymanskiLcs)->Range(8, 512);

void BM_RecipeAlignment(benchmark::State& state) {
  // Typical search workload: short key against a medium target with a mask.
  std::string key = "warner";
  std::string target = "rhwarner-and-some-padding";
  std::vector<bool> mask(target.size(), true);
  for (size_t i = 10; i < target.size(); ++i) mask[i] = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::AlignLcsAnchored(key, target, &mask));
  }
}
BENCHMARK(BM_RecipeAlignment);

void BM_QGramProfile(benchmark::State& state) {
  std::string s = RandomString(11, static_cast<size_t>(state.range(0)), "abcdef");
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::QGramProfile(s, 2));
  }
}
BENCHMARK(BM_QGramProfile)->Range(8, 512);

void BM_TfIdfScorePair(benchmark::State& state) {
  Rng rng(12);
  std::vector<std::string> corpus;
  for (int i = 0; i < 1000; ++i) corpus.push_back(rng.RandomString(12, "abcdef"));
  text::TfIdfModel model(corpus, 2);
  std::string a = corpus[10], b = corpus[20];
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ScorePair(a, b));
  }
}
BENCHMARK(BM_TfIdfScorePair);

void BM_IndexBuild(benchmark::State& state) {
  Rng rng(13);
  relational::Table t = relational::Table::WithTextColumns({"a"});
  for (int64_t i = 0; i < state.range(0); ++i) {
    (void)t.AppendTextRow({rng.RandomString(12, "abcdefgh")});
  }
  relational::ColumnIndex::Options o;
  o.build_postings = true;
  for (auto _ : state) {
    relational::ColumnIndex idx(t, 0, o);
    benchmark::DoNotOptimize(idx.distinct_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexBuild)->Range(1000, 64000);

void BM_SimilarRows(benchmark::State& state) {
  Rng rng(14);
  relational::Table t = relational::Table::WithTextColumns({"a"});
  for (int i = 0; i < 20000; ++i) {
    (void)t.AppendTextRow({rng.RandomString(12, "abcdefgh")});
  }
  relational::ColumnIndex::Options o;
  o.build_postings = true;
  relational::ColumnIndex idx(t, 0, o);
  std::string key = rng.RandomString(12, "abcdefgh");
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.SimilarRows(key, 0.0, 8));
  }
}
BENCHMARK(BM_SimilarRows);

void BM_PatternRetrieval(benchmark::State& state) {
  Rng rng(15);
  relational::Table t = relational::Table::WithTextColumns({"a"});
  for (int i = 0; i < 20000; ++i) {
    (void)t.AppendTextRow({rng.RandomString(12, "abcdefgh")});
  }
  relational::ColumnIndex::Options o;
  o.build_postings = true;
  relational::ColumnIndex idx(t, 0, o);
  auto pattern = relational::SearchPattern::FromLikeString("%abcd");
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.RowsMatchingPattern(pattern));
  }
}
BENCHMARK(BM_PatternRetrieval);

}  // namespace

BENCHMARK_MAIN();
