// Section 6.1: separator discovery and separator-aware translation search.
//  (a) fixed-width targets (Table 10): "hh:mm:ss" -> template "%:%:%";
//  (b) variable-width targets (Table 11): full = last + ", " + first ->
//      template "%, %" and formula last[1-n] + ", " + first[1-n];
//  (c) the motivation example: date format translation via "/" separators.
#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/separator.h"
#include "datagen/noise.h"

using namespace mcsm;

int main() {
  bench::Banner("Section 6.1", "separator templates and separator-aware search");

  // (a) Fixed width, Algorithm 7 and Algorithm 8 must agree.
  {
    relational::Table t = relational::Table::WithTextColumns({"ts"});
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
      datagen::TimeOfDay tod = datagen::RandomTimeOfDay(rng);
      std::vector<std::string> row = {tod.hours + ":" + tod.minutes + ":" +
                                      tod.seconds};
      (void)t.AppendTextRow(row);
    }
    auto fixed = core::SeparatorDetector::DetectFixedWidth(t, 0);
    auto general = core::SeparatorDetector::Detect(t, 0);
    std::printf("hh:mm:ss   Algorithm 7: %s   Algorithm 8: %s   (paper: %%:%%:%%)\n",
                fixed.has_value() ? fixed->ToLikeString().c_str() : "(none)",
                general.has_value() ? general->ToLikeString().c_str() : "(none)");
  }

  // (b) Variable width: Table 11's "last, first".
  {
    datagen::MergedNamesOptions options;
    options.rows = bench::ScaledRows(700000, 0.05);
    options.distinct_names = std::max<size_t>(1000, options.rows / 10);
    options.comma_separator = true;
    datagen::Dataset data = datagen::MakeMergedNamesDataset(options);
    core::SearchOptions so;
    so.detect_separators = true;
    bench::Stopwatch watch;
    auto d = core::DiscoverTranslation(data.source, data.target,
                                       data.target_column, so);
    if (!d.ok()) {
      std::printf("comma search failed: %s\n", d.status().ToString().c_str());
    } else {
      std::printf("\n-- Table 11: full = last + \", \" + first --\n");
      bench::ReportDiscovery(data, *d, watch.Seconds());
      std::printf("# paper: last[1-n] + \", \" + first[1-n]\n");
    }
  }

  // (c) The Section 6.1 part-number example ("FRU-13423-2005").
  {
    datagen::PartNumberOptions options;
    options.rows = bench::ScaledRows(6000, 1.0);
    datagen::Dataset data = datagen::MakePartNumberDataset(options);
    core::SearchOptions so;
    so.detect_separators = true;
    bench::Stopwatch watch;
    auto d = core::DiscoverTranslation(data.source, data.target,
                                       data.target_column, so);
    if (!d.ok()) {
      std::printf("part-number search failed: %s\n",
                  d.status().ToString().c_str());
    } else {
      std::printf("\n-- Section 6.1: part numbers like FRU-13423-2005 --\n");
      bench::ReportDiscovery(data, *d, watch.Seconds());
      std::printf("# expected: plant + \"-\" + serial + \"-\" + year\n");
    }
  }

  // (d) Date format translation (the motivation example, Section 1).
  {
    datagen::DateFormatOptions options;
    options.rows = bench::ScaledRows(8000, 1.0);
    datagen::Dataset data = datagen::MakeDateFormatDataset(options);
    core::SearchOptions so;
    so.detect_separators = true;
    bench::Stopwatch watch;
    auto d = core::DiscoverTranslation(data.source, data.target,
                                       data.target_column, so);
    if (!d.ok()) {
      std::printf("date search failed: %s\n", d.status().ToString().c_str());
    } else {
      std::printf("\n-- motivation: 2005/05/29 -> 05/29/2005 --\n");
      bench::ReportDiscovery(data, *d, watch.Seconds());
      std::printf("# expected: date[6-7] + \"/\" + date[9-10] + \"/\" + date[1-4]\n");
    }
  }
  return 0;
}
