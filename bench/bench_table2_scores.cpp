// Table 2: Step-1 column scores with a 10% sample on the UserID dataset.
// Paper values (their real data):  first 14194, middle 12391, last 16374,
// text 6151, time 354, numb 792, addr 5505 — the name columns lead, `last`
// highest; we reproduce the ordering and the orders of magnitude.
#include "bench/bench_util.h"
#include "core/search.h"

using namespace mcsm;

int main() {
  bench::Banner("Table 2", "column scores with a 10% sample (UserID)");
  datagen::UserIdOptions options;
  options.rows = bench::ScaledRows(6000, 1.0);
  datagen::Dataset data = datagen::MakeUserIdDataset(options);

  core::SearchOptions search_options;
  core::TranslationSearch search(data.source, data.target, data.target_column,
                                 search_options);
  auto best = search.SelectStartColumn();
  if (!best.ok()) {
    std::printf("column selection failed: %s\n", best.status().ToString().c_str());
    return 1;
  }
  const std::vector<double>& scores = best->scores;

  std::printf("%-10s %14s\n", "column", "score");
  for (size_t c = 0; c < scores.size(); ++c) {
    std::printf("%-10s %14.0f%s\n", data.source.schema().column(c).name.c_str(),
                scores[c], c == best->best_column ? "   <- selected" : "");
  }
  std::printf("\n# paper Table 2: first 14194, middle 12391, last 16374, "
              "text 6151,\n#                time 354, numb 792, addr 5505\n");
  std::printf("# shape to check: name columns >> noise columns; 'last' selected.\n");
  return 0;
}
