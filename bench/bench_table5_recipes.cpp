// Table 5: sample edit recipes for the login data. Reproduces the paper's
// worked examples: keys from the last-name column aligned against similar
// login instances, rendered as candidate partial translations (with the
// end-of-string clones) using the paper's leftmost tie-break.
#include "bench/bench_util.h"
#include "core/recipe.h"
#include "text/alignment.h"

using namespace mcsm;

int main() {
  bench::Banner("Table 5", "edit recipes for login-style pairs");
  struct Pair {
    const char* key;
    const char* target;
  };
  // The paper's Table 3/5 pairs (B3 = last name, column index 2).
  const Pair pairs[] = {
      {"warner", "rhwarner"}, {"warner", "klwarder"}, {"warner", "ghkarer"},
      {"amy", "laramy"},      {"amy", "amyrose"},     {"amy", "camyro"},
      {"wang", "mkwang"},     {"wayne", "opwayne"},
  };
  std::printf("%-8s %-10s  %s\n", "B3", "A", "candidate translations");
  for (const auto& p : pairs) {
    auto alignment = text::AlignLcsAnchored(
        p.key, p.target, nullptr, text::EditCosts{}, text::LcsTieBreak::kLeftmost);
    auto formulas_or = core::BuildFormulasFromRecipe(
        p.target, core::FixedCoverage::None(std::string(p.target).size()),
        alignment, 2, std::string(p.key).size(), 8);
    std::string rendered;
    if (!formulas_or.ok()) {
      rendered = formulas_or.status().ToString();
    } else {
      for (size_t i = 0; i < formulas_or->size(); ++i) {
        if (i) rendered += "  or  ";
        rendered += (*formulas_or)[i].ToString();
      }
    }
    std::printf("%-8s %-10s  %s\n", p.key, p.target, rendered.c_str());
  }
  std::printf(
      "\n# paper Table 5 rows to compare, e.g.:\n"
      "#   warner rhwarner -> %%B3[123456] or %%B3[1-n]\n"
      "#   warner klwarder -> %%B3[123]%%B3[56] or %%B3[123]%%B3[5-n]\n"
      "#   amy    amyrose  -> B3[123]%% or B3[1-n]%%\n");
  return 0;
}
