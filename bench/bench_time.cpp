// Section 4.2: the Time dataset. 10,000 random timestamps split into 2-char
// hrs/mins/secs source columns (+ noise); target = hrs||mins||secs. The
// paper recovers time = hour[1-2] + minutes[1-2] + seconds[1-2] and emits
// the corresponding SQL, despite the heavily overlapping value domains.
#include "bench/bench_util.h"
#include "relational/database.h"
#include "sql/engine.h"

using namespace mcsm;

int main() {
  bench::Banner("Section 4.2", "Time dataset: hhmmss from hrs/mins/secs columns");
  datagen::TimeOptions options;
  options.rows = bench::ScaledRows(10000, 1.0);
  datagen::Dataset data = datagen::MakeTimeDataset(options);

  bench::Stopwatch watch;
  auto d = core::DiscoverTranslation(data.source, data.target,
                                     data.target_column, {});
  if (!d.ok()) {
    std::printf("search failed: %s\n", d.status().ToString().c_str());
    return 1;
  }
  bench::ReportDiscovery(data, *d, watch.Seconds());
  std::printf("# paper: time = hour[1-2] + minutes[1-2] + seconds[1-2]\n");

  // Execute the emitted SQL end to end and verify it regenerates the target.
  relational::Database db;
  if (!db.CreateTable("t1", data.source).ok()) return 1;
  sql::Engine engine(&db);
  auto rs = engine.Execute(d->sql);
  if (!rs.ok()) {
    std::printf("emitted sql failed: %s\n", rs.status().ToString().c_str());
    return 1;
  }
  std::printf("sql executed: %zu rows translated in the embedded engine\n",
              rs->num_rows());
  return 0;
}
