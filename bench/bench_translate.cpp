// Bulk-translation throughput: the same discovered formula executed three
// ways over the full source table —
//   sql   : the emitted SQL query through the interpreting engine (the
//           per-row expression-tree walk a schema-integration framework
//           would hand to its own executor),
//   apply : TranslationFormula::Apply in a per-row loop (one std::string
//           allocation per covered row),
//   vm    : the compiled bytecode program through vm::Translate
//           (DESIGN.md §12; zero per-row allocation, batch-parallel).
// All three produce byte-identical covered rows (vm_test enforces it); this
// bench measures what that agreement costs. --json rows carry path and
// rows/sec so CI can track the speedup ratio; PR 9's acceptance bar is
// vm >= 10x sql on at least one dataset.
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/sql_emitter.h"
#include "relational/database.h"
#include "sql/engine.h"
#include "vm/compiler.h"
#include "vm/executor.h"

using namespace mcsm;

namespace {

struct JsonSink {
  std::string path;

  void Row(const std::string& dataset, const char* exec_path, size_t rows,
           size_t covered, double wall_ms, size_t threads) const {
    if (path.empty()) return;
    std::FILE* f = std::fopen(path.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s for append\n", path.c_str());
      return;
    }
    const double rows_per_sec =
        wall_ms > 0 ? 1000.0 * static_cast<double>(rows) / wall_ms : 0;
    std::fprintf(f,
                 "{\"bench\": \"translate\", \"dataset\": \"%s\", "
                 "\"path\": \"%s\", \"rows\": %zu, \"covered\": %zu, "
                 "\"wall_ms\": %.3f, \"rows_per_sec\": %.0f, "
                 "\"threads\": %zu}\n",
                 dataset.c_str(), exec_path, rows, covered, wall_ms,
                 rows_per_sec, threads);
    std::fclose(f);
  }
};

void RunDataset(const std::string& name, const datagen::Dataset& data,
                core::SearchOptions search_options, size_t threads,
                const JsonSink& json) {
  bench::Banner("translate", name.c_str());
  const size_t rows = data.source.num_rows();

  bench::Stopwatch watch;
  search_options.num_threads = threads;
  auto d = core::DiscoverTranslation(data.source, data.target,
                                     data.target_column, search_options);
  if (!d.ok()) {
    std::printf("discovery failed: %s\n", d.status().ToString().c_str());
    return;
  }
  std::printf("formula    : %s  (discovered in %.2f s)\n",
              d->formula().ToString(data.source.schema()).c_str(),
              watch.Seconds());

  // SQL path. The engine walks the expression tree per row, single-threaded
  // by design — it exists for correctness cross-checks, not throughput.
  core::SqlEmitter::Options sql_options;
  sql_options.source_table = "t1";
  auto sql = core::SqlEmitter::ToSql(d->formula(), data.source.schema(),
                                     sql_options);
  if (!sql.ok()) {
    std::printf("sql emit failed: %s\n", sql.status().ToString().c_str());
    return;
  }
  relational::Database db;
  if (auto s = db.CreateTable("t1", data.source); !s.ok()) {
    std::printf("create table failed: %s\n", s.ToString().c_str());
    return;
  }
  sql::Engine engine(&db);
  watch.Reset();
  auto rs = engine.Execute(*sql);
  const double sql_ms = watch.Seconds() * 1000;
  if (!rs.ok()) {
    std::printf("sql exec failed: %s\n", rs.status().ToString().c_str());
    return;
  }
  std::printf("sql        : %8.1f ms  %12.0f rows/sec  (%zu covered)\n",
              sql_ms, 1000.0 * static_cast<double>(rows) / sql_ms,
              rs->num_rows());
  json.Row(name, "sql", rows, rs->num_rows(), sql_ms, 1);

  // Apply path: the discovery-time per-row oracle.
  watch.Reset();
  size_t apply_covered = 0;
  size_t apply_bytes = 0;
  for (size_t row = 0; row < rows; ++row) {
    if (auto value = d->formula().Apply(data.source, row)) {
      ++apply_covered;
      apply_bytes += value->size();
    }
  }
  const double apply_ms = watch.Seconds() * 1000;
  std::printf("apply      : %8.1f ms  %12.0f rows/sec  (%zu covered)\n",
              apply_ms, 1000.0 * static_cast<double>(rows) / apply_ms,
              apply_covered);
  json.Row(name, "apply", rows, apply_covered, apply_ms, 1);

  // VM path at the requested thread count.
  auto program = vm::CompileFormula(d->formula(), data.source.schema());
  if (!program.ok()) {
    std::printf("compile failed: %s\n", program.status().ToString().c_str());
    return;
  }
  vm::TranslateOptions translate_options;
  translate_options.num_threads = threads;
  watch.Reset();
  auto result = vm::Translate(*program, data.source, translate_options);
  const double vm_ms = watch.Seconds() * 1000;
  if (!result.ok()) {
    std::printf("vm exec failed: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("vm         : %8.1f ms  %12.0f rows/sec  (%zu covered, "
              "%zu threads)\n",
              vm_ms, 1000.0 * static_cast<double>(rows) / vm_ms,
              result->output_rows(), threads);
  json.Row(name, "vm", rows, result->output_rows(), vm_ms, threads);

  // The three paths must agree before any speedup claim means anything.
  if (result->output_rows() != apply_covered ||
      result->output_rows() != rs->num_rows() ||
      result->bytes.size() != apply_bytes) {
    std::printf("!! DISAGREEMENT: sql %zu, apply %zu, vm %zu covered rows\n",
                rs->num_rows(), apply_covered, result->output_rows());
    std::exit(1);
  }
  std::printf("speedup    : vm is %.1fx sql, %.1fx apply\n", sql_ms / vm_ms,
              apply_ms / vm_ms);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchCli cli(argc, argv, "translate");
  JsonSink json;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json.path = argv[i + 1];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json.path = argv[i] + 7;
    }
  }
  const size_t threads = cli.threads();

  {
    datagen::UserIdOptions o;
    o.rows = bench::ScaledRows(6000, 1.0);
    RunDataset("userid", datagen::MakeUserIdDataset(o), {}, threads, json);
  }
  {
    datagen::MergedNamesOptions o;
    o.rows = bench::ScaledRows(700000, 0.5);
    o.distinct_names = o.rows / 10;
    RunDataset("fullname", datagen::MakeMergedNamesDataset(o), {}, threads,
               json);
  }
  {
    datagen::CitationOptions o;
    o.rows = bench::ScaledRows(526000, 0.2);
    core::SearchOptions so;
    so.sample_fraction = 0.02;
    RunDataset("citeseer", datagen::MakeCitationDataset(o), so, threads,
               json);
  }
  return 0;
}
