// Section 4.1: the UserID experiment.
//  (a) discover the dominant translation (paper: login = first[1-1]+last[1-n],
//      ~half of the rows), emit the SQL;
//  (b) match-and-remove, rediscover the secondary translation
//      (paper: first[1-1]+middle[1-1]+last[1-n], ~1,200 of 6,000 rows);
//  (c) robustness sweep: add unmatched source rows until the search degrades
//      (paper: tolerated ~3,000 extra rows before picking a noise column).
#include "bench/bench_util.h"
#include "core/rule_merger.h"

using namespace mcsm;

int main() {
  bench::Banner("Section 4.1", "UserID dataset: login names from first/middle/last");
  datagen::UserIdOptions options;
  options.rows = bench::ScaledRows(6000, 1.0);
  datagen::Dataset data = datagen::MakeUserIdDataset(options);

  bench::Stopwatch watch;
  auto all = core::DiscoverAllTranslations(data.source, data.target,
                                           data.target_column, {}, 4, 50);
  if (!all.ok()) {
    std::printf("search failed: %s\n", all.status().ToString().c_str());
    return 1;
  }
  std::printf("-- match-and-remove rounds (%.2f s total) --\n", watch.Seconds());
  for (size_t i = 0; i < all->size(); ++i) {
    const auto& d = (*all)[i];
    std::printf("round %zu: %-40s coverage %zu\n", i + 1,
                d.formula().ToString(data.source.schema()).c_str(),
                d.coverage.matched_rows());
    if (!d.sql.empty()) std::printf("         sql: %s\n", d.sql.c_str());
  }
  std::printf("# paper: first[1-1]+last[1-n] (~3,000 rows), then\n"
              "#        first[1-1]+middle[1-1]+last[1-n] (~1,200 rows),\n"
              "#        then no further dominant pattern.\n");

  // Section 7 extension: merge the discovered formulas into one rule with
  // optional regions and report the union coverage.
  std::vector<core::TranslationFormula> formulas;
  for (const auto& d : *all) formulas.push_back(d.formula());
  auto rules = core::MergeRules(formulas);
  std::printf("\n-- Section 7 extension: rule merging --\n");
  for (const auto& rule : rules) {
    auto coverage =
        rule.ComputeCoverage(data.source, data.target, data.target_column);
    std::printf("rule %-50s union coverage %zu\n",
                rule.ToString(data.source.schema()).c_str(),
                coverage.matched_rows());
  }

  std::printf("\n-- robustness: extra unmatched source rows (paper: breaks ~+3000) --\n");
  std::printf("%-12s %-42s %s\n", "extra rows", "first formula found", "ok?");
  for (size_t extra : {0u, 1500u, 3000u, 6000u, 12000u, 24000u, 48000u}) {
    datagen::UserIdOptions robust = options;
    robust.extra_unmatched_rows = extra;
    datagen::Dataset noisy = datagen::MakeUserIdDataset(robust);
    auto d = core::DiscoverTranslation(noisy.source, noisy.target,
                                       noisy.target_column, {});
    if (!d.ok()) {
      std::printf("%-12zu %-42s %s\n", extra, "(search failed)", "NO");
      continue;
    }
    std::string formula = d->formula().ToString(noisy.source.schema());
    bool correct = formula == "first[1-1]last[1-n]" ||
                   formula == "first[1-1]middle[1-1]last[1-n]";
    std::printf("%-12zu %-42s %s (coverage %zu)\n", extra, formula.c_str(),
                correct ? "yes" : "NO", d->coverage.matched_rows());
  }
  std::printf(
      "# paper: correct up to ~+3,000 extra rows, then a noise column was\n"
      "# picked for the refinement. The coverage-validated restarts\n"
      "# (DESIGN.md item 7) repair exactly that failure mode, so this\n"
      "# implementation stays correct well past the paper's breaking point.\n");
  return 0;
}
