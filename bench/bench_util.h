#ifndef MCSM_BENCH_BENCH_UTIL_H_
#define MCSM_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>

#include "common/env.h"
#include "core/matcher.h"
#include "datagen/datasets.h"

namespace mcsm::bench {

/// Wall-clock stopwatch for experiment phases.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Scales a paper-size row count by MCSM_SCALE, with a per-bench default
/// scale chosen so the whole suite runs in minutes. Prints the provenance so
/// readers can reproduce the paper-size run.
inline size_t ScaledRows(size_t paper_rows, double default_scale) {
  double scale = GetEnvDouble("MCSM_SCALE", default_scale);
  size_t rows = static_cast<size_t>(paper_rows * scale);
  std::printf("# paper size: %zu rows; MCSM_SCALE=%.3g -> %zu rows\n",
              paper_rows, scale, rows);
  return rows;
}

inline void Banner(const char* id, const char* title) {
  std::printf("\n==============================================================\n");
  std::printf("%s  %s\n", id, title);
  std::printf("==============================================================\n");
}

/// Runs a full discovery and prints the paper-style result line.
inline void ReportDiscovery(const datagen::Dataset& data,
                            const core::DiscoveredTranslation& d,
                            double seconds) {
  std::printf("formula    : %s\n",
              d.formula().ToString(data.source.schema()).c_str());
  std::printf("coverage   : %zu / %zu target rows (%.1f%%)\n",
              d.coverage.matched_rows(), data.target.num_rows(),
              100.0 * static_cast<double>(d.coverage.matched_rows()) /
                  static_cast<double>(std::max<size_t>(data.target.num_rows(), 1)));
  if (!d.sql.empty()) std::printf("sql        : %s\n", d.sql.c_str());
  std::printf("elapsed    : %.2f s  (step1 %.2fs, step2 %.2fs, %zu iterations)\n",
              seconds, d.search.stats.step1_seconds,
              d.search.stats.step2_seconds, d.search.iterations.size());
}

}  // namespace mcsm::bench

#endif  // MCSM_BENCH_BENCH_UTIL_H_
