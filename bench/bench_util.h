#ifndef MCSM_BENCH_BENCH_UTIL_H_
#define MCSM_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "common/env.h"
#include "common/trace.h"
#include "core/matcher.h"
#include "datagen/datasets.h"

namespace mcsm::bench {

/// Common benchmark CLI: `--json <path>` (or `--json=<path>`) appends one
/// machine-readable result row per measurement, `--threads <N>` sets the
/// search worker count (default: MCSM_THREADS, else hardware concurrency),
/// and `--trace <path>` streams JSONL trace events for every measured run
/// (the --json rows then also report trace_events/trace_spans). Unknown
/// flags are ignored so each bench keeps its own knobs.
class BenchCli {
 public:
  BenchCli(int argc, char** argv, std::string bench)
      : bench_(std::move(bench)),
        threads_(static_cast<size_t>(
            std::max<int64_t>(GetEnvInt("MCSM_THREADS", 0), 0))) {
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
      std::string value;
      if (Consume("--json", argc, argv, &i, &value)) {
        json_path_ = value;
      } else if (Consume("--threads", argc, argv, &i, &value)) {
        threads_ = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
      } else if (Consume("--trace", argc, argv, &i, &value)) {
        trace_path = value;
      }
    }
    if (threads_ == 0) {
      threads_ = std::thread::hardware_concurrency();
      if (threads_ == 0) threads_ = 1;
    }
    if (!trace_path.empty()) {
      auto opened = JsonlTraceSink::Open(trace_path);
      if (!opened.ok()) {
        std::fprintf(stderr, "bench: %s\n",
                     opened.status().ToString().c_str());
        std::exit(2);
      }
      jsonl_sink_ = std::move(opened.value());
      // The in-memory counter sink feeds the --json row counters; the tee
      // fans each event out to both.
      counter_sink_ = std::make_unique<InMemoryTraceSink>();
      tee_sink_ = std::make_unique<TeeTraceSink>(jsonl_sink_.get(),
                                                 counter_sink_.get());
    }
  }

  /// Resolved worker count; feed into SearchOptions::num_threads.
  size_t threads() const { return threads_; }

  /// The trace sink to put in SearchOptions::Env::trace, or nullptr when
  /// --trace was not given (the null path costs one branch per event site).
  TraceSink* trace() const { return tee_sink_.get(); }

  /// Appends `{"bench": ..., "dataset": ..., "wall_ms": ..., "threads": ...}`
  /// to the --json file (no-op when --json was not given). When tracing,
  /// the row also carries the cumulative trace_events/trace_spans counters.
  void Row(const std::string& dataset, double wall_ms) const {
    if (json_path_.empty()) return;
    std::FILE* f = std::fopen(json_path_.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s for append\n",
                   json_path_.c_str());
      return;
    }
    std::fprintf(f,
                 "{\"bench\": \"%s\", \"dataset\": \"%s\", \"wall_ms\": %.3f, "
                 "\"threads\": %zu",
                 bench_.c_str(), dataset.c_str(), wall_ms, threads_);
    if (counter_sink_ != nullptr) {
      std::fprintf(f, ", \"trace_events\": %llu, \"trace_spans\": %llu",
                   static_cast<unsigned long long>(counter_sink_->event_count()),
                   static_cast<unsigned long long>(counter_sink_->span_count()));
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
  }

 private:
  static bool Consume(std::string_view flag, int argc, char** argv, int* i,
                      std::string* value) {
    std::string_view arg = argv[*i];
    if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
        arg[flag.size()] == '=') {
      *value = std::string(arg.substr(flag.size() + 1));
      return true;
    }
    if (arg == flag && *i + 1 < argc) {
      *value = argv[++*i];
      return true;
    }
    return false;
  }

  std::string bench_;
  std::string json_path_;
  size_t threads_ = 0;
  std::unique_ptr<JsonlTraceSink> jsonl_sink_;
  std::unique_ptr<InMemoryTraceSink> counter_sink_;
  std::unique_ptr<TeeTraceSink> tee_sink_;
};

/// Wall-clock stopwatch for experiment phases.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Scales a paper-size row count by MCSM_SCALE, with a per-bench default
/// scale chosen so the whole suite runs in minutes. Prints the provenance so
/// readers can reproduce the paper-size run.
inline size_t ScaledRows(size_t paper_rows, double default_scale) {
  double scale = GetEnvDouble("MCSM_SCALE", default_scale);
  size_t rows = static_cast<size_t>(paper_rows * scale);
  std::printf("# paper size: %zu rows; MCSM_SCALE=%.3g -> %zu rows\n",
              paper_rows, scale, rows);
  return rows;
}

inline void Banner(const char* id, const char* title) {
  std::printf("\n==============================================================\n");
  std::printf("%s  %s\n", id, title);
  std::printf("==============================================================\n");
}

/// Runs a full discovery and prints the paper-style result line.
inline void ReportDiscovery(const datagen::Dataset& data,
                            const core::DiscoveredTranslation& d,
                            double seconds) {
  std::printf("formula    : %s\n",
              d.formula().ToString(data.source.schema()).c_str());
  std::printf("coverage   : %zu / %zu target rows (%.1f%%)\n",
              d.coverage.matched_rows(), data.target.num_rows(),
              100.0 * static_cast<double>(d.coverage.matched_rows()) /
                  static_cast<double>(std::max<size_t>(data.target.num_rows(), 1)));
  if (!d.sql.empty()) std::printf("sql        : %s\n", d.sql.c_str());
  std::printf("elapsed    : %.2f s  (step1 %.2fs, step2 %.2fs, %zu iterations)\n",
              seconds, d.search.stats.step1_seconds,
              d.search.stats.step2_seconds, d.search.iterations.size());
}

}  // namespace mcsm::bench

#endif  // MCSM_BENCH_BENCH_UTIL_H_
