file(REMOVE_RECURSE
  "CMakeFiles/bench_citeseer.dir/bench_citeseer.cpp.o"
  "CMakeFiles/bench_citeseer.dir/bench_citeseer.cpp.o.d"
  "bench_citeseer"
  "bench_citeseer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_citeseer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
