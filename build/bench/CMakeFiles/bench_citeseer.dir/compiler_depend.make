# Empty compiler generated dependencies file for bench_citeseer.
# This may be replaced when dependencies are built.
