file(REMOVE_RECURSE
  "CMakeFiles/bench_cross_dataset.dir/bench_cross_dataset.cpp.o"
  "CMakeFiles/bench_cross_dataset.dir/bench_cross_dataset.cpp.o.d"
  "bench_cross_dataset"
  "bench_cross_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cross_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
