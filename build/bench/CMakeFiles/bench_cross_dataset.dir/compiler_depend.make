# Empty compiler generated dependencies file for bench_cross_dataset.
# This may be replaced when dependencies are built.
