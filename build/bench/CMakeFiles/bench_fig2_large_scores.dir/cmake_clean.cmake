file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_large_scores.dir/bench_fig2_large_scores.cpp.o"
  "CMakeFiles/bench_fig2_large_scores.dir/bench_fig2_large_scores.cpp.o.d"
  "bench_fig2_large_scores"
  "bench_fig2_large_scores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_large_scores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
