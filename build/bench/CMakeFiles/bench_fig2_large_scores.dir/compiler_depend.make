# Empty compiler generated dependencies file for bench_fig2_large_scores.
# This may be replaced when dependencies are built.
