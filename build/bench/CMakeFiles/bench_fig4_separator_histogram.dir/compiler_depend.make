# Empty compiler generated dependencies file for bench_fig4_separator_histogram.
# This may be replaced when dependencies are built.
