file(REMOVE_RECURSE
  "CMakeFiles/bench_fullname.dir/bench_fullname.cpp.o"
  "CMakeFiles/bench_fullname.dir/bench_fullname.cpp.o.d"
  "bench_fullname"
  "bench_fullname.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fullname.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
