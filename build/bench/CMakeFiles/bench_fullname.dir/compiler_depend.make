# Empty compiler generated dependencies file for bench_fullname.
# This may be replaced when dependencies are built.
