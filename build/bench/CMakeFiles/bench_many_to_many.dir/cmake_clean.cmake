file(REMOVE_RECURSE
  "CMakeFiles/bench_many_to_many.dir/bench_many_to_many.cpp.o"
  "CMakeFiles/bench_many_to_many.dir/bench_many_to_many.cpp.o.d"
  "bench_many_to_many"
  "bench_many_to_many.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_many_to_many.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
