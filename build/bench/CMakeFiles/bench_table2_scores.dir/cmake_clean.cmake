file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_scores.dir/bench_table2_scores.cpp.o"
  "CMakeFiles/bench_table2_scores.dir/bench_table2_scores.cpp.o.d"
  "bench_table2_scores"
  "bench_table2_scores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_scores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
