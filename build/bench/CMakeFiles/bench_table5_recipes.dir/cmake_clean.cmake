file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_recipes.dir/bench_table5_recipes.cpp.o"
  "CMakeFiles/bench_table5_recipes.dir/bench_table5_recipes.cpp.o.d"
  "bench_table5_recipes"
  "bench_table5_recipes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_recipes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
