# Empty dependencies file for bench_table5_recipes.
# This may be replaced when dependencies are built.
