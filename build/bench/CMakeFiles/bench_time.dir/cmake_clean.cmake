file(REMOVE_RECURSE
  "CMakeFiles/bench_time.dir/bench_time.cpp.o"
  "CMakeFiles/bench_time.dir/bench_time.cpp.o.d"
  "bench_time"
  "bench_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
