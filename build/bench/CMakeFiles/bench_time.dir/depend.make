# Empty dependencies file for bench_time.
# This may be replaced when dependencies are built.
