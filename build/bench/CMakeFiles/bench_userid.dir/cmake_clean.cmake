file(REMOVE_RECURSE
  "CMakeFiles/bench_userid.dir/bench_userid.cpp.o"
  "CMakeFiles/bench_userid.dir/bench_userid.cpp.o.d"
  "bench_userid"
  "bench_userid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_userid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
