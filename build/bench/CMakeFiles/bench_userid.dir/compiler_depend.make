# Empty compiler generated dependencies file for bench_userid.
# This may be replaced when dependencies are built.
