file(REMOVE_RECURSE
  "CMakeFiles/citation_linkage.dir/citation_linkage.cpp.o"
  "CMakeFiles/citation_linkage.dir/citation_linkage.cpp.o.d"
  "citation_linkage"
  "citation_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
