# Empty dependencies file for citation_linkage.
# This may be replaced when dependencies are built.
