
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/date_format_discovery.cpp" "examples/CMakeFiles/date_format_discovery.dir/date_format_discovery.cpp.o" "gcc" "examples/CMakeFiles/date_format_discovery.dir/date_format_discovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mcsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/mcsm_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/mcsm_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/mcsm_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/mcsm_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mcsm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
