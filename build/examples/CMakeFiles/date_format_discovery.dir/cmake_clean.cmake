file(REMOVE_RECURSE
  "CMakeFiles/date_format_discovery.dir/date_format_discovery.cpp.o"
  "CMakeFiles/date_format_discovery.dir/date_format_discovery.cpp.o.d"
  "date_format_discovery"
  "date_format_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/date_format_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
