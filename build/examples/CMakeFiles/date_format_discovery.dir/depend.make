# Empty dependencies file for date_format_discovery.
# This may be replaced when dependencies are built.
