file(REMOVE_RECURSE
  "CMakeFiles/discover_csv.dir/discover_csv.cpp.o"
  "CMakeFiles/discover_csv.dir/discover_csv.cpp.o.d"
  "discover_csv"
  "discover_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discover_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
