# Empty dependencies file for discover_csv.
# This may be replaced when dependencies are built.
