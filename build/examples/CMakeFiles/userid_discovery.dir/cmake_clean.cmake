file(REMOVE_RECURSE
  "CMakeFiles/userid_discovery.dir/userid_discovery.cpp.o"
  "CMakeFiles/userid_discovery.dir/userid_discovery.cpp.o.d"
  "userid_discovery"
  "userid_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/userid_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
