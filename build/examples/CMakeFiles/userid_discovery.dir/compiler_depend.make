# Empty compiler generated dependencies file for userid_discovery.
# This may be replaced when dependencies are built.
