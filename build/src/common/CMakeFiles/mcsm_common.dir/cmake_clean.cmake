file(REMOVE_RECURSE
  "CMakeFiles/mcsm_common.dir/env.cc.o"
  "CMakeFiles/mcsm_common.dir/env.cc.o.d"
  "CMakeFiles/mcsm_common.dir/rng.cc.o"
  "CMakeFiles/mcsm_common.dir/rng.cc.o.d"
  "CMakeFiles/mcsm_common.dir/status.cc.o"
  "CMakeFiles/mcsm_common.dir/status.cc.o.d"
  "CMakeFiles/mcsm_common.dir/string_util.cc.o"
  "CMakeFiles/mcsm_common.dir/string_util.cc.o.d"
  "libmcsm_common.a"
  "libmcsm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
