file(REMOVE_RECURSE
  "libmcsm_common.a"
)
