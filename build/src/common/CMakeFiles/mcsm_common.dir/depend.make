# Empty dependencies file for mcsm_common.
# This may be replaced when dependencies are built.
