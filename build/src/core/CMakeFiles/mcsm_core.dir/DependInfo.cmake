
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/autotune.cc" "src/core/CMakeFiles/mcsm_core.dir/autotune.cc.o" "gcc" "src/core/CMakeFiles/mcsm_core.dir/autotune.cc.o.d"
  "/root/repo/src/core/column_scorer.cc" "src/core/CMakeFiles/mcsm_core.dir/column_scorer.cc.o" "gcc" "src/core/CMakeFiles/mcsm_core.dir/column_scorer.cc.o.d"
  "/root/repo/src/core/formula.cc" "src/core/CMakeFiles/mcsm_core.dir/formula.cc.o" "gcc" "src/core/CMakeFiles/mcsm_core.dir/formula.cc.o.d"
  "/root/repo/src/core/matcher.cc" "src/core/CMakeFiles/mcsm_core.dir/matcher.cc.o" "gcc" "src/core/CMakeFiles/mcsm_core.dir/matcher.cc.o.d"
  "/root/repo/src/core/recipe.cc" "src/core/CMakeFiles/mcsm_core.dir/recipe.cc.o" "gcc" "src/core/CMakeFiles/mcsm_core.dir/recipe.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/mcsm_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/mcsm_core.dir/report.cc.o.d"
  "/root/repo/src/core/rule_merger.cc" "src/core/CMakeFiles/mcsm_core.dir/rule_merger.cc.o" "gcc" "src/core/CMakeFiles/mcsm_core.dir/rule_merger.cc.o.d"
  "/root/repo/src/core/search.cc" "src/core/CMakeFiles/mcsm_core.dir/search.cc.o" "gcc" "src/core/CMakeFiles/mcsm_core.dir/search.cc.o.d"
  "/root/repo/src/core/separator.cc" "src/core/CMakeFiles/mcsm_core.dir/separator.cc.o" "gcc" "src/core/CMakeFiles/mcsm_core.dir/separator.cc.o.d"
  "/root/repo/src/core/sql_emitter.cc" "src/core/CMakeFiles/mcsm_core.dir/sql_emitter.cc.o" "gcc" "src/core/CMakeFiles/mcsm_core.dir/sql_emitter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mcsm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/mcsm_text.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/mcsm_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
