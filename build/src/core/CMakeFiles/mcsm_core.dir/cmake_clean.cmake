file(REMOVE_RECURSE
  "CMakeFiles/mcsm_core.dir/autotune.cc.o"
  "CMakeFiles/mcsm_core.dir/autotune.cc.o.d"
  "CMakeFiles/mcsm_core.dir/column_scorer.cc.o"
  "CMakeFiles/mcsm_core.dir/column_scorer.cc.o.d"
  "CMakeFiles/mcsm_core.dir/formula.cc.o"
  "CMakeFiles/mcsm_core.dir/formula.cc.o.d"
  "CMakeFiles/mcsm_core.dir/matcher.cc.o"
  "CMakeFiles/mcsm_core.dir/matcher.cc.o.d"
  "CMakeFiles/mcsm_core.dir/recipe.cc.o"
  "CMakeFiles/mcsm_core.dir/recipe.cc.o.d"
  "CMakeFiles/mcsm_core.dir/report.cc.o"
  "CMakeFiles/mcsm_core.dir/report.cc.o.d"
  "CMakeFiles/mcsm_core.dir/rule_merger.cc.o"
  "CMakeFiles/mcsm_core.dir/rule_merger.cc.o.d"
  "CMakeFiles/mcsm_core.dir/search.cc.o"
  "CMakeFiles/mcsm_core.dir/search.cc.o.d"
  "CMakeFiles/mcsm_core.dir/separator.cc.o"
  "CMakeFiles/mcsm_core.dir/separator.cc.o.d"
  "CMakeFiles/mcsm_core.dir/sql_emitter.cc.o"
  "CMakeFiles/mcsm_core.dir/sql_emitter.cc.o.d"
  "libmcsm_core.a"
  "libmcsm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
