file(REMOVE_RECURSE
  "libmcsm_core.a"
)
