# Empty dependencies file for mcsm_core.
# This may be replaced when dependencies are built.
