file(REMOVE_RECURSE
  "CMakeFiles/mcsm_datagen.dir/corpus.cc.o"
  "CMakeFiles/mcsm_datagen.dir/corpus.cc.o.d"
  "CMakeFiles/mcsm_datagen.dir/datasets.cc.o"
  "CMakeFiles/mcsm_datagen.dir/datasets.cc.o.d"
  "CMakeFiles/mcsm_datagen.dir/noise.cc.o"
  "CMakeFiles/mcsm_datagen.dir/noise.cc.o.d"
  "libmcsm_datagen.a"
  "libmcsm_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsm_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
