file(REMOVE_RECURSE
  "libmcsm_datagen.a"
)
