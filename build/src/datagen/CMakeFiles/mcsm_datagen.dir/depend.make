# Empty dependencies file for mcsm_datagen.
# This may be replaced when dependencies are built.
