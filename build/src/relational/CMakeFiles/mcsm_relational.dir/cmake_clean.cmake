file(REMOVE_RECURSE
  "CMakeFiles/mcsm_relational.dir/column_index.cc.o"
  "CMakeFiles/mcsm_relational.dir/column_index.cc.o.d"
  "CMakeFiles/mcsm_relational.dir/csv.cc.o"
  "CMakeFiles/mcsm_relational.dir/csv.cc.o.d"
  "CMakeFiles/mcsm_relational.dir/database.cc.o"
  "CMakeFiles/mcsm_relational.dir/database.cc.o.d"
  "CMakeFiles/mcsm_relational.dir/pattern.cc.o"
  "CMakeFiles/mcsm_relational.dir/pattern.cc.o.d"
  "CMakeFiles/mcsm_relational.dir/sampler.cc.o"
  "CMakeFiles/mcsm_relational.dir/sampler.cc.o.d"
  "CMakeFiles/mcsm_relational.dir/table.cc.o"
  "CMakeFiles/mcsm_relational.dir/table.cc.o.d"
  "CMakeFiles/mcsm_relational.dir/value.cc.o"
  "CMakeFiles/mcsm_relational.dir/value.cc.o.d"
  "libmcsm_relational.a"
  "libmcsm_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsm_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
