file(REMOVE_RECURSE
  "libmcsm_relational.a"
)
