# Empty dependencies file for mcsm_relational.
# This may be replaced when dependencies are built.
