file(REMOVE_RECURSE
  "CMakeFiles/mcsm_sql.dir/engine.cc.o"
  "CMakeFiles/mcsm_sql.dir/engine.cc.o.d"
  "CMakeFiles/mcsm_sql.dir/evaluator.cc.o"
  "CMakeFiles/mcsm_sql.dir/evaluator.cc.o.d"
  "CMakeFiles/mcsm_sql.dir/lexer.cc.o"
  "CMakeFiles/mcsm_sql.dir/lexer.cc.o.d"
  "CMakeFiles/mcsm_sql.dir/parser.cc.o"
  "CMakeFiles/mcsm_sql.dir/parser.cc.o.d"
  "libmcsm_sql.a"
  "libmcsm_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsm_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
