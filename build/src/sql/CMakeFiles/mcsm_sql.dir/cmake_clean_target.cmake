file(REMOVE_RECURSE
  "libmcsm_sql.a"
)
