# Empty compiler generated dependencies file for mcsm_sql.
# This may be replaced when dependencies are built.
