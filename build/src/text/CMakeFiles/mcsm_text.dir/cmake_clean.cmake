file(REMOVE_RECURSE
  "CMakeFiles/mcsm_text.dir/alignment.cc.o"
  "CMakeFiles/mcsm_text.dir/alignment.cc.o.d"
  "CMakeFiles/mcsm_text.dir/edit_distance.cc.o"
  "CMakeFiles/mcsm_text.dir/edit_distance.cc.o.d"
  "CMakeFiles/mcsm_text.dir/lcs.cc.o"
  "CMakeFiles/mcsm_text.dir/lcs.cc.o.d"
  "CMakeFiles/mcsm_text.dir/qgram.cc.o"
  "CMakeFiles/mcsm_text.dir/qgram.cc.o.d"
  "CMakeFiles/mcsm_text.dir/similarity.cc.o"
  "CMakeFiles/mcsm_text.dir/similarity.cc.o.d"
  "CMakeFiles/mcsm_text.dir/tfidf.cc.o"
  "CMakeFiles/mcsm_text.dir/tfidf.cc.o.d"
  "libmcsm_text.a"
  "libmcsm_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsm_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
