file(REMOVE_RECURSE
  "libmcsm_text.a"
)
