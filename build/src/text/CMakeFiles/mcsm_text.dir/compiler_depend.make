# Empty compiler generated dependencies file for mcsm_text.
# This may be replaced when dependencies are built.
