file(REMOVE_RECURSE
  "CMakeFiles/column_scorer_test.dir/column_scorer_test.cc.o"
  "CMakeFiles/column_scorer_test.dir/column_scorer_test.cc.o.d"
  "column_scorer_test"
  "column_scorer_test.pdb"
  "column_scorer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_scorer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
