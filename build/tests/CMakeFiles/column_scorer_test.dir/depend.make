# Empty dependencies file for column_scorer_test.
# This may be replaced when dependencies are built.
