file(REMOVE_RECURSE
  "CMakeFiles/recipe_test.dir/recipe_test.cc.o"
  "CMakeFiles/recipe_test.dir/recipe_test.cc.o.d"
  "recipe_test"
  "recipe_test.pdb"
  "recipe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recipe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
