# Empty compiler generated dependencies file for recipe_test.
# This may be replaced when dependencies are built.
