file(REMOVE_RECURSE
  "CMakeFiles/rule_merger_test.dir/rule_merger_test.cc.o"
  "CMakeFiles/rule_merger_test.dir/rule_merger_test.cc.o.d"
  "rule_merger_test"
  "rule_merger_test.pdb"
  "rule_merger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_merger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
