# Empty compiler generated dependencies file for rule_merger_test.
# This may be replaced when dependencies are built.
