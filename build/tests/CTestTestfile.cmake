# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/qgram_test[1]_include.cmake")
include("/root/repo/build/tests/tfidf_test[1]_include.cmake")
include("/root/repo/build/tests/edit_distance_test[1]_include.cmake")
include("/root/repo/build/tests/lcs_test[1]_include.cmake")
include("/root/repo/build/tests/alignment_test[1]_include.cmake")
include("/root/repo/build/tests/relational_test[1]_include.cmake")
include("/root/repo/build/tests/pattern_test[1]_include.cmake")
include("/root/repo/build/tests/column_index_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/formula_test[1]_include.cmake")
include("/root/repo/build/tests/recipe_test[1]_include.cmake")
include("/root/repo/build/tests/separator_test[1]_include.cmake")
include("/root/repo/build/tests/column_scorer_test[1]_include.cmake")
include("/root/repo/build/tests/sql_emitter_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/rule_merger_test[1]_include.cmake")
include("/root/repo/build/tests/autotune_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/property_search_test[1]_include.cmake")
include("/root/repo/build/tests/similarity_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
