// Section 4.4/4.5 as an application: discover how a citation string is
// assembled from a 17-column bibliographic table (year, title, 15 author
// columns), then attack the hard cross-corpus variant where under 0.5% of
// the records overlap — including a block with the first two authors
// swapped, which the search surfaces as its own translation.
#include <cstdio>

#include "core/matcher.h"
#include "datagen/datasets.h"

int main() {
  using namespace mcsm;

  // Part 1: single-corpus citation assembly with 1% samples.
  datagen::CitationOptions options;
  options.rows = 40000;
  datagen::Dataset data = datagen::MakeCitationDataset(options);
  std::printf("citation corpus: %zu records, %zu source columns\n",
              data.target.num_rows(), data.source.num_columns());

  core::SearchOptions search_options;
  search_options.sample_fraction = 0.01;
  auto d = core::DiscoverTranslation(data.source, data.target,
                                     data.target_column, search_options);
  if (!d.ok()) {
    std::printf("search failed: %s\n", d.status().ToString().c_str());
    return 1;
  }
  std::printf("formula: %s  (covers %zu rows)\n",
              d->formula().ToString(data.source.schema()).c_str(),
              d->coverage.matched_rows());

  // Part 2: cross-corpus linkage with a tiny, partly author-swapped overlap.
  datagen::CrossCitationOptions cross;
  cross.target_rows = 26000;
  cross.source_rows = 12000;
  cross.exact_overlap = 80;
  cross.swapped_overlap = 40;
  datagen::Dataset hard = datagen::MakeCrossCitationDataset(cross);
  std::printf("\ncross corpus: %zu vs %zu records, %zu + %zu overlapping\n",
              hard.source.num_rows(), hard.target.num_rows(),
              cross.exact_overlap, cross.swapped_overlap);

  core::SearchOptions cross_options;
  cross_options.sample_fraction = 0.10;
  cross_options.max_sample = 2500;
  auto rounds = core::DiscoverAllTranslations(hard.source, hard.target,
                                              hard.target_column,
                                              cross_options, 3, 5);
  if (!rounds.ok()) {
    std::printf("cross search failed: %s\n", rounds.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < rounds->size(); ++i) {
    const auto& r = (*rounds)[i];
    std::printf("round %zu: %-44s covers %zu rows\n", i + 1,
                r.formula().ToString(hard.source.schema()).c_str(),
                r.coverage.matched_rows());
  }
  std::printf("\n# one round links the exact-overlap block via author1, the\n"
              "# other finds the author-swapped block via author2 — the\n"
              "# \"previously unknown relationship\" of the paper's Section 4.5.\n");
  return 0;
}
