// The paper's motivating example (Section 1): translate dates between two
// undocumented formats — "2005/05/29" in database D to "05/29/2005" in D'.
// Separator detection finds the "/" template; the search then assembles the
// field permutation from substrings of the source column.
#include <cstdio>

#include "core/matcher.h"
#include "core/separator.h"
#include "datagen/datasets.h"

int main() {
  using namespace mcsm;

  datagen::DateFormatOptions options;
  options.rows = 8000;
  datagen::Dataset data = datagen::MakeDateFormatDataset(options);
  std::printf("source dates look like  %s\n",
              std::string(data.source.TextAt(0, 0)).c_str());
  std::printf("target dates look like  %s (unlinked, shuffled)\n",
              std::string(data.target.TextAt(0, 0)).c_str());

  // Show the separator template the detector infers on the target column.
  auto tmpl = core::SeparatorDetector::Detect(data.target, data.target_column);
  std::printf("separator template      %s\n",
              tmpl.has_value() ? tmpl->ToLikeString().c_str() : "(none)");

  core::SearchOptions search_options;
  search_options.detect_separators = true;
  auto d = core::DiscoverTranslation(data.source, data.target,
                                     data.target_column, search_options);
  if (!d.ok()) {
    std::printf("search failed: %s\n", d.status().ToString().c_str());
    return 1;
  }
  std::printf("discovered formula      %s\n",
              d->formula().ToString(data.source.schema()).c_str());
  std::printf("rows translated         %zu / %zu\n",
              d->coverage.matched_rows(), data.target.num_rows());
  std::printf("as SQL                  %s\n", d->sql.c_str());

  // Sanity: apply the formula to the first few rows.
  std::printf("\nfirst translations:\n");
  for (size_t row = 0; row < 5; ++row) {
    auto out = d->formula().Apply(data.source, row);
    std::printf("  %s  ->  %s\n",
                std::string(data.source.TextAt(row, 0)).c_str(),
                out.has_value() ? out->c_str() : "(not covered)");
  }
  return 0;
}
