// Command-line discovery over the user's own data:
//
//   discover_csv <source.csv> <target.csv> <target-column>
//                [--separators] [--fraction F] [--all]
//                [--permissive] [--deadline-ms N]
//                [--trace FILE] [--explain] [--emit-program FILE]
//
// Loads two CSV files (header row = column names, all columns TEXT), runs
// the multi-column substring search and prints the discovered translation
// formula, its coverage, and the equivalent SQL. With --all, runs the
// match-and-remove loop and reports every dominant formula plus the merged
// rule (Section 7). --permissive skips malformed CSV rows (reporting how
// many were dropped) instead of rejecting the file; --deadline-ms bounds the
// search wall-clock — on expiry the best partial formula found so far is
// printed, marked TRUNCATED. Ctrl-C during the search does the same thing:
// the SIGINT handler trips the run budget (one atomic CAS, async-signal-safe)
// and the search stops at its next check, printing the best partial formula
// instead of dying with nothing. --trace FILE writes one JSON trace event
// per line (JSONL) describing every scoring/voting/refinement decision;
// --explain prints a human-readable "why this formula won" report after the
// run. Both may be combined. --emit-program FILE compiles the discovered
// formula to VM bytecode (DESIGN.md §12), writes the wire form to FILE for
// later replay by `translate_csv --program FILE`, and prints the disassembly
// to stderr. Without arguments, writes a small demo pair of CSV files and
// runs on those.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/trace.h"
#include "core/explain.h"
#include "core/matcher.h"
#include "core/rule_merger.h"
#include "datagen/datasets.h"
#include "relational/csv.h"
#include "vm/compiler.h"

using namespace mcsm;

int RealMain(int argc, const char** argv);

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// SIGINT cancellation: the handler may only touch async-signal-safe state;
// RunBudget::Cancel() is a single atomic compare-and-swap, so tripping the
// search's budget from here is legal. The search then stops at its next
// cooperative budget check and returns the best partial formula, which the
// normal TRUNCATED path prints (budget axis: "cancelled").
RunBudget* g_interrupt_budget = nullptr;

void HandleInterrupt(int /*sig*/) {
  if (g_interrupt_budget != nullptr) g_interrupt_budget->Cancel();
}

int RunDemo() {
  std::printf("no arguments: writing demo CSVs and running on them\n");
  datagen::UserIdOptions options;
  options.rows = 1500;
  datagen::Dataset data = datagen::MakeUserIdDataset(options);
  Status st = relational::WriteCsvFile(data.source, "demo_people.csv");
  if (!st.ok()) return Fail(st);
  st = relational::WriteCsvFile(data.target, "demo_logins.csv");
  if (!st.ok()) return Fail(st);
  std::printf("wrote demo_people.csv and demo_logins.csv; now run e.g.\n"
              "  discover_csv demo_people.csv demo_logins.csv login --all\n\n");
  const char* argv[] = {"discover_csv", "demo_people.csv", "demo_logins.csv",
                        "login", "--all"};
  return RealMain(5, argv);
}

}  // namespace

int RealMain(int argc, const char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <source.csv> <target.csv> <target-column> "
                 "[--separators] [--fraction F] [--all] "
                 "[--permissive] [--deadline-ms N] "
                 "[--trace FILE] [--explain] [--emit-program FILE]\n",
                 argv[0]);
    return 2;
  }

  core::SearchOptions options;
  relational::CsvOptions csv_options;
  bool all = false;
  bool explain = false;
  const char* trace_path = nullptr;
  const char* emit_program_path = nullptr;
  // The deadline goes into a local BudgetLimits (not options.env.budget):
  // it feeds the shared RunBudget below, and Env::Validate rejects setting
  // both a shared budget and per-search limits.
  BudgetLimits deadline;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--separators") == 0) {
      options.detect_separators = true;
    } else if (std::strcmp(argv[i], "--fraction") == 0 && i + 1 < argc) {
      options.sample_fraction = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--all") == 0) {
      all = true;
    } else if (std::strcmp(argv[i], "--permissive") == 0) {
      csv_options.permissive = true;
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline.wall_ms = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(argv[i], "--emit-program") == 0 && i + 1 < argc) {
      emit_program_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  // Trace plumbing: --trace streams JSONL to a file; --explain captures
  // events in memory for the end-of-run report; both tee into one sink.
  std::unique_ptr<JsonlTraceSink> jsonl_sink;
  std::unique_ptr<InMemoryTraceSink> memory_sink;
  std::unique_ptr<TeeTraceSink> tee_sink;
  if (trace_path != nullptr) {
    auto opened = JsonlTraceSink::Open(trace_path);
    if (!opened.ok()) return Fail(opened.status());
    jsonl_sink = std::move(opened.value());
  }
  if (explain) memory_sink = std::make_unique<InMemoryTraceSink>();
  if (jsonl_sink != nullptr && memory_sink != nullptr) {
    tee_sink =
        std::make_unique<TeeTraceSink>(jsonl_sink.get(), memory_sink.get());
    options.env.trace = tee_sink.get();
  } else if (jsonl_sink != nullptr) {
    options.env.trace = jsonl_sink.get();
  } else if (memory_sink != nullptr) {
    options.env.trace = memory_sink.get();
  }

  auto report_drops = [](const char* path,
                         const relational::CsvReadReport& report) {
    if (report.rows_dropped == 0) return;
    std::printf("%s: dropped %zu malformed row(s), kept %zu\n", path,
                report.rows_dropped, report.rows_kept);
    for (const auto& example : report.first_errors) {
      std::printf("  e.g. %s\n", example.c_str());
    }
  };
  relational::CsvReadReport source_report, target_report;
  auto source = relational::ReadCsvFile(argv[1], csv_options, &source_report);
  if (!source.ok()) return Fail(source.status());
  report_drops(argv[1], source_report);
  auto target = relational::ReadCsvFile(argv[2], csv_options, &target_report);
  if (!target.ok()) return Fail(target.status());
  report_drops(argv[2], target_report);
  auto column = target->schema().FindColumn(argv[3]);
  if (!column.has_value()) {
    std::fprintf(stderr, "error: no column '%s' in %s\n", argv[3], argv[2]);
    return 2;
  }

  std::printf("source: %zu rows x %zu columns; target column '%s' (%zu rows)\n",
              source->num_rows(), source->num_columns(), argv[3],
              target->num_rows());

  core::SqlEmitter::Options sql_options;
  sql_options.source_table = "t1";

  // Route the deadline (if any) through a budget we also hand to the SIGINT
  // handler, so Ctrl-C and --deadline-ms share the truncated-partial path.
  RunBudget budget(deadline);
  options.env.shared_budget = &budget;
  g_interrupt_budget = &budget;
  std::signal(SIGINT, HandleInterrupt);
  struct InterruptScope {
    ~InterruptScope() {
      std::signal(SIGINT, SIG_DFL);
      g_interrupt_budget = nullptr;  // budget dies with this scope
    }
  } interrupt_scope;

  auto print_explain = [&memory_sink] {
    if (memory_sink == nullptr) return;
    std::printf("\n%s", core::ExplainText(memory_sink->CanonicalEvents())
                            .c_str());
  };

  // --emit-program: compile the formula to VM bytecode, write the wire form
  // for `translate_csv --program`, and show the disassembly on stderr.
  auto emit_program = [&](const core::TranslationFormula& formula) -> Status {
    if (emit_program_path == nullptr) return Status::OK();
    auto program = vm::CompileFormula(formula, source->schema());
    if (!program.ok()) return program.status();
    const std::string wire = program->Serialize();
    std::FILE* f = std::fopen(emit_program_path, "wb");
    if (f == nullptr) {
      return Status::Internal(std::string("cannot write ") +
                              emit_program_path);
    }
    const size_t written = std::fwrite(wire.data(), 1, wire.size(), f);
    std::fclose(f);
    if (written != wire.size()) {
      return Status::Internal(std::string("short write to ") +
                              emit_program_path);
    }
    std::printf("program : %zu wire bytes -> %s\n", wire.size(),
                emit_program_path);
    std::fprintf(stderr, "%s", program->Disassemble().c_str());
    return Status::OK();
  };

  if (!all) {
    auto d = core::DiscoverTranslation(*source, *target, *column, options,
                                       sql_options);
    if (!d.ok()) return Fail(d.status());
    if (d->truncated()) {
      std::printf("TRUNCATED: %s budget exhausted; best partial result:\n",
                  BudgetTripName(d->search.budget_trip));
    }
    std::printf("formula : %s\n",
                d->formula().ToString(source->schema()).c_str());
    std::printf("coverage: %zu / %zu rows\n", d->coverage.matched_rows(),
                target->num_rows());
    std::printf("sql     : %s\n", d->sql.c_str());
    Status emitted = emit_program(d->formula());
    if (!emitted.ok()) return Fail(emitted);
    print_explain();
    return 0;
  }

  auto rounds = core::DiscoverAllTranslations(*source, *target, *column,
                                              options, 4, 5);
  if (!rounds.ok()) return Fail(rounds.status());
  std::vector<core::TranslationFormula> formulas;
  for (size_t i = 0; i < rounds->size(); ++i) {
    const auto& d = (*rounds)[i];
    std::printf("formula %zu: %-44s covers %zu rows%s\n", i + 1,
                d.formula().ToString(source->schema()).c_str(),
                d.coverage.matched_rows(),
                d.truncated() ? "  [TRUNCATED]" : "");
    std::printf("  sql: %s\n", d.sql.c_str());
    if (d.truncated()) continue;  // partial formula: not mergeable
    formulas.push_back(d.formula());
  }
  if (emit_program_path != nullptr) {
    if (formulas.empty()) {
      std::fprintf(stderr,
                   "error: --emit-program: no complete formula discovered\n");
      return 1;
    }
    Status emitted = emit_program(formulas.front());  // the dominant formula
    if (!emitted.ok()) return Fail(emitted);
  }
  if (formulas.size() > 1) {
    for (const auto& rule : core::MergeRules(formulas)) {
      auto coverage = rule.ComputeCoverage(*source, *target, *column);
      std::printf("merged rule: %-40s covers %zu rows\n",
                  rule.ToString(source->schema()).c_str(),
                  coverage.matched_rows());
    }
  }
  print_explain();
  return 0;
}

int main(int argc, const char** argv) {
  if (argc == 1) return RunDemo();
  return RealMain(argc, argv);
}
