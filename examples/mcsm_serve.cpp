// The discovery service daemon:
//
//   mcsm_serve [--port N] [--port-file PATH] [--workers N]
//              [--job-workers N] [--max-queue N] [--cache-mb N]
//              [--degrade-at N] [--degrade-formula-cap N]
//              [--preload NAME=FILE.csv]...
//              [--route-to HOST:PORT,HOST:PORT,...]
//              [--health-interval-ms N]
//
// Serves the embedded HTTP API on 127.0.0.1 (see README "Serving"):
// register CSV tables, submit discovery jobs with a per-job deadline_ms,
// poll job state, scrape /metrics. --port 0 binds an ephemeral port;
// --port-file writes the bound port to PATH so scripts (the CI smoke test)
// can find it. --preload registers tables at startup without a client.
//
// --degrade-at arms the admission gate: past that queue depth, new jobs run
// with tightened work caps (--degrade-formula-cap) and return truncated-but-
// valid partials before the queue fills and the service sheds with 429.
//
// --route-to turns the process into a cluster router (see README
// "Clustering"): it owns no tables and runs no jobs, but forwards
// /v1/tables and /v1/jobs to the replica that owns them on a consistent-hash
// ring, health-checks members, and replays jobs on a healthy peer when their
// replica dies.
//
// SIGTERM/SIGINT drain gracefully: flip /v1/healthz to "draining" (so
// routers stop sending new work), finish queued + running jobs while still
// answering polls, then stop the listener and exit 0. A second signal exits
// immediately.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "common/string_util.h"
#include "service/cluster.h"
#include "service/http.h"
#include "service/service.h"

using namespace mcsm;

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int /*sig*/) {
  if (g_shutdown) _exit(130);  // second signal: hard exit
  g_shutdown = 1;
}

int Fail(const char* what, const Status& status) {
  std::fprintf(stderr, "error: %s: %s\n", what, status.ToString().c_str());
  return 1;
}

Result<std::string> SlurpFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  std::string out;
  char buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out.append(buffer, n);
  }
  std::fclose(f);
  return out;
}

int WritePortFile(const std::string& path, int port) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write --port-file %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "%d\n", port);
  std::fclose(f);
  return 0;
}

void InstallSignalHandlers() {
  struct sigaction action {};
  action.sa_handler = HandleSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

/// Router mode: forward to the member list instead of serving locally.
int RunRouter(int port, const std::string& port_file, size_t http_workers,
              const std::string& route_to, int health_interval_ms) {
  auto members = service::ParseMemberList(route_to);
  if (!members.ok()) return Fail("--route-to", members.status());

  service::HealthChecker::Options health_options;
  health_options.interval_ms = health_interval_ms;
  service::HealthChecker health(members.value(), health_options);
  // One synchronous sweep before accepting traffic so the first request
  // already routes around members that are down at boot.
  health.ProbeOnce();
  health.Start();

  service::ClusterRouter::Options router_options;
  service::ClusterRouter router(members.value(), &health, router_options);

  service::HttpServer::Options http_options;
  http_options.port = port;
  http_options.workers = http_workers;
  service::HttpServer server(
      http_options, [&router](const service::HttpRequest& request) {
        return router.Handle(request);
      });
  if (Status st = server.Start(); !st.ok()) return Fail("start", st);
  if (!port_file.empty()) {
    if (int rc = WritePortFile(port_file, server.port()); rc != 0) return rc;
  }

  InstallSignalHandlers();
  std::printf("mcsm_serve routing on 127.0.0.1:%d to %s "
              "(%zu http workers, health every %dms)\n",
              server.port(), route_to.c_str(), http_workers,
              health_interval_ms);
  std::fflush(stdout);

  while (!g_shutdown) {
    pause();  // signals wake us
  }

  std::printf("draining: stopping router...\n");
  std::fflush(stdout);
  server.Shutdown();
  health.Stop();
  std::printf("drained; bye\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 8080;
  std::string port_file;
  size_t http_workers = 4;
  std::string route_to;
  int health_interval_ms = 500;
  service::DiscoveryService::Options service_options;
  std::vector<std::pair<std::string, std::string>> preloads;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--port-file") == 0 && i + 1 < argc) {
      port_file = argv[++i];
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      http_workers = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--job-workers") == 0 && i + 1 < argc) {
      service_options.job_workers = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-queue") == 0 && i + 1 < argc) {
      service_options.max_queue = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--cache-mb") == 0 && i + 1 < argc) {
      service_options.cache_bytes =
          static_cast<size_t>(std::atol(argv[++i])) * 1024 * 1024;
    } else if (std::strcmp(argv[i], "--degrade-at") == 0 && i + 1 < argc) {
      service_options.degrade_at = static_cast<size_t>(std::atol(argv[++i]));
      if (service_options.degraded_limits.max_candidate_formulas == 0) {
        // A watermark without caps would be a no-op; default to a formula
        // cap that still yields a valid (truncated, deterministic) partial.
        service_options.degraded_limits.max_candidate_formulas = 256;
      }
    } else if (std::strcmp(argv[i], "--degrade-formula-cap") == 0 &&
               i + 1 < argc) {
      service_options.degraded_limits.max_candidate_formulas =
          static_cast<uint64_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--route-to") == 0 && i + 1 < argc) {
      route_to = argv[++i];
    } else if (std::strcmp(argv[i], "--health-interval-ms") == 0 &&
               i + 1 < argc) {
      health_interval_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--preload") == 0 && i + 1 < argc) {
      std::string spec = argv[++i];
      size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
        std::fprintf(stderr, "--preload wants NAME=FILE.csv, got '%s'\n",
                     spec.c_str());
        return 2;
      }
      preloads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--port-file PATH] [--workers N] "
                   "[--job-workers N] [--max-queue N] [--cache-mb N] "
                   "[--degrade-at N] [--degrade-formula-cap N] "
                   "[--preload NAME=FILE.csv]... "
                   "[--route-to HOST:PORT,...] [--health-interval-ms N]\n",
                   argv[0]);
      return 2;
    }
  }

  if (!route_to.empty()) {
    if (!preloads.empty()) {
      std::fprintf(stderr,
                   "--preload and --route-to are mutually exclusive: a "
                   "router owns no tables (POST them; the router forwards)\n");
      return 2;
    }
    return RunRouter(port, port_file, http_workers, route_to,
                     health_interval_ms);
  }

  service::DiscoveryService discovery(service_options);
  for (const auto& [name, path] : preloads) {
    auto csv = SlurpFile(path);
    if (!csv.ok()) return Fail("preload", csv.status());
    auto entry = discovery.registry().RegisterCsv(name, csv.value());
    if (!entry.ok()) return Fail(path.c_str(), entry.status());
    std::printf("preloaded '%s' from %s: %zu rows, %zu columns\n",
                name.c_str(), path.c_str(), entry.value().rows,
                entry.value().columns);
  }

  service::HttpServer::Options http_options;
  http_options.port = port;
  http_options.workers = http_workers;
  service::HttpServer server(
      http_options,
      [&discovery](const service::HttpRequest& request) {
        return discovery.Handle(request);
      });
  if (Status st = server.Start(); !st.ok()) return Fail("start", st);
  if (!port_file.empty()) {
    if (int rc = WritePortFile(port_file, server.port()); rc != 0) return rc;
  }

  InstallSignalHandlers();

  std::printf("mcsm_serve listening on 127.0.0.1:%d "
              "(%zu http workers, %zu job workers, queue %zu)\n",
              server.port(), http_workers, service_options.job_workers,
              service_options.max_queue);
  std::fflush(stdout);

  while (!g_shutdown) {
    pause();  // signals wake us
  }

  std::printf("draining: finishing jobs...\n");
  std::fflush(stdout);
  // Drain order matters for the cluster story: flip healthz to "draining"
  // FIRST and keep answering HTTP while jobs finish, so routers both stop
  // sending new work and can still poll in-flight jobs to completion. Only
  // then stop the listener.
  discovery.BeginDrain();     // /v1/healthz -> 503 {"status":"draining"}
  discovery.jobs().Drain();   // queued + running jobs reach a terminal state
  server.Shutdown();          // stop accepting, finish in-flight requests
  std::printf("drained; bye\n");
  return 0;
}
