// The discovery service daemon:
//
//   mcsm_serve [--port N] [--port-file PATH] [--workers N]
//              [--job-workers N] [--max-queue N] [--cache-mb N]
//              [--preload NAME=FILE.csv]...
//
// Serves the embedded HTTP API on 127.0.0.1 (see README "Serving"):
// register CSV tables, submit discovery jobs with a per-job deadline_ms,
// poll job state, scrape /metrics. --port 0 binds an ephemeral port;
// --port-file writes the bound port to PATH so scripts (the CI smoke test)
// can find it. --preload registers tables at startup without a client.
//
// SIGTERM/SIGINT drain gracefully: stop accepting, finish in-flight and
// queued jobs, then exit 0. A second signal exits immediately.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/string_util.h"
#include "service/http.h"
#include "service/service.h"

using namespace mcsm;

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int /*sig*/) {
  if (g_shutdown) _exit(130);  // second signal: hard exit
  g_shutdown = 1;
}

int Fail(const char* what, const Status& status) {
  std::fprintf(stderr, "error: %s: %s\n", what, status.ToString().c_str());
  return 1;
}

Result<std::string> SlurpFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  std::string out;
  char buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out.append(buffer, n);
  }
  std::fclose(f);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 8080;
  std::string port_file;
  size_t http_workers = 4;
  service::DiscoveryService::Options service_options;
  std::vector<std::pair<std::string, std::string>> preloads;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--port-file") == 0 && i + 1 < argc) {
      port_file = argv[++i];
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      http_workers = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--job-workers") == 0 && i + 1 < argc) {
      service_options.job_workers = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-queue") == 0 && i + 1 < argc) {
      service_options.max_queue = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--cache-mb") == 0 && i + 1 < argc) {
      service_options.cache_bytes =
          static_cast<size_t>(std::atol(argv[++i])) * 1024 * 1024;
    } else if (std::strcmp(argv[i], "--preload") == 0 && i + 1 < argc) {
      std::string spec = argv[++i];
      size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
        std::fprintf(stderr, "--preload wants NAME=FILE.csv, got '%s'\n",
                     spec.c_str());
        return 2;
      }
      preloads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--port-file PATH] [--workers N] "
                   "[--job-workers N] [--max-queue N] [--cache-mb N] "
                   "[--preload NAME=FILE.csv]...\n",
                   argv[0]);
      return 2;
    }
  }

  service::DiscoveryService discovery(service_options);
  for (const auto& [name, path] : preloads) {
    auto csv = SlurpFile(path);
    if (!csv.ok()) return Fail("preload", csv.status());
    auto entry = discovery.registry().RegisterCsv(name, csv.value());
    if (!entry.ok()) return Fail(path.c_str(), entry.status());
    std::printf("preloaded '%s' from %s: %zu rows, %zu columns\n",
                name.c_str(), path.c_str(), entry.value().rows,
                entry.value().columns);
  }

  service::HttpServer::Options http_options;
  http_options.port = port;
  http_options.workers = http_workers;
  service::HttpServer server(
      http_options,
      [&discovery](const service::HttpRequest& request) {
        return discovery.Handle(request);
      });
  if (Status st = server.Start(); !st.ok()) return Fail("start", st);

  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --port-file %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%d\n", server.port());
    std::fclose(f);
  }

  struct sigaction action {};
  action.sa_handler = HandleSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  std::printf("mcsm_serve listening on 127.0.0.1:%d "
              "(%zu http workers, %zu job workers, queue %zu)\n",
              server.port(), http_workers, service_options.job_workers,
              service_options.max_queue);
  std::fflush(stdout);

  while (!g_shutdown) {
    pause();  // signals wake us
  }

  std::printf("draining: stopping listener, finishing jobs...\n");
  std::fflush(stdout);
  server.Shutdown();          // stop accepting, finish in-flight requests
  discovery.jobs().Drain();   // queued + running jobs reach a terminal state
  std::printf("drained; bye\n");
  return 0;
}
