// Quickstart: discover a multi-column substring translation on the paper's
// Table 1 scenario — unlinked login names vs a table of first/middle/last
// names — then emit and execute the translating SQL.
#include <cstdio>

#include "core/matcher.h"
#include "datagen/datasets.h"
#include "relational/database.h"
#include "sql/engine.h"

int main() {
  using namespace mcsm;

  // 1. Generate the Section 4.1 scenario: ~6,000 people and their login
  //    names in random order, with no row linkage between the tables. Noise
  //    columns (random text, timestamps, numbers, addresses) are included so
  //    the column match is not trivial.
  datagen::UserIdOptions data_options;
  data_options.rows = 2000;  // keep the quickstart snappy
  datagen::Dataset data = datagen::MakeUserIdDataset(data_options);
  std::printf("source: %zu rows x %zu columns; target: %zu rows\n",
              data.source.num_rows(), data.source.num_columns(),
              data.target.num_rows());

  // 2. Run the search.
  core::SearchOptions options;  // paper defaults: bi-grams, 10% samples
  auto discovered = core::DiscoverTranslation(data.source, data.target,
                                              data.target_column, options);
  if (!discovered.ok()) {
    std::printf("search failed: %s\n", discovered.status().ToString().c_str());
    return 1;
  }

  const auto& d = *discovered;
  std::printf("formula:  %s\n",
              d.formula().ToString(data.source.schema()).c_str());
  std::printf("coverage: %zu of %zu target rows\n",
              d.coverage.matched_rows(), data.target.num_rows());
  std::printf("sql:      %s\n", d.sql.c_str());

  // 3. Execute the emitted SQL in the embedded engine to translate for real.
  relational::Database db;
  Status st = db.CreateTable("t1", data.source);
  if (!st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return 1;
  }
  sql::Engine engine(&db);
  auto result = engine.Execute(d.sql + " limit 5");
  if (!result.ok()) {
    std::printf("sql failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("first translated rows:\n%s", result->ToString().c_str());
  return 0;
}
