// A tiny interactive shell over the embedded SQL engine — the substrate the
// matcher runs against. Preloads the UserID experiment tables (t1 = people,
// t2 = logins) so discovered translation queries can be tried by hand:
//
//   mcsm> select substring(first from 1 for 1) || last as login from t1
//         where first is not null and last is not null limit 5
//
// Reads one statement per line; empty line or EOF quits.
#include <cstdio>
#include <iostream>
#include <string>

#include "datagen/datasets.h"
#include "relational/database.h"
#include "sql/engine.h"

int main() {
  using namespace mcsm;

  relational::Database db;
  datagen::UserIdOptions options;
  options.rows = 2000;
  datagen::Dataset data = datagen::MakeUserIdDataset(options);
  if (!db.CreateTable("t1", std::move(data.source)).ok() ||
      !db.CreateTable("t2", std::move(data.target)).ok()) {
    std::printf("failed to set up tables\n");
    return 1;
  }
  sql::Engine engine(&db);

  std::printf("mcsm SQL shell — tables: t1 (people + noise), t2 (logins)\n");
  std::printf("one statement per line; empty line quits.\n");
  std::string line;
  while (true) {
    std::printf("mcsm> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line) || line.empty()) break;
    auto result = engine.Execute(line);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (result->num_columns() == 0) {
      std::printf("ok\n");
    } else {
      std::printf("%s", result->ToString(25).c_str());
    }
  }
  return 0;
}
