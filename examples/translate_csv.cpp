// Bulk translation: apply a discovered formula to every row of a CSV at
// columnar-batch speed (ROADMAP item 4, DESIGN.md §12).
//
//   translate_csv <source.csv> <target.csv> <target-column>
//                 [--emit-program FILE] [--via-sql] [...common flags]
//   translate_csv <source.csv> --program FILE [...common flags]
//
//   common flags: [--output FILE] [--threads N] [--batch N]
//                 [--deadline-ms N] [--max-rows N] [--permissive]
//
// The first form discovers the translation (like discover_csv), compiles it
// to VM bytecode and runs the bytecode over the whole source table; the
// second form replays a program saved earlier with --emit-program (or
// discover_csv --emit-program), skipping discovery entirely. The output CSV
// has one `translated` column holding the covered rows' values in source-row
// order — byte-identical to running the emitted SQL through the embedded
// engine, which `--via-sql` does instead of the VM (same output file format)
// so CI can diff the two paths. --deadline-ms / --max-rows bound the run via
// the shared RunBudget (Ctrl-C trips the same budget); on expiry the
// processed prefix is written and the run reports TRUNCATED. Throughput is
// reported in rows/sec. Without arguments, writes a small demo pair of CSV
// files and translates those.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/matcher.h"
#include "datagen/datasets.h"
#include "relational/csv.h"
#include "relational/database.h"
#include "sql/engine.h"
#include "vm/compiler.h"
#include "vm/executor.h"

using namespace mcsm;

int RealMain(int argc, const char** argv);

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Same SIGINT idiom as discover_csv: the handler trips the run budget (one
// async-signal-safe atomic CAS); discovery and the VM both stop at their
// next cooperative check and the processed prefix is written out.
RunBudget* g_interrupt_budget = nullptr;

void HandleInterrupt(int /*sig*/) {
  if (g_interrupt_budget != nullptr) g_interrupt_budget->Cancel();
}

Status SlurpFile(const char* path, std::string* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    return Status::NotFound(std::string("cannot open ") + path);
  }
  char buf[1 << 14];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return Status::OK();
}

Status DumpFile(const char* path, std::string_view bytes) {
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr) {
    return Status::Internal(std::string("cannot write ") + path);
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) {
    return Status::Internal(std::string("short write to ") + path);
  }
  return Status::OK();
}

/// Writes the single-column output CSV shared by the VM and SQL paths.
Status WriteTranslatedCsv(const std::vector<std::string_view>& values,
                          const std::string& path) {
  relational::Table out = relational::Table::WithTextColumns({"translated"});
  for (std::string_view v : values) {
    MCSM_RETURN_IF_ERROR(out.AppendTextRow({std::string(v)}));
  }
  return relational::WriteCsvFile(out, path);
}

int RunDemo() {
  std::printf("no arguments: writing demo CSVs and translating them\n");
  datagen::UserIdOptions options;
  options.rows = 1500;
  datagen::Dataset data = datagen::MakeUserIdDataset(options);
  Status st = relational::WriteCsvFile(data.source, "demo_people.csv");
  if (!st.ok()) return Fail(st);
  st = relational::WriteCsvFile(data.target, "demo_logins.csv");
  if (!st.ok()) return Fail(st);
  std::printf("wrote demo_people.csv and demo_logins.csv; now run e.g.\n"
              "  translate_csv demo_people.csv demo_logins.csv login\n\n");
  const char* argv[] = {"translate_csv", "demo_people.csv", "demo_logins.csv",
                        "login"};
  return RealMain(4, argv);
}

}  // namespace

int RealMain(int argc, const char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <source.csv> <target.csv> <target-column>\n"
                 "          [--emit-program FILE] [--via-sql]\n"
                 "       %s <source.csv> --program FILE\n"
                 "  common: [--output FILE] [--threads N] [--batch N]\n"
                 "          [--deadline-ms N] [--max-rows N] [--permissive]\n",
                 argv[0], argv[0]);
    return 2;
  }

  const char* source_path = argv[1];
  const char* target_path = nullptr;
  const char* target_column = nullptr;
  const char* program_path = nullptr;
  const char* emit_program_path = nullptr;
  std::string output_path = "translated.csv";
  bool via_sql = false;
  core::SearchOptions options;
  relational::CsvOptions csv_options;
  vm::TranslateOptions translate_options;
  BudgetLimits limits;
  int i = 2;
  if (i < argc && argv[i][0] != '-') target_path = argv[i++];
  if (i < argc && argv[i][0] != '-') target_column = argv[i++];
  for (; i < argc; ++i) {
    if (std::strcmp(argv[i], "--program") == 0 && i + 1 < argc) {
      program_path = argv[++i];
    } else if (std::strcmp(argv[i], "--emit-program") == 0 && i + 1 < argc) {
      emit_program_path = argv[++i];
    } else if (std::strcmp(argv[i], "--via-sql") == 0) {
      via_sql = true;
    } else if (std::strcmp(argv[i], "--output") == 0 && i + 1 < argc) {
      output_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      translate_options.num_threads =
          static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      translate_options.batch_rows = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      limits.wall_ms = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-rows") == 0 && i + 1 < argc) {
      limits.max_rows_translated =
          static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--permissive") == 0) {
      csv_options.permissive = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  const bool discovery_mode = program_path == nullptr;
  if (discovery_mode && (target_path == nullptr || target_column == nullptr)) {
    std::fprintf(stderr,
                 "error: need <target.csv> <target-column> (or --program)\n");
    return 2;
  }
  if (!discovery_mode && via_sql) {
    std::fprintf(stderr,
                 "error: --via-sql needs the discovered formula; it cannot "
                 "be combined with --program\n");
    return 2;
  }

  auto source = relational::ReadCsvFile(source_path, csv_options);
  if (!source.ok()) return Fail(source.status());

  RunBudget budget(limits);
  g_interrupt_budget = &budget;
  std::signal(SIGINT, HandleInterrupt);
  struct InterruptScope {
    ~InterruptScope() {
      std::signal(SIGINT, SIG_DFL);
      g_interrupt_budget = nullptr;  // budget dies with this scope
    }
  } interrupt_scope;

  // Obtain the program: replay a saved one, or discover + compile.
  vm::Program program;
  std::string sql;
  if (!discovery_mode) {
    std::string wire;
    Status st = SlurpFile(program_path, &wire);
    if (!st.ok()) return Fail(st);
    auto decoded = vm::Program::Deserialize(wire);
    if (!decoded.ok()) return Fail(decoded.status());
    program = std::move(decoded.value());
    std::printf("program : %s (%zu wire bytes)\n", program_path, wire.size());
  } else {
    auto target = relational::ReadCsvFile(target_path, csv_options);
    if (!target.ok()) return Fail(target.status());
    auto column = target->schema().FindColumn(target_column);
    if (!column.has_value()) {
      std::fprintf(stderr, "error: no column '%s' in %s\n", target_column,
                   target_path);
      return 2;
    }
    options.env.shared_budget = &budget;
    core::SqlEmitter::Options sql_options;
    sql_options.source_table = "t1";
    auto d = core::DiscoverTranslation(*source, *target, *column, options,
                                       sql_options);
    if (!d.ok()) return Fail(d.status());
    if (d->truncated()) {
      std::fprintf(stderr,
                   "error: discovery truncated (%s budget exhausted) before "
                   "a complete formula; raise --deadline-ms\n",
                   BudgetTripName(d->search.budget_trip));
      return 1;
    }
    std::printf("formula : %s\n",
                d->formula().ToString(source->schema()).c_str());
    sql = d->sql;
    auto compiled = vm::CompileFormula(d->formula(), source->schema());
    if (!compiled.ok()) return Fail(compiled.status());
    program = std::move(compiled.value());
    if (emit_program_path != nullptr) {
      Status st = DumpFile(emit_program_path, program.Serialize());
      if (!st.ok()) return Fail(st);
      std::printf("program : saved to %s\n", emit_program_path);
      std::fprintf(stderr, "%s", program.Disassemble().c_str());
    }
  }

  // Translate and write the output CSV. Only this phase is timed: the
  // rows/sec figure is the VM's (or SQL engine's), not the CSV parser's.
  size_t rows_in = source->num_rows();
  size_t rows_out = 0;
  double seconds = 0;
  if (via_sql) {
    relational::Database db;
    Status st = db.CreateTable("t1", *std::move(source));
    if (!st.ok()) return Fail(st);
    sql::Engine engine(&db);
    WallTimer timer;
    auto rs = engine.Execute(sql);
    seconds = timer.Seconds();
    if (!rs.ok()) return Fail(rs.status());
    std::vector<std::string_view> values;
    values.reserve(rs->rows.size());
    for (const auto& row : rs->rows) values.push_back(row[0].text());
    rows_out = values.size();
    st = WriteTranslatedCsv(values, output_path);
    if (!st.ok()) return Fail(st);
  } else {
    translate_options.budget = &budget;
    WallTimer timer;
    auto result = vm::Translate(program, *source, translate_options);
    seconds = timer.Seconds();
    if (!result.ok()) return Fail(result.status());
    if (result->truncated) {
      std::printf("TRUNCATED: %s budget exhausted after %zu / %zu rows\n",
                  BudgetTripName(result->budget_trip), result->rows_processed,
                  rows_in);
      rows_in = result->rows_processed;
    }
    std::vector<std::string_view> values;
    values.reserve(result->output_rows());
    for (size_t v = 0; v < result->output_rows(); ++v) {
      values.push_back(result->value(v));
    }
    rows_out = values.size();
    Status st = WriteTranslatedCsv(values, output_path);
    if (!st.ok()) return Fail(st);
  }

  const double rows_per_sec = seconds > 0 ? rows_in / seconds : 0;
  std::printf("%s: %zu rows in -> %zu translated in %.1f ms (%.0f rows/sec, "
              "%s path, %zu threads)\n",
              output_path.c_str(), rows_in, rows_out, seconds * 1e3,
              rows_per_sec, via_sql ? "sql" : "vm",
              via_sql ? 1 : translate_options.num_threads);
  return 0;
}

int main(int argc, const char** argv) {
  if (argc == 1) return RunDemo();
  return RealMain(argc, argv);
}
