// Section 4.1 walk-through as an application: discover every dominant login
// translation with the match-and-remove loop, print the evidence the search
// gathered (per-iteration columns and supports), and emit SQL for each.
#include <cstdio>

#include "core/matcher.h"
#include "datagen/datasets.h"

int main() {
  using namespace mcsm;

  datagen::UserIdOptions options;
  options.rows = 6000;
  datagen::Dataset data = datagen::MakeUserIdDataset(options);
  std::printf("unlinked tables: %zu people vs %zu logins\n",
              data.source.num_rows(), data.target.num_rows());

  auto all = core::DiscoverAllTranslations(data.source, data.target,
                                           data.target_column, {}, 4, 50);
  if (!all.ok()) {
    std::printf("search failed: %s\n", all.status().ToString().c_str());
    return 1;
  }
  for (size_t round = 0; round < all->size(); ++round) {
    const auto& d = (*all)[round];
    std::printf("\n=== translation %zu ===\n", round + 1);
    std::printf("formula : %s\n",
                d.formula().ToString(data.source.schema()).c_str());
    std::printf("covers  : %zu rows\n", d.coverage.matched_rows());
    std::printf("started : column %s\n",
                data.source.schema().column(d.search.start_column).name.c_str());
    for (const auto& it : d.search.iterations) {
      if (it.chosen_column == static_cast<size_t>(-1)) {
        std::printf("  iteration: no candidate added information (stop)\n");
      } else {
        std::printf("  iteration: +column %-8s -> %-40s (support %zu)\n",
                    data.source.schema().column(it.chosen_column).name.c_str(),
                    it.formula.c_str(), it.support);
      }
    }
    std::printf("sql     : %s\n", d.sql.c_str());
  }
  return 0;
}
