// Fuzz harness for the alignment → recipe pipeline (the paper's Algorithms
// 4-6): LIKE-pattern capture, masked LCS anchoring, edit-script completion,
// and formula construction. Besides "no crash / no UB", it checks two
// algorithmic invariants on every input:
//   - HuntSzymanskiLcs and HirschbergLcs both recover a subsequence of the
//     exact LCS length computed by the DP row;
//   - every matched run produced by AlignLcsAnchored stays inside both
//     strings and copies identical characters.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "core/formula.h"
#include "core/recipe.h"
#include "relational/pattern.h"
#include "text/alignment.h"
#include "text/lcs.h"

namespace {

// Splits the input into (source, target, like-pattern) on 0xFF separators,
// with caps that keep the O(n*m) DP and the pattern backtracking cheap.
struct Parts {
  std::string source;
  std::string target;
  std::string pattern;
};

Parts SplitInput(std::string_view input) {
  Parts parts;
  std::string* fields[3] = {&parts.source, &parts.target, &parts.pattern};
  size_t field = 0;
  for (char c : input) {
    if (static_cast<unsigned char>(c) == 0xFF) {
      if (++field == 3) break;
      continue;
    }
    fields[field]->push_back(c);
  }
  if (parts.source.size() > 192) parts.source.resize(192);
  if (parts.target.size() > 192) parts.target.resize(192);
  if (parts.pattern.size() > 12) parts.pattern.resize(12);
  // Bound the wildcard count: SearchPattern::TryMatch backtracks per
  // wildcard-literal pair, which is exponential in the number of pairs.
  size_t wildcards = 0;
  for (char& c : parts.pattern) {
    if (c == '%' && ++wildcards > 4) c = '_';
  }
  return parts;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 4096) return 0;
  const Parts parts =
      SplitInput(std::string_view(reinterpret_cast<const char*>(data), size));
  const std::string_view source = parts.source;
  const std::string_view target = parts.target;

  // LCS invariant: both subsequence reconstructions hit the DP length.
  const size_t lcs_len = mcsm::text::LcsLength(source, target);
  const auto hs = mcsm::text::HuntSzymanskiLcs(source, target);
  const auto hb = mcsm::text::HirschbergLcs(source, target);
  MCSM_CHECK(hs.size() == lcs_len)
      << "HuntSzymanski found " << hs.size() << ", DP says " << lcs_len;
  MCSM_CHECK(hb.size() == lcs_len)
      << "Hirschberg found " << hb.size() << ", DP says " << lcs_len;

  // LIKE capture → free mask → masked alignment, as in Algorithm 6.
  const mcsm::relational::SearchPattern like =
      mcsm::relational::SearchPattern::FromLikeString(parts.pattern);
  (void)mcsm::relational::LikeMatch(target, parts.pattern);
  std::vector<bool> mask;
  const std::vector<bool>* mask_ptr = nullptr;
  auto captured = like.FreeMask(target);
  if (captured.has_value()) {
    mask = std::move(*captured);
    mask_ptr = &mask;
  }

  const mcsm::text::RecipeAlignment alignment =
      mcsm::text::AlignLcsAnchored(source, target, mask_ptr);
  for (const auto& run : alignment.runs) {
    MCSM_CHECK(run.length > 0);
    MCSM_CHECK(run.source_start + run.length <= source.size());
    MCSM_CHECK(run.target_start + run.length <= target.size());
    MCSM_CHECK(mcsm::SafeSubstr(source, run.source_start, run.length) ==
               mcsm::SafeSubstr(target, run.target_start, run.length))
        << "matched run copies different characters";
  }

  // Recipe → formulas. Fixed regions come from the captured literals, as in
  // TranslationSearch; without a capture the coverage is all-free.
  mcsm::core::FixedCoverage fixed;
  fixed.cover.assign(target.size(), -1);
  if (mask_ptr != nullptr) {
    auto spans = like.CaptureLiterals(target);
    if (spans.has_value()) {
      std::vector<mcsm::core::Region> literal_regions;
      for (const auto& seg : like.segments()) {
        if (!seg.is_wildcard) {
          literal_regions.push_back(mcsm::core::Region::Literal(seg.literal));
        }
      }
      auto built = mcsm::core::FixedCoverage::FromCapture(
          target.size(), *spans, std::move(literal_regions));
      MCSM_CHECK(built.ok()) << "capture spans from our own match must fit: "
                             << built.status().ToString();
      fixed = std::move(built).value();
    }
  }

  const auto formulas_or = mcsm::core::BuildFormulasFromRecipe(
      target, fixed, alignment, /*key_column=*/0, source.size(),
      /*max_variants=*/16, /*sized_unknowns=*/(size & 1) != 0);
  // The coverage above is built against `target` itself, so it is always
  // self-consistent; an error status here would be a harness bug.
  MCSM_CHECK(formulas_or.ok()) << formulas_or.status().ToString();
  for (const auto& formula : *formulas_or) {
    (void)formula.ToString();
    (void)formula.UnknownCount();
    (void)formula.KnownFixedChars();
    (void)formula.ReferencedColumns();
  }
  return 0;
}
