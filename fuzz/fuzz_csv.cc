// Fuzz harness for the CSV reader (relational/csv.h): arbitrary bytes must
// either parse into a table or come back as an error Status — never crash,
// leak, or read out of bounds. Parsed tables additionally round-trip through
// WriteCsv/ReadCsv with the column count preserved, and every input is also
// fed through permissive mode, whose kept/dropped accounting must stay
// consistent with the produced table.
//
// The harness is failpoint-aware: CI runs it once more with
// MCSM_FAILPOINTS="csv.read=error@5" armed (see fuzz/CMakeLists.txt), which
// interleaves injected I/O faults with real parses. Consistency checks that
// compare two reads of the same input are skipped in that mode — with a
// stride the two reads see different injection phases.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/check.h"
#include "common/failpoint.h"
#include "relational/csv.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (64u << 10)) return 0;  // keep iterations fast
  std::string_view text(reinterpret_cast<const char*>(data), size);

  // The first byte picks the dialect so mutations explore both option axes.
  mcsm::relational::CsvOptions options;
  if (!text.empty()) {
    options.delimiter = (text[0] & 1) ? ',' : ';';
    options.empty_as_null = (text[0] & 2) != 0;
    text.remove_prefix(1);
  }
  const bool injecting = mcsm::failpoint::Enabled();

  auto parsed = mcsm::relational::ReadCsv(text, options);

  // Permissive mode must accept at least everything strict mode accepts, and
  // its report must account for exactly the rows that landed in the table.
  mcsm::relational::CsvOptions permissive = options;
  permissive.permissive = true;
  mcsm::relational::CsvReadReport report;
  auto lenient = mcsm::relational::ReadCsv(text, permissive, &report);
  if (lenient.ok()) {
    MCSM_CHECK(report.rows_kept == lenient->num_rows())
        << report.rows_kept << " kept vs " << lenient->num_rows() << " rows";
    MCSM_CHECK(report.first_errors.size() <=
               mcsm::relational::CsvReadReport::kMaxErrorExamples);
    if (report.rows_dropped == 0) {
      MCSM_CHECK(report.first_errors.empty());
    }
  }
  if (!injecting && parsed.ok()) {
    // Strict success means no malformed rows existed: permissive mode must
    // agree row-for-row and drop nothing.
    MCSM_CHECK(lenient.ok()) << lenient.status().ToString();
    MCSM_CHECK(report.rows_dropped == 0);
    MCSM_CHECK(lenient->num_rows() == parsed->num_rows());
  }

  if (!parsed.ok()) return 0;

  // Round-trip: whatever ReadCsv accepted, WriteCsv must serialize into
  // something ReadCsv accepts again, with the schema width intact. (Values
  // are not compared: empty-vs-NULL intentionally normalizes.) Skipped under
  // injection: the reparse may legitimately hit an armed fault.
  if (!injecting) {
    const std::string serialized =
        mcsm::relational::WriteCsv(*parsed, options);
    auto reparsed = mcsm::relational::ReadCsv(serialized, options);
    MCSM_CHECK(reparsed.ok()) << "WriteCsv output rejected by ReadCsv: "
                              << reparsed.status().ToString();
    MCSM_CHECK(reparsed->schema().num_columns() ==
               parsed->schema().num_columns());
  }
  return 0;
}
