// Fuzz harness for the CSV reader (relational/csv.h): arbitrary bytes must
// either parse into a table or come back as an error Status — never crash,
// leak, or read out of bounds. Parsed tables additionally round-trip through
// WriteCsv/ReadCsv with the column count preserved.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/check.h"
#include "relational/csv.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (64u << 10)) return 0;  // keep iterations fast
  std::string_view text(reinterpret_cast<const char*>(data), size);

  // The first byte picks the dialect so mutations explore both option axes.
  mcsm::relational::CsvOptions options;
  if (!text.empty()) {
    options.delimiter = (text[0] & 1) ? ',' : ';';
    options.empty_as_null = (text[0] & 2) != 0;
    text.remove_prefix(1);
  }

  auto parsed = mcsm::relational::ReadCsv(text, options);
  if (!parsed.ok()) return 0;

  // Round-trip: whatever ReadCsv accepted, WriteCsv must serialize into
  // something ReadCsv accepts again, with the schema width intact. (Values
  // are not compared: empty-vs-NULL intentionally normalizes.)
  const std::string serialized = mcsm::relational::WriteCsv(*parsed, options);
  auto reparsed = mcsm::relational::ReadCsv(serialized, options);
  MCSM_CHECK(reparsed.ok()) << "WriteCsv output rejected by ReadCsv: "
                            << reparsed.status().ToString();
  MCSM_CHECK(reparsed->schema().num_columns() == parsed->schema().num_columns());
  return 0;
}
