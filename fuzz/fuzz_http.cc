// Fuzz harness for the service's HTTP request parser and JSON codec
// (service/http.h, service/json.h): arbitrary bytes must either parse or
// come back as an error Status — never crash, hang, or read out of bounds.
// A successfully parsed request re-serializes its invariants (method
// uppercase, path absolute, body within limits); successfully parsed JSON
// must survive a Dump/Parse round trip.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/check.h"
#include "service/http.h"
#include "service/json.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (64u << 10)) return 0;  // keep iterations fast
  std::string_view bytes(reinterpret_cast<const char*>(data), size);

  // --- HTTP request parsing -----------------------------------------------
  mcsm::service::HttpLimits limits;
  limits.max_head_bytes = 8 * 1024;
  limits.max_body_bytes = 32 * 1024;
  size_t head_end = mcsm::service::FindHeadEnd(bytes);
  MCSM_CHECK(head_end <= bytes.size());
  if (head_end > 0) {
    auto request =
        mcsm::service::ParseHttpRequest(bytes, head_end, limits);
    if (request.ok()) {
      MCSM_CHECK(!request->method.empty());
      for (char c : request->method) {
        MCSM_CHECK(c >= 'A' && c <= 'Z');
      }
      MCSM_CHECK(!request->path.empty() && request->path[0] == '/');
      MCSM_CHECK(request->headers.size() <= limits.max_headers);
      MCSM_CHECK(request->body.size() <= limits.max_body_bytes);
      // A parsed request always re-serializes into a response-sized echo
      // without tripping anything.
      mcsm::service::HttpResponse response;
      response.body = request->body;
      std::string wire = mcsm::service::SerializeResponse(response);
      MCSM_CHECK(wire.size() >= request->body.size());
    }
  }

  // --- JSON round trip ----------------------------------------------------
  auto json = mcsm::service::Json::Parse(bytes);
  if (json.ok()) {
    std::string dumped = json->Dump();
    auto reparsed = mcsm::service::Json::Parse(dumped);
    MCSM_CHECK(reparsed.ok()) << "dump not reparseable: " << dumped;
    MCSM_CHECK(reparsed->Dump() == dumped) << "round trip unstable";
  }
  return 0;
}
