// Fuzz harness for the block-compressed posting layer (DESIGN.md §11).
// Two phases per input:
//   1. Adversarial decode: the first 16 bytes are reinterpreted as a
//      PostingBlockMeta and the rest as the arena; DecodePostingBlock must
//      either reject the meta or decode without reading out of bounds (ASan
//      is the oracle — offsets/counts/widths are attacker-controlled).
//   2. Construction round-trip: the same bytes are read as (delta, tf)
//      pairs to build a well-formed list; Build → Decode must reproduce it
//      exactly, and Intersect must agree with a naive reference.

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "relational/postings.h"

namespace {

using mcsm::relational::DecodePostingBlock;
using mcsm::relational::kPostingBlockSize;
using mcsm::relational::Posting;
using mcsm::relational::PostingBlockMeta;
using mcsm::relational::PostingStore;

void AdversarialDecode(const uint8_t* data, size_t size) {
  if (size < sizeof(PostingBlockMeta)) return;
  PostingBlockMeta meta;
  std::memcpy(&meta, data, sizeof(meta));
  const uint8_t* arena = data + sizeof(meta);
  const size_t arena_size = size - sizeof(meta);
  uint32_t rows[kPostingBlockSize];
  uint32_t tfs[kPostingBlockSize];
  // Both with and without the tf stream; a rejected meta must be rejected
  // identically on both calls (it never depends on the tfs pointer).
  const bool with_tfs = DecodePostingBlock(meta, arena, arena_size, rows, tfs);
  const bool without = DecodePostingBlock(meta, arena, arena_size, rows,
                                          nullptr);
  MCSM_CHECK(with_tfs == without);
}

void RoundTrip(const uint8_t* data, size_t size) {
  // Read (delta, tf) byte pairs into an ascending list; +1 keeps rows
  // strictly ascending and tfs positive, as the encoder requires.
  std::vector<Posting> list;
  uint32_t row = data[0];
  for (size_t i = 1; i + 1 < size; i += 2) {
    row += static_cast<uint32_t>(data[i]) + 1;
    // An occasional wide gap / tf exercises the 2- and 4-byte widths.
    const uint32_t tf = data[i + 1] == 0xFF
                            ? 0x12345u
                            : static_cast<uint32_t>(data[i + 1]) + 1;
    if (data[i] == 0xFE) row += 0x20000u;
    list.push_back({row, tf});
  }
  std::vector<std::vector<Posting>> lists;
  lists.push_back(list);
  PostingStore store = PostingStore::Build(std::move(lists));
  MCSM_CHECK(store.Count(0) == list.size());

  std::vector<uint32_t> rows;
  std::vector<uint32_t> tfs;
  MCSM_CHECK(store.Decode(0, &rows, &tfs) == list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    MCSM_CHECK(rows[i] == list[i].row);
    MCSM_CHECK(tfs[i] == list[i].tf);
  }

  // Intersect every other decoded row plus some misses; the survivors must
  // be exactly the present candidates.
  std::vector<uint32_t> cand;
  std::vector<uint32_t> expected;
  for (size_t i = 0; i < rows.size(); i += 2) {
    cand.push_back(rows[i]);
    expected.push_back(rows[i]);
    if (rows[i] + 1 <= 0xFFFFFFFEu &&
        (i + 1 >= rows.size() || rows[i + 1] != rows[i] + 1)) {
      cand.push_back(rows[i] + 1);  // a guaranteed miss between postings
    }
  }
  store.Intersect(0, &cand);
  MCSM_CHECK(cand == expected);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0 || size > 4096) return 0;
  AdversarialDecode(data, size);
  RoundTrip(data, size);
  return 0;
}
