// Fuzz harness for the SQL pipeline: lexer → parser → engine. Arbitrary
// bytes must tokenize/parse into a statement or an error Status, and any
// statement that parses must execute against a small catalog without
// crashing (execution errors are fine — type errors, missing tables, ...).

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/check.h"
#include "relational/database.h"
#include "relational/table.h"
#include "relational/value.h"
#include "sql/engine.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace {

// A fresh catalog per input keeps executions independent: DROP/DELETE in one
// input cannot change what the next input sees.
mcsm::relational::Database MakeCatalog() {
  using mcsm::relational::Table;
  using mcsm::relational::Value;
  mcsm::relational::Database db;
  Table users = Table::WithTextColumns({"id", "name", "email"});
  MCSM_CHECK_OK(users.AppendTextRow({"1", "ada", "ada@example.com"}));
  MCSM_CHECK_OK(users.AppendTextRow({"2", "grace", "grace@example.com"}));
  MCSM_CHECK_OK(users.AppendTextRow({"3", "edsger", "edsger@example.com"}));
  MCSM_CHECK_OK(db.CreateTable("users", std::move(users)));
  Table empty = Table::WithTextColumns({"k", "v"});
  MCSM_CHECK_OK(db.CreateTable("kv", std::move(empty)));
  return db;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 4096) return 0;  // parser work is superlinear in pathological input
  std::string_view sql(reinterpret_cast<const char*>(data), size);

  auto tokens = mcsm::sql::Tokenize(sql);
  auto stmt = mcsm::sql::Parse(sql);
  // A parseable statement must also be tokenizable.
  if (stmt.ok()) {
    MCSM_CHECK(tokens.ok()) << "Parse accepted input that Tokenize rejects";
  }

  if (stmt.ok()) {
    mcsm::relational::Database db = MakeCatalog();
    mcsm::sql::Engine engine(&db);
    auto result = engine.ExecuteStatement(*stmt);
    (void)result;  // error statuses are expected for most random statements
  }

  // Expression-level entry point takes the same bytes down a second path.
  auto expr = mcsm::sql::ParseExpression(sql);
  (void)expr;
  return 0;
}
