// Fuzz harness for the translation VM (DESIGN.md §12), in two phases fed by
// one input:
//   1. Adversarial wire decode: the raw bytes go through Program::Deserialize.
//      Anything that decodes is by contract validated, so it must execute
//      over a hostile little table without crashing, without OOB reads (the
//      sanitizers watch), and deterministically across thread counts.
//   2. Compile oracle: the same bytes are re-read as a formula description;
//      if it compiles, the wire form must round-trip exactly and the
//      executor's output must equal TranslationFormula::Apply row for row —
//      the subsystem's three-way acceptance contract, with Apply as oracle.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "core/formula.h"
#include "relational/table.h"
#include "vm/compiler.h"
#include "vm/executor.h"
#include "vm/program.h"

namespace {

using mcsm::core::Region;
using mcsm::core::TranslationFormula;
using mcsm::relational::Table;
using mcsm::relational::Value;

// Rows exercising every per-row hazard: NULLs, empties, short values.
const Table& FuzzTable() {
  static const Table* table = [] {
    auto* t = new Table(Table::WithTextColumns({"a", "b", "c", "d"}));
    MCSM_CHECK(t->AppendTextRow({"henry", "j", "warner", "1998"}).ok());
    MCSM_CHECK(t->AppendTextRow({"", "mid", "x", ""}).ok());
    MCSM_CHECK(t->AppendRow({Value::MakeNull(), Value("q"), Value::MakeNull(),
                             Value("z")})
                   .ok());
    MCSM_CHECK(t->AppendTextRow({"ab", "cd", "ef", "gh"}).ok());
    MCSM_CHECK(t->AppendTextRow({"longer-value-here", "s", "t", "u"}).ok());
    return t;
  }();
  return *table;
}

// Byte-stream cursor for phase 2's formula description.
struct Cursor {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;
  uint8_t Next() { return pos < size ? data[pos++] : 0; }
  bool done() const { return pos >= size; }
};

void CheckExecutesSafely(const mcsm::vm::Program& program) {
  // A decoded program may demand more columns than the table has; that is
  // the documented InvalidArgument path, not a crash.
  std::string bytes_by_threads[2];
  for (int i = 0; i < 2; ++i) {
    mcsm::vm::TranslateOptions options;
    options.num_threads = i == 0 ? 1 : 2;
    options.batch_rows = 2;  // force multiple batches over 5 rows
    auto result = mcsm::vm::Translate(program, FuzzTable(), options);
    if (!result.ok()) {
      MCSM_CHECK(result.status().IsInvalidArgument()) << result.status();
      return;
    }
    MCSM_CHECK(result->rows_processed == FuzzTable().num_rows());
    MCSM_CHECK(result->rows.size() + 1 == result->offsets.size());
    bytes_by_threads[i] = result->bytes;
  }
  MCSM_CHECK(bytes_by_threads[0] == bytes_by_threads[1])
      << "thread-count-dependent output";
}

void FuzzWireDecode(const uint8_t* data, size_t size) {
  auto program = mcsm::vm::Program::Deserialize(
      std::string_view(reinterpret_cast<const char*>(data), size));
  if (!program.ok()) return;  // rejected with a Status: the common case
  // Whatever decodes must re-encode to an accepted (not necessarily
  // byte-identical) form and execute safely.
  auto again = mcsm::vm::Program::Deserialize(program->Serialize());
  MCSM_CHECK(again.ok()) << again.status();
  MCSM_CHECK(*again == *program) << "re-decode changed the program";
  CheckExecutesSafely(*program);
}

void FuzzCompileOracle(const uint8_t* data, size_t size) {
  Cursor cursor{data, size};
  std::vector<Region> regions;
  while (!cursor.done() && regions.size() < 12) {
    const uint8_t kind = cursor.Next();
    switch (kind % 4) {
      case 0: {  // fixed span (start 0 / end < start slip through on purpose)
        const size_t column = cursor.Next() % 6;
        const size_t start = cursor.Next() % 9;
        const size_t end = start + (cursor.Next() % 8) - 2;
        regions.push_back(Region::Span(column, start, end));
        break;
      }
      case 1:  // to-end span
        regions.push_back(
            Region::SpanToEnd(cursor.Next() % 6, cursor.Next() % 9));
        break;
      case 2: {  // literal (possibly empty, possibly with quotes/escapes)
        std::string text;
        for (size_t n = cursor.Next() % 6; n > 0; --n) {
          text.push_back(static_cast<char>(cursor.Next()));
        }
        regions.push_back(Region::Literal(std::move(text)));
        break;
      }
      case 3:  // unknown region: must be rejected by the compiler
        regions.push_back(Region::Unknown());
        break;
    }
  }
  const TranslationFormula formula(std::move(regions));
  auto program =
      mcsm::vm::CompileFormula(formula, FuzzTable().schema());
  if (!program.ok()) return;  // the compiler's reject matrix, all fine

  // Wire round-trip of a compiled program is exact.
  auto decoded = mcsm::vm::Program::Deserialize(program->Serialize());
  MCSM_CHECK(decoded.ok()) << decoded.status();
  MCSM_CHECK(*decoded == *program);
  (void)program->Disassemble();  // must not crash on any literal bytes

  // Execute and compare to the Apply oracle row for row.
  auto result = mcsm::vm::Translate(*program, FuzzTable());
  MCSM_CHECK(result.ok()) << result.status();
  size_t out = 0;
  for (size_t row = 0; row < FuzzTable().num_rows(); ++row) {
    const std::optional<std::string> expected =
        formula.Apply(FuzzTable(), row);
    if (!expected.has_value()) continue;
    MCSM_CHECK(out < result->output_rows())
        << "vm covered fewer rows than Apply";
    MCSM_CHECK(result->rows[out] == row)
        << "vm covered row " << result->rows[out] << ", Apply " << row;
    MCSM_CHECK(result->value(out) == *expected)
        << "vm/Apply disagree on row " << row;
    ++out;
  }
  MCSM_CHECK(out == result->output_rows())
      << "vm covered rows Apply does not";
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 8192) return 0;
  FuzzWireDecode(data, size);
  FuzzCompileOracle(data, size);
  return 0;
}
