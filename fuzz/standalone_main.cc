// Replay driver for builds without libFuzzer (gcc, or clang without
// -DMCSM_LIBFUZZER). Feeds every corpus file to LLVMFuzzerTestOneInput, then
// deterministic mutants of each seed, so the `fuzz_smoke` ctest target
// exercises the harnesses under any toolchain. With clang, the same harness
// sources link against the real libFuzzer instead of this file.
//
// Usage: fuzz_target [--mutants=N] <corpus-file-or-dir>...

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

uint64_t XorShift(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

void RunOne(const std::vector<uint8_t>& bytes) {
  static const uint8_t kEmpty = 0;
  LLVMFuzzerTestOneInput(bytes.empty() ? &kEmpty : bytes.data(), bytes.size());
}

// Applies 1-4 byte-level edits (flip, insert, erase, duplicate a slice) to a
// copy of `seed`. Deterministic in (seed content, round) so failures replay.
std::vector<uint8_t> Mutate(const std::vector<uint8_t>& seed, uint64_t round) {
  uint64_t state = 0x9E3779B97F4A7C15ULL ^ (round * 0x100000001B3ULL);
  for (uint8_t b : seed) state = (state ^ b) * 0x100000001B3ULL;
  if (state == 0) state = 1;

  std::vector<uint8_t> out = seed;
  const uint64_t edits = 1 + XorShift(&state) % 4;
  for (uint64_t e = 0; e < edits; ++e) {
    const uint64_t op = XorShift(&state) % 4;
    if (out.empty()) {
      out.push_back(static_cast<uint8_t>(XorShift(&state)));
      continue;
    }
    const size_t pos = XorShift(&state) % out.size();
    switch (op) {
      case 0:  // flip a byte
        out[pos] = static_cast<uint8_t>(XorShift(&state));
        break;
      case 1:  // insert a byte
        out.insert(out.begin() + static_cast<ptrdiff_t>(pos),
                   static_cast<uint8_t>(XorShift(&state)));
        break;
      case 2:  // erase a byte
        out.erase(out.begin() + static_cast<ptrdiff_t>(pos));
        break;
      default: {  // duplicate a short slice
        const size_t len = 1 + XorShift(&state) % 16;
        const size_t end = std::min(out.size(), pos + len);
        std::vector<uint8_t> slice(out.begin() + static_cast<ptrdiff_t>(pos),
                                   out.begin() + static_cast<ptrdiff_t>(end));
        out.insert(out.begin() + static_cast<ptrdiff_t>(end), slice.begin(),
                   slice.end());
        break;
      }
    }
  }
  return out;
}

std::vector<uint8_t> ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  size_t mutants = 0;
  std::vector<std::filesystem::path> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--mutants=", 0) == 0) {
      const std::string digits = arg.substr(10);
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr, "invalid --mutants value: '%s'\n", digits.c_str());
        return 2;
      }
      mutants = static_cast<size_t>(std::stoul(digits));
      continue;
    }
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: %s [--mutants=N] <corpus-file-or-dir>...\n",
                 argv[0]);
    return 2;
  }
  std::sort(files.begin(), files.end());  // directory order is not stable

  size_t executions = 0;
  RunOne({});  // harnesses must tolerate the empty input
  ++executions;
  for (const auto& file : files) {
    const std::vector<uint8_t> seed = ReadFile(file);
    RunOne(seed);
    ++executions;
    // Mutations stack so later rounds drift well away from the seed; the
    // chain restarts periodically to keep some runs near the seed too.
    std::vector<uint8_t> current = seed;
    for (size_t round = 0; round < mutants; ++round) {
      if (round % 64 == 0) current = seed;
      current = Mutate(current, round);
      RunOne(current);
      ++executions;
    }
  }
  std::printf("standalone fuzz driver: %zu seed files, %zu executions, ok\n",
              files.size(), executions);
  return 0;
}
