#ifndef MCSM_COMMON_ANNOTATIONS_H_
#define MCSM_COMMON_ANNOTATIONS_H_

#include <mutex>
#include <shared_mutex>

/// \file
/// \brief Clang thread-safety-analysis annotations + annotated lock types.
///
/// The discovery pipeline and service enforce a byte-identical-results
/// determinism contract across thread counts, which makes lock discipline
/// load-bearing: every mutex-guarded member must only be touched with its
/// mutex held. The TSan CI leg checks that dynamically; this header makes it
/// statically checkable with Clang's `-Wthread-safety` analysis
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), gated behind the
/// `MCSM_THREAD_SAFETY` CMake option and the thread-safety CI leg.
///
/// Usage pattern (see common/thread_pool.h for the canonical example):
///
///   class Queue {
///    public:
///     void Push(int v) {
///       MutexLock lock(mu_);
///       items_.push_back(v);            // OK: mu_ held
///     }
///    private:
///     Mutex mu_;
///     std::vector<int> items_ MCSM_GUARDED_BY(mu_);
///   };
///
/// `std::mutex` / `std::shared_mutex` are NOT annotatable (libstdc++ carries
/// no capability attributes), so the project rule — enforced by
/// tools/lint.py rule LK001 — is: member mutexes use the annotated `Mutex` /
/// `SharedMutex` wrappers below, condition variables use
/// `std::condition_variable_any` (which accepts any BasicLockable, i.e. the
/// annotated types), and every mutex member guards at least one thing via
/// MCSM_GUARDED_BY / MCSM_REQUIRES / MCSM_ACQUIRE.
///
/// On GCC (and any non-Clang compiler) every macro expands to nothing and
/// the wrappers compile down to the wrapped standard types — zero overhead,
/// no behaviour change.

#if defined(__clang__)
#define MCSM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MCSM_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

/// Marks a type as a capability (a lock). The string names the capability
/// kind in diagnostics ("mutex", "shared_mutex").
#define MCSM_CAPABILITY(x) MCSM_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define MCSM_SCOPED_CAPABILITY MCSM_THREAD_ANNOTATION_(scoped_lockable)

/// Data member may only be accessed while holding the given capability.
#define MCSM_GUARDED_BY(x) MCSM_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member: the *pointee* may only be accessed while holding the
/// capability (the pointer itself is unrestricted).
#define MCSM_PT_GUARDED_BY(x) MCSM_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention).
#define MCSM_ACQUIRED_BEFORE(...) \
  MCSM_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define MCSM_ACQUIRED_AFTER(...) \
  MCSM_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function requires the capability held (exclusively / shared) on entry,
/// and does not release it.
#define MCSM_REQUIRES(...) \
  MCSM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define MCSM_REQUIRES_SHARED(...) \
  MCSM_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (must not already be held).
#define MCSM_ACQUIRE(...) \
  MCSM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define MCSM_ACQUIRE_SHARED(...) \
  MCSM_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define MCSM_RELEASE(...) \
  MCSM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define MCSM_RELEASE_SHARED(...) \
  MCSM_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define MCSM_RELEASE_GENERIC(...) \
  MCSM_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// Function attempts the acquisition; the first argument is the return value
/// that signals success.
#define MCSM_TRY_ACQUIRE(...) \
  MCSM_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define MCSM_TRY_ACQUIRE_SHARED(...) \
  MCSM_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (non-reentrancy).
#define MCSM_EXCLUDES(...) MCSM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code paths the static
/// analysis cannot follow, e.g. lambdas handed to a wait loop).
#define MCSM_ASSERT_CAPABILITY(x) \
  MCSM_THREAD_ANNOTATION_(assert_capability(x))
#define MCSM_ASSERT_SHARED_CAPABILITY(x) \
  MCSM_THREAD_ANNOTATION_(assert_shared_capability(x))

/// Function returns a reference to the given capability.
#define MCSM_RETURN_CAPABILITY(x) MCSM_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: turns the analysis off for one function. Every use needs a
/// comment explaining why the discipline holds anyway.
#define MCSM_NO_THREAD_SAFETY_ANALYSIS \
  MCSM_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace mcsm {

/// \brief Annotated exclusive mutex: `std::mutex` carrying the capability
/// attribute so `-Wthread-safety` can check GUARDED_BY / REQUIRES contracts.
/// Satisfies BasicLockable/Lockable (usable with std::condition_variable_any
/// and std::scoped_lock), but prefer the MutexLock RAII type below — it is
/// the annotated scoped form the analysis understands.
class MCSM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MCSM_ACQUIRE() { mu_.lock(); }
  void unlock() MCSM_RELEASE() { mu_.unlock(); }
  bool try_lock() MCSM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Declares (to the analysis and to readers) that the calling context
  /// already holds this mutex — the annotated escape hatch for predicates
  /// and callbacks invoked from under an existing lock.
  void AssertHeld() const MCSM_ASSERT_CAPABILITY(this) {}

 private:
  std::mutex mu_;
};

/// \brief Annotated reader/writer mutex over `std::shared_mutex`.
class MCSM_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() MCSM_ACQUIRE() { mu_.lock(); }
  void unlock() MCSM_RELEASE() { mu_.unlock(); }
  bool try_lock() MCSM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() MCSM_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() MCSM_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() MCSM_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

  void AssertHeld() const MCSM_ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const MCSM_ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

/// \brief RAII exclusive lock on a Mutex. Exposes lock()/unlock() so it is
/// itself BasicLockable — the form std::condition_variable_any::wait() needs
/// (wait unlocks and relocks around the block; the analysis sees the
/// capability held across the call, which matches the before/after states).
class MCSM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MCSM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() MCSM_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // For condition_variable_any::wait only; the lock must be held again when
  // the scope ends (wait() guarantees reacquisition).
  void lock() MCSM_ACQUIRE() { mu_.lock(); }
  void unlock() MCSM_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

/// \brief RAII shared (reader) lock on a SharedMutex.
class MCSM_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) MCSM_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() MCSM_RELEASE_GENERIC() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// \brief RAII exclusive (writer) lock on a SharedMutex.
class MCSM_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) MCSM_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() MCSM_RELEASE_GENERIC() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace mcsm

#endif  // MCSM_COMMON_ANNOTATIONS_H_
