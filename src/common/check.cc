#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace mcsm::internal {

void CheckFailed(const std::string& message) {
  std::fprintf(stderr, "%s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

CheckFailureStream::CheckFailureStream(const char* kind, const char* file,
                                       int line, const char* condition) {
  stream_ << file << ":" << line << ": " << kind << " failed: " << condition
          << " ";
}

CheckFailureStream::~CheckFailureStream() { CheckFailed(stream_.str()); }

}  // namespace mcsm::internal
