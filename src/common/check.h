#ifndef MCSM_COMMON_CHECK_H_
#define MCSM_COMMON_CHECK_H_

#include <cstddef>
#include <sstream>
#include <string_view>

namespace mcsm {
namespace internal {

/// Terminates the process after printing `message` (already fully formatted
/// by the CheckFailureStream destructor) to stderr. Out-of-line so the fatal
/// path costs one call in the macro expansion.
[[noreturn]] void CheckFailed(const std::string& message);

/// \brief Collects the failure message for a failed MCSM_CHECK and aborts in
/// its destructor (glog-style). Instances only ever exist on the failure
/// path, so the stringstream allocation is irrelevant.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* kind, const char* file, int line,
                     const char* condition);
  [[noreturn]] ~CheckFailureStream();
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Lets the macro below swallow the ostream expression into a void so the
/// ternary's two arms have a common type.
struct Voidify {
  void operator&&(std::ostream&) const {}
};

/// Uniform access to the Status of either a Status or a Result<T>, without
/// this header depending on either type.
template <typename T>
const auto& GetStatus(const T& v) {
  if constexpr (requires { v.status(); }) {
    return v.status();
  } else {
    return v;
  }
}

}  // namespace internal

/// \brief Always-on invariant check. On failure, prints the condition, the
/// source location and any streamed context, then aborts:
///
///   MCSM_CHECK(rows == cols) << "matrix must be square, got " << rows;
///
/// Use for API contracts and internal invariants whose violation means the
/// process state is wrong — not for errors caused by user input (return a
/// Status for those).
#define MCSM_CHECK(condition)                                         \
  (condition) ? (void)0                                               \
              : ::mcsm::internal::Voidify{} &&                        \
                    ::mcsm::internal::CheckFailureStream(             \
                        "CHECK", __FILE__, __LINE__, #condition)      \
                        .stream()

/// Checks that a Status (or Result) expression is ok(), printing the status
/// message on failure.
#define MCSM_CHECK_OK(expr)                                            \
  MCSM_CHECK_OK_IMPL(MCSM_CHECK_CONCAT(_check_st_, __LINE__), (expr))
#define MCSM_CHECK_OK_IMPL(var, expr)              \
  if (const auto& var = expr; var.ok()) {          \
  } else /* NOLINT */                              \
    ::mcsm::internal::Voidify{} &&                 \
        ::mcsm::internal::CheckFailureStream("CHECK_OK", __FILE__, \
                                             __LINE__, #expr)      \
            .stream()                                              \
        << ::mcsm::internal::GetStatus(var).ToString() << " "

#define MCSM_CHECK_CONCAT_IMPL(a, b) a##b
#define MCSM_CHECK_CONCAT(a, b) MCSM_CHECK_CONCAT_IMPL(a, b)

/// Bounds-check helper: aborts unless 0 <= index < size. Reads as
///   MCSM_CHECK_BOUNDS(i, values.size());
#define MCSM_CHECK_BOUNDS(index, size)                                     \
  MCSM_CHECK(::mcsm::internal::IndexInBounds(                              \
      static_cast<size_t>(index), static_cast<size_t>(size)))              \
      << "index " << (index) << " out of bounds for size " << (size) << " "

namespace internal {
constexpr bool IndexInBounds(size_t index, size_t size) { return index < size; }
}  // namespace internal

/// \brief Debug-only check: same syntax as MCSM_CHECK, compiled out (condition
/// not evaluated) in NDEBUG builds unless MCSM_FORCE_DCHECKS is defined.
/// Sanitizer CI builds define MCSM_FORCE_DCHECKS so ASan/UBSan runs exercise
/// every contract.
#if !defined(NDEBUG) || defined(MCSM_FORCE_DCHECKS)
#define MCSM_DCHECK_IS_ON 1
#define MCSM_DCHECK(condition) MCSM_CHECK(condition)
#define MCSM_DCHECK_BOUNDS(index, size) MCSM_CHECK_BOUNDS(index, size)
#else
#define MCSM_DCHECK_IS_ON 0
#define MCSM_DCHECK(condition) \
  while (false) MCSM_CHECK(condition)
#define MCSM_DCHECK_BOUNDS(index, size) \
  while (false) MCSM_CHECK_BOUNDS(index, size)
#endif

/// \brief Bounds-clamped substring: the total function the hot paths use
/// instead of std::string_view::substr, which throws std::out_of_range when
/// pos > size. `pos` past the end yields an empty view anchored at the end;
/// `count` is clamped to the available characters. Never throws, never reads
/// out of bounds.
constexpr std::string_view SafeSubstr(
    std::string_view s, size_t pos,
    size_t count = std::string_view::npos) noexcept {
  if (pos >= s.size()) return std::string_view(s.data() + s.size(), 0);
  return s.substr(pos, count);  // count > size - pos is well-defined (clamped)
}

}  // namespace mcsm

#endif  // MCSM_COMMON_CHECK_H_
