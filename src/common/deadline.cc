#include "common/deadline.h"

namespace mcsm {

const char* BudgetTripName(BudgetTrip trip) {
  switch (trip) {
    case BudgetTrip::kNone:
      return "none";
    case BudgetTrip::kWallClock:
      return "wall-clock";
    case BudgetTrip::kPostings:
      return "postings";
    case BudgetTrip::kPairs:
      return "pairs";
    case BudgetTrip::kFormulas:
      return "formulas";
  }
  return "unknown";
}

RunBudget::RunBudget(const BudgetLimits& limits) : limits_(limits) {
  if (limits_.wall_ms > 0) {
    has_deadline_ = true;
    deadline_ = Clock::now() + std::chrono::milliseconds(limits_.wall_ms);
  }
}

RunBudget RunBudget::ForMillis(int64_t wall_ms) {
  BudgetLimits limits;
  limits.wall_ms = wall_ms;
  return RunBudget(limits);
}

bool RunBudget::CheckDeadline() {
  if (trip_ != BudgetTrip::kNone) return false;
  if (has_deadline_ && Clock::now() >= deadline_) {
    trip_ = BudgetTrip::kWallClock;
    return false;
  }
  return true;
}

bool RunBudget::ChargePostings(uint64_t n) {
  postings_scanned_ += n;
  if (!CheckDeadline()) return false;
  if (limits_.max_postings_scanned != 0 &&
      postings_scanned_ > limits_.max_postings_scanned) {
    trip_ = BudgetTrip::kPostings;
    return false;
  }
  return true;
}

bool RunBudget::ChargePairs(uint64_t n) {
  pairs_aligned_ += n;
  if (!CheckDeadline()) return false;
  if (limits_.max_pairs_aligned != 0 &&
      pairs_aligned_ > limits_.max_pairs_aligned) {
    trip_ = BudgetTrip::kPairs;
    return false;
  }
  return true;
}

bool RunBudget::ChargeFormulas(uint64_t n) {
  candidate_formulas_ += n;
  if (!CheckDeadline()) return false;
  if (limits_.max_candidate_formulas != 0 &&
      candidate_formulas_ > limits_.max_candidate_formulas) {
    trip_ = BudgetTrip::kFormulas;
    return false;
  }
  return true;
}

bool RunBudget::Exhausted() { return !CheckDeadline(); }

}  // namespace mcsm
