#include "common/deadline.h"

namespace mcsm {

const char* BudgetTripName(BudgetTrip trip) {
  switch (trip) {
    case BudgetTrip::kNone:
      return "none";
    case BudgetTrip::kWallClock:
      return "wall-clock";
    case BudgetTrip::kPostings:
      return "postings";
    case BudgetTrip::kPairs:
      return "pairs";
    case BudgetTrip::kFormulas:
      return "formulas";
    case BudgetTrip::kCancelled:
      return "cancelled";
    case BudgetTrip::kRows:
      return "rows";
  }
  return "unknown";
}

RunBudget::RunBudget(const BudgetLimits& limits) : limits_(limits) {
  if (limits_.wall_ms > 0) {
    has_deadline_ = true;
    deadline_ = Clock::now() + std::chrono::milliseconds(limits_.wall_ms);
  }
}

RunBudget RunBudget::ForMillis(int64_t wall_ms) {
  BudgetLimits limits;
  limits.wall_ms = wall_ms;
  return RunBudget(limits);
}

void RunBudget::TripOnce(BudgetTrip axis) {
  BudgetTrip expected = BudgetTrip::kNone;
  // ordering: relaxed — the trip is a pure control flag: no data is
  // published through it (each worker's partial results reach the merge via
  // ThreadPool::ParallelFor's acq_rel barrier), and relaxed CAS keeps
  // Cancel() async-signal-safe. Audited 2026-08: no acquire/release upgrade
  // needed; the CAS alone guarantees exactly one winning axis.
  trip_.compare_exchange_strong(expected, axis, std::memory_order_relaxed);
}

bool RunBudget::CheckDeadline() {
  // ordering: relaxed — sticky-flag read; a stale kNone only delays the stop
  // by one charge, it cannot un-trip the budget.
  if (trip_.load(std::memory_order_relaxed) != BudgetTrip::kNone) return false;
  if (has_deadline_ && Clock::now() >= deadline_) {
    TripOnce(BudgetTrip::kWallClock);
    return false;
  }
  return true;
}

bool RunBudget::ChargePostings(uint64_t n) {
  // ordering: relaxed — only the accumulated total matters; no thread reads
  // other data through this counter (same for the two charges below).
  const uint64_t total =
      postings_scanned_.fetch_add(n, std::memory_order_relaxed) + n;
  if (!CheckDeadline()) return false;
  if (limits_.max_postings_scanned != 0 &&
      total > limits_.max_postings_scanned) {
    TripOnce(BudgetTrip::kPostings);
    return false;
  }
  return true;
}

bool RunBudget::ChargePairs(uint64_t n) {
  // ordering: relaxed — accumulation only, see ChargePostings.
  const uint64_t total =
      pairs_aligned_.fetch_add(n, std::memory_order_relaxed) + n;
  if (!CheckDeadline()) return false;
  if (limits_.max_pairs_aligned != 0 && total > limits_.max_pairs_aligned) {
    TripOnce(BudgetTrip::kPairs);
    return false;
  }
  return true;
}

bool RunBudget::ChargeFormulas(uint64_t n) {
  // ordering: relaxed — accumulation only, see ChargePostings.
  const uint64_t total =
      candidate_formulas_.fetch_add(n, std::memory_order_relaxed) + n;
  if (!CheckDeadline()) return false;
  if (limits_.max_candidate_formulas != 0 &&
      total > limits_.max_candidate_formulas) {
    TripOnce(BudgetTrip::kFormulas);
    return false;
  }
  return true;
}

bool RunBudget::ChargeRows(uint64_t n) {
  // ordering: relaxed — accumulation only, see ChargePostings.
  const uint64_t total =
      rows_translated_.fetch_add(n, std::memory_order_relaxed) + n;
  if (!CheckDeadline()) return false;
  if (limits_.max_rows_translated != 0 && total > limits_.max_rows_translated) {
    TripOnce(BudgetTrip::kRows);
    return false;
  }
  return true;
}

bool RunBudget::Exhausted() { return !CheckDeadline(); }

}  // namespace mcsm
