#ifndef MCSM_COMMON_DEADLINE_H_
#define MCSM_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace mcsm {

/// Which budget axis tripped first (kNone = still within budget).
enum class BudgetTrip : uint8_t {
  kNone = 0,
  kWallClock,   ///< wall-clock deadline elapsed
  kPostings,    ///< posting-entry scan cap reached (index retrieval)
  kPairs,       ///< pair-alignment cap reached (recipes built)
  kFormulas,    ///< candidate-formula cap reached
  kCancelled,   ///< RunBudget::Cancel() called (job cancellation, Ctrl-C)
  kRows,        ///< translated-row cap reached (bulk translation, vm/)
};

/// Human-readable axis name ("wall-clock", "postings", ...).
const char* BudgetTripName(BudgetTrip trip);

/// \brief Cost caps for one search run. Default-constructed limits are
/// unlimited (every field 0 = off), so existing call sites pay nothing.
///
/// The wall-clock deadline bounds the latency a caller observes; the
/// work-unit caps bound cost deterministically (useful in tests and when a
/// run must be reproducible regardless of machine speed). The first axis to
/// trip wins and is reported via RunBudget::trip().
struct BudgetLimits {
  /// Wall-clock deadline in milliseconds from RunBudget construction
  /// (0 = unlimited). The deadline covers index construction too: it starts
  /// when the search object is created, not at the first retrieval.
  int64_t wall_ms = 0;
  /// Cap on posting entries scanned across all index retrievals
  /// (0 = unlimited).
  uint64_t max_postings_scanned = 0;
  /// Cap on (key, target instance) pairs aligned into recipes (0 = unlimited).
  uint64_t max_pairs_aligned = 0;
  /// Cap on candidate formulas generated (0 = unlimited).
  uint64_t max_candidate_formulas = 0;
  /// Cap on rows translated by the bulk-translation VM (0 = unlimited).
  /// Unused by discovery; the translate path in src/vm charges it per batch.
  uint64_t max_rows_translated = 0;

  bool unlimited() const {
    return wall_ms == 0 && max_postings_scanned == 0 &&
           max_pairs_aligned == 0 && max_candidate_formulas == 0 &&
           max_rows_translated == 0;
  }
};

/// \brief Deadline + work-unit meter for one anytime-search run.
///
/// A RunBudget is created by the component that owns the run (the
/// translation search) and threaded as a nullable pointer through the layers
/// that do metered work — index retrieval, sampling, recipe voting. Each
/// layer charges the units it consumed and stops early once the budget is
/// exhausted, returning whatever it produced so far; the search layer then
/// tags the overall result `truncated` instead of erroring out.
///
/// Exhaustion is sticky: once any axis trips, Exhausted() stays true and
/// trip() keeps reporting the first axis that tripped. Charging is
/// thread-safe: the search's worker pool charges one shared budget from
/// every thread. Counters accumulate with relaxed atomics (only the total
/// matters), and the trip is recorded once via compare-and-swap, so even
/// when two axes exhaust in the same instant on different threads exactly
/// one of them is reported and every later Exhausted()/trip() agrees.
class RunBudget {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unlimited budget.
  RunBudget() = default;

  /// Starts the wall clock now (when a deadline is configured).
  explicit RunBudget(const BudgetLimits& limits);

  /// One budget meters one run; it is shared by pointer, never copied.
  RunBudget(const RunBudget&) = delete;
  RunBudget& operator=(const RunBudget&) = delete;

  /// Convenience for tests/tools: wall-clock deadline only.
  static RunBudget ForMillis(int64_t wall_ms);

  /// Charges `n` posting entries; returns true while within budget.
  bool ChargePostings(uint64_t n);
  /// Charges `n` aligned pairs; returns true while within budget.
  bool ChargePairs(uint64_t n = 1);
  /// Charges `n` candidate formulas; returns true while within budget.
  bool ChargeFormulas(uint64_t n = 1);
  /// Charges `n` translated rows; returns true while within budget.
  bool ChargeRows(uint64_t n);

  /// True once any axis has tripped. Checks the wall clock (cheap: one
  /// steady_clock read when a deadline is set), so it is safe in loop heads.
  bool Exhausted();

  /// Trips the budget with BudgetTrip::kCancelled: the owning run stops at
  /// its next cooperative check and returns its best partial result tagged
  /// truncated. Safe to call from any thread — and from a signal handler: it
  /// is one atomic compare-and-swap, nothing else. Sticky like every other
  /// trip; cancelling an already-tripped budget keeps the first axis.
  void Cancel() { TripOnce(BudgetTrip::kCancelled); }

  /// The first axis that tripped, without re-reading the clock.
  // ordering: relaxed — sticky flag read; see TripOnce() in deadline.cc.
  BudgetTrip trip() const { return trip_.load(std::memory_order_relaxed); }

  uint64_t postings_scanned() const {
    // ordering: relaxed — monotonic counter read (reporting only).
    return postings_scanned_.load(std::memory_order_relaxed);
  }
  uint64_t pairs_aligned() const {
    // ordering: relaxed — monotonic counter read (reporting only).
    return pairs_aligned_.load(std::memory_order_relaxed);
  }
  uint64_t candidate_formulas() const {
    // ordering: relaxed — monotonic counter read (reporting only).
    return candidate_formulas_.load(std::memory_order_relaxed);
  }
  uint64_t rows_translated() const {
    // ordering: relaxed — monotonic counter read (reporting only).
    return rows_translated_.load(std::memory_order_relaxed);
  }
  const BudgetLimits& limits() const { return limits_; }

 private:
  bool CheckDeadline();
  /// Records `axis` as the trip cause iff nothing tripped yet (CAS), so the
  /// first axis wins under concurrent charging and stays sticky.
  void TripOnce(BudgetTrip axis);

  BudgetLimits limits_;
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::atomic<BudgetTrip> trip_{BudgetTrip::kNone};
  std::atomic<uint64_t> postings_scanned_{0};
  std::atomic<uint64_t> pairs_aligned_{0};
  std::atomic<uint64_t> candidate_formulas_{0};
  std::atomic<uint64_t> rows_translated_{0};
};

/// \brief Steady-clock stopwatch for diagnostic timings (per-phase seconds
/// in SearchStats, span elapsed_ms).
///
/// This is the sanctioned funnel for wall-clock reads in the deterministic
/// layers: tools/lint.py rule CD001 bans direct clock access in src/core,
/// src/text and src/relational so that wall time can never leak into result
/// or trace *identity* — timings measured here are diagnostic outputs only
/// (TraceEvent::elapsed_ms is excluded from Id(), SearchStats seconds are
/// not part of any fingerprint). Deadline enforcement goes through
/// RunBudget, not this class.
class WallTimer {
 public:
  using Clock = std::chrono::steady_clock;

  /// Starts timing at construction.
  WallTimer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction (or the last Restart()).
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void Restart() { start_ = Clock::now(); }

 private:
  Clock::time_point start_;
};

}  // namespace mcsm

#endif  // MCSM_COMMON_DEADLINE_H_
