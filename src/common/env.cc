#include "common/env.h"

#include <cstdlib>

namespace mcsm {

double GetEnvDouble(const char* name, double def) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only; nothing calls setenv.
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v) return def;
  return parsed;
}

int64_t GetEnvInt(const char* name, int64_t def) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only; nothing calls setenv.
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return def;
  return static_cast<int64_t>(parsed);
}

std::string GetEnvString(const char* name, const std::string& def) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only; nothing calls setenv.
  const char* v = std::getenv(name);
  if (v == nullptr) return def;
  return std::string(v);
}

double BenchScale() { return GetEnvDouble("MCSM_SCALE", 1.0); }

}  // namespace mcsm
