#ifndef MCSM_COMMON_ENV_H_
#define MCSM_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace mcsm {

/// Reads an environment variable as a double, falling back to `def` when the
/// variable is unset or unparsable. Used by benchmarks for scale knobs
/// (MCSM_SCALE).
double GetEnvDouble(const char* name, double def);

/// Reads an environment variable as an int64, falling back to `def`.
int64_t GetEnvInt(const char* name, int64_t def);

/// Reads an environment variable as a string, falling back to `def`.
std::string GetEnvString(const char* name, const std::string& def);

/// Global scale factor for benchmark dataset sizes: MCSM_SCALE (default 1.0).
/// Benchmarks multiply their default row counts by this factor.
double BenchScale();

}  // namespace mcsm

#endif  // MCSM_COMMON_ENV_H_
