#include "common/failpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

#include "common/annotations.h"
#include "common/result.h"
#include "common/string_util.h"

namespace mcsm::failpoint {

namespace {

/// Parsed action for one armed site.
struct Spec {
  enum class Kind { kError, kDelay };
  Kind kind = Kind::kError;
  std::string message;                  ///< kError: custom message (optional)
  std::chrono::milliseconds delay{0};   ///< kDelay: sleep duration
  uint64_t every = 1;                   ///< fire on every Nth hit
  uint64_t hits = 0;                    ///< hits so far (for `every`)
};

/// Armed sites. Guarded by a mutex: the map is only touched when a failpoint
/// is armed (tests, chaos runs), never on the production fast path.
struct Registry {
  Mutex mu;
  std::map<std::string, Spec, std::less<>> armed MCSM_GUARDED_BY(mu);
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

constexpr const char* kAllSites[] = {
    kCsvRead, kCsvWrite, kIndexSimilar, kIndexPattern, kSamplerSample,
    kSqlExecute, kServiceAccept, kServiceJob, kClientConnect, kClientRead,
    kPagerRead, kPagerWrite,
};

bool IsRegisteredSite(std::string_view site) {
  for (const char* s : kAllSites) {
    if (site == s) return true;
  }
  return false;
}

/// Parses one spec ("error", "error:msg", "delay:50ms", each with an
/// optional "@N" stride suffix).
Result<Spec> ParseSpec(std::string_view text) {
  Spec spec;
  // Stride suffix first: "...@N".
  size_t at = text.rfind('@');
  if (at != std::string_view::npos) {
    std::string count(text.substr(at + 1));
    char* end = nullptr;
    unsigned long long n = std::strtoull(count.c_str(), &end, 10);
    if (end == count.c_str() || *end != '\0' || n == 0) {
      return Status::InvalidArgument(
          StrFormat("failpoint stride must be a positive integer: '%s'",
                    std::string(text).c_str()));
    }
    spec.every = n;
    text = text.substr(0, at);
  }
  std::string_view action = text;
  std::string_view arg;
  size_t colon = text.find(':');
  if (colon != std::string_view::npos) {
    action = text.substr(0, colon);
    arg = text.substr(colon + 1);
  }
  if (action == "error") {
    spec.kind = Spec::Kind::kError;
    spec.message = std::string(arg);
    return spec;
  }
  if (action == "delay") {
    spec.kind = Spec::Kind::kDelay;
    if (!EndsWith(arg, "ms")) {
      return Status::InvalidArgument(
          StrFormat("failpoint delay must be '<N>ms': '%s'",
                    std::string(text).c_str()));
    }
    std::string digits(arg.substr(0, arg.size() - 2));
    char* end = nullptr;
    unsigned long long ms = std::strtoull(digits.c_str(), &end, 10);
    if (end == digits.c_str() || *end != '\0') {
      return Status::InvalidArgument(
          StrFormat("failpoint delay must be '<N>ms': '%s'",
                    std::string(text).c_str()));
    }
    // Cap the sleep so a typo cannot turn a chaos run into a hang.
    spec.delay = std::chrono::milliseconds(std::min<unsigned long long>(ms, 1000));
    return spec;
  }
  return Status::InvalidArgument(StrFormat(
      "unknown failpoint action '%s' (want error[:msg] or delay:<N>ms)",
      std::string(action).c_str()));
}

}  // namespace

namespace internal {

std::atomic<int> g_armed_count{0};

/// One-shot latch for the lazy MCSM_FAILPOINTS parse. Set via CAS *before*
/// arming so the recursion EnsureEnvLoaded -> ArmFromSpecList -> Arm ->
/// EnsureEnvLoaded returns immediately, and consumed by every
/// registry-mutating entry point so a later lazy load can never resurrect
/// env arms that a programmatic Disarm/DisarmAll already cleared.
std::atomic<bool> g_env_loaded{false};

void EnsureEnvLoaded() {
  bool expected = false;
  // Audited 2026-08: a loser may observe g_armed_count == 0 while the winner
  // is still parsing — a benign, documented first-call race ("the first call
  // parses"), not an ordering bug, so no upgrade is needed.
  // ordering: acq_rel — the winner's release publishes nothing by itself
  // (arming happens after, under the registry mutex); the acquire side keeps
  // a losing thread from speculating past the latch.
  if (!g_env_loaded.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
    return;
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only; nothing calls setenv.
  const char* env = std::getenv("MCSM_FAILPOINTS");
  if (env != nullptr && *env != '\0') {
    Status st = ArmFromSpecList(env);
    if (!st.ok()) {
      // Arming from the environment happens before any test assertion can
      // see it; a malformed spec must be loud, not silently ignored.
      std::fprintf(stderr, "MCSM_FAILPOINTS: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
}

}  // namespace internal

std::vector<std::string> RegisteredSites() {
  return std::vector<std::string>(std::begin(kAllSites), std::end(kAllSites));
}

Status Trigger(std::string_view site) {
  Spec fire;
  {
    Registry& registry = GetRegistry();
    MutexLock lock(registry.mu);
    auto it = registry.armed.find(site);
    if (it == registry.armed.end()) return Status::OK();
    Spec& spec = it->second;
    ++spec.hits;
    if (spec.hits % spec.every != 0) return Status::OK();
    fire = spec;
  }
  if (fire.kind == Spec::Kind::kDelay) {
    std::this_thread::sleep_for(fire.delay);
    return Status::OK();
  }
  return Status::Internal(
      fire.message.empty()
          ? StrFormat("failpoint '%s' armed", std::string(site).c_str())
          : fire.message);
}

Status Arm(std::string_view site, std::string_view spec_text) {
  internal::EnsureEnvLoaded();
  if (!IsRegisteredSite(site)) {
    return Status::InvalidArgument(StrFormat(
        "unknown failpoint site '%s'", std::string(site).c_str()));
  }
  MCSM_ASSIGN_OR_RETURN(Spec spec, ParseSpec(spec_text));
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  auto [it, inserted] = registry.armed.insert_or_assign(std::string(site), spec);
  (void)it;
  if (inserted) {
    // ordering: relaxed — the count is an advisory gate for Enabled(); the
    // armed map itself is published by the registry mutex.
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status ArmFromSpecList(std::string_view list) {
  for (const std::string& entry : Split(list, ';')) {
    std::string_view item = Trim(entry);
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(StrFormat(
          "failpoint entry missing '=': '%s'", std::string(item).c_str()));
    }
    MCSM_RETURN_IF_ERROR(Arm(Trim(item.substr(0, eq)),
                             Trim(item.substr(eq + 1))));
  }
  return Status::OK();
}

void Disarm(std::string_view site) {
  internal::EnsureEnvLoaded();
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  auto it = registry.armed.find(site);
  if (it == registry.armed.end()) return;
  registry.armed.erase(it);
  // ordering: relaxed — advisory gate, see Arm(); the erase is published by
  // the registry mutex.
  internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void DisarmAll() {
  internal::EnsureEnvLoaded();
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  // ordering: relaxed — advisory gate, see Arm().
  internal::g_armed_count.fetch_sub(static_cast<int>(registry.armed.size()),
                                    std::memory_order_relaxed);
  registry.armed.clear();
}

void ReloadFromEnv() {
  DisarmAll();
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only; nothing calls setenv.
  const char* env = std::getenv("MCSM_FAILPOINTS");
  if (env != nullptr && *env != '\0') {
    // The env was validated at startup (EnsureEnvLoaded aborts otherwise).
    Status st = ArmFromSpecList(env);
    (void)st;
  }
}

}  // namespace mcsm::failpoint
