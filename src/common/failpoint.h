#ifndef MCSM_COMMON_FAILPOINT_H_
#define MCSM_COMMON_FAILPOINT_H_

#include <atomic>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mcsm::failpoint {

/// \brief Env-driven fault injection for chaos testing.
///
/// A failpoint is a named site in the code where a fault can be injected at
/// runtime — an error Status or a delay — without rebuilding. Sites are
/// armed either programmatically (tests) or through the environment:
///
///   MCSM_FAILPOINTS="csv.read=error;index.similar=delay:50ms"
///
/// Spec grammar, per site:
///   error                trigger returns an Internal error
///   error:<message>      ... with a custom message
///   delay:<N>ms          trigger sleeps N milliseconds (capped at 1000)
/// Either form may carry an "@<N>" suffix ("error@5"): the fault fires on
/// every Nth hit of the site and passes through otherwise, which lets fuzz
/// and chaos runs interleave failing and succeeding calls deterministically.
///
/// When nothing is armed the per-site cost is one relaxed atomic load
/// (Enabled() below), so production binaries pay effectively nothing.

/// Canonical site names. Arm() rejects names outside this list so a typo in
/// MCSM_FAILPOINTS fails loudly instead of silently never firing.
inline constexpr const char* kCsvRead = "csv.read";
inline constexpr const char* kCsvWrite = "csv.write";
inline constexpr const char* kIndexSimilar = "index.similar";
inline constexpr const char* kIndexPattern = "index.pattern";
inline constexpr const char* kSamplerSample = "sampler.sample";
inline constexpr const char* kSqlExecute = "sql.execute";
inline constexpr const char* kServiceAccept = "service.accept";
inline constexpr const char* kServiceJob = "service.job";
inline constexpr const char* kClientConnect = "client.connect";
inline constexpr const char* kClientRead = "client.read";
inline constexpr const char* kPagerRead = "pager.read";
inline constexpr const char* kPagerWrite = "pager.write";

/// All registered sites (for chaos-suite enumeration).
std::vector<std::string> RegisteredSites();

namespace internal {
/// Number of armed sites; nonzero iff any failpoint can fire. Initialized
/// from MCSM_FAILPOINTS on first use (see EnsureEnvLoaded in failpoint.cc).
extern std::atomic<int> g_armed_count;
void EnsureEnvLoaded();
}  // namespace internal

/// Fast path: true when at least one site is armed. The first call parses
/// MCSM_FAILPOINTS; afterwards it is a single relaxed load.
inline bool Enabled() {
  internal::EnsureEnvLoaded();
  // ordering: relaxed — advisory gate only. A stale 0 skips Trigger() for a
  // site armed microseconds ago (acceptable: arming is not synchronized with
  // in-flight operations); a 1 sends the caller to Trigger(), whose registry
  // mutex provides the real synchronization.
  return internal::g_armed_count.load(std::memory_order_relaxed) != 0;
}

/// Evaluates the site: returns the armed error, sleeps the armed delay, or
/// returns OK when the site is not armed (or its "@N" stride skips this
/// hit). Prefer the MCSM_FAILPOINT macro, which short-circuits via Enabled().
Status Trigger(std::string_view site);

/// Arms one site from a spec string ("error", "delay:50ms", "error@5", ...).
/// Fails on unknown sites and malformed specs.
Status Arm(std::string_view site, std::string_view spec);

/// Arms sites from a semicolon-separated list ("a=error;b=delay:10ms").
/// The MCSM_FAILPOINTS environment variable is parsed with this.
Status ArmFromSpecList(std::string_view list);

/// Disarms one site (no-op when not armed).
void Disarm(std::string_view site);

/// Disarms every site.
void DisarmAll();

/// Disarms everything, then re-arms whatever MCSM_FAILPOINTS specifies —
/// lets tests that arm programmatically restore the environment's state.
void ReloadFromEnv();

}  // namespace mcsm::failpoint

/// Injection point. Use inside functions returning Status or Result<T>:
/// propagates the armed error, sleeps the armed delay, no-ops when unarmed.
#define MCSM_FAILPOINT(site)                                      \
  do {                                                            \
    if (::mcsm::failpoint::Enabled()) {                           \
      MCSM_RETURN_IF_ERROR(::mcsm::failpoint::Trigger(site));     \
    }                                                             \
  } while (false)

#endif  // MCSM_COMMON_FAILPOINT_H_
