#ifndef MCSM_COMMON_RESULT_H_
#define MCSM_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace mcsm {

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result / absl::StatusOr. Constructing from an OK status is
/// a programming error (a debug-check, converted to an Internal error in
/// release builds). Accessing value() on an error Result is a contract
/// violation and aborts with the carried status message.
///
/// Like Status, Result is [[nodiscard]]: a dropped Result hides an error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit, like arrow::Result).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs from an error status (implicit, to allow `return st;`).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (this->status().ok()) {
      MCSM_DCHECK(!this->status().ok())
          << "Result constructed from OK status";
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  /// Returns the contained value; aborts when !ok() (the ValueOrDie
  /// discipline — callers must test ok() or use MCSM_ASSIGN_OR_RETURN).
  const T& value() const& {
    CheckHoldsValue();
    return std::get<T>(repr_);
  }
  T& value() & {
    CheckHoldsValue();
    return std::get<T>(repr_);
  }
  T&& value() && {
    CheckHoldsValue();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `alternative` if this holds an error.
  T ValueOr(T alternative) const {
    return ok() ? value() : std::move(alternative);
  }

 private:
  void CheckHoldsValue() const {
    MCSM_CHECK(ok()) << "Result::value() on error: " << status().ToString();
  }

  std::variant<Status, T> repr_;
};

}  // namespace mcsm

#define MCSM_CONCAT_IMPL(x, y) x##y
#define MCSM_CONCAT(x, y) MCSM_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a Result<T>), propagating an error to the caller or
/// move-assigning the value into `lhs`, which may be a declaration.
#define MCSM_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  MCSM_ASSIGN_OR_RETURN_IMPL(MCSM_CONCAT(_res_, __LINE__), lhs, rexpr)

#define MCSM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#endif  // MCSM_COMMON_RESULT_H_
