#ifndef MCSM_COMMON_RNG_H_
#define MCSM_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mcsm {

/// \brief Deterministic pseudo-random generator used by all data generators
/// and samplers.
///
/// Wraps a splitmix64/xoshiro256** pair so results are identical across
/// platforms and standard library versions (std::mt19937 distributions are
/// not portable across implementations). Every generator in the repository
/// takes an explicit seed so experiments are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed);

  /// Returns the next raw 64-bit value.
  uint64_t Next64();

  /// Returns a uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Returns a reference to a uniformly chosen element of `v` (non-empty).
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

  /// Returns a string of `length` characters drawn from `alphabet`.
  std::string RandomString(size_t length, const std::string& alphabet);

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Uniform(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace mcsm

#endif  // MCSM_COMMON_RNG_H_
