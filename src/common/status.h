#ifndef MCSM_COMMON_STATUS_H_
#define MCSM_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace mcsm {

/// Error categories used across the library. The set follows the usual
/// embedded-database convention (RocksDB/Arrow style): a small closed set of
/// codes plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kParseError,
  kTypeError,
  kInternal,
  kResourceExhausted,
};

/// Returns a human-readable name for a status code ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

/// \brief Operation outcome carrying an error code and message.
///
/// `Status` is the library-wide error-reporting mechanism: no exceptions are
/// thrown across public API boundaries. The OK state is represented without
/// allocation; error states carry a heap-allocated code+message record.
///
/// The class is [[nodiscard]]: silently dropping a returned Status is a lint
/// and compile error — handle it, propagate it with MCSM_RETURN_IF_ERROR, or
/// assert it with MCSM_CHECK_OK.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(message)})) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// A bounded resource (queue slot, byte budget) is full right now; the
  /// caller may retry later. The service layer maps this to HTTP 429.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// Renders as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Shared so that Status is cheaply copyable; error paths are cold.
  std::shared_ptr<const State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace mcsm

/// Propagates an error Status from an expression to the caller.
#define MCSM_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::mcsm::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (false)

#endif  // MCSM_COMMON_STATUS_H_
