#ifndef MCSM_COMMON_STRING_UTIL_H_
#define MCSM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mcsm {

/// Returns `s` lower-cased (ASCII only).
std::string ToLower(std::string_view s);

/// Returns `s` upper-cased (ASCII only).
std::string ToUpper(std::string_view s);

/// Returns true iff `c` is an ASCII alphanumeric character.
bool IsAlnumAscii(char c);

/// Splits `s` on `delim`; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Returns true iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Returns true iff `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Pads integer `v` with leading zeros to `width` digits (v >= 0).
std::string ZeroPad(int v, int width);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace mcsm

#endif  // MCSM_COMMON_STRING_UTIL_H_
