#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace mcsm {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  size_ = num_threads;
  // The calling thread participates in ParallelFor, so N-1 workers suffice.
  workers_.reserve(size_ - 1);
  for (size_t i = 0; i + 1 < size_; ++i) {
    // Tasks must not throw (class contract); an escaping exception would
    // cross the thread boundary and terminate, which is the intended
    // fail-fast behaviour — hence the suppressed escape warning.
    workers_.emplace_back([this] { WorkerLoop(); });  // NOLINT(bugprone-exception-escape)
  }
}

ThreadPool::ThreadPool(Background background) {
  size_ = std::max<size_t>(background.workers, 1);
  workers_.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });  // NOLINT(bugprone-exception-escape)
  }
}

// std::mutex::lock / std::thread::join throw only on usage errors (deadlock,
// double join) that cannot occur in this teardown sequence.
ThreadPool::~ThreadPool() {  // NOLINT(bugprone-exception-escape)
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t helpers = std::min(workers_.size(), n - 1);
  if (helpers == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared scheduling state outlives this frame via shared_ptr: a helper task
  // may still be dequeued after the loop completed (every index already
  // claimed); it then sees next >= n and only touches `shared`.
  struct Shared {
    std::atomic<size_t> next{0};
    std::atomic<size_t> active;
    std::mutex mu;
    std::condition_variable done;
    explicit Shared(size_t helpers) : active(helpers) {}
  };
  auto shared = std::make_shared<Shared>(helpers);

  for (size_t h = 0; h < helpers; ++h) {
    // fn is copied into the task: the copy (not the caller's frame) keeps the
    // callable alive, and the caller blocks below until active == 0, so
    // anything fn captures by reference stays valid while helpers run it.
    Submit([shared, fn, n] {
      size_t i;
      while ((i = shared->next.fetch_add(1, std::memory_order_relaxed)) < n) {
        fn(i);
      }
      if (shared->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Lock before notifying so the caller cannot miss the wakeup between
        // its predicate check and its wait.
        std::lock_guard<std::mutex> lock(shared->mu);
        shared->done.notify_all();
      }
    });
  }

  size_t i;
  while ((i = shared->next.fetch_add(1, std::memory_order_relaxed)) < n) {
    fn(i);
  }
  std::unique_lock<std::mutex> lock(shared->mu);
  shared->done.wait(lock, [&shared] {
    return shared->active.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace mcsm
