#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace mcsm {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  size_ = num_threads;
  // The calling thread participates in ParallelFor, so N-1 workers suffice.
  workers_.reserve(size_ - 1);
  for (size_t i = 0; i + 1 < size_; ++i) {
    // Tasks must not throw (class contract); an escaping exception would
    // cross the thread boundary and terminate, which is the intended
    // fail-fast behaviour — hence the suppressed escape warning.
    workers_.emplace_back([this] { WorkerLoop(); });  // NOLINT(bugprone-exception-escape)
  }
}

ThreadPool::ThreadPool(Background background) {
  size_ = std::max<size_t>(background.workers, 1);
  workers_.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });  // NOLINT(bugprone-exception-escape)
  }
}

// std::mutex::lock / std::thread::join throw only on usage errors (deadlock,
// double join) that cannot occur in this teardown sequence.
ThreadPool::~ThreadPool() {  // NOLINT(bugprone-exception-escape)
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      // Explicit wait loop (not the predicate overload): the thread-safety
      // analysis cannot see that a predicate lambda runs under mu_, while
      // the guarded reads below sit visibly inside the MutexLock scope.
      while (!stop_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t helpers = std::min(workers_.size(), n - 1);
  if (helpers == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared scheduling state outlives this frame via shared_ptr: a helper task
  // may still be dequeued after the loop completed (every index already
  // claimed); it then sees next >= n and only touches `shared`.
  struct Shared {
    std::atomic<size_t> next{0};
    std::atomic<size_t> active;
    // Pairs with `done` for the completion wakeup; the waited state (active)
    // is atomic, so the mutex guards no plain member.
    Mutex mu;  // lint: allow(LK001): cv-pairing mutex, predicate state is the atomic above
    std::condition_variable_any done;
    explicit Shared(size_t helpers) : active(helpers) {}
  };
  auto shared = std::make_shared<Shared>(helpers);

  for (size_t h = 0; h < helpers; ++h) {
    // fn is copied into the task: the copy (not the caller's frame) keeps the
    // callable alive, and the caller blocks below until active == 0, so
    // anything fn captures by reference stays valid while helpers run it.
    Submit([shared, fn, n] {
      size_t i;
      // ordering: relaxed — the index counter only partitions work; fn(i)
      // writes are published by the acq_rel fetch_sub / acquire load below.
      while ((i = shared->next.fetch_add(1, std::memory_order_relaxed)) < n) {
        fn(i);
      }
      // ordering: acq_rel — release publishes this helper's fn(i) writes to
      // the caller; acquire chains earlier helpers' writes through the last
      // decrement so the caller's acquire load observes all of them.
      if (shared->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Lock before notifying so the caller cannot miss the wakeup between
        // its predicate check and its wait.
        MutexLock lock(shared->mu);
        shared->done.notify_all();
      }
    });
  }

  size_t i;
  // ordering: relaxed — same scheduling counter as the helper loop above.
  while ((i = shared->next.fetch_add(1, std::memory_order_relaxed)) < n) {
    fn(i);
  }
  MutexLock lock(shared->mu);
  // ordering: acquire — pairs with the helpers' acq_rel fetch_sub so every
  // fn(i) write is visible once active reads 0.
  while (shared->active.load(std::memory_order_acquire) != 0) {
    shared->done.wait(lock);
  }
}

}  // namespace mcsm
