#ifndef MCSM_COMMON_THREAD_POOL_H_
#define MCSM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.h"

namespace mcsm {

/// \brief A small fixed-size work-queue thread pool.
///
/// Built for the search pipeline's embarrassingly parallel stages (per-column
/// scoring, per-key retrieval+alignment, per-sampled-row refinement voting):
/// the calling thread participates in every ParallelFor, so a pool of size N
/// spawns N-1 workers and a pool of size 1 spawns none and runs everything
/// inline. Tasks must not throw — failures travel through Status, and an
/// escaping exception would terminate the worker.
class ThreadPool {
 public:
  /// `num_threads` == 0 picks std::thread::hardware_concurrency() (at least
  /// 1 when that reports 0).
  explicit ThreadPool(size_t num_threads = 0);

  /// Tag selecting the background-only shape used by the service's job
  /// manager: all threads are spawned workers, the caller never runs tasks
  /// inline, and Submit() is therefore always asynchronous (an HTTP handler
  /// must enqueue a discovery job, not execute it on the accept path).
  struct Background {
    size_t workers = 1;
  };
  explicit ThreadPool(Background background);

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that run ParallelFor bodies (workers + the caller).
  size_t size() const { return size_; }

  /// Enqueues one task. Runs it inline when the pool has no workers (never
  /// the case for a Background pool, which always spawns its workers).
  void Submit(std::function<void()> task);

  /// Runs fn(0) ... fn(n-1) on the calling thread plus the workers and
  /// returns when every call finished. Scheduling is dynamic (an atomic
  /// index counter), but which thread runs which index cannot affect results
  /// when fn(i) writes only to slot i — the pattern every caller here uses;
  /// determinism then comes from merging the slots in index order afterwards.
  /// Not reentrant: must not be called from inside a pool task.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  size_t size_ = 1;
  // Written in the constructor, joined in the destructor; never mutated
  // while workers run, so the vector itself needs no lock.
  std::vector<std::thread> workers_;
  Mutex mu_;
  std::condition_variable_any cv_;
  std::deque<std::function<void()>> queue_ MCSM_GUARDED_BY(mu_);
  bool stop_ MCSM_GUARDED_BY(mu_) = false;
};

}  // namespace mcsm

#endif  // MCSM_COMMON_THREAD_POOL_H_
