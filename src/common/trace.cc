#include "common/trace.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <functional>
#include <thread>

#include "common/status.h"
#include "common/string_util.h"

namespace mcsm {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSpanBegin:
      return "span_begin";
    case TraceEventKind::kSpanEnd:
      return "span_end";
    case TraceEventKind::kCounter:
      return "counter";
    case TraceEventKind::kDecision:
      return "decision";
  }
  return "unknown";
}

std::string FormatTraceDouble(double v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) return "0";  // cannot happen for a 64-byte buffer
  return std::string(buf, ptr);
}

std::string TraceEvent::Id() const {
  std::string id;
  id.reserve(64 + phase.size() + name.size() + detail.size());
  id += phase;
  id += '/';
  id += name;
  id += "|k=";
  id += TraceEventKindName(kind);
  id += "|it=";
  id += std::to_string(iteration);
  id += "|c=";
  id += std::to_string(column);
  id += "|s=";
  id += std::to_string(sample);
  id += "|v=";
  id += FormatTraceDouble(value);
  id += "|d=";
  id += detail;
  id += "|m=";
  for (const auto& [key, val] : metrics) {
    id += key;
    id += ':';
    id += FormatTraceDouble(val);
    id += ',';
  }
  return id;
}

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += static_cast<char>(c);
        }
    }
  }
}

void AppendTraceEventJson(const TraceEvent& event, std::string* out) {
  *out += "{\"kind\":\"";
  *out += TraceEventKindName(event.kind);
  *out += "\",\"phase\":\"";
  AppendJsonEscaped(event.phase, out);
  *out += "\",\"name\":\"";
  AppendJsonEscaped(event.name, out);
  *out += '"';
  if (event.iteration >= 0) {
    *out += ",\"iteration\":";
    *out += std::to_string(event.iteration);
  }
  if (event.column >= 0) {
    *out += ",\"column\":";
    *out += std::to_string(event.column);
  }
  if (event.sample >= 0) {
    *out += ",\"sample\":";
    *out += std::to_string(event.sample);
  }
  *out += ",\"value\":";
  *out += FormatTraceDouble(event.value);
  if (!event.detail.empty()) {
    *out += ",\"detail\":\"";
    AppendJsonEscaped(event.detail, out);
    *out += '"';
  }
  if (!event.metrics.empty()) {
    *out += ",\"metrics\":{";
    bool first = true;
    for (const auto& [key, val] : event.metrics) {
      if (!first) *out += ',';
      first = false;
      *out += '"';
      AppendJsonEscaped(key, out);
      *out += "\":";
      *out += FormatTraceDouble(val);
    }
    *out += '}';
  }
  if (event.elapsed_ms >= 0) {
    *out += ",\"elapsed_ms\":";
    *out += FormatTraceDouble(event.elapsed_ms);
  }
  *out += '}';
}

std::string TraceEventsToJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"schema_version\":1,\"events\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ',';
    first = false;
    AppendTraceEventJson(event, &out);
  }
  out += "]}";
  return out;
}

void TraceSink::SpanBegin(std::string_view phase, std::string_view name) {
  TraceEvent event;
  event.kind = TraceEventKind::kSpanBegin;
  event.phase = phase;
  event.name = name;
  Emit(std::move(event));
}

void TraceSink::SpanEnd(std::string_view phase, std::string_view name,
                        double elapsed_ms) {
  TraceEvent event;
  event.kind = TraceEventKind::kSpanEnd;
  event.phase = phase;
  event.name = name;
  event.elapsed_ms = elapsed_ms;
  Emit(std::move(event));
}

void TraceSink::Counter(std::string_view phase, std::string_view name,
                        double value) {
  TraceEvent event;
  event.kind = TraceEventKind::kCounter;
  event.phase = phase;
  event.name = name;
  event.value = value;
  Emit(std::move(event));
}

TraceSpan::TraceSpan(TraceSink* sink, std::string phase, std::string name)
    : sink_(sink), phase_(std::move(phase)), name_(std::move(name)) {
  if (sink_ == nullptr) return;
  start_ = std::chrono::steady_clock::now();
  sink_->SpanBegin(phase_, name_);
}

TraceSpan::~TraceSpan() {
  if (sink_ == nullptr) return;
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count();
  sink_->SpanEnd(phase_, name_, elapsed_ms);
}

InMemoryTraceSink::InMemoryTraceSink() : shards_(new Shard[kShards]) {}

InMemoryTraceSink::~InMemoryTraceSink() = default;

InMemoryTraceSink::Shard& InMemoryTraceSink::ShardForThisThread() {
  const size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[h % kShards];
}

void InMemoryTraceSink::Emit(TraceEvent event) {
  // ordering: relaxed — monotonic counters; the events themselves are
  // published by the shard mutex below.
  events_.fetch_add(1, std::memory_order_relaxed);
  if (event.kind == TraceEventKind::kSpanBegin) {
    spans_.fetch_add(1, std::memory_order_relaxed);  // ordering: relaxed — as above
  }
  Shard& shard = ShardForThisThread();
  MutexLock lock(shard.mu);
  shard.events.push_back(std::move(event));
}

std::vector<TraceEvent> InMemoryTraceSink::Events() const {
  std::vector<TraceEvent> out;
  for (size_t i = 0; i < kShards; ++i) {
    MutexLock lock(shards_[i].mu);
    out.insert(out.end(), shards_[i].events.begin(), shards_[i].events.end());
  }
  return out;
}

std::vector<TraceEvent> InMemoryTraceSink::CanonicalEvents() const {
  std::vector<TraceEvent> out = Events();
  std::sort(out.begin(), out.end(), [](const TraceEvent& a,
                                       const TraceEvent& b) {
    return a.Id() < b.Id();
  });
  return out;
}

void InMemoryTraceSink::Clear() {
  for (size_t i = 0; i < kShards; ++i) {
    MutexLock lock(shards_[i].mu);
    shards_[i].events.clear();
  }
  // ordering: relaxed — counter reset; Clear() is only called quiescently
  // (between runs), concurrent Emit() would be racy regardless of ordering.
  events_.store(0, std::memory_order_relaxed);
  spans_.store(0, std::memory_order_relaxed);
}

Result<std::unique_ptr<JsonlTraceSink>> JsonlTraceSink::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument(
        StrFormat("cannot open trace file '%s': %s", path.c_str(),
                  std::strerror(errno)));  // NOLINT(concurrency-mt-unsafe)
  }
  return std::unique_ptr<JsonlTraceSink>(new JsonlTraceSink(file));
}

JsonlTraceSink::~JsonlTraceSink() {
  MutexLock lock(mu_);
  std::fclose(file_);
}

void JsonlTraceSink::Emit(TraceEvent event) {
  // ordering: relaxed — monotonic counters; the line itself is serialized
  // under mu_ below.
  events_.fetch_add(1, std::memory_order_relaxed);
  if (event.kind == TraceEventKind::kSpanBegin) {
    spans_.fetch_add(1, std::memory_order_relaxed);  // ordering: relaxed — as above
  }
  std::string line;
  AppendTraceEventJson(event, &line);
  line += '\n';
  MutexLock lock(mu_);
  std::fwrite(line.data(), 1, line.size(), file_);
}

}  // namespace mcsm
