#ifndef MCSM_COMMON_TRACE_H_
#define MCSM_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/result.h"

namespace mcsm {

/// \brief Dependency-free structured tracing for the discovery pipeline.
///
/// Every stage of the search emits typed events through a nullable
/// `TraceSink*` (SearchOptions::Env::trace). The disabled path is one branch:
/// emit sites test the pointer before constructing an event, so untraced runs
/// pay a single predictable-not-taken comparison per site.
///
/// Events carry a deterministic identity — phase, name, iteration, column,
/// sample index, value, detail, metrics — and NEVER wall-clock ordering or
/// timing. Worker threads may interleave arbitrarily, so traces from 1-, 2-
/// and 8-thread runs of the same search are permutations of the same event
/// set; tests compare the sorted Id() multiset. Span-end events additionally
/// record `elapsed_ms`, which is explicitly excluded from Id() (timing is
/// diagnostic, not identity). See DESIGN.md §8.

/// Typed event kinds.
enum class TraceEventKind : uint8_t {
  kSpanBegin = 0,  ///< a pipeline phase starts
  kSpanEnd,        ///< ...and ends (elapsed_ms filled in)
  kCounter,        ///< a named quantity (value = the count)
  kDecision,       ///< a scoring/selection decision with its evidence
};

/// Lower-case wire name ("span_begin", "span_end", "counter", "decision").
const char* TraceEventKindName(TraceEventKind kind);

/// One trace event. String fields use stable identifiers (phase/name from a
/// small fixed vocabulary, detail = rendered formulas or axis names), numeric
/// fields use deterministic pipeline coordinates (iteration number, column
/// index, sample slot) — never thread ids or timestamps.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kDecision;
  std::string phase;       ///< pipeline phase: "step1", "step2", "refine", ...
  std::string name;        ///< event name within the phase
  int64_t iteration = -1;  ///< refinement iteration (-1 = n/a)
  int64_t column = -1;     ///< source column index (-1 = n/a)
  int64_t sample = -1;     ///< sample slot index (-1 = n/a)
  double value = 0;        ///< primary quantity (score, count, ...)
  std::string detail;      ///< free-form but deterministic (formula, axis, ...)
  /// Named score breakdown (e.g. ScoreTrans terms), in emission order.
  std::vector<std::pair<std::string, double>> metrics;
  /// Span-end wall time. Diagnostic only: EXCLUDED from Id() so traces stay
  /// permutation-comparable across runs and thread counts.
  double elapsed_ms = -1;

  /// Deterministic identity string covering every field except elapsed_ms.
  std::string Id() const;
};

/// Shortest round-trip decimal rendering of `v` (std::to_chars): the same
/// double always renders to the same bytes, machine-independently.
std::string FormatTraceDouble(double v);

/// Appends `s` JSON-escaped (no surrounding quotes) to `*out`.
void AppendJsonEscaped(std::string_view s, std::string* out);

/// Appends one event as a single-line JSON object. Unset coordinates
/// (iteration/column/sample = -1), empty detail/metrics, and elapsed_ms < 0
/// are omitted; kind/phase/name/value are always present.
void AppendTraceEventJson(const TraceEvent& event, std::string* out);

/// Renders a whole trace as `{"schema_version":1,"events":[...]}` (the
/// service's GET /v1/jobs/{id}/trace body; also valid check_trace.py input).
std::string TraceEventsToJson(const std::vector<TraceEvent>& events);

/// \brief Abstract sink. Implementations must tolerate concurrent Emit()
/// calls from the search's worker pool.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Records one event. Thread-safe.
  virtual void Emit(TraceEvent event) = 0;

  // Convenience emitters (forward to Emit). On a null sink pointer, call
  // sites skip these entirely — do not add null checks here.
  void SpanBegin(std::string_view phase, std::string_view name);
  void SpanEnd(std::string_view phase, std::string_view name,
               double elapsed_ms);
  void Counter(std::string_view phase, std::string_view name, double value);
};

/// \brief RAII span: emits kSpanBegin on construction and kSpanEnd (with
/// elapsed_ms) on destruction. A null sink makes both no-ops. Spans are
/// emitted from the orchestrating thread only (begin/end pairs never race
/// their own phase).
class TraceSpan {
 public:
  TraceSpan(TraceSink* sink, std::string phase, std::string name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceSink* sink_;
  std::string phase_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

/// \brief Lock-sharded in-memory sink. Emit() appends to one of kShards
/// thread-keyed shards (uncontended in the common case); Events() snapshots
/// all shards in shard order. Event order within the snapshot is NOT
/// deterministic across thread counts — consumers needing a canonical order
/// use CanonicalEvents() (sorted by Id()).
class InMemoryTraceSink : public TraceSink {
 public:
  InMemoryTraceSink();
  ~InMemoryTraceSink() override;

  void Emit(TraceEvent event) override;

  /// Copies out every event recorded so far (shard concatenation order).
  std::vector<TraceEvent> Events() const;
  /// Events() sorted by Id(): the canonical permutation-independent order.
  std::vector<TraceEvent> CanonicalEvents() const;

  uint64_t event_count() const {
    // ordering: relaxed — monotonic counter; readers need a count, not a
    // happens-before edge (shard contents are read under the shard locks).
    return events_.load(std::memory_order_relaxed);
  }
  // ordering: relaxed — same monotonic-counter discipline as event_count().
  uint64_t span_count() const { return spans_.load(std::memory_order_relaxed); }

  void Clear();

 private:
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable Mutex mu;
    std::vector<TraceEvent> events MCSM_GUARDED_BY(mu);
  };
  Shard& ShardForThisThread();

  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> events_{0};
  std::atomic<uint64_t> spans_{0};
};

/// \brief JSONL file sink: one JSON object per line, flushed on close.
/// Writes are serialized under one mutex (tracing to a file trades
/// throughput for a streamable artifact; use InMemoryTraceSink when emit
/// cost matters).
class JsonlTraceSink : public TraceSink {
 public:
  /// Opens (truncates) `path` for writing.
  static Result<std::unique_ptr<JsonlTraceSink>> Open(const std::string& path);
  ~JsonlTraceSink() override;

  void Emit(TraceEvent event) override;

  uint64_t event_count() const {
    // ordering: relaxed — monotonic counter read, no ordering needed.
    return events_.load(std::memory_order_relaxed);
  }
  // ordering: relaxed — monotonic counter read, no ordering needed.
  uint64_t span_count() const { return spans_.load(std::memory_order_relaxed); }

 private:
  explicit JsonlTraceSink(std::FILE* file) : file_(file) {}

  Mutex mu_;
  std::FILE* file_ MCSM_PT_GUARDED_BY(mu_);  ///< stream writes serialize on mu_
  std::atomic<uint64_t> events_{0};
  std::atomic<uint64_t> spans_{0};
};

/// \brief Discards everything. Exists so "tracing enabled but routed
/// nowhere" is expressible; the truly-disabled path is a null TraceSink*.
class NullTraceSink : public TraceSink {
 public:
  void Emit(TraceEvent event) override { (void)event; }
};

/// \brief Duplicates every event to two sinks (e.g. --trace=FILE --explain
/// wants both the JSONL artifact and the in-memory report source).
class TeeTraceSink : public TraceSink {
 public:
  TeeTraceSink(TraceSink* first, TraceSink* second)
      : first_(first), second_(second) {}

  void Emit(TraceEvent event) override {
    if (first_ != nullptr) first_->Emit(event);
    if (second_ != nullptr) second_->Emit(std::move(event));
  }

 private:
  TraceSink* first_;
  TraceSink* second_;
};

}  // namespace mcsm

#endif  // MCSM_COMMON_TRACE_H_
