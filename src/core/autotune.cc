#include "core/autotune.h"

#include <algorithm>

namespace mcsm::core {

namespace {

struct Probe {
  double fraction;
  size_t start_column;
  std::string initial_formula;  // empty when no formula reached support
};

Result<Probe> RunProbe(const relational::Table& source,
                       const relational::Table& target, size_t target_column,
                       SearchOptions options, double fraction) {
  options.sample_fraction = fraction;
  Probe probe;
  probe.fraction = fraction;
  TranslationSearch search(source, target, target_column, options);
  MCSM_ASSIGN_OR_RETURN(ColumnSelection selection, search.SelectStartColumn());
  probe.start_column = selection.best_column;
  auto formula = search.BuildInitialFormula(probe.start_column);
  if (formula.ok()) probe.initial_formula = formula->ToString();
  return probe;
}

}  // namespace

Result<AutoTuneResult> AutoTuneSampleFraction(
    const relational::Table& source, const relational::Table& target,
    size_t target_column, const SearchOptions& base_options,
    double min_fraction, double max_fraction) {
  if (min_fraction <= 0 || min_fraction > max_fraction) {
    return Status::InvalidArgument("invalid fraction range");
  }
  std::vector<Probe> probes;
  AutoTuneResult result;
  for (double fraction = min_fraction; fraction <= max_fraction * 1.0001;
       fraction *= 2.0) {
    fraction = std::min(fraction, max_fraction);
    MCSM_ASSIGN_OR_RETURN(
        Probe probe, RunProbe(source, target, target_column, base_options,
                              fraction));
    result.probed_fractions.push_back(fraction);
    probes.push_back(std::move(probe));
    // Stable once two consecutive probes agree on column and formula.
    if (probes.size() >= 2) {
      const Probe& prev = probes[probes.size() - 2];
      const Probe& cur = probes.back();
      if (!prev.initial_formula.empty() &&
          prev.start_column == cur.start_column &&
          prev.initial_formula == cur.initial_formula) {
        result.sample_fraction = prev.fraction;
        result.start_column = prev.start_column;
        result.initial_formula = prev.initial_formula;
        return result;
      }
    }
    if (fraction >= max_fraction) break;
  }
  // Nothing stabilized: fall back to the largest probe.
  const Probe& last = probes.back();
  if (last.initial_formula.empty()) {
    return Status::NotFound(
        "no sample fraction produced a supported initial formula");
  }
  result.sample_fraction = last.fraction;
  result.start_column = last.start_column;
  result.initial_formula = last.initial_formula;
  return result;
}

}  // namespace mcsm::core
