#ifndef MCSM_CORE_AUTOTUNE_H_
#define MCSM_CORE_AUTOTUNE_H_

#include <vector>

#include "common/result.h"
#include "core/search.h"

namespace mcsm::core {

/// \brief Section 7 (future work), implemented: automating the selection of
/// the sampling parameter.
///
/// The paper: "we are currently working on automating the selection of q and
/// of sampling parameters". The stability criterion follows Figures 1/2:
/// the sample is large enough once the Step-1 column ranking and the Step-2
/// initial-formula winner stop changing as the sample grows.
struct AutoTuneResult {
  double sample_fraction;     ///< smallest stable fraction found
  size_t start_column;        ///< the stable start column
  std::string initial_formula;  ///< the stable initial formula (rendered)
  /// The fractions probed and whether each agreed with the next one.
  std::vector<double> probed_fractions;
};

/// Probes geometrically growing sample fractions (from `min_fraction` up to
/// `max_fraction`) and returns the smallest one whose start column and
/// initial formula agree with the next larger probe. Falls back to
/// `max_fraction` when nothing stabilizes. All other options are taken from
/// `base_options`.
Result<AutoTuneResult> AutoTuneSampleFraction(
    const relational::Table& source, const relational::Table& target,
    size_t target_column, const SearchOptions& base_options = {},
    double min_fraction = 0.005, double max_fraction = 0.32);

}  // namespace mcsm::core

#endif  // MCSM_CORE_AUTOTUNE_H_
