#include "core/column_scorer.h"

#include <cmath>

#include "relational/sampler.h"

namespace mcsm::core {

double ColumnScorer::ScoreKeys(const std::vector<std::string>& keys,
                               const relational::ColumnIndex& target_index,
                               const Options& options) {
  if (keys.empty()) return 0.0;
  const size_t q = target_index.q();
  double hit_count = 0.0;
  for (const auto& key : keys) {
    if (key.empty()) continue;
    double localc = 0.0;
    if (options.mode == CountMode::kTotalHits) {
      localc = static_cast<double>(
          target_index.TotalQGramHits(key, options.excluded_chars));
    } else {
      localc = static_cast<double>(target_index.RowsWithAnyQGram(key));
    }
    hit_count += localc / static_cast<double>(key.size());
  }
  double average_overlap = hit_count / static_cast<double>(keys.size());
  return std::pow(average_overlap, static_cast<double>(q));
}

double ColumnScorer::ScoreColumn(const relational::ColumnIndex& source_index,
                                 const relational::ColumnIndex& target_index,
                                 const Options& options) {
  std::vector<std::string> keys = relational::SampleDistinctValues(
      source_index, options.sample_fraction, options.min_sample);
  return ScoreKeys(keys, target_index, options);
}

}  // namespace mcsm::core
