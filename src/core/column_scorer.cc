#include "core/column_scorer.h"

#include <cmath>

#include "relational/sampler.h"

namespace mcsm::core {

double ColumnScorer::ScoreKeys(const std::vector<std::string>& keys,
                               const relational::ColumnIndex& target_index,
                               const Options& options) {
  if (keys.empty()) return 0.0;
  const size_t q = target_index.q();
  double hit_count = 0.0;
  for (size_t j = 0; j < keys.size(); ++j) {
    const auto& key = keys[j];
    if (key.empty()) continue;
    double localc = 0.0;
    if (options.mode == CountMode::kTotalHits) {
      localc = static_cast<double>(
          target_index.TotalQGramHits(key, options.excluded_chars));
    } else {
      localc = static_cast<double>(target_index.RowsWithAnyQGram(key));
    }
    const double contribution = localc / static_cast<double>(key.size());
    if (options.trace != nullptr) {
      // Eq. 1 per-key evidence: HitCount(j) / length(key_j).
      TraceEvent event;
      event.phase = "step1";
      event.name = "key_score";
      event.column = options.trace_column;
      event.sample = static_cast<int64_t>(j);
      event.value = contribution;
      event.detail = key;
      options.trace->Emit(std::move(event));
    }
    hit_count += contribution;
  }
  double average_overlap = hit_count / static_cast<double>(keys.size());
  return std::pow(average_overlap, static_cast<double>(q));
}

double ColumnScorer::ScoreColumn(const relational::ColumnIndex& source_index,
                                 const relational::ColumnIndex& target_index,
                                 const Options& options) {
  std::vector<std::string> keys = relational::SampleDistinctValues(
      source_index, options.sample_fraction, options.min_sample);
  return ScoreKeys(keys, target_index, options);
}

}  // namespace mcsm::core
