#ifndef MCSM_CORE_COLUMN_SCORER_H_
#define MCSM_CORE_COLUMN_SCORER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/trace.h"
#include "relational/column_index.h"

namespace mcsm::core {

/// \brief Step 1: scoring source columns by q-gram overlap with the target
/// column (Algorithm 2 / Equation 1).
///
/// ScoreCol = ( sum_j HitCount(j) / (t * length(key_j)) )^q over the t keys
/// sampled equidistantly from the column's distinct values. HitCount(j)
/// counts q-gram hits of key_j in the target column; the paper's wording
/// admits two readings, both implemented (see CountMode).
class ColumnScorer {
 public:
  enum class CountMode {
    /// Sum over the key's q-grams (with multiplicity) of the target-column
    /// document frequency. Default: matches the score magnitudes of the
    /// paper's Figures 1-2.
    kTotalHits,
    /// Number of distinct target rows containing at least one q-gram of the
    /// key (requires target postings). Ablation alternative.
    kRowsHit,
  };

  struct Options {
    double sample_fraction = 0.10;
    size_t min_sample = 1;
    CountMode mode = CountMode::kTotalHits;
    /// Characters never used in search q-grams (separator template active).
    std::string excluded_chars;
    /// When set, ScoreKeys emits one "key_score" decision per sampled key
    /// (phase "step1", column = trace_column, sample = key index, value =
    /// the key's normalized hit contribution). Null disables with a single
    /// branch. Not owned.
    TraceSink* trace = nullptr;
    /// The source column the keys were sampled from (trace identity).
    int64_t trace_column = -1;
  };

  /// Scores one source column (its index provides the distinct values to
  /// sample) against the target column index.
  static double ScoreColumn(const relational::ColumnIndex& source_index,
                            const relational::ColumnIndex& target_index,
                            const Options& options);

  /// Scores a column from an explicit key sample (used by the sample-size
  /// sweep benchmarks, Figures 1-2).
  static double ScoreKeys(const std::vector<std::string>& keys,
                          const relational::ColumnIndex& target_index,
                          const Options& options);
};

}  // namespace mcsm::core

#endif  // MCSM_CORE_COLUMN_SCORER_H_
