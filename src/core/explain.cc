#include "core/explain.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace mcsm::core {

namespace {

/// One scored line of the report (a candidate formula, an initial
/// candidate, or an outcome decision).
struct Line {
  int64_t column = -1;
  int64_t sample = -1;
  double value = 0;
  std::string detail;
  std::vector<std::pair<std::string, double>> metrics;

  double Metric(const char* key, double fallback = 0) const {
    for (const auto& [k, v] : metrics) {
      if (k == key) return v;
    }
    return fallback;
  }
};

Line ToLine(const TraceEvent& event) {
  Line line;
  line.column = event.column;
  line.sample = event.sample;
  line.value = event.value;
  line.detail = event.detail;
  line.metrics = event.metrics;
  return line;
}

struct IterationReport {
  std::vector<Line> candidates;  ///< score desc, detail asc
  bool has_winner = false;
  Line winner;
  bool no_improvement = false;
  Line kept;
};

/// The canonicalized decision model assembled from any permutation of the
/// trace (sorting keys never involve emission order).
struct Model {
  std::vector<Line> column_scores;  ///< score desc, column asc
  bool has_start = false;
  Line start;
  std::vector<Line> initial;  ///< (column, rank) asc
  std::map<int64_t, IterationReport> iterations;
  std::vector<Line> rejects;    ///< coverage_reject, Id-sorted
  std::vector<Line> accepted;   ///< usually 0 or 1
  std::vector<Line> trips;      ///< budget_trip
  std::vector<Line> failpoints;
  size_t total_events = 0;
  size_t recipe_events = 0;
  size_t key_score_events = 0;
};

Model BuildModel(const std::vector<TraceEvent>& events) {
  Model model;
  model.total_events = events.size();
  for (const TraceEvent& event : events) {
    if (event.phase == "step1" && event.name == "column_score") {
      model.column_scores.push_back(ToLine(event));
    } else if (event.phase == "step1" && event.name == "start_column") {
      model.has_start = true;
      model.start = ToLine(event);
    } else if (event.phase == "step1" && event.name == "key_score") {
      ++model.key_score_events;
    } else if (event.phase == "step2" && event.name == "initial_candidate") {
      model.initial.push_back(ToLine(event));
    } else if (event.name == "recipe") {
      ++model.recipe_events;
    } else if (event.phase == "refine" && event.name == "candidate_formula") {
      model.iterations[event.iteration].candidates.push_back(ToLine(event));
    } else if (event.phase == "refine" && event.name == "iteration_winner") {
      IterationReport& it = model.iterations[event.iteration];
      it.has_winner = true;
      it.winner = ToLine(event);
    } else if (event.phase == "refine" && event.name == "no_improvement") {
      IterationReport& it = model.iterations[event.iteration];
      it.no_improvement = true;
      it.kept = ToLine(event);
    } else if (event.phase == "run" && event.name == "coverage_reject") {
      model.rejects.push_back(ToLine(event));
    } else if (event.phase == "run" && event.name == "accepted") {
      model.accepted.push_back(ToLine(event));
    } else if (event.phase == "run" && event.name == "budget_trip") {
      model.trips.push_back(ToLine(event));
    } else if (event.name == "failpoint") {
      model.failpoints.push_back(ToLine(event));
    }
  }

  auto by_score_then_detail = [](const Line& a, const Line& b) {
    if (a.value != b.value) return a.value > b.value;
    if (a.detail != b.detail) return a.detail < b.detail;
    return a.column < b.column;
  };
  std::sort(model.column_scores.begin(), model.column_scores.end(),
            [](const Line& a, const Line& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.column < b.column;
            });
  std::sort(model.initial.begin(), model.initial.end(),
            [](const Line& a, const Line& b) {
              if (a.column != b.column) return a.column < b.column;
              return a.sample < b.sample;
            });
  for (auto& [iter, report] : model.iterations) {
    std::sort(report.candidates.begin(), report.candidates.end(),
              by_score_then_detail);
  }
  auto by_detail = [](const Line& a, const Line& b) {
    if (a.detail != b.detail) return a.detail < b.detail;
    if (a.column != b.column) return a.column < b.column;
    return a.value < b.value;
  };
  std::sort(model.rejects.begin(), model.rejects.end(), by_detail);
  std::sort(model.accepted.begin(), model.accepted.end(), by_detail);
  std::sort(model.trips.begin(), model.trips.end(), by_detail);
  std::sort(model.failpoints.begin(), model.failpoints.end(), by_detail);
  return model;
}

void AppendLineJson(const Line& line, std::string* out) {
  *out += '{';
  if (line.column >= 0) {
    *out += "\"column\":";
    *out += std::to_string(line.column);
    *out += ',';
  }
  *out += "\"value\":";
  *out += FormatTraceDouble(line.value);
  if (!line.detail.empty()) {
    *out += ",\"detail\":\"";
    AppendJsonEscaped(line.detail, out);
    *out += '"';
  }
  if (!line.metrics.empty()) {
    *out += ",\"metrics\":{";
    bool first = true;
    for (const auto& [k, v] : line.metrics) {
      if (!first) *out += ',';
      first = false;
      *out += '"';
      AppendJsonEscaped(k, out);
      *out += "\":";
      *out += FormatTraceDouble(v);
    }
    *out += '}';
  }
  *out += '}';
}

}  // namespace

std::string ExplainText(const std::vector<TraceEvent>& events,
                        const ExplainOptions& options) {
  Model model = BuildModel(events);
  std::string out;
  out += "=== discovery explain ===\n";
  out += StrFormat("trace: %zu events (%zu recipe alignments, %zu key probes)\n",
                   model.total_events, model.recipe_events,
                   model.key_score_events);

  out += "step 1 - column selection (Eq. 1)\n";
  if (model.column_scores.empty()) {
    out += "  (no column scores traced)\n";
  }
  for (const Line& line : model.column_scores) {
    bool selected = model.has_start && line.column == model.start.column;
    out += StrFormat("  column %lld  score %s%s\n",
                     static_cast<long long>(line.column),
                     FormatTraceDouble(line.value).c_str(),
                     selected ? "   << selected" : "");
  }

  out += "step 2 - initial formula candidates\n";
  if (model.initial.empty()) {
    out += "  (none reached min_support)\n";
  }
  size_t shown = 0;
  for (const Line& line : model.initial) {
    if (shown >= options.max_initial_candidates) {
      out += StrFormat("  ... %zu more\n", model.initial.size() - shown);
      break;
    }
    ++shown;
    out += StrFormat("  #%lld  %s  (column %lld, support %s, weighted %s)\n",
                     static_cast<long long>(line.sample), line.detail.c_str(),
                     static_cast<long long>(line.column),
                     FormatTraceDouble(line.Metric("support")).c_str(),
                     FormatTraceDouble(line.value).c_str());
  }

  out += "refinement (Eq. 5 ScoreTrans)\n";
  if (model.iterations.empty()) {
    out += "  (no refinement iterations)\n";
  }
  for (const auto& [iter, report] : model.iterations) {
    out += StrFormat("  iteration %lld:\n", static_cast<long long>(iter));
    size_t listed = 0;
    for (const Line& cand : report.candidates) {
      if (listed >= options.max_candidates_per_iteration) {
        out += StrFormat("    ... %zu more candidates\n",
                         report.candidates.size() - listed);
        break;
      }
      ++listed;
      out += StrFormat(
          "    candidate %s  score %s  (freq %s / width %s, support %s, "
          "column %lld)\n",
          cand.detail.c_str(), FormatTraceDouble(cand.value).c_str(),
          FormatTraceDouble(cand.Metric("frequency")).c_str(),
          FormatTraceDouble(cand.Metric("width_penalty")).c_str(),
          FormatTraceDouble(cand.Metric("support")).c_str(),
          static_cast<long long>(cand.column));
    }
    if (report.has_winner) {
      out += StrFormat("    -> winner %s  (column %lld, score %s)\n",
                       report.winner.detail.c_str(),
                       static_cast<long long>(report.winner.column),
                       FormatTraceDouble(report.winner.value).c_str());
    } else if (report.no_improvement) {
      out += StrFormat("    -> no improvement, kept %s\n",
                       report.kept.detail.c_str());
    }
  }

  out += "outcome\n";
  for (const Line& line : model.failpoints) {
    out += StrFormat("  failpoint: %s\n", line.detail.c_str());
  }
  for (const Line& line : model.rejects) {
    out += StrFormat("  rejected %s  coverage %s (floor %s)\n",
                     line.detail.c_str(),
                     FormatTraceDouble(line.value).c_str(),
                     FormatTraceDouble(line.Metric("floor")).c_str());
  }
  for (const Line& line : model.trips) {
    out += StrFormat("  budget tripped: %s\n", line.detail.c_str());
  }
  for (const Line& line : model.accepted) {
    out += StrFormat("  accepted %s  coverage %s (floor %s)\n",
                     line.detail.c_str(),
                     FormatTraceDouble(line.value).c_str(),
                     FormatTraceDouble(line.Metric("floor")).c_str());
  }
  if (model.rejects.empty() && model.accepted.empty() && model.trips.empty() &&
      model.failpoints.empty()) {
    out += "  (no outcome decisions traced)\n";
  }
  return out;
}

std::string ExplainJson(const std::vector<TraceEvent>& events,
                        const ExplainOptions& options) {
  Model model = BuildModel(events);
  std::string out = "{\"schema_version\":1";
  out += ",\"event_count\":";
  out += std::to_string(model.total_events);
  out += ",\"recipe_count\":";
  out += std::to_string(model.recipe_events);

  out += ",\"step1\":{\"scores\":[";
  bool first = true;
  for (const Line& line : model.column_scores) {
    if (!first) out += ',';
    first = false;
    AppendLineJson(line, &out);
  }
  out += ']';
  if (model.has_start) {
    out += ",\"selected\":";
    out += std::to_string(model.start.column);
  }
  out += '}';

  out += ",\"initial_candidates\":[";
  first = true;
  size_t shown = 0;
  for (const Line& line : model.initial) {
    if (shown >= options.max_initial_candidates) break;
    ++shown;
    if (!first) out += ',';
    first = false;
    AppendLineJson(line, &out);
  }
  out += ']';

  out += ",\"iterations\":[";
  first = true;
  for (const auto& [iter, report] : model.iterations) {
    if (!first) out += ',';
    first = false;
    out += "{\"iteration\":";
    out += std::to_string(iter);
    out += ",\"candidates\":[";
    bool cfirst = true;
    size_t listed = 0;
    for (const Line& cand : report.candidates) {
      if (listed >= options.max_candidates_per_iteration) break;
      ++listed;
      if (!cfirst) out += ',';
      cfirst = false;
      AppendLineJson(cand, &out);
    }
    out += ']';
    if (report.has_winner) {
      out += ",\"winner\":";
      AppendLineJson(report.winner, &out);
    } else if (report.no_improvement) {
      out += ",\"no_improvement\":";
      AppendLineJson(report.kept, &out);
    }
    out += '}';
  }
  out += ']';

  out += ",\"outcome\":{\"rejected\":[";
  first = true;
  for (const Line& line : model.rejects) {
    if (!first) out += ',';
    first = false;
    AppendLineJson(line, &out);
  }
  out += "],\"accepted\":[";
  first = true;
  for (const Line& line : model.accepted) {
    if (!first) out += ',';
    first = false;
    AppendLineJson(line, &out);
  }
  out += "],\"budget_trips\":[";
  first = true;
  for (const Line& line : model.trips) {
    if (!first) out += ',';
    first = false;
    AppendLineJson(line, &out);
  }
  out += "],\"failpoints\":[";
  first = true;
  for (const Line& line : model.failpoints) {
    if (!first) out += ',';
    first = false;
    AppendLineJson(line, &out);
  }
  out += "]}}";
  return out;
}

}  // namespace mcsm::core
