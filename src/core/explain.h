#ifndef MCSM_CORE_EXPLAIN_H_
#define MCSM_CORE_EXPLAIN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/trace.h"

namespace mcsm::core {

/// \brief Renders a discovery trace into the "why this formula won" decision
/// log, in text or JSON.
///
/// Input is any permutation of the event set a traced search emitted (see
/// common/trace.h — 1/2/8-thread traces are permutations of each other); the
/// report canonicalizes internally, so the rendering is byte-identical for
/// every thread count. Events the report does not understand are counted but
/// otherwise ignored, so the renderer stays forward-compatible with new
/// event names.

struct ExplainOptions {
  /// Top-N candidate formulas shown per refinement iteration (by score).
  size_t max_candidates_per_iteration = 5;
  /// Top-N initial candidates shown for step 2.
  size_t max_initial_candidates = 5;
};

/// Human-readable decision log.
std::string ExplainText(const std::vector<TraceEvent>& events,
                        const ExplainOptions& options = {});

/// The same report as one JSON object (schema_version 1).
std::string ExplainJson(const std::vector<TraceEvent>& events,
                        const ExplainOptions& options = {});

}  // namespace mcsm::core

#endif  // MCSM_CORE_EXPLAIN_H_
