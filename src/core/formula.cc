#include "core/formula.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace mcsm::core {

TranslationFormula::TranslationFormula(std::vector<Region> regions) {
  // Normalize: merge adjacent regions that denote the same thing.
  for (auto& r : regions) {
    if (!regions_.empty()) {
      Region& last = regions_.back();
      if (r.kind == Region::Kind::kUnknown &&
          last.kind == Region::Kind::kUnknown) {
        // %% == %; sized unknowns accumulate, mixing with an unsized one
        // degrades to unsized.
        if (last.unknown_width > 0 && r.unknown_width > 0) {
          last.unknown_width += r.unknown_width;
        } else {
          last.unknown_width = 0;
        }
        continue;
      }
      if (r.kind == Region::Kind::kLiteral &&
          last.kind == Region::Kind::kLiteral) {
        last.literal += r.literal;
        continue;
      }
      if (r.kind == Region::Kind::kColumnSpan &&
          last.kind == Region::Kind::kColumnSpan && !last.to_end &&
          last.column == r.column && r.start == last.end + 1) {
        // Contiguous spans of the same column, e.g. [1-3][4-6] -> [1-6].
        last.end = r.end;
        last.to_end = r.to_end;
        continue;
      }
    }
    regions_.push_back(std::move(r));
  }
}

bool TranslationFormula::IsComplete() const {
  return UnknownCount() == 0 && !regions_.empty();
}

size_t TranslationFormula::UnknownCount() const {
  size_t count = 0;
  for (const auto& r : regions_) {
    if (r.kind == Region::Kind::kUnknown) ++count;
  }
  return count;
}

size_t TranslationFormula::KnownFixedChars() const {
  size_t total = 0;
  for (const auto& r : regions_) {
    auto len = r.FixedLength();
    if (len.has_value()) total += *len;
  }
  return total;
}

std::string TranslationFormula::ToString() const {
  return ToString(relational::Schema{});
}

std::string TranslationFormula::ToString(const relational::Schema& schema) const {
  std::string out;
  for (const auto& r : regions_) {
    switch (r.kind) {
      case Region::Kind::kUnknown:
        if (r.unknown_width > 0) {
          out += StrFormat("%%{%zu}", r.unknown_width);
        } else {
          out += "%";
        }
        break;
      case Region::Kind::kColumnSpan: {
        std::string name = r.column < schema.num_columns()
                               ? schema.column(r.column).name
                               : StrFormat("B%zu", r.column + 1);
        if (r.to_end) {
          out += StrFormat("%s[%zu-n]", name.c_str(), r.start);
        } else {
          out += StrFormat("%s[%zu-%zu]", name.c_str(), r.start, r.end);
        }
        break;
      }
      case Region::Kind::kLiteral:
        out += "\"" + r.literal + "\"";
        break;
    }
  }
  return out;
}

std::optional<std::string> TranslationFormula::Apply(
    const relational::Table& source, size_t row) const {
  std::string out;
  for (const auto& r : regions_) {
    switch (r.kind) {
      case Region::Kind::kUnknown:
        return std::nullopt;  // incomplete formulas cannot be applied
      case Region::Kind::kLiteral:
        out += r.literal;
        break;
      case Region::Kind::kColumnSpan: {
        MCSM_DCHECK(r.start >= 1);
        const relational::TextView cell = source.TextAt(row, r.column);
        const std::string_view value = cell.view();
        if (r.to_end) {
          // Needs at least one character from `start`.
          if (value.size() < r.start) return std::nullopt;
          out += SafeSubstr(value, r.start - 1);
        } else {
          // The span must be fully available (the emitted SQL guards with
          // char_length(substring(...)) = width).
          MCSM_DCHECK(r.end >= r.start);
          if (value.size() < r.end) return std::nullopt;
          out += SafeSubstr(value, r.start - 1, r.end - r.start + 1);
        }
        break;
      }
    }
  }
  return out;
}

std::optional<relational::SearchPattern> TranslationFormula::BuildPattern(
    const relational::Table& source, size_t row) const {
  std::vector<relational::SearchPattern::Segment> segments;
  for (const auto& r : regions_) {
    switch (r.kind) {
      case Region::Kind::kUnknown:
        // An Unknown region stands for at least one unexplained character;
        // on fixed-width targets its exact width is known.
        segments.push_back({true, true, r.unknown_width, ""});
        break;
      case Region::Kind::kLiteral:
        segments.push_back({false, false, 0, r.literal});
        break;
      case Region::Kind::kColumnSpan: {
        MCSM_DCHECK(r.start >= 1);
        const relational::TextView cell = source.TextAt(row, r.column);
        const std::string_view value = cell.view();
        if (r.to_end) {
          if (value.size() < r.start) return std::nullopt;
          segments.push_back(
              {false, false, 0, std::string(SafeSubstr(value, r.start - 1))});
        } else {
          MCSM_DCHECK(r.end >= r.start);
          if (value.size() < r.end) return std::nullopt;
          segments.push_back({false, false, 0,
                              std::string(SafeSubstr(
                                  value, r.start - 1, r.end - r.start + 1))});
        }
        break;
      }
    }
  }
  return relational::SearchPattern(std::move(segments));
}

std::vector<size_t> TranslationFormula::ReferencedColumns() const {
  std::vector<size_t> cols;
  for (const auto& r : regions_) {
    if (r.kind == Region::Kind::kColumnSpan) cols.push_back(r.column);
  }
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

}  // namespace mcsm::core
