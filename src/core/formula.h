#ifndef MCSM_CORE_FORMULA_H_
#define MCSM_CORE_FORMULA_H_

#include <optional>
#include <string>
#include <vector>

#include "relational/pattern.h"
#include "relational/table.h"

namespace mcsm::core {

/// \brief One region omega_i of a translation formula (Section 3.1/3.3.3).
///
/// A region is one of:
///  - Unknown ("%"): a target segment not yet explained;
///  - ColumnSpan: characters [start..end] (1-based, inclusive) of a source
///    column, or [start..n] to end-of-string when `to_end` is set;
///  - Literal: a fixed separator string not copied from any source column
///    (Section 6.1).
struct Region {
  enum class Kind { kUnknown, kColumnSpan, kLiteral };

  Kind kind = Kind::kUnknown;
  size_t column = 0;    ///< source column index (kColumnSpan)
  size_t start = 1;     ///< 1-based first char (kColumnSpan)
  size_t end = 0;       ///< 1-based last char, used when !to_end (kColumnSpan)
  bool to_end = false;  ///< span runs to the end of the value ("[x-n]")
  std::string literal;  ///< kLiteral payload
  /// For kUnknown on fixed-width target columns: the exact number of
  /// unexplained characters (0 = unsized, variable-width). The paper notes
  /// that fixed-field recipes align by absolute location (Section 3.3.3);
  /// sizing the unknowns is what preserves that alignment, so "X at
  /// positions 3-4" and "X at positions 5-6" stay distinct candidates.
  size_t unknown_width = 0;

  static Region Unknown() { return Region{}; }
  static Region SizedUnknown(size_t width) {
    Region r;
    r.unknown_width = width;
    return r;
  }
  static Region Span(size_t column, size_t start, size_t end) {
    Region r;
    r.kind = Kind::kColumnSpan;
    r.column = column;
    r.start = start;
    r.end = end;
    return r;
  }
  static Region SpanToEnd(size_t column, size_t start) {
    Region r;
    r.kind = Kind::kColumnSpan;
    r.column = column;
    r.start = start;
    r.to_end = true;
    return r;
  }
  static Region Literal(std::string text) {
    Region r;
    r.kind = Kind::kLiteral;
    r.literal = std::move(text);
    return r;
  }

  /// Fixed character count of the region; nullopt for Unknown and to_end
  /// spans (whose width depends on the instance).
  std::optional<size_t> FixedLength() const {
    if (kind == Kind::kLiteral) return literal.size();
    if (kind == Kind::kColumnSpan && !to_end) return end - start + 1;
    return std::nullopt;
  }

  bool operator==(const Region&) const = default;
};

/// \brief A translation formula: the ordered concatenation of regions that
/// produces a target value from one source row (A = w1 + w2 + ... + wk).
///
/// Formulas are value types with structural equality; candidate formulas are
/// collated and voted on by their normalized form (adjacent unknowns merged,
/// adjacent contiguous same-column spans merged, adjacent literals merged).
class TranslationFormula {
 public:
  TranslationFormula() = default;
  explicit TranslationFormula(std::vector<Region> regions);

  const std::vector<Region>& regions() const { return regions_; }
  bool empty() const { return regions_.empty(); }

  /// True when no Unknown region remains (the search succeeded fully).
  bool IsComplete() const;

  size_t UnknownCount() const;

  /// Number of characters explained by fixed spans/literals (a tie-break
  /// heuristic: more explained characters = more specific formula).
  size_t KnownFixedChars() const;

  /// Paper-style rendering, e.g. "%B3[1-n]" or "first[1-1]last[1-n]" when a
  /// schema provides column names. Literal regions render in quotes.
  std::string ToString() const;
  std::string ToString(const relational::Schema& schema) const;

  /// Applies the formula to `row` of `source`. Requires IsComplete().
  /// Returns nullopt when a span is unsatisfiable for the row (NULL value or
  /// value shorter than the span requires).
  std::optional<std::string> Apply(const relational::Table& source,
                                   size_t row) const;

  /// Builds the retrieval pattern for `row`: known regions instantiated from
  /// the row's values, Unknown regions as '%' wildcards (Section 3.4.1).
  /// Returns nullopt when a known region is unsatisfiable for the row.
  std::optional<relational::SearchPattern> BuildPattern(
      const relational::Table& source, size_t row) const;

  /// The source columns referenced by ColumnSpan regions, deduplicated.
  std::vector<size_t> ReferencedColumns() const;

  bool operator==(const TranslationFormula& other) const {
    return regions_ == other.regions_;
  }

 private:
  std::vector<Region> regions_;
};

}  // namespace mcsm::core

#endif  // MCSM_CORE_FORMULA_H_
