#include "core/matcher.h"

#include <algorithm>

namespace mcsm::core {

Result<DiscoveredTranslation> DiscoverTranslation(
    const relational::Table& source, const relational::Table& target,
    size_t target_column, const SearchOptions& options,
    const SqlEmitter::Options& sql_options) {
  if (target_column >= target.num_columns()) {
    return Status::OutOfRange("target column index out of range");
  }
  MCSM_RETURN_IF_ERROR(options.Validate());
  TranslationSearch search(source, target, target_column, options);
  DiscoveredTranslation out;
  MCSM_ASSIGN_OR_RETURN(out.search, search.Run());
  if (out.search.formula.IsComplete()) {
    out.coverage = TranslationSearch::ComputeCoverage(
        out.search.formula, source, target, target_column);
    SqlEmitter::Options emit = sql_options;
    if (emit.output_column == "translated") {
      emit.output_column = target.schema().column(target_column).name;
    }
    auto sql = SqlEmitter::ToSql(out.search.formula, source.schema(), emit);
    if (sql.ok()) out.sql = std::move(sql).value();
  }
  return out;
}

Result<std::vector<DiscoveredTranslation>> DiscoverAllTranslations(
    relational::Table source, relational::Table target, size_t target_column,
    const SearchOptions& options, size_t max_formulas,
    size_t min_matched_rows) {
  std::vector<DiscoveredTranslation> out;
  for (size_t round = 0; round < max_formulas; ++round) {
    if (source.num_rows() == 0 || target.num_rows() == 0) break;
    if (TraceSink* trace = options.env.trace) {
      // Match-and-remove round boundary: rows remaining when it starts.
      TraceEvent event;
      event.phase = "matcher";
      event.name = "round";
      event.iteration = static_cast<int64_t>(round);
      event.value = static_cast<double>(source.num_rows());
      event.metrics.emplace_back("target_rows",
                                 static_cast<double>(target.num_rows()));
      trace->Emit(std::move(event));
    }
    auto discovered =
        DiscoverTranslation(source, target, target_column, options);
    if (!discovered.ok()) {
      // First round: the caller's input never produced anything — a real
      // error, not an exhausted match-and-remove loop. Later rounds: NotFound
      // is the expected "no further dominant formula" terminator; anything
      // else (I/O fault, injected failure) still propagates.
      if (round == 0 || !discovered.status().IsNotFound()) {
        return discovered.status();
      }
      break;
    }
    DiscoveredTranslation& d = *discovered;
    if (d.search.truncated) {
      // Anytime semantics: surface the partial round and stop — the tripped
      // budget would trip again immediately on the leftover rows.
      out.push_back(std::move(d));
      break;
    }
    if (!d.formula().IsComplete() ||
        d.coverage.matched_rows() < min_matched_rows) {
      break;  // no further dominant formula
    }
    // Remove matched rows from both tables and continue (Section 4.1).
    std::vector<size_t> source_rows, target_rows;
    source_rows.reserve(d.coverage.matches.size());
    target_rows.reserve(d.coverage.matches.size());
    for (const auto& m : d.coverage.matches) {
      source_rows.push_back(m.source_row);
      target_rows.push_back(m.target_row);
    }
    out.push_back(std::move(d));
    MCSM_RETURN_IF_ERROR(source.RemoveRows(source_rows));
    MCSM_RETURN_IF_ERROR(target.RemoveRows(target_rows));
  }
  return out;
}

std::vector<size_t> BuildLinkage(const TranslationFormula& known_formula,
                                 const relational::Table& source,
                                 const relational::Table& target,
                                 size_t known_target_column) {
  std::vector<size_t> linkage(source.num_rows(), TranslationSearch::kNoLink);
  Coverage coverage = TranslationSearch::ComputeCoverage(
      known_formula, source, target, known_target_column);
  for (const auto& m : coverage.matches) {
    linkage[m.source_row] = m.target_row;
  }
  return linkage;
}

}  // namespace mcsm::core
