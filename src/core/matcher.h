#ifndef MCSM_CORE_MATCHER_H_
#define MCSM_CORE_MATCHER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/column_scorer.h"
#include "core/formula.h"
#include "core/recipe.h"
#include "core/search.h"
#include "core/separator.h"
#include "core/sql_emitter.h"
#include "relational/table.h"

namespace mcsm::core {

/// \brief One discovered translation, packaged with its evidence.
struct DiscoveredTranslation {
  SearchResult search;
  Coverage coverage;   ///< source/target rows the formula links
  std::string sql;     ///< emitted SQL (empty when the formula is incomplete)

  const TranslationFormula& formula() const { return search.formula; }
};

/// Runs the full search once and packages formula + coverage + SQL.
/// `sql_options.output_column` defaults to the target column's name.
Result<DiscoveredTranslation> DiscoverTranslation(
    const relational::Table& source, const relational::Table& target,
    size_t target_column, const SearchOptions& options = {},
    const SqlEmitter::Options& sql_options = {});

/// Match-and-remove loop (Section 4.1): discovers a translation, removes the
/// rows it covers from both tables, and repeats — returning the dominant
/// formulas in decreasing coverage order. Stops after `max_formulas`, when a
/// search fails, or when a formula covers fewer than `min_matched_rows` rows.
/// Copies of the tables are consumed internally; the originals are untouched.
Result<std::vector<DiscoveredTranslation>> DiscoverAllTranslations(
    relational::Table source, relational::Table target, size_t target_column,
    const SearchOptions& options = {}, size_t max_formulas = 4,
    size_t min_matched_rows = 2);

/// Builds a source-row -> target-row linkage from a known (complete)
/// translation for `known_target_column` — the Section 6.2 prerequisite for
/// constraining the search for a second target column.
std::vector<size_t> BuildLinkage(const TranslationFormula& known_formula,
                                 const relational::Table& source,
                                 const relational::Table& target,
                                 size_t known_target_column);

}  // namespace mcsm::core

#endif  // MCSM_CORE_MATCHER_H_
