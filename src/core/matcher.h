#ifndef MCSM_CORE_MATCHER_H_
#define MCSM_CORE_MATCHER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/column_scorer.h"
#include "core/formula.h"
#include "core/recipe.h"
#include "core/search.h"
#include "core/separator.h"
#include "core/sql_emitter.h"
#include "relational/table.h"

namespace mcsm::core {

/// \brief One discovered translation, packaged with its evidence.
struct DiscoveredTranslation {
  SearchResult search;
  Coverage coverage;   ///< source/target rows the formula links
  std::string sql;     ///< emitted SQL (empty when the formula is incomplete)

  const TranslationFormula& formula() const { return search.formula; }
  /// True when the run budget tripped and `search.formula` is the best
  /// partial found before the trip (see SearchOptions::budget).
  bool truncated() const { return search.truncated; }
};

/// Runs the full search once and packages formula + coverage + SQL.
/// `sql_options.output_column` defaults to the target column's name.
Result<DiscoveredTranslation> DiscoverTranslation(
    const relational::Table& source, const relational::Table& target,
    size_t target_column, const SearchOptions& options = {},
    const SqlEmitter::Options& sql_options = {});

/// Match-and-remove loop (Section 4.1): discovers a translation, removes the
/// rows it covers from both tables, and repeats — returning the dominant
/// formulas in decreasing coverage order.
///
/// Error contract: a failure on the FIRST round is a real error (bad input or
/// a broken pipeline) and propagates. On LATER rounds a NotFound merely means
/// the leftover rows support no further dominant formula — the expected loop
/// terminator — so the formulas found so far are returned; any other error
/// code still propagates. The loop also stops cleanly after `max_formulas`
/// rounds, when a formula covers fewer than `min_matched_rows` rows, when a
/// table runs out of rows, or when a round comes back truncated (the
/// truncated partial IS appended, so callers can inspect the last element's
/// truncated() — a tripped budget would trip again immediately on the
/// leftovers). Copies of the tables are consumed internally; the originals
/// are untouched.
Result<std::vector<DiscoveredTranslation>> DiscoverAllTranslations(
    relational::Table source, relational::Table target, size_t target_column,
    const SearchOptions& options = {}, size_t max_formulas = 4,
    size_t min_matched_rows = 2);

/// Builds a source-row -> target-row linkage from a known (complete)
/// translation for `known_target_column` — the Section 6.2 prerequisite for
/// constraining the search for a second target column.
std::vector<size_t> BuildLinkage(const TranslationFormula& known_formula,
                                 const relational::Table& source,
                                 const relational::Table& target,
                                 size_t known_target_column);

}  // namespace mcsm::core

#endif  // MCSM_CORE_MATCHER_H_
