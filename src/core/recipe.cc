#include "core/recipe.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace mcsm::core {

Result<FixedCoverage> FixedCoverage::FromCapture(
    size_t target_length, const std::vector<relational::Span>& spans,
    std::vector<Region> fixed_regions) {
  if (spans.size() != fixed_regions.size()) {
    return Status::InvalidArgument(
        StrFormat("capture has %zu spans but formula has %zu fixed regions",
                  spans.size(), fixed_regions.size()));
  }
  FixedCoverage f;
  f.cover.assign(target_length, -1);
  f.regions = std::move(fixed_regions);
  for (size_t k = 0; k < spans.size(); ++k) {
    if (spans[k].end() > target_length) {
      return Status::OutOfRange("capture span exceeds target length");
    }
    for (size_t i = spans[k].start; i < spans[k].end(); ++i) {
      f.cover[i] = static_cast<int>(k);
    }
  }
  return f;
}

Result<std::vector<TranslationFormula>> BuildFormulasFromRecipe(
    std::string_view target, const FixedCoverage& fixed,
    const text::RecipeAlignment& alignment, size_t key_column,
    size_t key_length, size_t max_variants, bool sized_unknowns) {
  const size_t len = target.size();
  // Coverage/target mismatches arise from malformed intermediate data (a
  // recipe built against a different instance); degrade, don't abort.
  if (fixed.cover.size() != len) {
    return Status::InvalidArgument(
        StrFormat("fixed coverage built for length %zu but target has "
                  "length %zu",
                  fixed.cover.size(), len));
  }
  for (int c : fixed.cover) {
    if (c >= 0 && static_cast<size_t>(c) >= fixed.regions.size()) {
      return Status::InvalidArgument(
          StrFormat("fixed coverage entry %d exceeds %zu regions", c,
                    fixed.regions.size()));
    }
  }

  // run_at[i] = index of the matched run starting at target position i.
  std::vector<int> run_at(len, -1);
  for (size_t r = 0; r < alignment.runs.size(); ++r) {
    if (alignment.runs[r].target_start < len) {
      run_at[alignment.runs[r].target_start] = static_cast<int>(r);
    }
  }

  // Build the region chain; remember which chain entries are forkable
  // (end-of-string clones, Algorithm 4's "clone region" branch).
  struct ChainEntry {
    Region region;
    bool forkable = false;
  };
  std::vector<ChainEntry> chain;
  size_t i = 0;
  while (i < len) {
    if (fixed.cover[i] >= 0) {
      int idx = fixed.cover[i];
      MCSM_DCHECK_BOUNDS(static_cast<size_t>(idx), fixed.regions.size());
      chain.push_back({fixed.regions[static_cast<size_t>(idx)], false});
      while (i < len && fixed.cover[i] == idx) ++i;
      continue;
    }
    if (run_at[i] >= 0) {
      const text::MatchedRun& run =
          alignment.runs[static_cast<size_t>(run_at[i])];
      MCSM_DCHECK(run.length > 0);
      MCSM_DCHECK(run.source_start + run.length <= key_length)
          << "matched run [" << run.source_start << ", "
          << run.source_start + run.length << ") exceeds key length "
          << key_length;
      Region span = Region::Span(key_column, run.source_start + 1,
                                 run.source_start + run.length);
      bool forkable = (run.source_start + run.length == key_length);
      chain.push_back({span, forkable});
      i += run.length;
      continue;
    }
    size_t gap_start = i;
    while (i < len && fixed.cover[i] < 0 && run_at[i] < 0) ++i;
    chain.push_back({sized_unknowns ? Region::SizedUnknown(i - gap_start)
                                    : Region::Unknown(),
                     false});
  }

  // Expand fork combinations. Each forkable span yields the fixed version and
  // the to_end clone; all combinations are counted (Table 5's "or" rows).
  std::vector<size_t> fork_positions;
  for (size_t k = 0; k < chain.size(); ++k) {
    if (chain[k].forkable) fork_positions.push_back(k);
  }
  // Cap the expansion so a pathological recipe cannot explode.
  size_t usable_forks = fork_positions.size();
  while (usable_forks > 0 && (size_t{1} << usable_forks) > max_variants) {
    --usable_forks;
  }

  std::vector<TranslationFormula> out;
  const size_t combos = size_t{1} << usable_forks;
  for (size_t mask = 0; mask < combos; ++mask) {
    std::vector<Region> regions;
    regions.reserve(chain.size());
    for (size_t k = 0; k < chain.size(); ++k) {
      Region r = chain[k].region;
      for (size_t f = 0; f < usable_forks; ++f) {
        if (fork_positions[f] == k && ((mask >> f) & 1) != 0) {
          r = Region::SpanToEnd(r.column, r.start);
        }
      }
      regions.push_back(std::move(r));
    }
    out.emplace_back(std::move(regions));
  }
  // Normalization can make variants collide (e.g. when a span has width 1 at
  // the end); deduplicate.
  std::sort(out.begin(), out.end(),
            [](const TranslationFormula& a, const TranslationFormula& b) {
              return a.ToString() < b.ToString();
            });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace mcsm::core
