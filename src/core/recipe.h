#ifndef MCSM_CORE_RECIPE_H_
#define MCSM_CORE_RECIPE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/formula.h"
#include "relational/pattern.h"
#include "text/alignment.h"

namespace mcsm::core {

/// \brief Which positions of a specific target instance are already explained
/// by fixed regions (the partial translation's known regions and/or separator
/// literals), before a new candidate column is aligned against the remainder.
struct FixedCoverage {
  /// cover[i] = index into `regions` of the fixed region covering target
  /// position i, or -1 when the position is free.
  std::vector<int> cover;
  /// The fixed regions in target order (known column spans, literals).
  std::vector<Region> regions;

  /// No fixed coverage (the very first, bootstrap recipe).
  static FixedCoverage None(size_t target_length) {
    FixedCoverage f;
    f.cover.assign(target_length, -1);
    return f;
  }

  /// Builds coverage from a pattern capture: `spans` are the literal-segment
  /// spans captured on the target instance, pairing 1:1 (in order) with
  /// `fixed_regions` — the non-Unknown regions of the partial formula.
  static Result<FixedCoverage> FromCapture(size_t target_length,
                                           const std::vector<relational::Span>& spans,
                                           std::vector<Region> fixed_regions);

  /// Mask usable by the alignment: true = position free for matching.
  std::vector<bool> FreeMask() const {
    std::vector<bool> mask(cover.size());
    for (size_t i = 0; i < cover.size(); ++i) mask[i] = cover[i] < 0;
    return mask;
  }
};

/// \brief Algorithm 4 / Section 3.4.3: converts one recipe (an alignment of a
/// candidate-column key against a target instance, plus the target's fixed
/// coverage) into the candidate translation formulas it supports.
///
/// Every maximal matched run becomes a ColumnSpan of `key_column`; fixed
/// regions are copied through; uncovered stretches become Unknown regions. A
/// run that ends exactly at the key's last character forks an end-of-string
/// clone ("[x-n]") to support variable-width columns; all fork combinations
/// are produced, capped at `max_variants` formulas.
/// When `sized_unknowns` is set (fixed-width target columns), Unknown
/// regions carry their exact width so recipes align by absolute location
/// (Section 3.3.3's fixed-field case).
/// A `fixed` coverage inconsistent with `target` (wrong length, or cover
/// entries pointing past the region list) is a data error, not an invariant
/// violation: it returns InvalidArgument so a malformed intermediate recipe
/// degrades to a skipped vote instead of aborting the process.
Result<std::vector<TranslationFormula>> BuildFormulasFromRecipe(
    std::string_view target, const FixedCoverage& fixed,
    const text::RecipeAlignment& alignment, size_t key_column,
    size_t key_length, size_t max_variants, bool sized_unknowns = false);

}  // namespace mcsm::core

#endif  // MCSM_CORE_RECIPE_H_
