#include "core/report.h"

#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/string_util.h"

namespace mcsm::core {

TranslationReport EvaluateTranslation(const TranslationFormula& formula,
                                      const relational::Table& source,
                                      const relational::Table& target,
                                      size_t target_column) {
  TranslationReport report;
  report.source_rows = source.num_rows();
  report.target_rows = target.num_rows();

  // The pinned column keeps the map's view keys valid for the matching pass.
  const relational::PinnedColumn target_values(target.Column(target_column));
  std::unordered_map<std::string_view, std::vector<size_t>> by_value;
  size_t usable_targets = 0;
  for (size_t row = target.num_rows(); row > 0; --row) {
    std::string_view v = target_values.at(row - 1);
    if (v.empty()) continue;
    by_value[v].push_back(row - 1);
    ++usable_targets;
  }

  const bool complete = formula.IsComplete();
  for (size_t row = 0; row < source.num_rows(); ++row) {
    if (!complete) {
      ++report.unsatisfiable;
      continue;
    }
    auto produced = formula.Apply(source, row);
    if (!produced.has_value() || produced->empty()) {
      ++report.unsatisfiable;
      continue;
    }
    auto it = by_value.find(std::string_view(*produced));
    if (it == by_value.end() || it->second.empty()) {
      ++report.produced_unmatched;
      continue;
    }
    it->second.pop_back();
    ++report.covered;
  }
  report.target_unexplained = report.target_rows - report.covered;
  return report;
}

std::string TranslationReport::ToString() const {
  std::string out;
  out += StrFormat("source rows          %zu\n", source_rows);
  out += StrFormat("target rows          %zu\n", target_rows);
  out += StrFormat("covered              %zu (%.1f%% of target)\n", covered,
                   100.0 * CoverageFraction());
  out += StrFormat("unsatisfiable        %zu (excluded by the SQL WHERE)\n",
                   unsatisfiable);
  out += StrFormat("produced, unmatched  %zu (precision %.1f%%)\n",
                   produced_unmatched, 100.0 * Precision());
  out += StrFormat("target unexplained   %zu\n", target_unexplained);
  return out;
}

}  // namespace mcsm::core
