#ifndef MCSM_CORE_REPORT_H_
#define MCSM_CORE_REPORT_H_

#include <string>

#include "core/formula.h"
#include "core/search.h"
#include "relational/table.h"

namespace mcsm::core {

/// \brief Per-row diagnostics of a (complete) translation formula — the
/// evidence a surrounding integration system (IMAP/CUPID/Clio, Section 2)
/// would use to accept, refine or discard a proposed translation.
struct TranslationReport {
  size_t source_rows = 0;
  size_t target_rows = 0;

  /// Source rows whose produced value matched an unused target row.
  size_t covered = 0;
  /// Source rows the formula could not be applied to (NULL operand or value
  /// shorter than a span requires) — rows the emitted SQL's WHERE excludes.
  size_t unsatisfiable = 0;
  /// Source rows that produced a value with no (remaining) target match.
  size_t produced_unmatched = 0;
  /// Target rows no source row explained.
  size_t target_unexplained = 0;

  double CoverageFraction() const {
    return target_rows == 0
               ? 0.0
               : static_cast<double>(covered) / static_cast<double>(target_rows);
  }
  /// Of the rows the formula applies to, the fraction that actually hit a
  /// target row — the formula's precision.
  double Precision() const {
    size_t produced = covered + produced_unmatched;
    return produced == 0
               ? 0.0
               : static_cast<double>(covered) / static_cast<double>(produced);
  }

  /// Multi-line human-readable summary.
  std::string ToString() const;
};

/// Evaluates `formula` against the tables (formula must be complete;
/// otherwise every source row counts as unsatisfiable).
TranslationReport EvaluateTranslation(const TranslationFormula& formula,
                                      const relational::Table& source,
                                      const relational::Table& target,
                                      size_t target_column);

}  // namespace mcsm::core

#endif  // MCSM_CORE_REPORT_H_
