#include "core/rule_merger.h"

#include <algorithm>
#include <unordered_map>

namespace mcsm::core {

namespace {

// True when `small` is a subsequence of `big` (region equality).
// Fills `kept[i]` = true for the positions of `big` used by the embedding
// (greedy leftmost embedding; regions are compared structurally).
bool EmbedsInto(const std::vector<Region>& small, const std::vector<Region>& big,
                std::vector<bool>* kept) {
  kept->assign(big.size(), false);
  size_t j = 0;
  for (const Region& r : small) {
    while (j < big.size() && !(big[j] == r)) ++j;
    if (j == big.size()) return false;
    (*kept)[j] = true;
    ++j;
  }
  return true;
}

}  // namespace

MergedRule MergedRule::FromFormula(const TranslationFormula& formula) {
  MergedRule rule;
  for (const Region& r : formula.regions()) {
    rule.parts_.push_back({r, false});
  }
  return rule;
}

std::optional<MergedRule> MergedRule::Merge(const TranslationFormula& a,
                                            const TranslationFormula& b) {
  if (!a.IsComplete() || !b.IsComplete()) return std::nullopt;
  const auto& ra = a.regions();
  const auto& rb = b.regions();
  const std::vector<Region>* big = &ra;
  const std::vector<Region>* small = &rb;
  if (rb.size() > ra.size()) {
    big = &rb;
    small = &ra;
  }
  std::vector<bool> kept;
  if (!EmbedsInto(*small, *big, &kept)) return std::nullopt;
  MergedRule rule;
  for (size_t i = 0; i < big->size(); ++i) {
    rule.parts_.push_back({(*big)[i], !kept[i]});
  }
  return rule;
}

std::optional<MergedRule> MergedRule::MergedWith(
    const TranslationFormula& formula) const {
  // Merge against the rule's full expansion; re-derive optionality.
  std::vector<Region> full;
  for (const Part& p : parts_) full.push_back(p.region);
  TranslationFormula full_formula(full);
  auto merged = Merge(full_formula, formula);
  if (!merged.has_value()) return std::nullopt;
  // A region optional in either input stays optional.
  MergedRule rule = *merged;
  if (rule.parts_.size() == parts_.size()) {
    for (size_t i = 0; i < parts_.size(); ++i) {
      rule.parts_[i].optional = rule.parts_[i].optional || parts_[i].optional;
    }
  }
  return rule;
}

size_t MergedRule::OptionalCount() const {
  size_t count = 0;
  for (const Part& p : parts_) {
    if (p.optional) ++count;
  }
  return count;
}

std::vector<TranslationFormula> MergedRule::Expansions(
    size_t max_expansions) const {
  std::vector<size_t> optional_positions;
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (parts_[i].optional) optional_positions.push_back(i);
  }
  size_t usable = optional_positions.size();
  while (usable > 0 && (size_t{1} << usable) > max_expansions) --usable;

  std::vector<TranslationFormula> out;
  const size_t combos = size_t{1} << usable;
  for (size_t mask = 0; mask < combos; ++mask) {
    std::vector<Region> regions;
    for (size_t i = 0; i < parts_.size(); ++i) {
      bool drop = false;
      for (size_t k = 0; k < usable; ++k) {
        if (optional_positions[k] == i && ((mask >> k) & 1) != 0) drop = true;
      }
      if (!drop) regions.push_back(parts_[i].region);
    }
    out.emplace_back(std::move(regions));
  }
  // Most-specific first (keeps the union-coverage greedy deterministic).
  std::sort(out.begin(), out.end(),
            [](const TranslationFormula& x, const TranslationFormula& y) {
              if (x.regions().size() != y.regions().size()) {
                return x.regions().size() > y.regions().size();
              }
              return x.ToString() < y.ToString();
            });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string MergedRule::ToString(const relational::Schema& schema) const {
  std::string out;
  for (const Part& p : parts_) {
    TranslationFormula single({p.region});
    std::string rendered = single.ToString(schema);
    if (p.optional) {
      out += "(" + rendered + ")?";
    } else {
      out += rendered;
    }
  }
  return out;
}

std::string MergedRule::ToString() const {
  return ToString(relational::Schema{});
}

Coverage MergedRule::ComputeCoverage(const relational::Table& source,
                                     const relational::Table& target,
                                     size_t target_column) const {
  Coverage coverage;
  auto expansions = Expansions();
  // Target value -> unused rows (as in TranslationSearch::ComputeCoverage).
  // The pinned column keeps the map's view keys valid for the matching pass.
  const relational::PinnedColumn target_values(target.Column(target_column));
  std::unordered_map<std::string_view, std::vector<size_t>> by_value;
  for (size_t row = target.num_rows(); row > 0; --row) {
    std::string_view v = target_values.at(row - 1);
    if (!v.empty()) by_value[v].push_back(row - 1);
  }
  for (size_t row = 0; row < source.num_rows(); ++row) {
    for (const TranslationFormula& f : expansions) {
      auto produced = f.Apply(source, row);
      if (!produced.has_value() || produced->empty()) continue;
      auto it = by_value.find(std::string_view(*produced));
      if (it == by_value.end() || it->second.empty()) continue;
      coverage.matches.push_back({row, it->second.back()});
      it->second.pop_back();
      break;  // one target row per source row
    }
  }
  return coverage;
}

std::vector<MergedRule> MergeRules(
    const std::vector<TranslationFormula>& formulas) {
  std::vector<MergedRule> rules;
  for (const TranslationFormula& f : formulas) {
    bool merged = false;
    for (MergedRule& rule : rules) {
      auto combined = rule.MergedWith(f);
      if (combined.has_value()) {
        rule = std::move(*combined);
        merged = true;
        break;
      }
    }
    if (!merged) rules.push_back(MergedRule::FromFormula(f));
  }
  return rules;
}

}  // namespace mcsm::core
