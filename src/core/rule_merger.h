#ifndef MCSM_CORE_RULE_MERGER_H_
#define MCSM_CORE_RULE_MERGER_H_

#include <optional>
#include <string>
#include <vector>

#include "core/formula.h"
#include "core/search.h"

namespace mcsm::core {

/// \brief Section 7 (future work), implemented: merging applicable
/// translation formulas into a single rule with optional regions.
///
/// The paper: "it would be desirable to make use of optional values within
/// translation rules to achieve greater coverage (e.g.: login = first[1-1] +
/// middle[1-1] + last[1-n] would also encompass the rule login = first[1-1]
/// + last[1-n])". A MergedRule is a region sequence where some regions are
/// marked optional; it denotes the set of formulas obtained by keeping or
/// dropping each optional region.
class MergedRule {
 public:
  struct Part {
    Region region;
    bool optional = false;
  };

  /// Wraps a single formula (no optional regions).
  static MergedRule FromFormula(const TranslationFormula& formula);

  /// Merges two complete formulas when one's region sequence is a
  /// subsequence of the other's: the regions missing from the smaller
  /// formula become optional. Returns nullopt when neither formula embeds
  /// into the other (the paper's "rule-merging strategies" would go further;
  /// subsequence embedding covers the login example it gives).
  static std::optional<MergedRule> Merge(const TranslationFormula& a,
                                         const TranslationFormula& b);

  /// Merges this rule with another formula (the formula must embed into the
  /// rule's full expansion or vice versa, region-for-region).
  std::optional<MergedRule> MergedWith(const TranslationFormula& formula) const;

  const std::vector<Part>& parts() const { return parts_; }
  size_t OptionalCount() const;

  /// All formulas the rule denotes (each optional region kept or dropped),
  /// capped at `max_expansions`.
  std::vector<TranslationFormula> Expansions(size_t max_expansions = 64) const;

  /// Renders "first[1-1](middle[1-1])?last[1-n]" style.
  std::string ToString(const relational::Schema& schema) const;
  std::string ToString() const;

  /// Union coverage over all expansions: each source row is translated by
  /// the first expansion (most regions first) that matches an unused target
  /// row — the "greater coverage" the paper is after.
  Coverage ComputeCoverage(const relational::Table& source,
                           const relational::Table& target,
                           size_t target_column) const;

 private:
  std::vector<Part> parts_;
};

/// Greedily merges a set of discovered formulas into a minimal list of
/// rules: repeatedly folds any formula that embeds into (or extends) an
/// existing rule; formulas that merge with nothing stay singleton rules.
std::vector<MergedRule> MergeRules(const std::vector<TranslationFormula>& formulas);

}  // namespace mcsm::core

#endif  // MCSM_CORE_RULE_MERGER_H_
