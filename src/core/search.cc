#include "core/search.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <map>
#include <unordered_map>

#include "common/env.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "core/separator.h"
#include "relational/sampler.h"
#include "text/alignment.h"
#include "text/qgram.h"

namespace mcsm::core {

Status SearchOptions::Env::Validate() const {
  if (budget.wall_ms < 0) {
    return Status::InvalidArgument("env.budget.wall_ms must be >= 0");
  }
  if (shared_budget != nullptr && !budget.unlimited()) {
    return Status::InvalidArgument(
        "env.budget is ignored when env.shared_budget is set; configure the "
        "limits on the shared budget instead");
  }
  return Status::OK();
}

Status SearchOptions::Validate() const {
  if (q < 1) {
    return Status::InvalidArgument("q must be >= 1");
  }
  if (!(sample_fraction > 0.0) || sample_fraction > 1.0) {
    return Status::InvalidArgument(
        StrFormat("sample_fraction must be in (0, 1], got %g", sample_fraction));
  }
  if (max_sample < min_sample) {
    return Status::InvalidArgument(
        StrFormat("max_sample (%zu) must be >= min_sample (%zu)", max_sample,
                  min_sample));
  }
  if (sigma < 0.0) {
    return Status::InvalidArgument("sigma must be >= 0");
  }
  if (max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (top_r_pairs < 1) {
    return Status::InvalidArgument("top_r_pairs must be >= 1");
  }
  if (min_coverage_fraction < 0.0 || min_coverage_fraction > 1.0) {
    return Status::InvalidArgument(
        StrFormat("min_coverage_fraction must be in [0, 1], got %g",
                  min_coverage_fraction));
  }
  return env.Validate();
}

TranslationSearch::TranslationSearch(const relational::Table& source,
                                     const relational::Table& target,
                                     size_t target_column,
                                     SearchOptions options)
    : source_(source),
      target_(target),
      target_column_(target_column),
      options_(options),
      budget_(options_.env.budget),
      active_budget_(options_.env.shared_budget != nullptr
                         ? options_.env.shared_budget
                         : &budget_),
      trace_(options_.env.trace),
      source_indexes_(source.num_columns()) {
  // A cached target index is accepted only when it is interchangeable with
  // the one this search would build: same q, postings present, same column,
  // and built over a table of the same row count (a cheap identity proxy —
  // the service keys its cache by content fingerprint, this guards against a
  // caller handing in an index for a different table). Anything else falls
  // back to a local build rather than erroring — a stale cache must never
  // change results.
  if (options_.env.target_index != nullptr &&
      options_.env.target_index->q() == options_.q &&
      options_.env.target_index->postings_built() &&
      options_.env.target_index->column() == target_column_ &&
      options_.env.target_index->row_count() == target_.num_rows()) {
    target_index_ = options_.env.target_index;
  } else {
    relational::ColumnIndex::Options idx_options;
    idx_options.q = options_.q;
    idx_options.build_postings = true;
    target_index_ = std::make_shared<relational::ColumnIndex>(
        target_, target_column_, idx_options);
  }

  if (options_.detect_separators) {
    separator_template_ = SeparatorDetector::Detect(target_, target_column_);
    if (separator_template_.has_value()) {
      separator_chars_ =
          SeparatorDetector::TemplateSeparatorChars(*separator_template_);
    }
  }
}

TranslationSearch::~TranslationSearch() = default;

ThreadPool& TranslationSearch::pool() {
  if (!pool_) {
    size_t n = options_.num_threads;
    if (n == 0) {
      n = static_cast<size_t>(std::max<int64_t>(GetEnvInt("MCSM_THREADS", 0), 0));
    }
    pool_ = std::make_unique<ThreadPool>(n);
  }
  return *pool_;
}

const relational::ColumnIndex& TranslationSearch::SourceIndex(size_t column) {
  if (!source_indexes_[column]) {
    if (options_.env.source_index_provider) {
      auto cached = options_.env.source_index_provider(column);
      if (cached != nullptr && cached->q() == options_.q &&
          cached->column() == column &&
          cached->row_count() == source_.num_rows()) {
        source_indexes_[column] = std::move(cached);
        return *source_indexes_[column];
      }
    }
    relational::ColumnIndex::Options idx_options;
    idx_options.q = options_.q;
    idx_options.build_postings = false;
    source_indexes_[column] = std::make_shared<relational::ColumnIndex>(
        source_, column, idx_options);
  }
  return *source_indexes_[column];
}

size_t TranslationSearch::SampleCount(size_t distinct) const {
  if (distinct == 0) return 0;
  size_t t = static_cast<size_t>(
      std::ceil(options_.sample_fraction * static_cast<double>(distinct)));
  t = std::max(t, options_.min_sample);
  t = std::min(t, options_.max_sample);
  return std::min(t, distinct);
}

std::vector<std::string> TranslationSearch::SampleKeys(size_t column) {
  const auto& index = SourceIndex(column);
  const auto& distinct = index.sorted_distinct();
  size_t t = SampleCount(distinct.size());
  std::vector<std::string> keys;
  keys.reserve(t);
  for (size_t idx : relational::EquidistantIndices(distinct.size(), t)) {
    keys.push_back(distinct[idx]);
  }
  return keys;
}

std::vector<size_t> TranslationSearch::SampleSourceRows(size_t column) {
  const auto& index = SourceIndex(column);
  size_t t = SampleCount(index.distinct_count());
  return relational::SampleRows(source_.num_rows(), t, active_budget_);
}

Status TranslationSearch::TracedFailpoint(const char* site, const char* phase) {
  if (!failpoint::Enabled()) return Status::OK();
  Status triggered = failpoint::Trigger(site);
  if (!triggered.ok() && trace_ != nullptr) {
    TraceEvent event;
    event.phase = phase;
    event.name = "failpoint";
    event.detail = std::string(site) + ": " + triggered.message();
    trace_->Emit(std::move(event));
  }
  return triggered;
}

Result<std::vector<uint32_t>> TranslationSearch::SimilarTargetRows(
    std::string_view key, size_t* pairs_scored) {
  MCSM_RETURN_IF_ERROR(TracedFailpoint(failpoint::kIndexSimilar, "step2"));
  std::vector<relational::ColumnIndex::ScoredRow> scored;
  if (options_.pair_mode == SearchOptions::PairScoreMode::kTfIdf) {
    scored = target_index_->SimilarRows(key, options_.pair_score_threshold,
                                        options_.top_r_pairs, separator_chars_,
                                        active_budget_);
  } else {
    scored = target_index_->SimilarRowsByCount(
        key, options_.pair_score_threshold, options_.top_r_pairs, active_budget_);
  }
  *pairs_scored += scored.size();
  std::vector<uint32_t> rows;
  rows.reserve(scored.size());
  for (const auto& s : scored) rows.push_back(s.row);
  return rows;
}

void TranslationSearch::VoteRecipe(std::string_view key,
                                   std::string_view target,
                                   const FixedCoverage& fixed,
                                   size_t key_column,
                                   const TraceCtx& trace_ctx,
                                   VoteBatch* batch) {
  std::vector<bool> mask = fixed.FreeMask();
  text::RecipeAlignment alignment = text::AlignLcsAnchored(
      key, target, &mask, text::EditCosts{}, options_.lcs_tie_break);
  ++batch->recipes_built;
  (void)active_budget_->ChargePairs();
  if (trace_ != nullptr) {
    // One alignment event per (key, target instance) pair. Identity comes
    // from the pipeline coordinates + the pair itself, so the multiset is
    // thread-count independent.
    TraceEvent event;
    event.phase = trace_ctx.phase;
    event.name = "recipe";
    event.iteration = trace_ctx.iteration;
    event.column = static_cast<int64_t>(key_column);
    event.sample = trace_ctx.sample;
    event.value = static_cast<double>(alignment.matched_chars());
    event.detail = std::string(key) + " -> " + std::string(target);
    trace_->Emit(std::move(event));
  }
  auto formulas_or = BuildFormulasFromRecipe(
      target, fixed, alignment, key_column, key.size(),
      options_.max_variants_per_recipe, target_index_->fixed_width());
  if (!formulas_or.ok()) return;  // malformed recipe: skipped vote (see recipe.h)
  std::vector<TranslationFormula>& formulas = *formulas_or;
  (void)active_budget_->ChargeFormulas(formulas.size());
  // Votes are weighted by the number of characters the recipe explains: a
  // k-character serendipitous match is exponentially less probable than a
  // 1-character one (the same decay Eq. 1 models by raising to the power q),
  // so longer systematic matches must outrank shorter coincidences.
  const double weight =
      static_cast<double>(std::max<size_t>(alignment.matched_chars(), 1));
  for (auto& f : formulas) {
    ++batch->formulas_considered;
    // Keyed by (parent column, formula): Eq. 5 normalizes per parent column,
    // so the same rendering produced by different candidate columns (the
    // unchanged formula, typically) must not pool its votes.
    std::string rendered = StrFormat("c%zu|", key_column) + f.ToString();
    batch->votes.push_back(
        {std::move(rendered), std::move(f), weight, key_column});
  }
}

void TranslationSearch::MergeBatch(VoteBatch&& batch, VoteMap* votes,
                                   std::vector<double>* column_totals,
                                   double* total) {
  stats_.recipes_built += batch.recipes_built;
  stats_.formulas_considered += batch.formulas_considered;
  stats_.pairs_scored += batch.pairs_scored;
  for (PendingVote& vote : batch.votes) {
    if (total != nullptr) *total += vote.weight;
    if (column_totals != nullptr) (*column_totals)[vote.column] += vote.weight;
    auto it = votes->find(vote.rendered);
    if (it == votes->end()) {
      FormulaVotes entry;
      entry.formula = std::move(vote.formula);
      entry.count = 1;
      entry.weighted_count = vote.weight;
      entry.column = vote.column;
      votes->emplace(std::move(vote.rendered), std::move(entry));
    } else {
      ++it->second.count;
      it->second.weighted_count += vote.weight;
    }
  }
}

Result<ColumnSelection> TranslationSearch::SelectStartColumn() {
  // Diagnostic timing only (never part of result/trace identity): wall-clock
  // access in core goes through WallTimer/RunBudget, enforced by lint CD001.
  WallTimer timer;
  TraceSpan span(trace_, "step1", "select_start_column");
  ColumnSelection selection;
  selection.scores.assign(source_.num_columns(), 0.0);
  std::vector<size_t> text_columns;
  for (size_t col = 0; col < source_.num_columns(); ++col) {
    if (source_.schema().column(col).type == relational::ColumnType::kText) {
      text_columns.push_back(col);
    }
  }
  // One slot per text column (Algorithm 2's loop). Each worker builds and
  // scores only its own column — SourceIndex writes a distinct
  // source_indexes_ entry per column — and the winner is picked serially in
  // column order below, so the choice is identical for every thread count.
  std::vector<double> column_scores(text_columns.size(), 0.0);
  pool().ParallelFor(text_columns.size(), [&](size_t i) {
    if (active_budget_->Exhausted()) return;
    const size_t col = text_columns[i];
    ColumnScorer::Options scorer_options;
    scorer_options.mode = options_.count_mode;
    scorer_options.excluded_chars = separator_chars_;
    scorer_options.trace = trace_;
    scorer_options.trace_column = static_cast<int64_t>(col);
    std::vector<std::string> keys = SampleKeys(col);
    column_scores[i] =
        ColumnScorer::ScoreKeys(keys, *target_index_, scorer_options);
  });
  double best_score = 0.0;
  for (size_t i = 0; i < text_columns.size(); ++i) {
    selection.scores[text_columns[i]] = column_scores[i];
    if (trace_ != nullptr) {
      // Eq. 1 score of every text column (the Algorithm 2 evidence).
      TraceEvent event;
      event.phase = "step1";
      event.name = "column_score";
      event.column = static_cast<int64_t>(text_columns[i]);
      event.value = column_scores[i];
      trace_->Emit(std::move(event));
    }
    if (column_scores[i] > best_score) {
      best_score = column_scores[i];
      selection.best_column = text_columns[i];
    }
  }
  stats_.step1_seconds += timer.Seconds();
  if (selection.best_column == std::numeric_limits<size_t>::max()) {
    return Status::NotFound("no source column shares q-grams with the target");
  }
  if (trace_ != nullptr) {
    TraceEvent event;
    event.phase = "step1";
    event.name = "start_column";
    event.column = static_cast<int64_t>(selection.best_column);
    event.value = best_score;
    trace_->Emit(std::move(event));
  }
  return selection;
}

Result<std::vector<TranslationFormula>> TranslationSearch::BuildInitialFormulas(
    size_t column, size_t k) {
  WallTimer timer;
  TraceSpan span(trace_, "step2", "build_initial");
  MCSM_RETURN_IF_ERROR(TracedFailpoint(failpoint::kSamplerSample, "step2"));
  VoteMap votes;
  double total = 0;

  auto vote_pair = [&](std::string_view key, uint32_t target_row,
                       size_t sample_slot, VoteBatch* batch) {
    const relational::TextView target_cell =
        target_.TextAt(target_row, target_column_);
    const std::string_view target = target_cell.view();
    if (target.empty()) return;
    FixedCoverage fixed = FixedCoverage::None(target.size());
    if (separator_template_.has_value()) {
      auto spans = separator_template_->CaptureLiterals(target);
      if (!spans.has_value()) return;  // separator template must hold
      std::vector<Region> literal_regions;
      const auto& segments = separator_template_->segments();
      size_t span_idx = 0;
      for (const auto& seg : segments) {
        if (!seg.is_wildcard) {
          (void)span_idx;
          literal_regions.push_back(Region::Literal(seg.literal));
        }
      }
      auto built = FixedCoverage::FromCapture(target.size(), *spans,
                                              std::move(literal_regions));
      if (!built.ok()) return;
      fixed = std::move(built).value();
    }
    TraceCtx ctx;
    ctx.phase = "step2";
    ctx.sample = static_cast<int64_t>(sample_slot);
    VoteRecipe(key, target, fixed, column, ctx, batch);
  };

  // One slot per sampled key (or linked pair): retrieval + alignment run in
  // parallel, and the slots are merged in sample order below so the vote
  // tallies never depend on scheduling.
  std::vector<VoteBatch> batches;
  if (!linkage_.empty()) {
    // Section 6.2: candidate pairs come from the known row linkage. Sampling
    // stays serial (it charges the budget in a deterministic order). The
    // pinned column keeps the key views valid through the parallel voting
    // below.
    const relational::PinnedColumn key_column(source_.Column(column));
    std::vector<std::pair<std::string_view, uint32_t>> pairs;
    for (size_t row : SampleSourceRows(column)) {
      if (active_budget_->Exhausted()) break;
      std::string_view key = key_column.at(row);
      if (key.empty()) continue;
      if (row >= linkage_.size() || linkage_[row] == kNoLink) continue;
      pairs.emplace_back(key, static_cast<uint32_t>(linkage_[row]));
    }
    batches.resize(pairs.size());
    pool().ParallelFor(pairs.size(), [&](size_t i) {
      if (active_budget_->Exhausted()) return;
      vote_pair(pairs[i].first, pairs[i].second, i, &batches[i]);
    });
  } else {
    std::vector<std::string> keys = SampleKeys(column);
    batches.resize(keys.size());
    pool().ParallelFor(keys.size(), [&](size_t i) {
      if (active_budget_->Exhausted()) return;
      const std::string& key = keys[i];
      if (key.empty()) return;
      VoteBatch& batch = batches[i];
      auto rows_or = SimilarTargetRows(key, &batch.pairs_scored);
      if (!rows_or.ok()) {
        batch.status = rows_or.status();
        return;
      }
      if (trace_ != nullptr) {
        // Pair retrieval per sampled key (Algorithm 3): how many candidate
        // target instances the index produced for this key.
        TraceEvent event;
        event.phase = "step2";
        event.name = "pairs_retrieved";
        event.column = static_cast<int64_t>(column);
        event.sample = static_cast<int64_t>(i);
        event.value = static_cast<double>(rows_or->size());
        event.detail = key;
        trace_->Emit(std::move(event));
      }
      for (uint32_t target_row : *rows_or) {
        vote_pair(key, target_row, i, &batch);
      }
    });
  }
  for (VoteBatch& batch : batches) {
    // First failing slot in sample order — the same error a serial run
    // returns.
    if (!batch.status.ok()) return batch.status;
    MergeBatch(std::move(batch), &votes, nullptr, &total);
  }

  // Rank candidates: most frequent first; ties break toward the formula
  // explaining more characters, then lexicographically (determinism).
  struct Ranked {
    const FormulaVotes* entry;
    const std::string* key;
  };
  std::vector<Ranked> ranked;
  for (const auto& [rendered, entry] : votes) {
    bool informative = false;
    for (const auto& r : entry.formula.regions()) {
      if (r.kind == Region::Kind::kColumnSpan) {
        informative = true;
        break;
      }
    }
    if (!informative) continue;  // span-free formula carries no information
    if (entry.count < options_.min_support) continue;
    ranked.push_back({&entry, &rendered});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.entry->weighted_count != b.entry->weighted_count) {
      return a.entry->weighted_count > b.entry->weighted_count;
    }
    size_t ka = a.entry->formula.KnownFixedChars();
    size_t kb = b.entry->formula.KnownFixedChars();
    if (ka != kb) return ka > kb;
    return *a.key < *b.key;
  });
  std::vector<TranslationFormula> out;
  for (const Ranked& r : ranked) {
    if (trace_ != nullptr) {
      // The surviving initial candidates in rank order (sample = rank).
      TraceEvent event;
      event.phase = "step2";
      event.name = "initial_candidate";
      event.column = static_cast<int64_t>(r.entry->column);
      event.sample = static_cast<int64_t>(out.size());
      event.value = r.entry->weighted_count;
      event.detail = r.entry->formula.ToString(source_.schema());
      event.metrics.emplace_back("support",
                                 static_cast<double>(r.entry->count));
      event.metrics.emplace_back("weighted_count", r.entry->weighted_count);
      trace_->Emit(std::move(event));
    }
    out.push_back(r.entry->formula);
    if (out.size() >= k) break;
  }
  stats_.step2_seconds += timer.Seconds();
  if (out.empty()) {
    return Status::NotFound(StrFormat(
        "no initial translation formula reached min_support=%zu for column %zu",
        options_.min_support, column));
  }
  return out;
}

Result<TranslationFormula> TranslationSearch::BuildInitialFormula(
    size_t column) {
  MCSM_ASSIGN_OR_RETURN(auto formulas, BuildInitialFormulas(column, 1));
  return formulas[0];
}

Result<bool> TranslationSearch::RefineOnce(TranslationFormula* formula,
                                           IterationInfo* info) {
  WallTimer timer;
  if (formula->empty()) {
    return Status::InvalidArgument("cannot refine an empty formula");
  }
  // Iteration number for trace identity: refinement passes completed so far
  // across the whole run (deterministic — branch order never depends on
  // scheduling).
  const int64_t iteration =
      static_cast<int64_t>(stats_.iteration_seconds.size());
  if (trace_ != nullptr) {
    TraceEvent event;
    event.kind = TraceEventKind::kSpanBegin;
    event.phase = "refine";
    event.name = "iteration";
    event.iteration = iteration;
    event.detail = formula->ToString(source_.schema());
    trace_->Emit(std::move(event));
  }
  // Fires once per refinement pass, not per row, so a delay spec slows the
  // search instead of multiplying into an apparent hang.
  MCSM_RETURN_IF_ERROR(TracedFailpoint(failpoint::kIndexPattern, "refine"));
  const std::string current_rendered = formula->ToString();

  // The formula's non-Unknown regions, in order (they pair with the pattern's
  // literal captures).
  std::vector<Region> fixed_regions;
  for (const auto& r : formula->regions()) {
    if (r.kind != Region::Kind::kUnknown) fixed_regions.push_back(r);
  }

  size_t candidates_considered = 0;

  // Text columns eligible as candidates.
  std::vector<size_t> text_columns;
  for (size_t col = 0; col < source_.num_columns(); ++col) {
    if (source_.schema().column(col).type == relational::ColumnType::kText) {
      text_columns.push_back(col);
    }
  }

  // One equidistant row sample for the whole iteration: every candidate
  // column sees the identical (source row, target instance) pairs, so vote
  // counts are comparable across columns, and the expensive pattern
  // retrieval runs once per row instead of once per (row, column). Rows are
  // processed in parallel, one slot each, merged in sample order below.
  size_t t = SampleCount(source_.num_rows());
  std::vector<size_t> sampled =
      relational::SampleRows(source_.num_rows(), t, active_budget_);
  std::vector<VoteBatch> batches(sampled.size());
  pool().ParallelFor(sampled.size(), [&](size_t slot) {
    if (active_budget_->Exhausted()) return;
    const size_t row = sampled[slot];
    VoteBatch& batch = batches[slot];
    auto pattern = formula->BuildPattern(source_, row);
    if (!pattern.has_value() || pattern->IsUniversal()) return;

    std::vector<uint32_t> target_rows;
    if (!linkage_.empty()) {
      if (row < linkage_.size() && linkage_[row] != kNoLink) {
        uint32_t linked = static_cast<uint32_t>(linkage_[row]);
        if (pattern->Matches(target_.TextAt(linked, target_column_))) {
          target_rows.push_back(linked);
        }
      }
    } else {
      target_rows = target_index_->RowsMatchingPattern(*pattern, active_budget_);
    }

    // Per-candidate fixed coverage (shared by all columns); invalid captures
    // are dropped up front.
    struct Candidate {
      uint32_t row;
      // TextView, not string_view: each candidate carries the pin that keeps
      // its target bytes valid for the rest of the slot.
      relational::TextView target;
      FixedCoverage fixed;
      std::vector<bool> free_mask;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(target_rows.size());
    for (uint32_t t_row : target_rows) {
      relational::TextView target = target_.TextAt(t_row, target_column_);
      auto spans = pattern->CaptureLiterals(target);
      if (!spans.has_value()) continue;
      auto fixed =
          FixedCoverage::FromCapture(target.size(), *spans, fixed_regions);
      if (!fixed.ok()) continue;
      Candidate cand{t_row, std::move(target), std::move(fixed).value(), {}};
      cand.free_mask = cand.fixed.FreeMask();
      candidates.push_back(std::move(cand));
    }

    // Algorithm 6's "and contains q-grams of key", realized as row-level
    // record-linkage ranking: when more candidates match the pattern than
    // the cap admits, keep the ones sharing the most q-grams with the WHOLE
    // source row (summed over all candidate columns). The truly linked
    // target instance shares several fields and rises to the top, while a
    // candidate that matches one field by coincidence ranks below it — the
    // "primitive form of record linkage" of Section 2.
    if (trace_ != nullptr) {
      // Pattern retrieval outcome for this sampled row (Algorithm 5).
      TraceEvent event;
      event.phase = "refine";
      event.name = "pattern_candidates";
      event.iteration = iteration;
      event.sample = static_cast<int64_t>(slot);
      event.value = static_cast<double>(candidates.size());
      trace_->Emit(std::move(event));
    }
    if (candidates.size() > options_.max_pattern_rows) {
      std::vector<long long> row_similarity(candidates.size(), 0);
      for (size_t ci = 0; ci < candidates.size(); ++ci) {
        for (size_t col : text_columns) {
          const relational::TextView key_cell = source_.TextAt(row, col);
          const std::string_view key = key_cell.view();
          if (key.size() >= options_.q) {
            row_similarity[ci] += text::SharedQGramsMasked(
                key, candidates[ci].target, candidates[ci].free_mask,
                options_.q);
          }
        }
      }
      std::vector<size_t> order(candidates.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return row_similarity[a] > row_similarity[b];
      });
      order.resize(options_.max_pattern_rows);
      std::sort(order.begin(), order.end());
      std::vector<Candidate> kept;
      kept.reserve(order.size());
      for (size_t i : order) kept.push_back(std::move(candidates[i]));
      candidates = std::move(kept);
    }

    for (size_t col : text_columns) {
      const relational::TextView key_cell = source_.TextAt(row, col);
      const std::string_view key = key_cell.view();
      if (key.empty()) continue;
      // Algorithm 6's "and contains q-grams of key" (see RefinementFilter).
      bool filter = options_.refinement_filter !=
                        SearchOptions::RefinementFilter::kOff &&
                    key.size() >= options_.q;
      // Sharing is measured against the candidate's *unexplained* portion:
      // the key's contribution has to land there, and testing the whole
      // string would make the filter vacuous for columns whose value the
      // pattern already pins (every "04%" match contains "04").
      std::vector<bool> sharing(candidates.size(), true);
      if (filter) {
        for (size_t ci = 0; ci < candidates.size(); ++ci) {
          sharing[ci] = text::SharedQGramsMasked(key, candidates[ci].target,
                                                 candidates[ci].free_mask,
                                                 options_.q) > 0;
        }
        if (options_.refinement_filter ==
                SearchOptions::RefinementFilter::kPreferSharing &&
            std::none_of(sharing.begin(), sharing.end(),
                         [](bool b) { return b; })) {
          filter = false;  // waive rather than starve
        }
      }
      for (size_t ci = 0; ci < candidates.size(); ++ci) {
        if (filter && !sharing[ci]) continue;
        TraceCtx ctx;
        ctx.phase = "refine";
        ctx.iteration = iteration;
        ctx.sample = static_cast<int64_t>(slot);
        VoteRecipe(key, candidates[ci].target, candidates[ci].fixed, col, ctx,
                   &batch);
      }
    }
  });

  VoteMap votes;
  std::vector<double> column_totals(source_.num_columns(), 0);
  for (VoteBatch& batch : batches) {
    MergeBatch(std::move(batch), &votes, &column_totals, nullptr);
  }

  // Score candidates (Eq. 5) and adopt the best true refinement.
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only; nothing calls setenv.
  const bool debug_votes = std::getenv("MCSM_DEBUG_VOTES") != nullptr;
  double global_total = 0;
  for (double ct : column_totals) global_total += ct;
  const FormulaVotes* best = nullptr;
  double best_score = 0.0;
  for (const auto& [rendered, entry] : votes) {
    if (debug_votes && entry.count >= 2) {
      std::fprintf(stderr, "vote %-40s col=%zu count=%zu w=%.0f total=%.0f\n",
                   rendered.c_str(), entry.column, entry.count,
                   entry.weighted_count, column_totals[entry.column]);
    }
    ++candidates_considered;
    if (entry.formula.ToString() == current_rendered) {
      continue;  // no new information
    }
    if (entry.count < options_.min_support) continue;
    double norm =
        options_.score_normalization ==
                SearchOptions::ScoreNormalization::kPerColumn
            ? column_totals[entry.column]
            : global_total;
    double frequency = entry.weighted_count / std::max(norm, 1.0);
    double denominator = 1.0;
    if (!options_.disable_width_penalty) {
      const auto& idx = SourceIndex(entry.column);
      denominator = std::max(1.0, idx.avg_length() - options_.sigma);
    }
    double score = frequency / denominator;
    if (trace_ != nullptr) {
      // Eq. 5 ScoreTrans breakdown for every surviving candidate formula.
      TraceEvent event;
      event.phase = "refine";
      event.name = "candidate_formula";
      event.iteration = iteration;
      event.column = static_cast<int64_t>(entry.column);
      event.value = score;
      event.detail = entry.formula.ToString(source_.schema());
      event.metrics.emplace_back("frequency", frequency);
      event.metrics.emplace_back("width_penalty", denominator);
      event.metrics.emplace_back("support", static_cast<double>(entry.count));
      event.metrics.emplace_back("weighted_count", entry.weighted_count);
      trace_->Emit(std::move(event));
    }
    if (best == nullptr || score > best_score ||
        (score == best_score &&
         entry.formula.KnownFixedChars() > best->formula.KnownFixedChars())) {
      best = &entry;
      best_score = score;
    }
  }

  double seconds = timer.Seconds();
  stats_.iteration_seconds.push_back(seconds);
  if (info != nullptr) {
    info->seconds = seconds;
    info->candidates_considered = candidates_considered;
  }
  if (trace_ != nullptr) {
    TraceEvent winner;
    winner.phase = "refine";
    winner.name = best != nullptr ? "iteration_winner" : "no_improvement";
    winner.iteration = iteration;
    if (best != nullptr) {
      winner.column = static_cast<int64_t>(best->column);
      winner.value = best_score;
      winner.detail = best->formula.ToString(source_.schema());
      winner.metrics.emplace_back("support",
                                  static_cast<double>(best->count));
    } else {
      winner.detail = formula->ToString(source_.schema());
    }
    trace_->Emit(std::move(winner));
    TraceEvent end;
    end.kind = TraceEventKind::kSpanEnd;
    end.phase = "refine";
    end.name = "iteration";
    end.iteration = iteration;
    end.elapsed_ms = seconds * 1e3;
    trace_->Emit(std::move(end));
  }
  if (best == nullptr) {
    if (info != nullptr) info->formula = current_rendered;
    return false;
  }
  *formula = best->formula;
  if (info != nullptr) {
    info->chosen_column = best->column;
    info->formula = formula->ToString();
    info->support = best->count;
    info->score = best_score;
  }
  return true;
}

SearchResult TranslationSearch::TruncatedResult(SearchResult attempt) {
  attempt.truncated = true;
  attempt.budget_trip = active_budget_->trip();
  stats_.postings_scanned = static_cast<size_t>(active_budget_->postings_scanned());
  attempt.stats = stats_;
  if (trace_ != nullptr) {
    TraceEvent event;
    event.phase = "run";
    event.name = "budget_trip";
    event.detail = BudgetTripName(attempt.budget_trip);
    event.value = static_cast<double>(attempt.stats.postings_scanned);
    trace_->Emit(std::move(event));
  }
  return attempt;
}

Result<SearchResult> TranslationSearch::Run() {
  TraceSpan run_span(trace_, "run", "search");
  auto selection_or = SelectStartColumn();
  if (!selection_or.ok()) {
    // Anytime contract: a budget trip never surfaces as an error — return
    // whatever was found so far (here: nothing) tagged truncated.
    if (active_budget_->Exhausted()) return TruncatedResult(SearchResult{});
    return selection_or.status();
  }
  const std::vector<double>& scores = selection_or->scores;

  // Start columns in descending Step-1 score order (zero scores skipped).
  std::vector<size_t> start_columns;
  for (size_t c = 0; c < scores.size(); ++c) {
    if (scores[c] > 0.0) start_columns.push_back(c);
  }
  std::sort(start_columns.begin(), start_columns.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  if (start_columns.size() > std::max<size_t>(1, options_.start_column_candidates)) {
    start_columns.resize(std::max<size_t>(1, options_.start_column_candidates));
  }

  // A completed branch must actually translate rows; otherwise restart from
  // the next-best initial formula, then from the next-best start column
  // (coverage acts as the integration-system feedback the paper assumes is
  // unavailable — see SearchOptions).
  const size_t coverage_floor = std::max<size_t>(
      options_.min_support,
      static_cast<size_t>(options_.min_coverage_fraction *
                          static_cast<double>(std::min(source_.num_rows(),
                                                       target_.num_rows()))));

  SearchResult best_attempt;
  size_t best_attempt_coverage = 0;
  bool have_attempt = false;
  Status last_error = Status::NotFound("no start column produced a formula");
  for (size_t start_column : start_columns) {
    if (active_budget_->Exhausted()) break;
    auto initial_formulas = BuildInitialFormulas(
        start_column, std::max<size_t>(1, options_.initial_candidates));
    if (!initial_formulas.ok()) {
      last_error = initial_formulas.status();
      continue;
    }
    for (const TranslationFormula& initial : *initial_formulas) {
      if (active_budget_->Exhausted()) break;
      SearchResult attempt;
      attempt.start_column = start_column;
      attempt.formula = initial;
      for (size_t iter = 0;
           iter < options_.max_iterations && !attempt.formula.IsComplete() &&
           !active_budget_->Exhausted();
           ++iter) {
        IterationInfo info;
        MCSM_ASSIGN_OR_RETURN(bool improved,
                              RefineOnce(&attempt.formula, &info));
        attempt.iterations.push_back(std::move(info));
        if (!improved) break;
      }
      size_t covered = 0;
      if (attempt.formula.IsComplete()) {
        covered = ComputeCoverage(attempt.formula, source_, target_,
                                  target_column_)
                      .matched_rows();
      }
      if (trace_ != nullptr) {
        // Coverage validation verdict for this branch (the feedback loop).
        TraceEvent event;
        event.phase = "run";
        event.name = covered >= coverage_floor ? "accepted" : "coverage_reject";
        event.column = static_cast<int64_t>(start_column);
        event.value = static_cast<double>(covered);
        event.detail = attempt.formula.ToString(source_.schema());
        event.metrics.emplace_back("floor",
                                   static_cast<double>(coverage_floor));
        event.metrics.emplace_back("complete",
                                   attempt.formula.IsComplete() ? 1.0 : 0.0);
        trace_->Emit(std::move(event));
      }
      if (covered >= coverage_floor) {
        // A formula that passes coverage validation is a full success even
        // when the budget tripped on the way: nothing was cut short that a
        // longer run would have improved.
        stats_.postings_scanned =
            static_cast<size_t>(active_budget_->postings_scanned());
        attempt.stats = stats_;
        return attempt;
      }
      if (!have_attempt || covered > best_attempt_coverage) {
        best_attempt = std::move(attempt);
        best_attempt_coverage = covered;
        have_attempt = true;
      }
    }
  }
  if (active_budget_->Exhausted()) {
    return TruncatedResult(have_attempt ? std::move(best_attempt)
                                        : SearchResult{});
  }
  if (!have_attempt) return last_error;
  stats_.postings_scanned = static_cast<size_t>(active_budget_->postings_scanned());
  best_attempt.stats = stats_;
  return best_attempt;
}

Coverage TranslationSearch::ComputeCoverage(const TranslationFormula& formula,
                                            const relational::Table& source,
                                            const relational::Table& target,
                                            size_t target_column) {
  Coverage coverage;
  if (!formula.IsComplete()) return coverage;
  // Target value -> queue of unused rows holding it. The pinned column keeps
  // the map's view keys valid for the whole matching pass below.
  const relational::PinnedColumn target_values(target.Column(target_column));
  std::unordered_map<std::string_view, std::vector<size_t>> by_value;
  for (size_t row = target.num_rows(); row > 0; --row) {
    std::string_view v = target_values.at(row - 1);
    if (!v.empty()) by_value[v].push_back(row - 1);
  }
  for (size_t row = 0; row < source.num_rows(); ++row) {
    auto produced = formula.Apply(source, row);
    if (!produced.has_value() || produced->empty()) continue;
    auto it = by_value.find(std::string_view(*produced));
    if (it == by_value.end() || it->second.empty()) continue;
    coverage.matches.push_back({row, it->second.back()});
    it->second.pop_back();
  }
  return coverage;
}

}  // namespace mcsm::core
