#ifndef MCSM_CORE_SEARCH_H_
#define MCSM_CORE_SEARCH_H_

#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/column_scorer.h"
#include "core/formula.h"
#include "core/recipe.h"
#include "relational/column_index.h"
#include "text/alignment.h"
#include "relational/table.h"

namespace mcsm::core {

/// Tuning knobs of the translation search. Defaults follow the paper:
/// bi-grams, 10% equidistant samples, sigma = 2, unit edit costs.
struct SearchOptions {
  /// q-gram width (the paper evaluates with bi-grams).
  size_t q = 2;
  /// Fraction of distinct values sampled per column (Sections 3.2, 4).
  double sample_fraction = 0.10;
  /// Sample-size floor/cap (the cap keeps very large tables tractable; the
  /// paper notes "a few dozen good samples" suffice — Section 5).
  size_t min_sample = 20;
  size_t max_sample = 2000;

  enum class PairScoreMode {
    kTfIdf,       ///< Eq. 3/4 tf-idf weighting (default)
    kQGramCount,  ///< Eq. 2 raw shared-q-gram count (ablation)
  };
  PairScoreMode pair_mode = PairScoreMode::kTfIdf;
  /// Minimum pair score (Section 3.3.1's threshold)...
  double pair_score_threshold = 0.0;
  /// ...and/or keep only the top r candidates per key.
  size_t top_r_pairs = 8;

  /// Step-1 column scoring q-gram counting interpretation.
  ColumnScorer::CountMode count_mode = ColumnScorer::CountMode::kTotalHits;

  /// Width penalty offset in ScoreTrans (Eq. 5): denominator
  /// max(1, AvgLength(Bi) - sigma). The paper prints sigma = 2 but states the
  /// intent as "columns with an average length of over 4 characters should be
  /// moderated"; sigma = 4 realizes that onset (penalty starts above ~5
  /// chars) and reproduces the paper's Section 4.1 column choices, while
  /// sigma = 2 penalizes 5-char name columns 3.5x and flips them below
  /// 1-char initial columns. See the sigma ablation bench.
  double sigma = 4.0;
  /// Disables the Eq. 5 width penalty (sigma ablation).
  bool disable_width_penalty = false;

  enum class ScoreNormalization {
    /// Occurrence count normalized over ALL candidate translations produced
    /// this round. Default: Eq. 5's wording ("normalised to the total number
    /// of translations created by its parent column") is ambiguous, and the
    /// strict per-column reading lets a low-yield column (e.g. a one-letter
    /// middle-initial column, total a handful of candidates) inflate its
    /// relative frequency past the true column — contradicting the paper's
    /// own Section 4.1 outcome. See DESIGN.md.
    kGlobal,
    /// Strict per-parent-column reading (ablation).
    kPerColumn,
  };
  ScoreNormalization score_normalization = ScoreNormalization::kGlobal;

  /// Iteration / voting limits.
  size_t max_iterations = 8;
  size_t min_support = 2;          ///< minimum votes for a winning formula
  size_t max_variants_per_recipe = 8;
  size_t max_pattern_rows = 32;    ///< cap on target candidates per pattern
  enum class RefinementFilter {
    /// Algorithm 6's "and contains q-grams of key", applied when it leaves
    /// at least one candidate for the (row, column) pair and waived
    /// otherwise. The waiver reconciles the algorithm text with the paper's
    /// own worked example (Table 6 aligns "henry" against "rhwarner", which
    /// share no bi-gram): without it, one-character contributions — exactly
    /// the narrow-column refinements the method targets — are suppressed;
    /// without the filter, structural single-character correlations between
    /// numeric columns (the Time dataset) outvote genuine refinements.
    kPreferSharing,
    kHard,  ///< strict reading: always drop non-sharing candidates
    kOff,   ///< no filter; the pattern alone restricts candidates
  };
  RefinementFilter refinement_filter = RefinementFilter::kPreferSharing;

  /// LCS tie-breaking for recipe alignment. kHashed (default) implements the
  /// paper's "arbitrarily select" so one-character serendipitous matches
  /// diffuse over positions; kLeftmost reproduces the paper's worked
  /// examples exactly (Tables 5/6).
  text::LcsTieBreak lcs_tie_break = text::LcsTieBreak::kHashed;

  /// Detect a separator template on the target column first (Section 6.1).
  bool detect_separators = false;

  /// Number of start columns Run() will attempt (best Step-1 scores first)
  /// when every initial formula of the previous column failed coverage
  /// validation. The paper notes Step 1 "can tolerate picking instead any of
  /// the other related columns" — which requires exactly this feedback loop.
  size_t start_column_candidates = 3;

  /// Number of top-supported initial formulas Run() will attempt per start
  /// column, restarting when a completed formula translates (almost) no
  /// rows. The paper keeps
  /// only the best initial formula and forgoes backtracking because its
  /// integration framework provides no feedback (Section 3.4.4); coverage —
  /// how many source rows actually translate into existing target values —
  /// is exactly that feedback, computable here, so a failed branch is
  /// retried from the next initial candidate. Set to 1 for the strict paper
  /// behaviour.
  size_t initial_candidates = 3;
  /// A completed formula must cover at least this fraction of the smaller
  /// table (and at least min_support rows) to be accepted without restart.
  double min_coverage_fraction = 0.001;

  /// Threads for the parallel pipeline stages (per-column scoring, per-key
  /// retrieval+alignment, per-sampled-row refinement voting). 0 resolves to
  /// the MCSM_THREADS environment variable, else
  /// std::thread::hardware_concurrency(); 1 runs everything inline. The
  /// discovered formula, scores, and report are identical for every value:
  /// workers fill pre-sized slots that are merged in index order, so vote
  /// counts and floating-point accumulation order never depend on
  /// scheduling (see DESIGN.md).
  size_t num_threads = 0;

  // --- Execution environment (SearchOptions::Env) --------------------------
  // Everything injected from OUTSIDE the algorithm lives here: cost caps,
  // the shared cancellation handle, prebuilt indexes, and tracing. The knobs
  // above change WHAT is discovered; Env only changes how the run is
  // metered, fed, and observed — for any valid Env the discovered formula is
  // identical (modulo anytime truncation when a budget trips). One-shot
  // callers leave every field default and nothing changes.
  struct Env {
    /// Cost caps for the run (wall-clock deadline + work-unit counters).
    /// Default: unlimited — the paper's open-ended greedy loop. When any
    /// axis trips, the search stops where it is and returns the best partial
    /// formula found so far with SearchResult::truncated set (anytime
    /// semantics) instead of erroring. The deadline clock starts when the
    /// TranslationSearch is constructed, so index building counts against
    /// it.
    BudgetLimits budget;

    /// When set, the search charges and checks THIS budget instead of
    /// constructing its own from `budget` (`budget` must then stay
    /// unlimited — Validate() rejects the ambiguous combination). The
    /// owner — the service's job manager, or discover_csv's Ctrl-C
    /// handler — can call RunBudget::Cancel() from another thread (or a
    /// signal handler) and the search stops at its next budget check,
    /// returning the best partial formula tagged truncated with
    /// BudgetTrip::kCancelled. Must outlive the search; not owned.
    RunBudget* shared_budget = nullptr;

    /// Prebuilt index over the target column (the service's index cache).
    /// Used when its q matches `q` and it has postings; otherwise the
    /// search builds its own as usual. Shared ownership keeps a
    /// cache-evicted index alive for the duration of the job.
    std::shared_ptr<const relational::ColumnIndex> target_index;

    /// Cache hook for per-source-column indexes (built without postings).
    /// Called at most once per column on first use; returning nullptr — or
    /// an index with the wrong q — falls back to a local build. The
    /// provider is invoked from worker threads and must be thread-safe.
    std::function<std::shared_ptr<const relational::ColumnIndex>(size_t)>
        source_index_provider;

    /// Structured trace sink for the run (see common/trace.h). Null (the
    /// default) disables tracing entirely: every emit site is a single
    /// pointer test. Not owned; must outlive the search. The sink's Emit()
    /// is called from worker threads and must be thread-safe (all the
    /// sinks in common/trace.h are).
    TraceSink* trace = nullptr;

    /// Env-only validation (budget sanity, shared_budget/budget exclusivity).
    Status Validate() const;
  };
  Env env;

  /// Validates the algorithm knobs AND env. Entry points that accept
  /// caller-supplied options (DiscoverTranslation, the service's job intake)
  /// call this and surface InvalidArgument — HTTP 400 in the service —
  /// instead of ad-hoc per-field checks.
  Status Validate() const;
};

/// Step 1 outcome (Algorithm 2): the chosen start column plus every source
/// column's Eq. 1 score, indexed by column (non-text columns score 0).
struct ColumnSelection {
  size_t best_column = std::numeric_limits<size_t>::max();
  std::vector<double> scores;
};

/// One refinement iteration's outcome (Algorithm 5 pass).
struct IterationInfo {
  size_t chosen_column = std::numeric_limits<size_t>::max();
  std::string formula;        ///< formula after the iteration (rendered)
  size_t support = 0;         ///< votes for the winning candidate
  double score = 0;           ///< its ScoreTrans value
  double seconds = 0;
  size_t candidates_considered = 0;
};

/// Instrumentation counters (Figure 3's per-step timing and more).
struct SearchStats {
  double step1_seconds = 0;   ///< column selection
  double step2_seconds = 0;   ///< initial translation formula
  std::vector<double> iteration_seconds;
  size_t pairs_scored = 0;
  size_t recipes_built = 0;
  size_t formulas_considered = 0;
  size_t postings_scanned = 0;  ///< index posting entries examined

  double total_seconds() const {
    double total = step1_seconds + step2_seconds;
    for (double s : iteration_seconds) total += s;
    return total;
  }
};

/// A linked (source row, target row) pair produced by applying a formula.
struct RowMatch {
  size_t source_row;
  size_t target_row;
};

/// Rows covered by a formula: each target row is used at most once.
struct Coverage {
  std::vector<RowMatch> matches;
  size_t matched_rows() const { return matches.size(); }
};

/// The outcome of a full search run.
struct SearchResult {
  TranslationFormula formula;
  size_t start_column = std::numeric_limits<size_t>::max();
  std::vector<IterationInfo> iterations;
  SearchStats stats;
  /// True when the run budget (SearchOptions::budget) tripped before the
  /// search finished: `formula` is then the best partial (possibly
  /// incomplete, possibly empty) formula found before the trip.
  bool truncated = false;
  /// Which budget axis tripped (kNone unless `truncated`).
  BudgetTrip budget_trip = BudgetTrip::kNone;
};

/// \brief The multi-column substring matching search (Algorithm 1).
///
/// Given a source table T1 and a target column A of table T2 — with no
/// training pairs and no row linkage — discovers a translation formula
/// A = w1 + ... + wk of source-column substrings (and, with separator
/// detection, literal separators). See DESIGN.md for the step breakdown.
class TranslationSearch {
 public:
  /// `source` and `target` must outlive the search. `target_column` must be
  /// a TEXT column of `target`.
  TranslationSearch(const relational::Table& source,
                    const relational::Table& target, size_t target_column,
                    SearchOptions options);
  ~TranslationSearch();

  TranslationSearch(const TranslationSearch&) = delete;
  TranslationSearch& operator=(const TranslationSearch&) = delete;

  /// Runs the full pipeline: select start column, build the initial partial
  /// formula, iterate refinement until complete or no candidate adds
  /// information. NotFound when no formula reaches min_support.
  Result<SearchResult> Run();

  /// Step 1 (Algorithm 2): picks the best start column and reports every
  /// column's Eq. 1 score. NotFound when no source column shares q-grams
  /// with the target.
  Result<ColumnSelection> SelectStartColumn();

  /// Step 2 (Algorithms 3+4): initial partial formula from `column`.
  Result<TranslationFormula> BuildInitialFormula(size_t column);

  /// As BuildInitialFormula but returns the `k` best-supported candidates
  /// (best first). Used by Run()'s coverage-validated restarts.
  Result<std::vector<TranslationFormula>> BuildInitialFormulas(size_t column,
                                                               size_t k);

  /// One refinement pass (Algorithms 5+6). Returns true and updates
  /// `formula` when a better candidate was adopted.
  Result<bool> RefineOnce(TranslationFormula* formula,
                          IterationInfo* info = nullptr);

  /// Constrains candidate retrieval with a known row linkage (Section 6.2:
  /// many-to-many targets). linkage[src] = target row, or kNoLink.
  static constexpr size_t kNoLink = std::numeric_limits<size_t>::max();
  void SetLinkage(std::vector<size_t> linkage) { linkage_ = std::move(linkage); }

  /// The separator template detected on the target column (set when
  /// options.detect_separators and detection succeeded).
  const std::optional<relational::SearchPattern>& separator_template() const {
    return separator_template_;
  }

  const SearchStats& stats() const { return stats_; }
  const relational::ColumnIndex& target_index() const { return *target_index_; }

  /// The run budget (counters + trip state) for this search — the caller's
  /// SearchOptions::shared_budget when one was injected, else the internally
  /// owned budget built from SearchOptions::budget.
  const RunBudget& budget() const { return *active_budget_; }

  /// Applies a complete formula to every source row, greedily pairing each
  /// produced value with an unused matching target row.
  static Coverage ComputeCoverage(const TranslationFormula& formula,
                                  const relational::Table& source,
                                  const relational::Table& target,
                                  size_t target_column);

 private:
  size_t SampleCount(size_t distinct) const;
  std::vector<std::string> SampleKeys(size_t column);
  std::vector<size_t> SampleSourceRows(size_t column);
  const relational::ColumnIndex& SourceIndex(size_t column);

  /// The worker pool, created on first use with SearchOptions::num_threads.
  ThreadPool& pool();

  /// One vote produced inside a worker slot, buffered until the ordered
  /// merge.
  struct PendingVote {
    std::string rendered;  ///< "c<col>|" + rendering — the vote-map key
    TranslationFormula formula;
    double weight;       ///< matched-chars weight of the producing recipe
    size_t column = 0;   ///< parent column (Eq. 5 normalization)
  };

  /// Everything one worker slot produces: its votes, its share of the
  /// instrumentation counters, and the first error it hit. Slots are merged
  /// in index order, so vote counts, floating-point accumulation order, and
  /// which error propagates are identical for every thread count.
  struct VoteBatch {
    std::vector<PendingVote> votes;
    size_t recipes_built = 0;
    size_t formulas_considered = 0;
    size_t pairs_scored = 0;
    Status status = Status::OK();
  };

  /// Candidate target rows similar to `key` (initial phase retrieval).
  /// Errors only from the index.similar failpoint; budget exhaustion
  /// truncates the result instead. Thread-safe: retrieved pair counts go to
  /// `pairs_scored` (the caller's slot), not the shared stats.
  Result<std::vector<uint32_t>> SimilarTargetRows(std::string_view key,
                                                  size_t* pairs_scored);

  /// Packages the current best attempt as a truncated anytime result.
  SearchResult TruncatedResult(SearchResult attempt);

  /// Evaluates a failpoint site; a triggered error is first annotated into
  /// the trace (kind=decision, name="failpoint", detail="site: message") so
  /// injected faults show up in the decision log. OK when unarmed.
  Status TracedFailpoint(const char* site, const char* phase);

  /// Collates formulas from one recipe into `counter`.
  struct FormulaVotes {
    TranslationFormula formula;
    size_t count = 0;           ///< raw occurrences (min_support gate)
    double weighted_count = 0;  ///< occurrences weighted by matched chars
    size_t column = 0;
  };
  using VoteMap = std::map<std::string, FormulaVotes>;

  /// Deterministic trace coordinates of a vote site: the pipeline phase plus
  /// the iteration number and sample slot (never thread ids or timestamps),
  /// so recipe events from 1- and 8-thread runs are the same multiset.
  /// Inert when tracing is disabled.
  struct TraceCtx {
    const char* phase = "step2";
    int64_t iteration = -1;
    int64_t sample = -1;
  };
  void VoteRecipe(std::string_view key, std::string_view target,
                  const FixedCoverage& fixed, size_t key_column,
                  const TraceCtx& trace_ctx, VoteBatch* batch);

  /// Folds one slot's votes and counters into the shared vote map and stats.
  /// Per-vote weight goes to `*total` and/or `(*column_totals)[column]`
  /// (pass nullptr for the one not in use).
  void MergeBatch(VoteBatch&& batch, VoteMap* votes,
                  std::vector<double>* column_totals, double* total);

  const relational::Table& source_;
  const relational::Table& target_;
  size_t target_column_;
  SearchOptions options_;
  SearchStats stats_;
  RunBudget budget_;
  /// options_.shared_budget when set, else &budget_. Every charge and
  /// Exhausted() check in the pipeline goes through this pointer, so an
  /// external owner tripping the shared budget (deadline or Cancel()) is the
  /// cooperative cancellation point of the whole search.
  RunBudget* active_budget_ = nullptr;
  /// options_.env.trace: null = tracing disabled (the only cost then is one
  /// pointer test per emit site).
  TraceSink* trace_ = nullptr;

  std::unique_ptr<ThreadPool> pool_;
  /// const + shared: query methods are thread-safe, and shared ownership
  /// lets the service's index cache hand out one index to many jobs.
  std::shared_ptr<const relational::ColumnIndex> target_index_;
  std::vector<std::shared_ptr<const relational::ColumnIndex>> source_indexes_;
  std::optional<relational::SearchPattern> separator_template_;
  std::string separator_chars_;
  std::vector<size_t> linkage_;
};

}  // namespace mcsm::core

#endif  // MCSM_CORE_SEARCH_H_
