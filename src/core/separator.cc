#include "core/separator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/string_util.h"

namespace mcsm::core {

namespace {

using relational::SearchPattern;

// Builds a SearchPattern from a per-position character template where '\0'
// stands for a free position ('%').
SearchPattern TemplateFromChars(const std::vector<char>& chars) {
  std::vector<SearchPattern::Segment> segments;
  for (char c : chars) {
    if (c == '\0') {
      segments.push_back({true, false, 0, ""});
    } else {
      segments.push_back({false, false, 0, std::string(1, c)});
    }
  }
  return SearchPattern(std::move(segments));
}

bool MatchesAll(const relational::Table& table, size_t column,
                const SearchPattern& pattern) {
  const relational::ColumnView view = table.Column(column);
  relational::TextCursor cell(view);
  for (size_t row = 0; row < table.num_rows(); ++row) {
    if (!view.IsText(row)) continue;
    if (!pattern.Matches(cell.Get(row))) return false;
  }
  return true;
}

// Tries to grow each literal segment of `pattern` by one separator character
// at a time: when every instance carries the same separator character
// immediately before/after the captured literal, the template is extended
// (recovers ", " from "%,%" when the space's dominant relative position
// rounds away from the comma's). Extension repeats until a fixed point.
SearchPattern ExtendTemplate(const relational::Table& table, size_t column,
                             SearchPattern pattern) {
  bool changed = true;
  while (changed) {
    changed = false;
    const auto& segments = pattern.segments();
    for (size_t seg = 0; seg < segments.size(); ++seg) {
      if (segments[seg].is_wildcard) continue;
      // Which literal (in capture order) is this?
      size_t literal_index = 0;
      for (size_t k = 0; k < seg; ++k) {
        if (!segments[k].is_wildcard) ++literal_index;
      }
      for (int direction : {+1, -1}) {
        char candidate = '\0';
        bool consistent = true;
        const relational::ColumnView view = table.Column(column);
        relational::TextCursor cell(view);
        for (size_t row = 0; row < table.num_rows() && consistent; ++row) {
          if (!view.IsText(row)) continue;
          const std::string_view s = cell.Get(row);
          auto spans = pattern.CaptureLiterals(s);
          if (!spans.has_value()) {
            consistent = false;
            break;
          }
          const relational::Span& span = (*spans)[literal_index];
          size_t pos;  // position of the adjacent character
          if (direction > 0) {
            pos = span.end();
            if (pos >= s.size()) {
              consistent = false;
              break;
            }
          } else {
            if (span.start == 0) {
              consistent = false;
              break;
            }
            pos = span.start - 1;
          }
          char c = s[pos];
          if (!SeparatorDetector::IsSeparatorChar(c)) {
            consistent = false;
          } else if (candidate == '\0') {
            candidate = c;
          } else if (candidate != c) {
            consistent = false;
          }
        }
        if (!consistent || candidate == '\0') continue;
        // Build the extended pattern and verify it still matches everything.
        std::vector<SearchPattern::Segment> extended = segments;
        if (direction > 0) {
          extended[seg].literal += candidate;
        } else {
          extended[seg].literal.insert(extended[seg].literal.begin(), candidate);
        }
        SearchPattern grown(std::move(extended));
        if (MatchesAll(table, column, grown)) {
          pattern = std::move(grown);
          changed = true;
          break;  // segment indices may have shifted; restart scan
        }
      }
      if (changed) break;
    }
  }
  return pattern;
}

}  // namespace

bool SeparatorDetector::IsSeparatorChar(char c) { return !IsAlnumAscii(c); }

size_t SeparatorDetector::AverageLength(const relational::Table& table,
                                        size_t column) {
  size_t total = 0, count = 0;
  const relational::ColumnView view = table.Column(column);
  relational::TextCursor cell(view);
  for (size_t row = 0; row < table.num_rows(); ++row) {
    if (!view.IsText(row)) continue;
    total += cell.Get(row).size();
    ++count;
  }
  if (count == 0) return 0;
  return static_cast<size_t>(std::llround(static_cast<double>(total) /
                                          static_cast<double>(count)));
}

std::optional<relational::SearchPattern> SeparatorDetector::DetectFixedWidth(
    const relational::Table& table, size_t column) {
  // Algorithm 7: require a fixed width, then keep positions where every
  // instance carries the same separator character.
  size_t width = 0;
  bool first = true;
  const relational::ColumnView view = table.Column(column);
  relational::TextCursor cell(view);
  for (size_t row = 0; row < table.num_rows(); ++row) {
    if (!view.IsText(row)) continue;
    const size_t len = cell.Get(row).size();
    if (first) {
      width = len;
      first = false;
    } else if (len != width) {
      return std::nullopt;
    }
  }
  if (first || width == 0) return std::nullopt;

  std::vector<char> tmpl(width, '\0');
  for (size_t j = 0; j < width; ++j) {
    char candidate = '\0';
    bool consistent = true;
    for (size_t row = 0; row < table.num_rows(); ++row) {
      if (!view.IsText(row)) continue;
      char c = cell.Get(row)[j];
      if (!IsSeparatorChar(c)) {
        consistent = false;
        break;
      }
      if (candidate == '\0') {
        candidate = c;
      } else if (candidate != c) {
        consistent = false;
        break;
      }
    }
    if (consistent && candidate != '\0') tmpl[j] = candidate;
  }
  if (std::all_of(tmpl.begin(), tmpl.end(), [](char c) { return c == '\0'; })) {
    return std::nullopt;
  }
  return TemplateFromChars(tmpl);
}

std::vector<SeparatorDetector::HistogramEntry> SeparatorDetector::BuildHistogram(
    const relational::Table& table, size_t column) {
  std::vector<HistogramEntry> out;
  const size_t avg = AverageLength(table, column);
  if (avg == 0) return out;

  // counts[j][c] over relative positions 1..avg.
  std::vector<std::map<char, size_t>> counts(avg + 1);
  const relational::ColumnView view = table.Column(column);
  relational::TextCursor cell(view);
  for (size_t row = 0; row < table.num_rows(); ++row) {
    if (!view.IsText(row)) continue;
    const std::string_view s = cell.Get(row);
    if (s.empty()) continue;
    for (size_t j = 1; j <= avg; ++j) {
      // Relative position j maps to character round(j/avg * len), clamped.
      size_t idx = static_cast<size_t>(std::llround(
          static_cast<double>(j) * static_cast<double>(s.size()) /
          static_cast<double>(avg)));
      idx = std::clamp<size_t>(idx, 1, s.size());
      char c = s[idx - 1];
      if (IsSeparatorChar(c)) counts[j][c]++;
    }
  }
  for (size_t j = 1; j <= avg; ++j) {
    for (const auto& [c, n] : counts[j]) out.push_back({j, c, n});
  }
  return out;
}

std::optional<relational::SearchPattern> SeparatorDetector::Detect(
    const relational::Table& table, size_t column) {
  const size_t avg = AverageLength(table, column);
  if (avg == 0) return std::nullopt;
  auto histogram = BuildHistogram(table, column);
  if (histogram.empty()) return std::nullopt;

  // Per relative position, the dominant separator and its count.
  std::vector<char> best_char(avg + 1, '\0');
  std::vector<size_t> best_count(avg + 1, 0);
  for (const auto& entry : histogram) {
    if (entry.count > best_count[entry.position]) {
      best_count[entry.position] = entry.count;
      best_char[entry.position] = entry.separator;
    }
  }

  // Thresholds: the distinct dominant counts, descending (equivalent to the
  // paper's unit-decrement loop, without the dead iterations).
  std::set<size_t, std::greater<>> thresholds;
  for (size_t j = 1; j <= avg; ++j) {
    if (best_count[j] > 0) thresholds.insert(best_count[j]);
  }

  std::optional<relational::SearchPattern> best_template;
  for (size_t threshold : thresholds) {
    std::vector<char> tmpl(avg, '\0');
    for (size_t j = 1; j <= avg; ++j) {
      if (best_count[j] >= threshold) tmpl[j - 1] = best_char[j];
    }
    SearchPattern pattern = TemplateFromChars(tmpl);
    if (!MatchesAll(table, column, pattern)) break;
    best_template = std::move(pattern);
  }
  if (best_template.has_value()) {
    best_template = ExtendTemplate(table, column, std::move(*best_template));
  }
  return best_template;
}

std::string SeparatorDetector::TemplateSeparatorChars(
    const relational::SearchPattern& pattern) {
  std::set<char> chars;
  for (const auto& seg : pattern.segments()) {
    if (!seg.is_wildcard) {
      for (char c : seg.literal) chars.insert(c);
    }
  }
  return std::string(chars.begin(), chars.end());
}

}  // namespace mcsm::core
