#ifndef MCSM_CORE_SEPARATOR_H_
#define MCSM_CORE_SEPARATOR_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "relational/pattern.h"
#include "relational/table.h"

namespace mcsm::core {

/// \brief Separator discovery in target columns (Section 6.1).
///
/// Separators are non-alphanumeric characters present in *all* target
/// instances and not copied from any source column (dates "2/15/2005", times
/// "11:45:34", "last, first" name lists...). Two detectors are provided:
/// the simple fixed-width per-position scan (Algorithm 7) and the general
/// relative-position histogram with threshold-lowering template search
/// (Algorithm 8), which also handles variable-width columns.
class SeparatorDetector {
 public:
  /// A histogram cell: how many instances have separator char `c` at
  /// relative position `position` (1-based, over the column's rounded
  /// average length).
  struct HistogramEntry {
    size_t position;
    char separator;
    size_t count;
  };

  /// True for characters the detectors treat as potential separators
  /// (non-alphanumeric ASCII).
  static bool IsSeparatorChar(char c);

  /// Algorithm 7: fixed-width detection. Returns the template (e.g.
  /// "%:%:%") when every instance has the same length and shares separator
  /// characters at fixed positions; nullopt when the column is not
  /// fixed-width or no separator is found.
  static std::optional<relational::SearchPattern> DetectFixedWidth(
      const relational::Table& table, size_t column);

  /// Builds the Algorithm 8 relative-position histogram (Figure 4's data):
  /// one entry per (position, separator char) with a non-zero count.
  static std::vector<HistogramEntry> BuildHistogram(
      const relational::Table& table, size_t column);

  /// Algorithm 8: general detection. Starting from the most frequent
  /// (position, char) pairs and lowering the inclusion threshold, keeps the
  /// largest template that still matches every instance. Returns nullopt
  /// when no separator-bearing template matches all instances.
  static std::optional<relational::SearchPattern> Detect(
      const relational::Table& table, size_t column);

  /// All distinct separator characters appearing in a template.
  static std::string TemplateSeparatorChars(
      const relational::SearchPattern& pattern);

 private:
  /// Rounded average instance length ("relative positions 1..AvgLength").
  static size_t AverageLength(const relational::Table& table, size_t column);
};

}  // namespace mcsm::core

#endif  // MCSM_CORE_SEPARATOR_H_
