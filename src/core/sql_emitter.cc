#include "core/sql_emitter.h"

#include <vector>

#include "common/string_util.h"

namespace mcsm::core {

namespace {

std::string QuoteSqlString(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    out += c;
    if (c == '\'') out += '\'';
  }
  out += "'";
  return out;
}

}  // namespace

Result<std::string> SqlEmitter::ToSql(const TranslationFormula& formula,
                                      const relational::Schema& schema,
                                      const Options& options) {
  if (!formula.IsComplete()) {
    return Status::InvalidArgument(
        "cannot emit SQL for a formula with unknown regions: " +
        formula.ToString(schema));
  }
  if (formula.empty()) {
    return Status::InvalidArgument("cannot emit SQL for an empty formula");
  }

  std::vector<std::string> selects;
  std::vector<std::string> wheres;
  for (const auto& r : formula.regions()) {
    switch (r.kind) {
      case Region::Kind::kLiteral:
        selects.push_back(QuoteSqlString(r.literal));
        break;
      case Region::Kind::kColumnSpan: {
        if (r.column >= schema.num_columns()) {
          return Status::OutOfRange(
              StrFormat("formula references column %zu beyond schema (%zu)",
                        r.column, schema.num_columns()));
        }
        const std::string& name = schema.column(r.column).name;
        if (r.to_end) {
          if (r.start == 1) {
            selects.push_back(name);
            wheres.push_back(
                StrFormat("%s is not null and char_length(%s) >= 1",
                          name.c_str(), name.c_str()));
          } else {
            selects.push_back(StrFormat("substring(%s from %zu)", name.c_str(),
                                        r.start));
            wheres.push_back(StrFormat(
                "%s is not null and char_length(%s) >= %zu", name.c_str(),
                name.c_str(), r.start));
          }
        } else {
          size_t width = r.end - r.start + 1;
          std::string extract = StrFormat("substring(%s from %zu for %zu)",
                                          name.c_str(), r.start, width);
          selects.push_back(extract);
          wheres.push_back(StrFormat(
              "%s is not null and char_length(%s) = %zu", name.c_str(),
              extract.c_str(), width));
        }
        break;
      }
      case Region::Kind::kUnknown:
        return Status::Internal("unknown region survived IsComplete() check");
    }
  }

  std::string sql = "select " + Join(selects, " || ") + " as " +
                    options.output_column + " from " + options.source_table;
  if (!wheres.empty()) {
    sql += " where " + Join(wheres, " and ");
  }
  return sql;
}

}  // namespace mcsm::core
