#ifndef MCSM_CORE_SQL_EMITTER_H_
#define MCSM_CORE_SQL_EMITTER_H_

#include <string>

#include "common/result.h"
#include "core/formula.h"
#include "relational/table.h"

namespace mcsm::core {

/// \brief Renders a complete translation formula as an executable SQL query
/// (the paper's Section 4.1-4.3 output format), e.g.:
///
///   select substring(first from 1 for 1) || last as login from t1
///   where first is not null
///     and char_length(substring(first from 1 for 1)) = 1
///     and last is not null and char_length(last) >= 1
///
/// The WHERE clauses guard exactly the rows the formula covers: fixed spans
/// require the full width to be present, end-of-string spans require at
/// least one character from their start position.
class SqlEmitter {
 public:
  struct Options {
    std::string source_table = "t1";
    std::string output_column = "translated";
  };

  /// Fails with InvalidArgument when the formula still has Unknown regions.
  static Result<std::string> ToSql(const TranslationFormula& formula,
                                   const relational::Schema& schema,
                                   const Options& options);
};

}  // namespace mcsm::core

#endif  // MCSM_CORE_SQL_EMITTER_H_
