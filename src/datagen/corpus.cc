#include "datagen/corpus.h"

#include <set>

namespace mcsm::datagen {

const std::vector<std::string>& FirstNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "robert",  "kyle",    "norma",   "amy",     "josh",    "john",
      "mary",    "james",   "patricia", "michael", "linda",  "william",
      "elizabeth", "david", "barbara", "richard", "susan",   "joseph",
      "jessica", "thomas",  "sarah",   "charles", "karen",   "christopher",
      "nancy",   "daniel",  "lisa",    "matthew", "betty",   "anthony",
      "margaret", "mark",   "sandra",  "donald",  "ashley",  "steven",
      "kimberly", "paul",   "emily",   "andrew",  "donna",   "joshua",
      "michelle", "kenneth", "dorothy", "kevin",  "carol",   "brian",
      "amanda",  "george",  "melissa", "edward",  "deborah", "ronald",
      "stephanie", "timothy", "rebecca", "jason", "sharon",  "jeffrey",
      "laura",   "ryan",    "cynthia", "jacob",   "kathleen", "gary",
      "helen",   "nicholas", "amber",  "eric",    "shirley", "jonathan",
      "angela",  "stephen", "anna",    "larry",   "brenda",  "justin",
      "pamela",  "scott",   "emma",    "brandon", "nicole",  "benjamin",
      "ruth",    "samuel",  "katherine", "gregory", "samantha", "frank",
      "christine", "alexander", "catherine", "raymond", "virginia", "patrick",
      "debra",   "jack",    "rachel",  "dennis",  "janet",   "jerry",
      "maria",   "tyler",   "heather", "aaron",   "diane",   "jose",
      "julie",   "adam",    "joyce",   "henry",   "victoria", "nathan",
      "kelly",   "douglas", "christina", "zachary", "joan",  "peter",
      "evelyn",  "kirk",    "lauren",  "walter",  "judith",  "ethan",
      "olivia",  "jeremy",  "frances", "harold",  "martha",  "keith",
      "cheryl",  "christian", "megan", "roger",   "andrea",  "noah",
      "hannah",  "gerald",  "jacqueline", "carl", "ann",     "terry",
      "jean",    "sean",    "alice",   "austin",  "kathryn", "arthur",
      "gloria",  "lawrence", "teresa", "jesse",   "doris",   "dylan",
      "sara",    "bryan",   "janice",  "joe",     "julia",   "jordan",
      "otto",    "norman",  "wanda",   "billy",   "marie",   "bruce",
  };
  return *kNames;
}

const std::vector<std::string>& LastNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "kerry",    "norman",   "wiseman", "case",     "alderman", "malton",
      "smith",    "johnson",  "williams", "brown",   "jones",    "garcia",
      "miller",   "davis",    "rodriguez", "martinez", "hernandez", "lopez",
      "gonzalez", "wilson",   "anderson", "thomas",  "taylor",   "moore",
      "jackson",  "martin",   "lee",      "perez",   "thompson", "white",
      "harris",   "sanchez",  "clark",    "ramirez", "lewis",    "robinson",
      "walker",   "young",    "allen",    "king",    "wright",   "scott",
      "torres",   "nguyen",   "hill",     "flores",  "green",    "adams",
      "nelson",   "baker",    "hall",     "rivera",  "campbell", "mitchell",
      "carter",   "roberts",  "gomez",    "phillips", "evans",   "turner",
      "diaz",     "parker",   "cruz",     "edwards", "collins",  "reyes",
      "stewart",  "morris",   "morales",  "murphy",  "cook",     "rogers",
      "gutierrez", "ortiz",   "morgan",   "cooper",  "peterson", "bailey",
      "reed",     "kelly",    "howard",   "ramos",   "kim",      "cox",
      "ward",     "richardson", "watson", "brooks",  "chavez",   "wood",
      "james",    "bennett",  "gray",     "mendoza", "ruiz",     "hughes",
      "price",    "alvarez",  "castillo", "sanders", "patel",    "myers",
      "long",     "ross",     "foster",   "jimenez", "powell",   "jenkins",
      "perry",    "russell",  "sullivan", "bell",    "coleman",  "butler",
      "henderson", "barnes",  "gonzales", "fisher",  "vasquez",  "simmons",
      "romero",   "jordan",   "patterson", "alexander", "hamilton", "graham",
      "reynolds", "griffin",  "wallace",  "moreno",  "west",     "cole",
      "hayes",    "bryant",   "herrera",  "gibson",  "ellis",    "tran",
      "medina",   "aguilar",  "stevens",  "murray",  "ford",     "castro",
      "marshall", "owens",    "harrison", "fernandez", "mcdonald", "woods",
      "washington", "kennedy", "wells",   "vargas",  "henry",    "chen",
      "freeman",  "webb",     "tucker",   "guzman",  "burns",    "crawford",
      "olson",    "simpson",  "porter",   "hunter",  "gordon",   "mendez",
      "silva",    "shaw",     "snyder",   "mason",   "dixon",    "munoz",
      "hunt",     "hicks",    "holmes",   "palmer",  "wagner",   "black",
      "warner",   "warder",   "karer",    "laramy",  "rose",     "wang",
      "wayne",    "tompa",    "warren",   "galt",    "alder",    "okmoan",
  };
  return *kNames;
}

const std::vector<std::string>& StreetNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "main",   "oak",     "pine",    "maple",  "cedar",   "elm",
      "view",   "washington", "lake",  "hill",   "park",    "sunset",
      "railroad", "church", "willow", "mill",   "river",   "spring",
      "ridge",  "valley",  "forest",  "meadow", "columbia", "university",
      "college", "highland", "prospect", "franklin", "chestnut", "walnut",
  };
  return *kNames;
}

const std::vector<std::string>& TitleWords() {
  static const std::vector<std::string>* kWords = new std::vector<std::string>{
      "adaptive",   "algorithms", "analysis",   "approach",    "automatic",
      "bayesian",   "caching",    "classification", "clustering", "compilers",
      "complexity", "compression", "computing", "concurrent",  "constraints",
      "databases",  "datamining", "decision",   "detection",   "distributed",
      "dynamic",    "efficient",  "estimation", "evaluation",  "experimental",
      "fast",       "framework",  "graphs",     "heuristics",  "hierarchical",
      "indexing",   "inference",  "integration", "intelligent", "interactive",
      "knowledge",  "language",   "learning",   "logic",       "matching",
      "memory",     "methods",    "mining",     "mobile",      "modeling",
      "networks",   "neural",     "optimal",    "optimization", "parallel",
      "performance", "planning",  "prediction", "probabilistic", "processing",
      "protocols",  "queries",    "randomized", "reasoning",   "recognition",
      "recovery",   "relational", "reliable",   "retrieval",   "robust",
      "scalable",   "scheduling", "schema",     "search",      "secure",
      "semantic",   "semantics",  "sensor",     "similarity",  "simulation",
      "software",   "spatial",    "statistical", "storage",    "streams",
      "structures", "substring",  "synthesis",  "systems",     "temporal",
      "theory",     "transactions", "translation", "verification", "visual",
  };
  return *kWords;
}

std::string SyllableName(Rng& rng) {
  static const char* kOnsets[] = {"b",  "br", "c",  "ch", "d",  "f",  "g",
                                  "gr", "h",  "j",  "k",  "kl", "l",  "m",
                                  "n",  "p",  "r",  "s",  "st", "t",  "tr",
                                  "v",  "w",  "z",  "sh", "th"};
  static const char* kVowels[] = {"a", "e", "i", "o", "u", "ai", "ee", "ou", "ia"};
  static const char* kCodas[] = {"",  "n", "r", "s", "l", "m",  "t",
                                 "ck", "nd", "rt", "x", "ss", "y"};
  // Mostly two syllables (real given/surnames average ~6 characters; the
  // Eq. 5 width-penalty calibration assumes realistic name widths).
  size_t syllables = 2 + (rng.Bernoulli(0.10) ? 1 : 0);
  std::string out;
  for (size_t i = 0; i < syllables; ++i) {
    // Single-char onsets dominate; the multi-char ones appear occasionally.
    if (rng.Bernoulli(0.75)) {
      static const char* kSimpleOnsets[] = {"b", "c", "d", "f", "g", "h",
                                            "j", "k", "l", "m", "n", "p",
                                            "r", "s", "t", "v", "w", "z"};
      out += kSimpleOnsets[rng.Uniform(std::size(kSimpleOnsets))];
    } else {
      out += kOnsets[rng.Uniform(std::size(kOnsets))];
    }
    static const char* kSimpleVowels[] = {"a", "e", "i", "o", "u"};
    if (rng.Bernoulli(0.8)) {
      out += kSimpleVowels[rng.Uniform(std::size(kSimpleVowels))];
    } else {
      out += kVowels[rng.Uniform(std::size(kVowels))];
    }
    if (i + 1 == syllables && rng.Bernoulli(0.6)) {
      out += kCodas[rng.Uniform(std::size(kCodas))];
    }
  }
  return out;
}

std::vector<std::string> DistinctNamePool(Rng& rng, size_t count,
                                          const std::vector<std::string>& base) {
  std::set<std::string> pool;
  for (const auto& n : base) {
    if (pool.size() >= count) break;
    pool.insert(n);
  }
  while (pool.size() < count) {
    pool.insert(SyllableName(rng));
  }
  std::vector<std::string> out(pool.begin(), pool.end());
  rng.Shuffle(out);
  if (out.size() > count) out.resize(count);
  return out;
}

}  // namespace mcsm::datagen
