#ifndef MCSM_DATAGEN_CORPUS_H_
#define MCSM_DATAGEN_CORPUS_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace mcsm::datagen {

/// \brief Deterministic corpora used by the dataset generators.
///
/// Small embedded lists cover the 6k-row experiments; the syllable-based
/// generators scale to the paper's 700k-row datasets with ~70k distinct
/// values per column without shipping external name files.

/// ~160 common first names (lower-case).
const std::vector<std::string>& FirstNames();

/// ~180 common surnames (lower-case).
const std::vector<std::string>& LastNames();

/// Street-name words for address generation.
const std::vector<std::string>& StreetNames();

/// Words for citation-title generation.
const std::vector<std::string>& TitleWords();

/// Generates a pronounceable synthetic name of 2-4 syllables. Deterministic
/// under the supplied RNG.
std::string SyllableName(Rng& rng);

/// Generates `count` *distinct* name-like strings (syllable-based, seeded by
/// `rng`; embeds the embedded lists first for realism).
std::vector<std::string> DistinctNamePool(Rng& rng, size_t count,
                                          const std::vector<std::string>& base);

}  // namespace mcsm::datagen

#endif  // MCSM_DATAGEN_CORPUS_H_
