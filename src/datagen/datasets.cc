#include "datagen/datasets.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/corpus.h"
#include "datagen/noise.h"

namespace mcsm::datagen {

namespace {

using relational::ColumnDef;
using relational::ColumnType;
using relational::Schema;
using relational::Table;
using relational::Value;

Schema TextSchema(std::vector<std::string> names) {
  std::vector<ColumnDef> defs;
  defs.reserve(names.size());
  for (auto& n : names) defs.push_back({std::move(n), ColumnType::kText});
  return Schema(std::move(defs));
}

void MustAppend(Table* table, std::vector<Value> row) {
  MCSM_CHECK_OK(table->AppendRow(std::move(row)));
}

/// A synthetic citation record.
struct CitationRecord {
  std::string year;
  std::string title;
  std::vector<std::string> authors;

  std::string Citation() const { return year + title + authors[0]; }
};

std::string MakeAuthor(Rng& rng, const std::vector<std::string>& last_pool) {
  char initial = static_cast<char>('a' + rng.Uniform(26));
  return std::string(1, initial) + ". " + last_pool[rng.Uniform(last_pool.size())];
}

CitationRecord MakeCitationRecord(Rng& rng,
                                  const std::vector<std::string>& last_pool,
                                  const std::vector<std::string>& word_pool,
                                  size_t max_authors) {
  CitationRecord rec;
  rec.year = std::to_string(1970 + rng.Uniform(36));
  // 5-10 words: long enough that one title is (combinatorially) never a
  // substring of another — the search relies on that, since a title
  // contained in another citation manufactures a false pattern match.
  size_t word_count = 5 + rng.Uniform(6);
  for (size_t w = 0; w < word_count; ++w) {
    if (w > 0) rec.title += " ";
    rec.title += word_pool[rng.Uniform(word_pool.size())];
  }
  // Author count: mostly small, occasionally large (up to max_authors).
  size_t count = 1;
  while (count < max_authors && rng.Bernoulli(0.45)) ++count;
  for (size_t a = 0; a < count; ++a) {
    rec.authors.push_back(MakeAuthor(rng, last_pool));
  }
  return rec;
}

Table CitationSourceTable(const std::vector<CitationRecord>& records,
                          size_t max_authors) {
  std::vector<std::string> names = {"year", "title"};
  for (size_t a = 1; a <= max_authors; ++a) {
    names.push_back(StrFormat("author%zu", a));
  }
  Table table{TextSchema(std::move(names))};
  for (const auto& rec : records) {
    std::vector<Value> row;
    row.emplace_back(rec.year);
    row.emplace_back(rec.title);
    for (size_t a = 0; a < max_authors; ++a) {
      if (a < rec.authors.size()) {
        row.emplace_back(rec.authors[a]);
      } else {
        row.push_back(Value::MakeNull());
      }
    }
    MustAppend(&table, std::move(row));
  }
  return table;
}

// Title vocabulary: the embedded CS word list. Kept small deliberately —
// high per-word document frequency is what makes the title column's Step-1
// score dominate (as with real english stopword-heavy titles); synthetic
// syllable words would instead collide with author-name q-grams.
std::vector<std::string> MakeWordPool(Rng& rng, size_t size) {
  (void)rng;
  (void)size;
  return TitleWords();
}

}  // namespace

Dataset MakeUserIdDataset(const UserIdOptions& options) {
  Rng rng(options.seed);
  Dataset out;
  out.expected_formulas = {"first[1-1]last[1-n]",
                           "first[1-1]middle[1-1]last[1-n]"};

  std::vector<std::string> source_columns = {"first", "middle", "last"};
  if (options.with_dates) source_columns.push_back("birth");
  for (const auto& n : NoiseColumnNames()) source_columns.push_back(n);
  out.source = Table{TextSchema(source_columns)};

  struct TargetRow {
    std::string login;
    std::string dob;
  };
  std::vector<TargetRow> target_rows;

  // Name pools sized like real enrolment data: most surnames occur only a
  // handful of times, first names repeat more often.
  Rng pool_rng(options.seed ^ 0x5EEDF00D);
  const size_t total_rows = options.rows + options.extra_unmatched_rows;
  std::vector<std::string> firsts = DistinctNamePool(
      pool_rng, std::max<size_t>(FirstNames().size(), total_rows / 8),
      FirstNames());
  std::vector<std::string> lasts = DistinctNamePool(
      pool_rng, std::max<size_t>(LastNames().size(), total_rows / 2),
      LastNames());
  for (size_t i = 0; i < total_rows; ++i) {
    std::string first = firsts[rng.Uniform(firsts.size())];
    std::string middle(1, static_cast<char>('a' + rng.Uniform(26)));
    std::string last = lasts[rng.Uniform(lasts.size())];

    std::string birth, dob;
    if (options.with_dates) {
      Date d = RandomDate(rng);
      birth = StrFormat("%02d-%02d-%04d", d.month, d.day, d.year);
      dob = StrFormat("%02d/%02d/%02d", d.month, d.day, d.year % 100);
    }

    std::vector<Value> row;
    row.emplace_back(first);
    row.emplace_back(middle);
    row.emplace_back(last);
    if (options.with_dates) row.emplace_back(birth);
    for (auto& v : NoiseRow(rng)) row.emplace_back(std::move(v));
    MustAppend(&out.source, std::move(row));

    if (i >= options.rows) continue;  // extra source rows have no target

    double dice = rng.UniformDouble();
    std::string login;
    if (dice < options.dominant_fraction) {
      login = first.substr(0, 1) + last;
    } else if (dice < options.dominant_fraction + options.secondary_fraction) {
      login = first.substr(0, 1) + middle + last;
    } else {
      // No dominant pattern: an unrelated login.
      login = RandomText(rng, 6, 9);
    }
    target_rows.push_back({std::move(login), std::move(dob)});
  }

  rng.Shuffle(target_rows);
  std::vector<std::string> target_columns = {"login"};
  if (options.with_dates) target_columns.push_back("dob");
  out.target = Table{TextSchema(target_columns)};
  for (auto& tr : target_rows) {
    std::vector<Value> row;
    row.emplace_back(std::move(tr.login));
    if (options.with_dates) row.emplace_back(std::move(tr.dob));
    MustAppend(&out.target, std::move(row));
  }
  out.target_column = 0;
  return out;
}

Dataset MakeTimeDataset(const TimeOptions& options) {
  Rng rng(options.seed);
  Dataset out;
  out.expected_formulas = {"hrs[1-2]mins[1-2]secs[1-2]",
                           "hrs[1-n]mins[1-n]secs[1-n]"};

  std::vector<std::string> source_columns = {"secs", "mins", "hrs"};
  for (const auto& n : NoiseColumnNames()) source_columns.push_back(n);
  out.source = Table{TextSchema(source_columns)};

  std::vector<std::string> times;
  times.reserve(options.rows);
  for (size_t i = 0; i < options.rows; ++i) {
    TimeOfDay t = RandomTimeOfDay(rng);
    std::vector<Value> row;
    row.emplace_back(t.seconds);
    row.emplace_back(t.minutes);
    row.emplace_back(t.hours);
    for (auto& v : NoiseRow(rng)) row.emplace_back(std::move(v));
    MustAppend(&out.source, std::move(row));
    times.push_back(t.hours + t.minutes + t.seconds);
  }
  rng.Shuffle(times);
  out.target = Table{TextSchema({"time"})};
  for (auto& t : times) MustAppend(&out.target, {Value(std::move(t))});
  out.target_column = 0;
  return out;
}

Dataset MakeMergedNamesDataset(const MergedNamesOptions& options) {
  Rng rng(options.seed);
  Dataset out;
  out.expected_formulas = {options.comma_separator
                               ? "last[1-n]\", \"first[1-n]"
                               : "first[1-n]last[1-n]"};

  Rng pool_rng(options.seed ^ 0xABCDEF);
  std::vector<std::string> firsts =
      DistinctNamePool(pool_rng, options.distinct_names, FirstNames());
  std::vector<std::string> lasts =
      DistinctNamePool(pool_rng, options.distinct_names, LastNames());

  std::vector<std::string> source_columns = {"first", "last"};
  for (const auto& n : NoiseColumnNames()) source_columns.push_back(n);
  out.source = Table{TextSchema(source_columns)};

  std::vector<std::string> fulls;
  fulls.reserve(options.rows);
  for (size_t i = 0; i < options.rows; ++i) {
    const std::string& first = firsts[rng.Uniform(firsts.size())];
    const std::string& last = lasts[rng.Uniform(lasts.size())];
    std::vector<Value> row;
    row.emplace_back(first);
    row.emplace_back(last);
    for (auto& v : NoiseRow(rng)) row.emplace_back(std::move(v));
    MustAppend(&out.source, std::move(row));
    fulls.push_back(options.comma_separator ? last + ", " + first
                                            : first + last);
  }
  rng.Shuffle(fulls);
  out.target = Table{TextSchema({"full"})};
  for (auto& f : fulls) MustAppend(&out.target, {Value(std::move(f))});
  out.target_column = 0;
  return out;
}

Dataset MakeCitationDataset(const CitationOptions& options) {
  Rng rng(options.seed);
  Dataset out;
  out.expected_formulas = {"year[1-n]title[1-n]author1[1-n]"};

  Rng pool_rng(options.seed ^ 0x517EC0DE);
  std::vector<std::string> last_pool = DistinctNamePool(
      pool_rng, std::max<size_t>(200, options.rows / 50), LastNames());
  std::vector<std::string> word_pool =
      MakeWordPool(pool_rng, std::max<size_t>(600, options.rows / 100));

  std::vector<CitationRecord> records;
  records.reserve(options.rows);
  for (size_t i = 0; i < options.rows; ++i) {
    records.push_back(
        MakeCitationRecord(rng, last_pool, word_pool, options.max_authors));
  }
  out.source = CitationSourceTable(records, options.max_authors);

  std::vector<std::string> citations;
  citations.reserve(records.size());
  for (const auto& rec : records) citations.push_back(rec.Citation());
  rng.Shuffle(citations);
  out.target = Table{TextSchema({"citation"})};
  for (auto& c : citations) MustAppend(&out.target, {Value(std::move(c))});
  out.target_column = 0;
  return out;
}

Dataset MakeCrossCitationDataset(const CrossCitationOptions& options) {
  Rng rng(options.seed);
  Dataset out;
  out.expected_formulas = {"year[1-n]title[1-n]author1[1-n]",
                           "year[1-n]title[1-n]author2[1-n]"};

  Rng pool_rng(options.seed ^ 0xD8167ULL);
  std::vector<std::string> last_pool = DistinctNamePool(
      pool_rng, std::max<size_t>(200, options.source_rows / 50), LastNames());
  std::vector<std::string> word_pool =
      MakeWordPool(pool_rng, std::max<size_t>(600, options.source_rows / 100));

  // The DBLP-style source corpus.
  std::vector<CitationRecord> source_records;
  source_records.reserve(options.source_rows);
  for (size_t i = 0; i < options.source_rows; ++i) {
    source_records.push_back(
        MakeCitationRecord(rng, last_pool, word_pool, options.max_authors));
  }
  out.source = CitationSourceTable(source_records, options.max_authors);

  // The Citeseer-style target: a thin overlap with the source (some exact,
  // some with the first two authors swapped), the rest disjoint.
  std::vector<std::string> citations;
  citations.reserve(options.target_rows);
  size_t exact_needed = options.exact_overlap;
  size_t swapped_needed = options.swapped_overlap;
  for (size_t i = 0; i < source_records.size() &&
                     (exact_needed > 0 || swapped_needed > 0);
       ++i) {
    CitationRecord rec = source_records[i];
    if (swapped_needed > 0 && rec.authors.size() >= 2) {
      std::swap(rec.authors[0], rec.authors[1]);
      citations.push_back(rec.Citation());
      --swapped_needed;
    } else if (exact_needed > 0) {
      citations.push_back(rec.Citation());
      --exact_needed;
    }
  }
  Rng disjoint_rng(options.seed ^ 0xDEADBEEF);
  std::vector<std::string> disjoint_pool = DistinctNamePool(
      disjoint_rng, std::max<size_t>(200, options.target_rows / 50),
      LastNames());
  std::vector<std::string> disjoint_words =
      MakeWordPool(disjoint_rng, std::max<size_t>(600, options.target_rows / 100));
  while (citations.size() < options.target_rows) {
    citations.push_back(MakeCitationRecord(disjoint_rng, disjoint_pool,
                                           disjoint_words, options.max_authors)
                            .Citation());
  }
  rng.Shuffle(citations);
  out.target = Table{TextSchema({"citation"})};
  for (auto& c : citations) MustAppend(&out.target, {Value(std::move(c))});
  out.target_column = 0;
  return out;
}

Dataset MakePartNumberDataset(const PartNumberOptions& options) {
  Rng rng(options.seed);
  Dataset out;
  out.expected_formulas = {"plant[1-n]\"-\"serial[1-n]\"-\"year[1-n]",
                           "plant[1-3]\"-\"serial[1-5]\"-\"year[1-4]"};

  std::vector<std::string> source_columns = {"plant", "serial", "year"};
  for (const auto& n : NoiseColumnNames()) source_columns.push_back(n);
  out.source = Table{TextSchema(source_columns)};

  static const char* kPlants[] = {"FRU", "ASM", "PWR", "CHS", "MEM",
                                  "CPU", "FAN", "PSU"};
  std::vector<std::string> targets;
  targets.reserve(options.rows);
  for (size_t i = 0; i < options.rows; ++i) {
    std::string plant = kPlants[rng.Uniform(std::size(kPlants))];
    std::string serial = ZeroPad(static_cast<int>(rng.Uniform(100000)), 5);
    std::string year = std::to_string(1995 + rng.Uniform(12));
    std::vector<Value> row;
    row.emplace_back(plant);
    row.emplace_back(serial);
    row.emplace_back(year);
    for (auto& v : NoiseRow(rng)) row.emplace_back(std::move(v));
    MustAppend(&out.source, std::move(row));
    targets.push_back(plant + "-" + serial + "-" + year);
  }
  rng.Shuffle(targets);
  out.target = Table{TextSchema({"part"})};
  for (auto& t : targets) MustAppend(&out.target, {Value(std::move(t))});
  out.target_column = 0;
  return out;
}

Dataset MakeDateFormatDataset(const DateFormatOptions& options) {
  Rng rng(options.seed);
  Dataset out;
  out.expected_formulas = {"date[6-7]\"/\"date[9-10]\"/\"date[1-4]"};

  std::vector<std::string> source_columns = {"date"};
  for (const auto& n : NoiseColumnNames()) source_columns.push_back(n);
  out.source = Table{TextSchema(source_columns)};

  std::vector<std::string> targets;
  targets.reserve(options.rows);
  for (size_t i = 0; i < options.rows; ++i) {
    Date d = RandomDate(rng);
    std::vector<Value> row;
    row.emplace_back(StrFormat("%04d/%02d/%02d", d.year, d.month, d.day));
    for (auto& v : NoiseRow(rng)) row.emplace_back(std::move(v));
    MustAppend(&out.source, std::move(row));
    targets.push_back(StrFormat("%02d/%02d/%04d", d.month, d.day, d.year));
  }
  rng.Shuffle(targets);
  out.target = Table{TextSchema({"usdate"})};
  for (auto& t : targets) MustAppend(&out.target, {Value(std::move(t))});
  out.target_column = 0;
  return out;
}

}  // namespace mcsm::datagen
