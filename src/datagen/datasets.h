#ifndef MCSM_DATAGEN_DATASETS_H_
#define MCSM_DATAGEN_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/table.h"

namespace mcsm::datagen {

/// A generated experiment dataset: unlinked source table T1 and target table
/// T2 with the aggregate column to translate to.
struct Dataset {
  relational::Table source;
  relational::Table target;
  size_t target_column = 0;
  /// The formula(s) actually used during generation, rendered with source
  /// column names (ground truth for the experiments).
  std::vector<std::string> expected_formulas;
};

/// \brief Section 4.1 — the UserID dataset.
///
/// Source: first, middle, last (+ the four standard noise columns).
/// Target: login, shuffled. ~50% of logins use first[1-1]+last[1-n], ~20%
/// use first[1-1]+middle[1-1]+last[1-n], the remainder follows no dominant
/// pattern. `extra_unmatched_rows` appends source rows with no target
/// counterpart (the Section 4.1 robustness sweep). `with_dates` adds the
/// Table 12 many-to-many columns: source "birth" (mm-dd-yyyy) and target
/// "dob" (mm/dd/yy).
struct UserIdOptions {
  size_t rows = 6000;
  size_t extra_unmatched_rows = 0;
  double dominant_fraction = 0.50;
  double secondary_fraction = 0.20;
  bool with_dates = false;
  uint64_t seed = 1;
};
Dataset MakeUserIdDataset(const UserIdOptions& options);

/// \brief Section 4.2 — the Time dataset. Source: secs, mins, hrs 2-char
/// columns (+ noise); target: time = hrs||mins||secs, shuffled.
struct TimeOptions {
  size_t rows = 10000;
  uint64_t seed = 2;
};
Dataset MakeTimeDataset(const TimeOptions& options);

/// \brief Sections 4.3 / 6.1 and Figure 2 — merged names.
///
/// Source: first, last (+ noise); target: full = first||last (paper Table 9),
/// or full = last||", "||first when `comma_separator` (paper Table 11).
struct MergedNamesOptions {
  size_t rows = 700000;
  size_t distinct_names = 70000;
  bool comma_separator = false;
  uint64_t seed = 3;
};
Dataset MakeMergedNamesDataset(const MergedNamesOptions& options);

/// \brief Section 4.4 — the Citeseer-style citation dataset.
///
/// Source: year, title, author1..author15 (17 columns, 15 from one domain);
/// target: citation = year||title||author1, shuffled.
struct CitationOptions {
  size_t rows = 526000;
  size_t max_authors = 15;
  uint64_t seed = 4;
};
Dataset MakeCitationDataset(const CitationOptions& options);

/// \brief Section 4.5 — the cross-dataset (Citeseer vs DBLP) problem.
///
/// Source: the DBLP-style table (year/title/author1..15). Target: the
/// Citeseer-style citation column. Only `exact_overlap` target records match
/// a source row exactly and `swapped_overlap` match with authors 1 and 2
/// reversed; everything else is disjoint.
struct CrossCitationOptions {
  size_t target_rows = 52600;   ///< Citeseer side (paper: 526,000)
  size_t source_rows = 23300;   ///< DBLP side (paper: 233,000)
  size_t exact_overlap = 71;    ///< paper: 714
  size_t swapped_overlap = 38;  ///< paper: 378
  size_t max_authors = 15;
  uint64_t seed = 5;
};
Dataset MakeCrossCitationDataset(const CrossCitationOptions& options);

/// \brief Motivation-section date format translation: source date
/// "yyyy/mm/dd" (+ noise); target "mm/dd/yyyy", shuffled.
struct DateFormatOptions {
  size_t rows = 8000;
  uint64_t seed = 6;
};
Dataset MakeDateFormatDataset(const DateFormatOptions& options);

/// \brief Section 6.1's manufacturing part-number example
/// ("FRU-13423-2005"): source plant code, serial and year columns
/// (+ noise); target part = plant||"-"||serial||"-"||year, shuffled.
struct PartNumberOptions {
  size_t rows = 6000;
  uint64_t seed = 7;
};
Dataset MakePartNumberDataset(const PartNumberOptions& options);

}  // namespace mcsm::datagen

#endif  // MCSM_DATAGEN_DATASETS_H_
