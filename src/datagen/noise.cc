#include "datagen/noise.h"

#include "common/string_util.h"
#include "datagen/corpus.h"

namespace mcsm::datagen {

namespace {

constexpr const char kAlnum[] = "abcdefghijklmnopqrstuvwxyz0123456789";
constexpr const char kDigits[] = "0123456789";

int DaysInMonth(int year, int month) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 &&
      (year % 4 == 0 && (year % 100 != 0 || year % 400 == 0))) {
    return 29;
  }
  return kDays[month - 1];
}

}  // namespace

std::string RandomText(Rng& rng, size_t min_len, size_t max_len) {
  size_t len = min_len + rng.Uniform(max_len - min_len + 1);
  return rng.RandomString(len, kAlnum);
}

std::string RandomNumber(Rng& rng) {
  size_t len = 3 + rng.Uniform(7);
  std::string out = rng.RandomString(len, kDigits);
  if (out[0] == '0') out[0] = '1' + static_cast<char>(rng.Uniform(9));
  return out;
}

std::string RandomAddress(Rng& rng) {
  static const char* kSuffixes[] = {"street", "avenue", "road", "lane",
                                    "drive",  "court",  "boulevard"};
  int number = 1 + static_cast<int>(rng.Uniform(9999));
  const auto& streets = StreetNames();
  return StrFormat("%d %s %s", number,
                   streets[rng.Uniform(streets.size())].c_str(),
                   kSuffixes[rng.Uniform(std::size(kSuffixes))]);
}

std::string RandomRfc2822Timestamp(Rng& rng) {
  static const char* kWeekdays[] = {"Mon", "Tue", "Wed", "Thu",
                                    "Fri", "Sat", "Sun"};
  static const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                  "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
  Date d = RandomDate(rng);
  TimeOfDay t = RandomTimeOfDay(rng);
  return StrFormat("%s, %02d %s %d %s:%s:%s +0000",
                   kWeekdays[rng.Uniform(7)], d.day, kMonths[d.month - 1],
                   d.year, t.hours.c_str(), t.minutes.c_str(),
                   t.seconds.c_str());
}

TimeOfDay RandomTimeOfDay(Rng& rng) {
  TimeOfDay t;
  t.hours = ZeroPad(static_cast<int>(rng.Uniform(24)), 2);
  t.minutes = ZeroPad(static_cast<int>(rng.Uniform(60)), 2);
  t.seconds = ZeroPad(static_cast<int>(rng.Uniform(60)), 2);
  return t;
}

Date RandomDate(Rng& rng) {
  Date d;
  d.year = 1920 + static_cast<int>(rng.Uniform(90));
  d.month = 1 + static_cast<int>(rng.Uniform(12));
  d.day = 1 + static_cast<int>(rng.Uniform(
                  static_cast<uint64_t>(DaysInMonth(d.year, d.month))));
  return d;
}

std::vector<std::string> NoiseColumnNames() {
  return {"text", "time", "numb", "addr"};
}

std::vector<std::string> NoiseRow(Rng& rng) {
  return {RandomText(rng), RandomRfc2822Timestamp(rng), RandomNumber(rng),
          RandomAddress(rng)};
}

}  // namespace mcsm::datagen
