#ifndef MCSM_DATAGEN_NOISE_H_
#define MCSM_DATAGEN_NOISE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "relational/table.h"

namespace mcsm::datagen {

/// \brief The paper's standard noise columns (Section 4): every experiment's
/// source table carries extraneous columns so the column selection is not
/// trivialised — random alphanumeric text, random numbers, street addresses,
/// and full RFC-2822 timestamps.

/// Random lower-case alphanumeric string, length in [min_len, max_len].
std::string RandomText(Rng& rng, size_t min_len = 6, size_t max_len = 14);

/// Random decimal number string (up to 9 digits).
std::string RandomNumber(Rng& rng);

/// Random street address, e.g. "742 maple street".
std::string RandomAddress(Rng& rng);

/// Random RFC-2822 timestamp, e.g. "Mon, 15 Aug 2005 14:31:25 +0000".
std::string RandomRfc2822Timestamp(Rng& rng);

/// Random time-of-day fields; two-digit zero-padded strings.
struct TimeOfDay {
  std::string hours;    ///< "00".."23"
  std::string minutes;  ///< "00".."59"
  std::string seconds;  ///< "00".."59"
};
TimeOfDay RandomTimeOfDay(Rng& rng);

/// Random calendar date (1920-2009).
struct Date {
  int year;
  int month;
  int day;
};
Date RandomDate(Rng& rng);

/// Names of the standard noise columns, in order: text, time (RFC-2822),
/// numb, addr.
std::vector<std::string> NoiseColumnNames();

/// One row of noise-column values matching NoiseColumnNames().
std::vector<std::string> NoiseRow(Rng& rng);

}  // namespace mcsm::datagen

#endif  // MCSM_DATAGEN_NOISE_H_
