#include "relational/column_index.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "text/qgram.h"

namespace mcsm::relational {

ColumnIndex::ColumnIndex(const Table& table, size_t col, Options options)
    : table_(table), col_(col), options_(options) {
  const size_t q = options_.q;
  std::set<std::string> distinct;
  size_t non_null = 0;
  size_t total_length = 0;
  row_count_ = table.num_rows();

  for (size_t row = 0; row < row_count_; ++row) {
    const Value& v = table.cell(row, col);
    if (!v.is_text()) continue;
    const std::string& s = v.text();
    ++non_null;
    total_length += s.size();
    if (non_null == 1) {
      min_length_ = max_length_ = s.size();
    } else {
      min_length_ = std::min(min_length_, s.size());
      max_length_ = std::max(max_length_, s.size());
    }
    distinct.insert(s);

    if (q > 0 && s.size() >= q) {
      // Per-row q-gram profile feeds both df and (optionally) postings.
      std::unordered_map<std::string, uint32_t> profile;
      for (size_t i = 0; i + q <= s.size(); ++i) profile[s.substr(i, q)]++;
      for (const auto& [gram, tf] : profile) {
        document_frequency_[gram]++;
        if (options_.build_postings) {
          postings_[gram].push_back({static_cast<uint32_t>(row), tf});
        }
      }
    }
  }

  avg_length_ = non_null == 0
                    ? 0.0
                    : static_cast<double>(total_length) / static_cast<double>(non_null);
  sorted_distinct_.assign(distinct.begin(), distinct.end());
  tfidf_ = std::make_unique<text::TfIdfModel>(document_frequency_, non_null, q);
}

int ColumnIndex::DocumentFrequency(std::string_view gram) const {
  auto it = document_frequency_.find(std::string(gram));
  return it == document_frequency_.end() ? 0 : it->second;
}

const std::vector<ColumnIndex::Posting>* ColumnIndex::postings(
    std::string_view gram) const {
  auto it = postings_.find(std::string(gram));
  return it == postings_.end() ? nullptr : &it->second;
}

long long ColumnIndex::TotalQGramHits(std::string_view key) const {
  long long total = 0;
  const size_t q = options_.q;
  if (q == 0 || key.size() < q) return 0;
  for (size_t i = 0; i + q <= key.size(); ++i) {
    total += DocumentFrequency(key.substr(i, q));
  }
  return total;
}

size_t ColumnIndex::RowsWithAnyQGram(std::string_view key) const {
  const size_t q = options_.q;
  if (q == 0 || key.size() < q) return 0;
  std::unordered_set<uint32_t> rows;
  std::unordered_set<std::string> seen;
  for (size_t i = 0; i + q <= key.size(); ++i) {
    std::string gram(key.substr(i, q));
    if (!seen.insert(gram).second) continue;
    const auto* plist = postings(gram);
    if (plist == nullptr) continue;
    for (const Posting& p : *plist) rows.insert(p.row);
  }
  return rows.size();
}

std::vector<uint32_t> ColumnIndex::RowsMatchingPattern(
    const SearchPattern& pattern, RunBudget* budget) const {
  std::vector<uint32_t> out;
  const size_t q = options_.q;
  std::string_view literal = pattern.LongestLiteral();

  // Index-assisted path: the rarest q-gram of the longest literal must occur
  // in every matching row.
  if (options_.build_postings && q > 0 && literal.size() >= q) {
    std::string_view best_gram;
    int best_df = -1;
    for (size_t i = 0; i + q <= literal.size(); ++i) {
      std::string_view gram = literal.substr(i, q);
      int df = DocumentFrequency(gram);
      if (best_df < 0 || df < best_df) {
        best_df = df;
        best_gram = gram;
      }
    }
    if (best_df == 0) return out;  // literal can appear in no row
    const auto* plist = postings(best_gram);
    if (plist != nullptr) {
      // Verification is charged in blocks so a huge posting list cannot
      // overshoot a small budget by much.
      constexpr size_t kBlock = 256;
      for (size_t i = 0; i < plist->size(); i += kBlock) {
        size_t end = std::min(i + kBlock, plist->size());
        if (budget != nullptr && !budget->ChargePostings(end - i)) break;
        for (size_t j = i; j < end; ++j) {
          const Posting& p = (*plist)[j];
          if (pattern.Matches(table_.CellText(p.row, col_))) {
            out.push_back(p.row);
          }
        }
      }
      return out;
    }
    return out;
  }

  // Fallback: full scan, charged in blocks against the budget.
  constexpr size_t kBlock = 256;
  for (size_t start = 0; start < row_count_; start += kBlock) {
    size_t end = std::min(start + kBlock, row_count_);
    if (budget != nullptr && !budget->ChargePostings(end - start)) break;
    for (size_t row = start; row < end; ++row) {
      if (pattern.Matches(table_.CellText(row, col_))) {
        out.push_back(static_cast<uint32_t>(row));
      }
    }
  }
  return out;
}

std::vector<ColumnIndex::ScoredRow> ColumnIndex::SimilarRows(
    std::string_view key, double threshold, size_t top_r,
    std::string_view exclude_chars, RunBudget* budget) const {
  std::vector<ScoredRow> out;
  const size_t q = options_.q;
  if (!options_.build_postings || q == 0 || key.size() < q) return out;

  // Key q-gram profile and weights (tf * idf). q-grams containing excluded
  // (separator) characters are not used as search keys.
  std::unordered_map<std::string, uint32_t> profile;
  for (size_t i = 0; i + q <= key.size(); ++i) {
    std::string_view gram = key.substr(i, q);
    bool clean = true;
    for (char c : gram) {
      if (exclude_chars.find(c) != std::string_view::npos) {
        clean = false;
        break;
      }
    }
    if (clean) profile[std::string(gram)]++;
  }
  // Accumulate Eq. 4 dot products row by row via the postings, rarest gram
  // first, within the per-key posting budget.
  std::vector<std::pair<int, const std::string*>> by_df;
  by_df.reserve(profile.size());
  for (const auto& [gram, key_tf] : profile) {
    by_df.emplace_back(DocumentFrequency(gram), &gram);
  }
  std::sort(by_df.begin(), by_df.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::unordered_map<uint32_t, double> scores;
  size_t per_key_budget = options_.posting_budget;
  for (const auto& [df, gram_ptr] : by_df) {
    if (static_cast<size_t>(df) > per_key_budget) break;
    double idf = tfidf_->Idf(*gram_ptr);
    if (idf <= 0.0) continue;
    const auto* plist = postings(*gram_ptr);
    if (plist == nullptr) continue;
    per_key_budget -= plist->size();
    // The run budget prunes the same way the per-key budget does: the
    // remaining grams are the most common (least informative) ones.
    if (budget != nullptr && !budget->ChargePostings(plist->size())) break;
    const double key_weight =
        static_cast<double>(profile.at(*gram_ptr)) * idf;
    for (const Posting& p : *plist) {
      scores[p.row] += key_weight * (static_cast<double>(p.tf) * idf);
    }
  }
  for (const auto& [row, score] : scores) {
    if (score >= threshold) out.push_back({row, score});
  }
  std::sort(out.begin(), out.end(), [](const ScoredRow& a, const ScoredRow& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.row < b.row;
  });
  if (out.size() > top_r) out.resize(top_r);
  return out;
}

std::vector<ColumnIndex::ScoredRow> ColumnIndex::SimilarRowsByCount(
    std::string_view key, double threshold, size_t top_r,
    RunBudget* budget) const {
  std::vector<ScoredRow> out;
  const size_t q = options_.q;
  if (!options_.build_postings || q == 0 || key.size() < q) return out;

  std::unordered_set<std::string> grams;
  for (size_t i = 0; i + q <= key.size(); ++i) {
    grams.insert(std::string(key.substr(i, q)));
  }
  // Rarest grams first, within the posting budget (as in SimilarRows).
  std::vector<std::pair<int, const std::string*>> by_df;
  by_df.reserve(grams.size());
  for (const auto& gram : grams) {
    by_df.emplace_back(DocumentFrequency(gram), &gram);
  }
  std::sort(by_df.begin(), by_df.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::unordered_map<uint32_t, double> scores;
  size_t per_key_budget = options_.posting_budget;
  for (const auto& [df, gram_ptr] : by_df) {
    if (static_cast<size_t>(df) > per_key_budget) break;
    const auto* plist = postings(*gram_ptr);
    if (plist == nullptr) continue;
    per_key_budget -= plist->size();
    if (budget != nullptr && !budget->ChargePostings(plist->size())) break;
    for (const Posting& p : *plist) scores[p.row] += 1.0;
  }
  for (const auto& [row, score] : scores) {
    if (score >= threshold) out.push_back({row, score});
  }
  std::sort(out.begin(), out.end(), [](const ScoredRow& a, const ScoredRow& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.row < b.row;
  });
  if (out.size() > top_r) out.resize(top_r);
  return out;
}

}  // namespace mcsm::relational
