#include "relational/column_index.h"

#include <algorithm>

#include "text/simd.h"

namespace mcsm::relational {

namespace {

/// Dense per-row score accumulator reused across retrieval calls. Epoch
/// tagging makes "clearing" O(1) and the touched list makes result
/// collection O(candidate rows) instead of O(table rows) or a hash map.
/// thread_local storage keeps concurrent retrieval from the search's worker
/// pool race-free without locking: each thread accumulates into its own
/// scratch while the index itself is only read.
struct ScoreScratch {
  std::vector<double> scores;
  std::vector<uint64_t> epochs;
  std::vector<uint32_t> touched;
  uint64_t epoch = 0;

  void Begin(size_t rows) {
    if (scores.size() < rows) {
      scores.resize(rows, 0.0);
      epochs.resize(rows, 0);
    }
    ++epoch;
    touched.clear();
  }

  void Add(uint32_t row, double value) {
    if (epochs[row] != epoch) {
      epochs[row] = epoch;
      scores[row] = value;
      touched.push_back(row);
    } else {
      scores[row] += value;
    }
  }
};

thread_local ScoreScratch t_scratch;

}  // namespace

ColumnIndex::ColumnIndex(const Table& table, size_t col, Options options)
    : table_(table),
      col_(col),
      options_(options),
      dict_(std::make_shared<text::QGramDictionary>(options.q)) {
  const size_t q = options_.q;
  row_count_ = table.num_rows();
  size_t non_null = 0;
  size_t total_length = 0;
  // Scratch views into the column's segment bytes; sort+unique below
  // replaces the former std::set (one pass, no node allocations). The
  // PinnedColumn keeps every segment resident until the owned copies into
  // sorted_distinct_ below — after the constructor returns, the index holds
  // no references into table storage.
  std::vector<std::string_view> values;
  values.reserve(row_count_);
  std::vector<uint32_t> row_ids;  // gram ids of the current row
  std::vector<int> df;            // document frequency by gram id

  const ColumnView view = table.Column(col);
  const PinnedColumn pinned(view);
  for (size_t row = 0; row < row_count_; ++row) {
    if (!view.IsText(row)) continue;
    const std::string_view s = pinned.at(row);
    ++non_null;
    total_length += s.size();
    if (non_null == 1) {
      min_length_ = max_length_ = s.size();
    } else {
      min_length_ = std::min(min_length_, s.size());
      max_length_ = std::max(max_length_, s.size());
    }
    values.push_back(s);

    if (q > 0 && s.size() >= q) {
      row_ids.clear();
      dict_->InternIds(s, &row_ids);
      df.resize(dict_->size(), 0);
      if (options_.build_postings) postings_.resize(dict_->size());
      // Sorting makes equal ids adjacent: the per-row term frequency falls
      // out of one run scan instead of a per-row hash map.
      std::sort(row_ids.begin(), row_ids.end());
      for (size_t i = 0; i < row_ids.size();) {
        const uint32_t id = row_ids[i];
        size_t j = i + 1;
        while (j < row_ids.size() && row_ids[j] == id) ++j;
        df[id]++;
        if (options_.build_postings) {
          postings_[id].push_back(
              {static_cast<uint32_t>(row), static_cast<uint32_t>(j - i)});
        }
        i = j;
      }
    }
  }

  avg_length_ = non_null == 0
                    ? 0.0
                    : static_cast<double>(total_length) / static_cast<double>(non_null);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  sorted_distinct_.reserve(values.size());
  for (std::string_view value : values) sorted_distinct_.emplace_back(value);
  tfidf_ = std::make_unique<text::TfIdfModel>(dict_, std::move(df), non_null);
  // Interning is done: flat fast-lookup tables for query-time FindIds, and
  // the block-compressed layout for the postings (unless the legacy layout
  // was requested for differential testing).
  dict_->Freeze();
  if (options_.build_postings && !options_.use_legacy_postings) {
    store_ = PostingStore::Build(std::move(postings_));
    postings_.clear();
    postings_.shrink_to_fit();
  }
}

int ColumnIndex::DocumentFrequency(std::string_view gram) const {
  return tfidf_->DocumentFrequencyById(dict_->Find(gram));
}

size_t ColumnIndex::ApproxMemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const std::string& value : sorted_distinct_) {
    bytes += sizeof(std::string) + value.capacity();
  }
  bytes += store_.ApproxMemoryBytes();
  bytes += postings_.capacity() * sizeof(std::vector<Posting>);
  for (const std::vector<Posting>& plist : postings_) {
    bytes += plist.capacity() * sizeof(Posting);
  }
  if (dict_ != nullptr) {
    bytes += dict_->ApproxFastLookupBytes();
    // Per interned gram: the gram bytes (usually SSO'd into the string), the
    // string object, one hash-map slot, and the df (int) + idf (double)
    // vector entries owned by the tf-idf model.
    bytes += dict_->size() *
             (sizeof(std::string) + std::max(options_.q, sizeof(void*)) +
              2 * sizeof(void*) + sizeof(int) + sizeof(double));
  }
  return bytes;
}

std::vector<ColumnIndex::Posting> ColumnIndex::DecodedPostings(
    std::string_view gram) const {
  std::vector<Posting> out;
  const uint32_t id = dict_->Find(gram);
  if (id == text::QGramDictionary::kNoGram) return out;
  if (options_.use_legacy_postings) {
    if (id < postings_.size()) out = postings_[id];
    return out;
  }
  std::vector<uint32_t> rows;
  std::vector<uint32_t> tfs;
  const size_t n = store_.Decode(id, &rows, &tfs);
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back({rows[i], tfs[i]});
  return out;
}

long long ColumnIndex::TotalQGramHits(std::string_view key,
                                      std::string_view exclude_chars) const {
  long long total = 0;
  const size_t q = options_.q;
  if (q == 0 || key.size() < q) return 0;
  if (exclude_chars.empty()) {
    // Batched id resolution (SIMD table lookups when frozen); unknown grams
    // come back as kNoGram, which DocumentFrequencyById counts as 0.
    thread_local std::vector<uint32_t> ids;
    ids.clear();
    dict_->FindIds(key, &ids);
    for (uint32_t id : ids) total += tfidf_->DocumentFrequencyById(id);
    return total;
  }
  for (size_t i = 0; i + q <= key.size(); ++i) {
    std::string_view gram = key.substr(i, q);
    if (gram.find_first_of(exclude_chars) != std::string_view::npos) continue;
    total += tfidf_->DocumentFrequencyById(dict_->Find(gram));
  }
  return total;
}

size_t ColumnIndex::RowsWithAnyQGram(std::string_view key) const {
  if (!options_.build_postings) return 0;
  t_scratch.Begin(row_count_);
  if (options_.use_legacy_postings) {
    for (const KeyTerm& term : BuildKeyTerms(key, {})) {
      for (const Posting& p : postings_[term.id]) t_scratch.Add(p.row, 1.0);
    }
    return t_scratch.touched.size();
  }
  uint32_t rows[kPostingBlockSize];
  for (const KeyTerm& term : BuildKeyTerms(key, {})) {
    auto [blk, end] = store_.Blocks(term.id);
    for (; blk != end; ++blk) {
      if (!DecodePostingBlock(*blk, store_.data(), store_.data_size(), rows,
                              nullptr)) {
        break;
      }
      for (uint16_t j = 0; j < blk->count; ++j) t_scratch.Add(rows[j], 1.0);
    }
  }
  return t_scratch.touched.size();
}

std::vector<uint32_t> ColumnIndex::RowsMatchingPattern(
    const SearchPattern& pattern, RunBudget* budget) const {
  std::vector<uint32_t> out;
  const size_t q = options_.q;
  std::string_view literal = pattern.LongestLiteral();
  // Candidates arrive in ascending row order on every path below, so a
  // cursor pays one segment load per segment, not one per verification.
  TextCursor cell(table_.Column(col_));

  // Index-assisted path: every q-gram of the longest literal must occur in
  // every matching row.
  if (options_.build_postings && q > 0 && literal.size() >= q) {
    if (options_.use_legacy_postings) {
      // Legacy layout: scan the single rarest gram's list, verify each row.
      std::string_view best_gram;
      int best_df = -1;
      for (size_t i = 0; i + q <= literal.size(); ++i) {
        std::string_view gram = literal.substr(i, q);
        int df = DocumentFrequency(gram);
        if (best_df < 0 || df < best_df) {
          best_df = df;
          best_gram = gram;
        }
      }
      if (best_df == 0) return out;  // literal can appear in no row
      const uint32_t best_id = dict_->Find(best_gram);
      if (best_id == text::QGramDictionary::kNoGram ||
          best_id >= postings_.size()) {
        return out;
      }
      const std::vector<Posting>& plist = postings_[best_id];
      // Verification is charged in blocks so a huge posting list cannot
      // overshoot a small budget by much.
      constexpr size_t kBlock = 256;
      for (size_t i = 0; i < plist.size(); i += kBlock) {
        size_t end = std::min(i + kBlock, plist.size());
        if (budget != nullptr && !budget->ChargePostings(end - i)) break;
        for (size_t j = i; j < end; ++j) {
          const Posting& p = plist[j];
          if (pattern.Matches(cell.Get(p.row))) {
            out.push_back(p.row);
          }
        }
      }
      return out;
    }

    // Compressed layout: intersect the posting lists of the literal's rarest
    // grams (galloping over the block skip entries) before verification.
    // Every matching row contains *all* of the literal's grams, so the
    // intersection only sheds non-matching candidates — the verified output
    // is identical to the legacy single-gram scan.
    thread_local std::vector<uint32_t> gram_ids;
    gram_ids.clear();
    dict_->FindIds(literal, &gram_ids);
    std::sort(gram_ids.begin(), gram_ids.end());
    gram_ids.erase(std::unique(gram_ids.begin(), gram_ids.end()),
                   gram_ids.end());
    // kNoGram sorts last; any unknown gram means the literal occurs nowhere.
    if (!gram_ids.empty() &&
        gram_ids.back() == text::QGramDictionary::kNoGram) {
      return out;
    }
    // Rarest first: the shortest list seeds the candidates, the next-rarest
    // lists shrink them fastest.
    std::sort(gram_ids.begin(), gram_ids.end(),
              [this](uint32_t a, uint32_t b) {
                const uint32_t ca = store_.Count(a);
                const uint32_t cb = store_.Count(b);
                if (ca != cb) return ca < cb;
                return a < b;
              });
    thread_local std::vector<uint32_t> candidates;
    candidates.clear();
    uint32_t rows[kPostingBlockSize];
    auto [blk, blk_end] = store_.Blocks(gram_ids.front());
    for (; blk != blk_end; ++blk) {
      // Decoding is charged like the legacy scan; on exhaustion the rows
      // decoded so far are verified (same anytime semantics).
      if (budget != nullptr && !budget->ChargePostings(blk->count)) break;
      if (!DecodePostingBlock(*blk, store_.data(), store_.data_size(), rows,
                              nullptr)) {
        break;
      }
      candidates.insert(candidates.end(), rows, rows + blk->count);
    }
    // Beyond a few grams the intersection is already tight; more lists cost
    // decode work without shedding candidates. Intersection is purely a
    // pre-filter (every survivor is pattern-verified below), so stopping
    // early once the candidate set is small never changes the result.
    constexpr size_t kMaxIntersectGrams = 4;
    constexpr size_t kSmallEnoughToVerify = 32;
    for (size_t g = 1; g < gram_ids.size() && g < kMaxIntersectGrams &&
                       candidates.size() > kSmallEnoughToVerify;
         ++g) {
      store_.Intersect(gram_ids[g], &candidates, budget);
    }
    for (uint32_t row : candidates) {
      if (pattern.Matches(cell.Get(row))) out.push_back(row);
    }
    return out;
  }

  // Fallback: full scan, charged in blocks against the budget.
  constexpr size_t kBlock = 256;
  for (size_t start = 0; start < row_count_; start += kBlock) {
    size_t end = std::min(start + kBlock, row_count_);
    if (budget != nullptr && !budget->ChargePostings(end - start)) break;
    for (size_t row = start; row < end; ++row) {
      if (pattern.Matches(cell.Get(row))) {
        out.push_back(static_cast<uint32_t>(row));
      }
    }
  }
  return out;
}

std::vector<ColumnIndex::KeyTerm> ColumnIndex::BuildKeyTerms(
    std::string_view key, std::string_view exclude_chars) const {
  std::vector<KeyTerm> terms;
  const size_t q = options_.q;
  if (q == 0 || key.size() < q) return terms;
  // Gram ids of the key (excluded/unknown grams dropped: an excluded gram
  // must not be used as a search key, an unknown one retrieves nothing).
  thread_local std::vector<uint32_t> ids;
  ids.clear();
  if (exclude_chars.empty()) {
    // Batched resolution through the frozen tables (SIMD lookups); unknown
    // grams come back as kNoGram and are dropped after the sort below.
    dict_->FindIds(key, &ids);
  } else {
    for (size_t i = 0; i + q <= key.size(); ++i) {
      std::string_view gram = key.substr(i, q);
      if (gram.find_first_of(exclude_chars) != std::string_view::npos) {
        continue;
      }
      const uint32_t id = dict_->Find(gram);
      if (id != text::QGramDictionary::kNoGram) ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  // kNoGram is the max uint32, so unknown grams form the sorted tail.
  for (size_t i = 0; i < ids.size();) {
    if (ids[i] == text::QGramDictionary::kNoGram) break;
    size_t j = i + 1;
    while (j < ids.size() && ids[j] == ids[i]) ++j;
    terms.push_back({ids[i], static_cast<uint32_t>(j - i)});
    i = j;
  }
  return terms;
}

std::vector<ColumnIndex::ScoredRow> ColumnIndex::AccumulateRarestFirst(
    std::vector<KeyTerm> terms, bool idf_weighted, double threshold,
    size_t top_r, RunBudget* budget) const {
  // Rarest (most discriminative) grams first; ties broken by id so the
  // accumulation order — and with it the floating-point rounding — is
  // deterministic.
  std::sort(terms.begin(), terms.end(),
            [this](const KeyTerm& a, const KeyTerm& b) {
              const int da = tfidf_->DocumentFrequencyById(a.id);
              const int db = tfidf_->DocumentFrequencyById(b.id);
              if (da != db) return da < db;
              return a.id < b.id;
            });
  t_scratch.Begin(row_count_);
  size_t per_key_budget = options_.posting_budget;
  const bool legacy = options_.use_legacy_postings;
  // Per-block decode scratch lives on the stack (~2 KB, L1-resident); the
  // whole accumulation loop allocates nothing.
  uint32_t rows[kPostingBlockSize];
  uint32_t tfs[kPostingBlockSize];
  double contribs[kPostingBlockSize];
  for (const KeyTerm& term : terms) {
    const size_t count =
        legacy ? postings_[term.id].size() : store_.Count(term.id);
    // A df-sized posting list costs df entries to scan; stopping on the
    // actual list size keeps the subtraction below from underflowing.
    if (count > per_key_budget) break;
    double idf = 0.0;
    if (idf_weighted) {
      idf = tfidf_->IdfById(term.id);
      if (idf <= 0.0) continue;
    }
    per_key_budget -= count;
    // The run budget prunes the same way the per-key budget does: the
    // remaining grams are the most common (least informative) ones.
    // Charging the whole list up front (rather than per block) keeps the
    // cut-off — and with it the result — byte-identical to the legacy
    // layout under any budget.
    if (budget != nullptr && !budget->ChargePostings(count)) break;
    if (legacy) {
      const std::vector<Posting>& plist = postings_[term.id];
      if (idf_weighted) {
        const double key_weight = static_cast<double>(term.tf) * idf;
        for (const Posting& p : plist) {
          t_scratch.Add(p.row, key_weight * (static_cast<double>(p.tf) * idf));
        }
      } else {
        for (const Posting& p : plist) t_scratch.Add(p.row, 1.0);
      }
      continue;
    }
    auto [blk, end] = store_.Blocks(term.id);
    if (idf_weighted) {
      // Same contribution expression as the legacy loop, evaluated per lane
      // by the SIMD kernel: two ordered multiplies, no reassociation, so the
      // accumulated doubles are bit-identical across layouts and tiers.
      const double key_weight = static_cast<double>(term.tf) * idf;
      for (; blk != end; ++blk) {
        if (!DecodePostingBlock(*blk, store_.data(), store_.data_size(), rows,
                                tfs)) {
          break;
        }
        text::simd::TfContributions(key_weight, idf, tfs, blk->count,
                                    contribs);
        for (uint16_t j = 0; j < blk->count; ++j) {
          t_scratch.Add(rows[j], contribs[j]);
        }
      }
    } else {
      for (; blk != end; ++blk) {
        if (!DecodePostingBlock(*blk, store_.data(), store_.data_size(), rows,
                                nullptr)) {
          break;
        }
        for (uint16_t j = 0; j < blk->count; ++j) t_scratch.Add(rows[j], 1.0);
      }
    }
  }
  std::vector<ScoredRow> out;
  out.reserve(t_scratch.touched.size());
  for (uint32_t row : t_scratch.touched) {
    const double score = t_scratch.scores[row];
    if (score >= threshold) out.push_back({row, score});
  }
  const auto by_score = [](const ScoredRow& a, const ScoredRow& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.row < b.row;
  };
  if (out.size() > top_r) {
    // (score desc, row asc) is a total order over distinct rows, so selecting
    // the top_r elements and sorting only those yields the exact prefix a
    // full sort would produce — byte-identical results without paying
    // O(n log n) on candidate sets that dwarf top_r (the common case: whole
    // tables score above threshold but callers keep ~8 pairs).
    std::nth_element(out.begin(), out.begin() + static_cast<ptrdiff_t>(top_r),
                     out.end(), by_score);
    out.resize(top_r);
  }
  std::sort(out.begin(), out.end(), by_score);
  return out;
}

std::vector<ColumnIndex::ScoredRow> ColumnIndex::SimilarRows(
    std::string_view key, double threshold, size_t top_r,
    std::string_view exclude_chars, RunBudget* budget) const {
  if (!options_.build_postings || options_.q == 0 || key.size() < options_.q) {
    return {};
  }
  return AccumulateRarestFirst(BuildKeyTerms(key, exclude_chars),
                               /*idf_weighted=*/true, threshold, top_r,
                               budget);
}

std::vector<ColumnIndex::ScoredRow> ColumnIndex::SimilarRowsByCount(
    std::string_view key, double threshold, size_t top_r,
    RunBudget* budget) const {
  if (!options_.build_postings || options_.q == 0 || key.size() < options_.q) {
    return {};
  }
  return AccumulateRarestFirst(BuildKeyTerms(key, {}),
                               /*idf_weighted=*/false, threshold, top_r,
                               budget);
}

}  // namespace mcsm::relational
