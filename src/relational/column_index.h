#ifndef MCSM_RELATIONAL_COLUMN_INDEX_H_
#define MCSM_RELATIONAL_COLUMN_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/deadline.h"
#include "relational/pattern.h"
#include "relational/postings.h"
#include "relational/table.h"
#include "text/qgram.h"
#include "text/tfidf.h"

namespace mcsm::relational {

/// \brief Per-column auxiliary structures used by the matcher: the sorted
/// distinct-value list (sampling cursor surrogate for a B-tree index), q-gram
/// document frequencies, and an optional q-gram inverted index over rows.
///
/// The paper manipulates data "with basic SQL commands" against PostgreSQL;
/// this class is the equivalent access path in the embedded engine. Postings
/// make the two hot retrieval operations index-assisted rather than
/// full-scan: tf-idf similarity retrieval (Section 3.3.1) and LIKE-pattern
/// candidate retrieval (Section 3.4.1).
///
/// Layout: grams are interned once at construction into a dense-id
/// dictionary (frozen into a flat fast-lookup table afterwards — see
/// text/qgram.h); df and idf are flat vectors indexed by gram id, and the
/// row-level inverted index is a block-compressed PostingStore (delta-coded
/// row ids + separate tf stream in 128-entry blocks with skip entries, one
/// shared arena — see relational/postings.h). The retrieval hot path
/// performs no per-lookup string allocation, no hash-map node chasing, and
/// decodes blocks into thread-local/stack scratch, so it stays
/// zero-allocation in steady state. All query methods are const and safe to
/// call concurrently from the search's worker pool (similarity scoring uses
/// a thread-local dense accumulator internally).
class ColumnIndex {
 public:
  struct Options {
    size_t q = 2;                ///< q-gram length (paper uses bi-grams)
    bool build_postings = false; ///< build the row-level inverted index
    /// Per-key budget of posting entries scanned during similarity
    /// retrieval. Grams are processed rarest-first (highest idf — the
    /// discriminative ones), so the budget prunes only the low-signal tail
    /// of very common grams.
    size_t posting_budget = 20000;
    /// Keeps the uncompressed per-gram `std::vector<Posting>` layout instead
    /// of the block-compressed PostingStore. Retrieval results are
    /// byte-identical between the two layouts (enforced by differential
    /// tests); legacy exists for that comparison and as a rollback lever,
    /// not for production use.
    bool use_legacy_postings = false;
  };

  /// An inverted-index entry: the row and the q-gram's term frequency there.
  using Posting = mcsm::relational::Posting;

  ColumnIndex(const Table& table, size_t col, Options options);

  size_t q() const { return options_.q; }
  size_t row_count() const { return row_count_; }
  size_t column() const { return col_; }
  /// True when the row-level inverted index was built (Options::build_postings).
  bool postings_built() const { return options_.build_postings; }

  /// Rough heap footprint of this index in bytes: distinct-value strings,
  /// posting lists, the interning dictionary, and the tf-idf df/idf vectors.
  /// The estimate is stable across calls (nothing here grows after
  /// construction), which is what the service's byte-budgeted LRU cache
  /// charges per entry. Deliberately an estimate: exact malloc accounting is
  /// allocator-specific and not worth plumbing.
  size_t ApproxMemoryBytes() const;

  /// Number of distinct non-null values.
  size_t distinct_count() const { return sorted_distinct_.size(); }

  /// Distinct values in sorted order (the "B-tree cursor" for equidistant
  /// sampling).
  const std::vector<std::string>& sorted_distinct() const {
    return sorted_distinct_;
  }

  /// Average length of non-null instances (0 when the column is empty).
  double avg_length() const { return avg_length_; }

  /// True when every non-null instance has the same (non-zero) length —
  /// a fixed-width column (Section 3.3.3's fixed-field case).
  bool fixed_width() const { return min_length_ == max_length_ && max_length_ > 0; }

  /// Number of rows containing `gram` at least once.
  int DocumentFrequency(std::string_view gram) const;

  /// Decoded posting list for `gram` (empty when `gram` is unknown or
  /// postings were not built). Allocates — a test/inspection accessor, not
  /// the hot path; retrieval decodes blocks into reusable scratch instead.
  std::vector<Posting> DecodedPostings(std::string_view gram) const;

  /// Sum over the key's q-grams (with multiplicity) of their document
  /// frequency — the "count T2 where A includes q-grams of key" reading (a)
  /// used by the column scorer. q-grams containing any character from
  /// `exclude_chars` are skipped (separator handling, Section 6.1).
  long long TotalQGramHits(std::string_view key,
                           std::string_view exclude_chars = {}) const;

  /// Number of distinct rows containing at least one q-gram of `key` —
  /// reading (b). Requires postings.
  size_t RowsWithAnyQGram(std::string_view key) const;

  /// tf-idf model over the column's instances (dictionary and document
  /// frequencies shared with this index).
  const text::TfIdfModel& tfidf() const { return *tfidf_; }

  /// Rows whose value matches `pattern`, filtered through the inverted index
  /// when possible, verified exactly. The compressed layout intersects the
  /// posting lists of the literal's rarest q-grams (up to four, galloping
  /// over the per-block skip entries) before verification; the legacy layout
  /// scans the single rarest gram's list. Falls back to a scan when no
  /// usable literal exists or postings were not built. `budget`, when given,
  /// is charged per row/posting examined; on exhaustion the scan stops and
  /// the rows found so far are returned (anytime semantics — the caller
  /// reports truncation).
  std::vector<uint32_t> RowsMatchingPattern(const SearchPattern& pattern,
                                            RunBudget* budget = nullptr) const;

  /// A row id together with its tf-idf similarity score against a key.
  struct ScoredRow {
    uint32_t row;
    double score;
  };

  /// Rows similar to `key` under the Eq. 4 tf-idf dot product, retrieved via
  /// the inverted index. Rows scoring below `threshold` are dropped; at most
  /// `top_r` rows are returned (best first). Requires postings. q-grams
  /// containing any character from `exclude_chars` are not used as search
  /// keys (separator handling, Section 6.1). `budget`, when given, is
  /// charged per posting entry scanned; on exhaustion the remaining (most
  /// common, least informative) gram lists are skipped and the rows scored
  /// so far are returned.
  std::vector<ScoredRow> SimilarRows(std::string_view key, double threshold,
                                     size_t top_r,
                                     std::string_view exclude_chars = {},
                                     RunBudget* budget = nullptr) const;

  /// Per-row term-frequency-weighted *raw q-gram count* score (paper Eq. 2):
  /// the number of the key's distinct q-grams present in each candidate row.
  /// Kept for the pair-scoring ablation. Requires postings. `budget` as in
  /// SimilarRows.
  std::vector<ScoredRow> SimilarRowsByCount(std::string_view key,
                                            double threshold, size_t top_r,
                                            RunBudget* budget = nullptr) const;

 private:
  /// One search term of a key: an interned gram id and the key's term
  /// frequency for it.
  struct KeyTerm {
    uint32_t id;
    uint32_t tf;
  };

  /// Collects the key's q-grams as (id, tf) terms, skipping grams containing
  /// `exclude_chars` and grams absent from this column (df 0 — they can
  /// retrieve nothing).
  std::vector<KeyTerm> BuildKeyTerms(std::string_view key,
                                     std::string_view exclude_chars) const;

  /// The accumulation loop shared by SimilarRows and SimilarRowsByCount:
  /// walks the terms' posting lists rarest-gram-first within the per-key
  /// posting budget (and `budget`), accumulating per-row scores — tf-idf
  /// dot-product contributions when `idf_weighted`, 1.0 per posting
  /// otherwise — into a thread-local dense array, then filters by
  /// `threshold` and keeps the `top_r` best.
  std::vector<ScoredRow> AccumulateRarestFirst(std::vector<KeyTerm> terms,
                                               bool idf_weighted,
                                               double threshold, size_t top_r,
                                               RunBudget* budget) const;

  const Table& table_;
  size_t col_;
  Options options_;
  size_t row_count_ = 0;
  double avg_length_ = 0;
  size_t min_length_ = 0;
  size_t max_length_ = 0;
  std::vector<std::string> sorted_distinct_;
  /// gram <-> dense id; shared with tfidf_ so both agree on ids.
  std::shared_ptr<text::QGramDictionary> dict_;
  /// Block-compressed posting lists by gram id (the default layout; empty
  /// unless options_.build_postings).
  PostingStore store_;
  /// Uncompressed posting lists by gram id (only when
  /// options_.use_legacy_postings; kept for differential testing).
  std::vector<std::vector<Posting>> postings_;
  /// Owns df/idf by gram id (DocumentFrequency delegates here).
  std::unique_ptr<text::TfIdfModel> tfidf_;
};

}  // namespace mcsm::relational

#endif  // MCSM_RELATIONAL_COLUMN_INDEX_H_
