#include "relational/column_store.h"

#include <utility>

#include "common/check.h"

namespace mcsm::relational {

// ---------------------------------------------------------------------------
// TextColumn

Status TextColumn::Append(std::string_view text) {
  MCSM_CHECK(text.size() <= UINT32_MAX);
  MCSM_CHECK(seg_.size() < UINT32_MAX);
  // Seal a tail that this value would overflow; an oversized value then
  // lands in a fresh tail and seals alone (a segment of its own).
  if (!tail_.empty() && tail_.size() + text.size() > segment_bytes_) {
    MCSM_RETURN_IF_ERROR(Seal());
  }
  seg_.push_back(static_cast<uint32_t>(segments_.size()));
  off_.push_back(static_cast<uint32_t>(tail_.size()));
  len_.push_back(static_cast<uint32_t>(text.size()));
  tail_.append(text);
  if (tail_.size() >= segment_bytes_) {
    MCSM_RETURN_IF_ERROR(Seal());
  }
  return Status::OK();
}

Status TextColumn::Set(size_t row, std::string_view text) {
  MCSM_CHECK(row < seg_.size());
  MCSM_CHECK(text.size() <= UINT32_MAX);
  if (!tail_.empty() && tail_.size() + text.size() > segment_bytes_) {
    MCSM_RETURN_IF_ERROR(Seal());
  }
  seg_[row] = static_cast<uint32_t>(segments_.size());
  off_[row] = static_cast<uint32_t>(tail_.size());
  len_[row] = static_cast<uint32_t>(text.size());
  tail_.append(text);
  if (tail_.size() >= segment_bytes_) {
    MCSM_RETURN_IF_ERROR(Seal());
  }
  return Status::OK();
}

Status TextColumn::Seal() {
  if (tail_.empty()) return Status::OK();
  // Bind the pager on first spill. A failed spill-file creation latches in
  // the source and we degrade to resident segments from then on.
  if (pager_ == nullptr && source_ != nullptr) {
    pager_ = source_->GetOrCreate();
  }
  Segment s;
  s.bytes = static_cast<uint32_t>(tail_.size());
  if (pager_ != nullptr) {
    MCSM_ASSIGN_OR_RETURN(s.page_id, pager_->Write(tail_.data(), tail_.size()));
  } else {
    s.resident = std::make_shared<const PageData>(tail_.begin(), tail_.end());
  }
  segments_.push_back(std::move(s));
  tail_.clear();  // keeps capacity for the next segment
  return Status::OK();
}

PagePin TextColumn::LoadSegment(uint32_t k) const {
  const Segment& s = segments_[k];
  if (s.resident != nullptr) return s.resident;
  MCSM_CHECK(pager_ != nullptr && s.page_id != kNoPage);
  Result<PagePin> pin = pager_->Load(s.page_id);
  // A failed load (I/O error, pager.read failpoint) degrades to an empty
  // pin — readers see empty views and the error stays latched in the pager
  // (Table::storage_status()).
  if (!pin.ok()) return nullptr;
  return *std::move(pin);
}

TextView TextColumn::Get(size_t row) const {
  MCSM_CHECK(row < seg_.size());
  const uint32_t len = len_[row];
  if (len == 0) return TextView();
  const uint32_t k = seg_[row];
  if (k == segments_.size()) {
    // Open tail: unpinned view, valid until the next mutation.
    return TextView(std::string_view(tail_.data() + off_[row], len), nullptr);
  }
  PagePin pin = LoadSegment(k);
  if (pin == nullptr) return TextView();
  std::string_view view(pin->data() + off_[row], len);
  return TextView(view, std::move(pin));
}

void TextColumn::Truncate(size_t n) {
  if (n >= seg_.size()) return;
  seg_.resize(n);
  off_.resize(n);
  len_.resize(n);
  // Sealed segments and tail bytes past the cut are abandoned in place;
  // RemoveRows-style rebuilds reclaim them if it ever matters.
}

uint64_t TextColumn::live_text_bytes() const {
  uint64_t total = 0;
  for (uint32_t len : len_) total += len;
  return total;
}

bool TextColumn::SegmentResident(size_t k) const {
  const Segment& s = segments_[k];
  if (s.resident != nullptr) return true;
  return pager_ != nullptr && s.page_id != kNoPage && pager_->Resident(s.page_id);
}

// ---------------------------------------------------------------------------
// ColumnView

TextView ColumnView::GetText(size_t row) const {
  if (col_ != nullptr) {
    if (col_->type != ColumnType::kText || col_->nulls.Get(row)) {
      return TextView();
    }
    return col_->text.Get(row);
  }
  const Value& v = (*legacy_)[row];
  if (!v.is_text()) return TextView();
  return TextView(std::string_view(v.text()), nullptr);
}

void ColumnView::GetTexts(const uint32_t* rows, size_t n,
                          std::vector<TextView>* out) const {
  out->reserve(out->size() + n);
  if (col_ == nullptr || col_->type != ColumnType::kText) {
    for (size_t i = 0; i < n; ++i) out->push_back(GetText(rows[i]));
    return;
  }
  // Columnar: reuse the previous row's pin while the segment id repeats —
  // sorted row lists (the common case: posting lists) pay one load per
  // segment touched.
  const TextColumn& text = col_->text;
  uint32_t cached_seg = UINT32_MAX;
  PagePin pin;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t row = rows[i];
    if (col_->nulls.Get(row) || text.len_[row] == 0) {
      out->push_back(TextView());
      continue;
    }
    const uint32_t k = text.seg_[row];
    if (k == text.segments_.size()) {
      out->push_back(TextView(
          std::string_view(text.tail_.data() + text.off_[row],
                           text.len_[row]),
          nullptr));
      continue;
    }
    if (k != cached_seg) {
      pin = text.LoadSegment(k);
      cached_seg = k;
    }
    if (pin == nullptr) {
      out->push_back(TextView());
      continue;
    }
    out->push_back(TextView(
        std::string_view(pin->data() + text.off_[row], text.len_[row]), pin));
  }
}

Value ColumnView::GetValue(size_t row) const {
  if (col_ == nullptr) return (*legacy_)[row];
  if (col_->nulls.Get(row)) return Value::MakeNull();
  switch (col_->type) {
    case ColumnType::kText: {
      TextView v = col_->text.Get(row);
      return Value(std::string(v.view()));
    }
    case ColumnType::kInteger:
      return Value(col_->ints[row]);
    case ColumnType::kReal:
      return Value(col_->reals[row]);
  }
  return Value::MakeNull();  // unreachable
}

// ---------------------------------------------------------------------------
// TextCursor

std::string_view TextCursor::Get(size_t row) {
  const ColumnData* col = view_.col_;
  if (col == nullptr) {
    const Value& v = (*view_.legacy_)[row];
    return v.is_text() ? std::string_view(v.text()) : std::string_view();
  }
  if (col->type != ColumnType::kText || col->nulls.Get(row)) {
    return {};
  }
  const TextColumn& text = col->text;
  const uint32_t len = text.len_[row];
  if (len == 0) return {};
  const uint32_t k = text.seg_[row];
  if (k == text.segments_.size()) {
    return {text.tail_.data() + text.off_[row], len};
  }
  if (k != cached_seg_) {
    pin_ = text.LoadSegment(k);
    cached_seg_ = k;
    base_ = pin_ != nullptr ? pin_->data() : nullptr;
  }
  if (base_ == nullptr) return {};
  return {base_ + text.off_[row], len};
}

// ---------------------------------------------------------------------------
// PinnedColumn

PinnedColumn::PinnedColumn(const ColumnView& view) : view_(view) {
  const ColumnData* col = view_.col_;
  if (col == nullptr || col->type != ColumnType::kText) return;
  const TextColumn& text = col->text;
  pins_.resize(text.segments_.size());
  for (size_t k = 0; k < text.segments_.size(); ++k) {
    pins_[k] = text.LoadSegment(static_cast<uint32_t>(k));
  }
}

std::string_view PinnedColumn::at(size_t row) const {
  const ColumnData* col = view_.col_;
  if (col == nullptr) {
    const Value& v = (*view_.legacy_)[row];
    return v.is_text() ? std::string_view(v.text()) : std::string_view();
  }
  if (col->type != ColumnType::kText || col->nulls.Get(row)) {
    return {};
  }
  const TextColumn& text = col->text;
  const uint32_t len = text.len_[row];
  if (len == 0) return {};
  const uint32_t k = text.seg_[row];
  if (k == text.segments_.size()) {
    return {text.tail_.data() + text.off_[row], len};
  }
  const PagePin& pin = pins_[k];
  if (pin == nullptr) return {};
  return {pin->data() + text.off_[row], len};
}

// ---------------------------------------------------------------------------
// ColumnStore

ColumnStore::ColumnStore(const std::vector<ColumnType>& types,
                         std::shared_ptr<PagerSource> pager_source,
                         size_t segment_bytes)
    : source_(std::move(pager_source)),
      segment_bytes_(segment_bytes == 0 ? kDefaultSegmentBytes
                                        : segment_bytes) {
  columns_.resize(types.size());
  for (size_t i = 0; i < types.size(); ++i) {
    columns_[i].type = types[i];
    if (types[i] == ColumnType::kText) {
      columns_[i].text.Configure(source_, segment_bytes_);
    }
  }
}

Status ColumnStore::AppendRow(const std::vector<Value>& row) {
  MCSM_CHECK(row.size() == columns_.size());
  for (size_t i = 0; i < row.size(); ++i) {
    ColumnData& col = columns_[i];
    const Value& v = row[i];
    col.nulls.Append(v.is_null());
    switch (col.type) {
      case ColumnType::kText:
        MCSM_RETURN_IF_ERROR(
            col.text.Append(v.is_null() ? std::string_view() : v.text()));
        break;
      case ColumnType::kInteger:
        col.ints.push_back(v.is_null() ? 0 : v.integer());
        break;
      case ColumnType::kReal:
        col.reals.push_back(v.is_null() ? 0.0 : v.real());
        break;
    }
  }
  ++rows_;
  return Status::OK();
}

Status ColumnStore::Set(size_t row, size_t col, const Value& value) {
  MCSM_CHECK(col < columns_.size() && row < rows_);
  ColumnData& c = columns_[col];
  c.nulls.Set(row, value.is_null());
  switch (c.type) {
    case ColumnType::kText:
      return c.text.Set(row, value.is_null() ? std::string_view()
                                             : value.text());
    case ColumnType::kInteger:
      c.ints[row] = value.is_null() ? 0 : value.integer();
      break;
    case ColumnType::kReal:
      c.reals[row] = value.is_null() ? 0.0 : value.real();
      break;
  }
  return Status::OK();
}

Status ColumnStore::RemoveRows(const std::vector<bool>& remove) {
  MCSM_CHECK(remove.size() == rows_);
  size_t kept = 0;
  for (size_t r = 0; r < rows_; ++r) {
    if (!remove[r]) ++kept;
  }
  if (kept == rows_) return Status::OK();
  for (ColumnData& col : columns_) {
    NullBitmap nulls;
    switch (col.type) {
      case ColumnType::kText: {
        // Rebuild into fresh segments: survivors copy over, abandoned bytes
        // (removed rows, dead Set() payloads) are reclaimed.
        TextColumn fresh;
        fresh.Configure(source_, segment_bytes_);
        TextCursor cursor(ColumnView(&col, rows_));
        for (size_t r = 0; r < rows_; ++r) {
          if (remove[r]) continue;
          const bool is_null = col.nulls.Get(r);
          nulls.Append(is_null);
          MCSM_RETURN_IF_ERROR(
              fresh.Append(is_null ? std::string_view() : cursor.Get(r)));
        }
        col.text = std::move(fresh);
        break;
      }
      case ColumnType::kInteger: {
        size_t write = 0;
        for (size_t r = 0; r < rows_; ++r) {
          if (remove[r]) continue;
          nulls.Append(col.nulls.Get(r));
          col.ints[write++] = col.ints[r];
        }
        col.ints.resize(write);
        break;
      }
      case ColumnType::kReal: {
        size_t write = 0;
        for (size_t r = 0; r < rows_; ++r) {
          if (remove[r]) continue;
          nulls.Append(col.nulls.Get(r));
          col.reals[write++] = col.reals[r];
        }
        col.reals.resize(write);
        break;
      }
    }
    col.nulls = std::move(nulls);
  }
  rows_ = kept;
  return Status::OK();
}

void ColumnStore::Truncate(size_t n) {
  if (n >= rows_) return;
  for (ColumnData& col : columns_) {
    col.nulls.Truncate(n);
    switch (col.type) {
      case ColumnType::kText:
        col.text.Truncate(n);
        break;
      case ColumnType::kInteger:
        col.ints.resize(n);
        break;
      case ColumnType::kReal:
        col.reals.resize(n);
        break;
    }
  }
  rows_ = n;
}

}  // namespace mcsm::relational
