#ifndef MCSM_RELATIONAL_COLUMN_STORE_H_
#define MCSM_RELATIONAL_COLUMN_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/pager.h"
#include "relational/value.h"

namespace mcsm::relational {

/// \file
/// \brief Arena-backed columnar storage (DESIGN.md §13).
///
/// TEXT columns store their payload in sealed append-only segments (byte
/// arenas) addressed by per-row {segment, offset, length} metadata — no
/// per-cell std::string. INTEGER/REAL columns are packed typed arrays.
/// NULLs live in a per-column bitmap. With a Pager attached, sealed text
/// segments spill to a temp file and are faulted back through a byte-budgeted
/// LRU cache; only text payload ever spills — metadata, bitmaps and numeric
/// arrays stay resident, so random row access is always one (possibly
/// cached) page load.
///
/// Read surface: `ColumnView` (type + nulls + typed getters), `TextView`
/// (a string_view plus the page pin that keeps it valid), `TextCursor`
/// (amortizes pinning for ordered scans) and `PinnedColumn` (pins a whole
/// column for code that retains many views at once). All four also wrap the
/// legacy row-store backend (Table's `use_legacy_store` rollback lever) so
/// callers never branch on the storage engine.

/// Default sealed-segment size. Small enough that a tight MCSM_PAGE_BUDGET
/// still holds a useful working set, large enough that per-segment overhead
/// (one pread, one cache entry) amortizes.
inline constexpr size_t kDefaultSegmentBytes = 64 * 1024;

/// \brief A text cell: the view plus the pin that keeps its bytes alive.
///
/// The view is valid for the lifetime of the TextView object (the pin holds
/// the segment against cache eviction). Views of unsealed (tail) or legacy
/// storage carry no pin and stay valid until the table is next mutated —
/// the same contract the old reference-returning accessors had.
class TextView {
 public:
  TextView() = default;
  TextView(std::string_view view, PagePin pin)
      : view_(view), pin_(std::move(pin)) {}

  std::string_view view() const { return view_; }
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for string_view
  // arguments; the pin outlives the full expression, so in-call use is safe.
  operator std::string_view() const { return view_; }

  const char* data() const { return view_.data(); }
  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }

 private:
  std::string_view view_;
  PagePin pin_;
};

/// \brief Packed validity bitmap: one bit per row, 1 = NULL.
class NullBitmap {
 public:
  void Append(bool is_null) {
    if (size_ % 64 == 0) words_.push_back(0);
    if (is_null) words_[size_ / 64] |= uint64_t{1} << (size_ % 64);
    ++size_;
  }
  bool Get(size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1;
  }
  void Set(size_t i, bool is_null) {
    const uint64_t mask = uint64_t{1} << (i % 64);
    if (is_null) {
      words_[i / 64] |= mask;
    } else {
      words_[i / 64] &= ~mask;
    }
  }
  void Truncate(size_t n) {
    if (n >= size_) return;
    size_ = n;
    words_.resize((n + 63) / 64);
    if (n % 64 != 0) {  // clear the dead tail bits of the last word
      words_.back() &= (uint64_t{1} << (n % 64)) - 1;
    }
  }
  size_t size() const { return size_; }
  uint64_t byte_size() const { return words_.size() * sizeof(uint64_t); }

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
};

/// \brief TEXT column payload: sealed byte segments + per-row addressing.
///
/// Appends accumulate in an open tail buffer; once the tail reaches the
/// segment size it seals — kept resident (no pager) or written to the spill
/// file (pager attached). A value larger than the segment size gets a
/// segment of its own. Row metadata is three packed u32 arrays
/// (segment / offset / length): 12 bytes per row, always resident.
class TextColumn {
 public:
  TextColumn() = default;

  void Configure(std::shared_ptr<PagerSource> source, size_t segment_bytes) {
    source_ = std::move(source);
    segment_bytes_ = segment_bytes == 0 ? kDefaultSegmentBytes : segment_bytes;
  }

  /// Appends one value's bytes (NULL rows append an empty payload; the
  /// bitmap, not the payload, is what records nullness).
  Status Append(std::string_view text);

  /// Points `row` at freshly appended bytes. The old bytes are abandoned in
  /// place (segments are append-only); RemoveRows compaction reclaims them.
  Status Set(size_t row, std::string_view text);

  size_t size() const { return seg_.size(); }

  /// The row's bytes plus the pin keeping them alive. Empty view for empty
  /// payloads; empty view (with the error latched in the pager) when a
  /// spilled segment fails to load.
  TextView Get(size_t row) const;

  void Truncate(size_t n);

  /// Live payload bytes (what a compacted copy would occupy).
  uint64_t live_text_bytes() const;

  /// Stats: always-resident overhead (row metadata + open tail).
  uint64_t meta_bytes() const {
    return seg_.capacity() * 3 * sizeof(uint32_t) + tail_.capacity();
  }
  size_t num_sealed_segments() const { return segments_.size(); }
  /// Per-segment residency/bytes for Table::Stats().
  bool SegmentSpilled(size_t k) const {
    return segments_[k].page_id != kNoPage;
  }
  bool SegmentResident(size_t k) const;
  uint32_t SegmentBytes(size_t k) const { return segments_[k].bytes; }

 private:
  friend class ColumnView;
  friend class TextCursor;
  friend class PinnedColumn;

  static constexpr uint32_t kNoPage = UINT32_MAX;

  struct Segment {
    PagePin resident;            ///< set when unpaged (owned in memory)
    uint32_t page_id = kNoPage;  ///< set when spilled through the pager
    uint32_t bytes = 0;
  };

  /// Seals the open tail into a segment (spilling it when paged).
  Status Seal();

  /// Loads sealed segment `k` (resident fast path or pager fault).
  PagePin LoadSegment(uint32_t k) const;

  std::shared_ptr<PagerSource> source_;  ///< spill config (may be null)
  /// The actual pager, bound on the first successful spill. Only mutated
  /// during (single-threaded) ingest; concurrent readers see it fixed.
  std::shared_ptr<Pager> pager_;
  size_t segment_bytes_ = kDefaultSegmentBytes;
  // Row addressing (struct-of-arrays): segment id, offset in segment, length.
  // seg_[r] == segments_.size() means "in the open tail".
  std::vector<uint32_t> seg_;
  std::vector<uint32_t> off_;
  std::vector<uint32_t> len_;
  std::vector<Segment> segments_;
  std::string tail_;
};

/// One column of a ColumnStore: type tag + nulls + the typed payload.
struct ColumnData {
  ColumnType type = ColumnType::kText;
  NullBitmap nulls;
  TextColumn text;             ///< engaged iff type == kText
  std::vector<int64_t> ints;   ///< engaged iff type == kInteger
  std::vector<double> reals;   ///< engaged iff type == kReal
};

/// \brief Read access to one column, independent of the storage backend.
///
/// A lightweight value type (two pointers); callers hold it by value. The
/// table must outlive the view. `GetText` returns an empty view for NULLs
/// and non-text columns — the exact semantics the old CellText() had.
class ColumnView {
 public:
  ColumnView() = default;
  /// Columnar backend.
  ColumnView(const ColumnData* col, size_t rows) : col_(col), rows_(rows) {}
  /// Legacy row-store backend (one Value vector per column).
  ColumnView(const std::vector<Value>* legacy, ColumnType type)
      : legacy_(legacy), type_(type), rows_(legacy->size()) {}

  ColumnType type() const { return col_ != nullptr ? col_->type : type_; }
  size_t size() const { return rows_; }

  bool IsNull(size_t row) const {
    if (col_ != nullptr) return col_->nulls.Get(row);
    return (*legacy_)[row].is_null();
  }

  /// True when the cell holds a TEXT value (the old `cell().is_text()`).
  bool IsText(size_t row) const {
    return type() == ColumnType::kText && !IsNull(row);
  }

  TextView GetText(size_t row) const;

  /// Batch fetch: one pin lookup per segment transition instead of per row.
  /// Appends `n` views to `out` in input order.
  void GetTexts(const uint32_t* rows, size_t n,
                std::vector<TextView>* out) const;

  int64_t GetInt(size_t row) const {
    if (col_ != nullptr) return col_->ints[row];
    return (*legacy_)[row].integer();
  }
  double GetReal(size_t row) const {
    if (col_ != nullptr) return col_->reals[row];
    return (*legacy_)[row].real();
  }

  /// Materializes the cell as a Value (copies text payloads).
  Value GetValue(size_t row) const;

 private:
  friend class TextCursor;
  friend class PinnedColumn;

  const ColumnData* col_ = nullptr;        ///< columnar backend
  const std::vector<Value>* legacy_ = nullptr;  ///< legacy backend
  ColumnType type_ = ColumnType::kText;    ///< legacy: declared type
  size_t rows_ = 0;
};

/// \brief Ordered-scan accessor: caches the current segment's pin so a scan
/// pays one load per segment instead of one per row.
///
/// Returned views are valid while the cursor stays within the same segment
/// (i.e. until a Get() that crosses a segment boundary) — callers that
/// retain views across rows must copy or use PinnedColumn. The column must
/// not be mutated while a cursor is live.
class TextCursor {
 public:
  explicit TextCursor(const ColumnView& view) : view_(view) {}

  std::string_view Get(size_t row);

 private:
  ColumnView view_;
  uint32_t cached_seg_ = UINT32_MAX;
  PagePin pin_;
  const char* base_ = nullptr;
};

/// \brief Pins every sealed segment of a text column for its own lifetime,
/// making all returned views simultaneously valid.
///
/// This is the tool for call sites that build maps over a whole column
/// (coverage counting): memory cost is the whole column resident — the same
/// cost the legacy store paid permanently, but scoped to the pin's lifetime.
class PinnedColumn {
 public:
  explicit PinnedColumn(const ColumnView& view);

  /// NULL and non-text cells yield an empty view (CellText semantics).
  std::string_view at(size_t row) const;

  size_t size() const { return view_.size(); }

 private:
  ColumnView view_;
  std::vector<PagePin> pins_;  ///< columnar: one per sealed segment
};

/// \brief The columnar table backend: one ColumnData per schema column.
///
/// Values are validated/widened by Table before they arrive here; this layer
/// only stores. Rows are tracked explicitly so zero-column stores still
/// count appends.
class ColumnStore {
 public:
  ColumnStore() = default;
  ColumnStore(const std::vector<ColumnType>& types,
              std::shared_ptr<PagerSource> pager_source, size_t segment_bytes);

  size_t num_rows() const { return rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Appends one pre-validated row (arity and types already checked).
  Status AppendRow(const std::vector<Value>& row);

  /// Replaces one pre-validated cell.
  Status Set(size_t row, size_t col, const Value& value);

  /// Drops rows flagged in `remove` (size == num_rows). Text columns are
  /// rebuilt into fresh segments (reclaiming abandoned bytes); numeric
  /// columns compact in place.
  Status RemoveRows(const std::vector<bool>& remove);

  void Truncate(size_t n);

  ColumnView View(size_t col) const {
    return ColumnView(&columns_[col], rows_);
  }

  const std::shared_ptr<PagerSource>& pager_source() const { return source_; }
  size_t segment_bytes() const { return segment_bytes_; }
  const ColumnData& column_data(size_t col) const { return columns_[col]; }

 private:
  std::vector<ColumnData> columns_;
  std::shared_ptr<PagerSource> source_;
  size_t segment_bytes_ = kDefaultSegmentBytes;
  size_t rows_ = 0;
};

}  // namespace mcsm::relational

#endif  // MCSM_RELATIONAL_COLUMN_STORE_H_
