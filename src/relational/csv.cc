#include "relational/csv.h"

#include <fstream>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "relational/column_store.h"

namespace mcsm::relational {

namespace {

/// One parsed field: its text plus whether it was quoted (quoted empties are
/// empty strings, unquoted empties may become NULL).
struct Field {
  std::string text;
  bool quoted = false;
};

/// \brief Scans one record off the front of `text` (handles quoted fields
/// spanning newlines). Chunk-boundary aware: when the record (or a
/// lookahead the grammar needs — `\r\n`, `""`) is not completed by `text`
/// and `final` is false, sets `*need_more` instead of consuming anything.
///
/// On success `*consumed` is the bytes to advance (past the line ending);
/// on a parse error it is the error position (where permissive resync
/// starts). `base_offset` keeps error messages in whole-input offsets, so
/// chunked and single-shot parses report identical errors.
Status ScanRecord(std::string_view text, bool final, uint64_t base_offset,
                  char delimiter, std::vector<Field>* fields, bool* need_more,
                  size_t* consumed) {
  fields->clear();
  *need_more = false;
  Field current;
  bool in_quotes = false;
  bool saw_any = false;
  size_t pos = 0;
  while (pos < text.size()) {
    char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          current.text.push_back('"');
          pos += 2;
        } else if (pos + 1 >= text.size() && !final) {
          // Closing quote or the first half of an escaped ""? The next
          // chunk decides.
          *need_more = true;
          return Status::OK();
        } else {
          in_quotes = false;
          ++pos;
        }
      } else {
        current.text.push_back(c);
        ++pos;
      }
      continue;
    }
    if (c == '"') {
      if (!current.text.empty()) {
        *consumed = pos;
        return Status::ParseError(
            StrFormat("stray quote at offset %zu", base_offset + pos));
      }
      current.quoted = true;
      in_quotes = true;
      ++pos;
      saw_any = true;
      continue;
    }
    if (c == delimiter) {
      fields->push_back(std::move(current));
      current = Field{};
      ++pos;
      saw_any = true;
      continue;
    }
    if (c == '\n' || c == '\r') {
      if (c == '\r') {
        if (pos + 1 >= text.size() && !final) {
          *need_more = true;  // "\r\n" may straddle the chunk boundary
          return Status::OK();
        }
        if (pos + 1 < text.size() && text[pos + 1] == '\n') ++pos;
      }
      ++pos;
      fields->push_back(std::move(current));
      *consumed = pos;
      return Status::OK();
    }
    current.text.push_back(c);
    ++pos;
  }
  if (!final) {
    *need_more = true;
    return Status::OK();
  }
  if (in_quotes) {
    *consumed = text.size();
    return Status::ParseError("unterminated quoted field at end of input");
  }
  if (saw_any || !current.text.empty() || current.quoted) {
    fields->push_back(std::move(current));
  }
  *consumed = text.size();
  return Status::OK();
}

std::string EscapeField(std::string_view field, char delimiter) {
  bool needs_quoting = field.find(delimiter) != std::string_view::npos ||
                       field.find('"') != std::string_view::npos ||
                       field.find('\n') != std::string_view::npos ||
                       field.find('\r') != std::string_view::npos ||
                       field.empty();
  if (!needs_quoting) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    out.push_back(c);
    if (c == '"') out.push_back('"');
  }
  out.push_back('"');
  return out;
}

}  // namespace

CsvStreamParser::CsvStreamParser(const CsvOptions& options,
                                 CsvReadReport* report,
                                 const TableOptions& table_options)
    : options_(options),
      report_(report != nullptr ? report : &local_report_),
      table_options_(table_options) {
  *report_ = CsvReadReport{};
}

Status CsvStreamParser::Feed(std::string_view chunk) {
  MCSM_CHECK(!finished_);
  buffer_.append(chunk);
  return Drain(/*final=*/false);
}

Result<Table> CsvStreamParser::Finish() {
  MCSM_CHECK(!finished_);
  finished_ = true;
  MCSM_RETURN_IF_ERROR(Drain(/*final=*/true));
  if (!header_done_) {
    return Status::InvalidArgument("empty CSV input (no header row)");
  }
  return std::move(table_);
}

Status CsvStreamParser::Drain(bool final) {
  if (!failed_.ok()) return failed_;
  // Strip a UTF-8 byte-order mark: spreadsheet exports routinely prepend
  // EF BB BF, which would otherwise glue itself onto the first column name
  // ("\xEF\xBB\xBFid" != "id" in every later lookup).
  if (!bom_checked_) {
    if (buffer_.size() < 3 && !final) return Status::OK();
    if (buffer_.size() >= 3 && buffer_.compare(0, 3, "\xEF\xBB\xBF") == 0) {
      buffer_.erase(0, 3);
    }
    bom_checked_ = true;
  }
  size_t pos = 0;
  while (true) {
    if (skipping_) {
      // Permissive resync: discard to just past the next line ending,
      // abandoning the malformed record. After an unterminated quote the
      // quoting state is unknowable, so resyncing on a raw newline is the
      // best available heuristic (it may split a quoted field — that
      // fragment then fails the field-count check and is dropped too,
      // still accounted).
      size_t i = pos;
      while (i < buffer_.size() && buffer_[i] != '\n' && buffer_[i] != '\r') {
        ++i;
      }
      if (i >= buffer_.size()) {
        pos = i;
        if (final) skipping_ = false;
        break;
      }
      if (buffer_[i] == '\r') {
        if (i + 1 >= buffer_.size() && !final) {
          pos = i;  // "\r\n" may straddle the chunk boundary
          break;
        }
        if (i + 1 < buffer_.size() && buffer_[i + 1] == '\n') ++i;
      }
      pos = i + 1;
      skipping_ = false;
      continue;
    }
    if (pos >= buffer_.size()) break;
    std::vector<Field> record;
    bool need_more = false;
    size_t rec_consumed = 0;
    Status st =
        ScanRecord(std::string_view(buffer_).substr(pos), final,
                   consumed_ + pos, options_.delimiter, &record, &need_more,
                   &rec_consumed);
    if (st.ok() && need_more) break;
    if (!header_done_) {
      // Header errors stay fatal in both modes: without a schema, no row
      // can be kept, so "permissively" continuing would just drop the
      // whole file.
      if (!st.ok()) {
        failed_ = st;
        return failed_;
      }
      pos += rec_consumed;
      if (record.empty()) {
        failed_ = Status::InvalidArgument("empty CSV header row");
        return failed_;
      }
      names_.clear();
      names_.reserve(record.size());
      for (const auto& f : record) {
        if (f.text.empty()) {
          failed_ = Status::InvalidArgument("empty column name in CSV header");
          return failed_;
        }
        names_.push_back(f.text);
      }
      table_ = Table::WithTextColumns(names_, table_options_);
      header_done_ = true;
      continue;
    }
    ++line_;
    if (!st.ok()) {
      if (!options_.permissive) {
        failed_ = st;
        return failed_;
      }
      ++report_->rows_dropped;
      report_->RecordError(
          StrFormat("record %zu: %s", line_, st.message().c_str()));
      pos += rec_consumed;
      skipping_ = true;
      continue;
    }
    pos += rec_consumed;
    if (record.empty()) continue;  // trailing blank line
    if (record.size() == 1 && record[0].text.empty() && !record[0].quoted) {
      continue;  // blank line
    }
    if (record.size() != names_.size()) {
      Status arity = Status::ParseError(
          StrFormat("record %zu has %zu fields, header has %zu", line_,
                    record.size(), names_.size()));
      if (!options_.permissive) {
        failed_ = arity;
        return failed_;
      }
      ++report_->rows_dropped;
      report_->RecordError(arity.message());
      continue;
    }
    std::vector<Value> row;
    row.reserve(record.size());
    for (auto& f : record) {
      if (options_.empty_as_null && f.text.empty() && !f.quoted) {
        row.push_back(Value::MakeNull());
      } else {
        row.emplace_back(std::move(f.text));
      }
    }
    // All columns are TEXT and arity is checked above, so a failure here is
    // a storage-layer error (e.g. spill write) — propagate, never drop.
    Status append = table_.AppendRow(std::move(row));
    if (!append.ok()) {
      failed_ = append;
      return failed_;
    }
    ++report_->rows_kept;
  }
  consumed_ += pos;
  buffer_.erase(0, pos);
  return Status::OK();
}

Result<Table> ReadCsv(std::string_view text, const CsvOptions& options,
                      CsvReadReport* report) {
  MCSM_FAILPOINT(failpoint::kCsvRead);
  CsvStreamParser parser(options, report);
  MCSM_RETURN_IF_ERROR(parser.Feed(text));
  return parser.Finish();
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options,
                          CsvReadReport* report) {
  MCSM_FAILPOINT(failpoint::kCsvRead);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open CSV file: " + path);
  CsvStreamParser parser(options, report);
  // Stream in fixed chunks: the file never has to fit in memory, and paged
  // tables spill as they grow.
  std::vector<char> chunk(1 << 20);
  while (in) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const std::streamsize got = in.gcount();
    if (got <= 0) break;
    MCSM_RETURN_IF_ERROR(
        parser.Feed(std::string_view(chunk.data(), static_cast<size_t>(got))));
  }
  if (in.bad()) return Status::Internal("read failed: " + path);
  return parser.Finish();
}

std::string WriteCsv(const Table& table, const CsvOptions& options) {
  std::string out;
  const auto& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c) out.push_back(options.delimiter);
    out += EscapeField(schema.column(c).name, options.delimiter);
  }
  out.push_back('\n');
  // Per-column cursors: row-major emission over columnar storage pays one
  // segment pin per column per segment, not one per cell.
  std::vector<ColumnView> views;
  std::vector<TextCursor> cursors;
  views.reserve(schema.num_columns());
  cursors.reserve(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    views.push_back(table.Column(c));
    cursors.emplace_back(views[c]);
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c) out.push_back(options.delimiter);
      if (views[c].IsNull(r)) continue;  // NULL -> empty unquoted field
      if (views[c].type() == ColumnType::kText) {
        out += EscapeField(cursors[c].Get(r), options.delimiter);
      } else {
        out += EscapeField(views[c].GetValue(r).ToDisplayString(),
                           options.delimiter);
      }
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  MCSM_FAILPOINT(failpoint::kCsvWrite);
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::InvalidArgument("cannot open for writing: " + path);
  out << WriteCsv(table, options);
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace mcsm::relational
