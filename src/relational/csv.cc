#include "relational/csv.h"

#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace mcsm::relational {

namespace {

/// One parsed field: its text plus whether it was quoted (quoted empties are
/// empty strings, unquoted empties may become NULL).
struct Field {
  std::string text;
  bool quoted = false;
};

/// Streaming CSV record reader over a string.
class CsvReader {
 public:
  CsvReader(std::string_view text, char delimiter)
      : text_(text), delimiter_(delimiter) {}

  bool AtEnd() const { return pos_ >= text_.size(); }

  /// Reads one record (handles quoted fields spanning newlines). Returns
  /// ParseError for unterminated quotes or stray quote characters.
  Result<std::vector<Field>> ReadRecord() {
    std::vector<Field> fields;
    Field current;
    bool in_quotes = false;
    bool saw_any = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (in_quotes) {
        if (c == '"') {
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '"') {
            current.text.push_back('"');
            pos_ += 2;
          } else {
            in_quotes = false;
            ++pos_;
          }
        } else {
          current.text.push_back(c);
          ++pos_;
        }
        continue;
      }
      if (c == '"') {
        if (!current.text.empty()) {
          return Status::ParseError(
              StrFormat("stray quote at offset %zu", pos_));
        }
        current.quoted = true;
        in_quotes = true;
        ++pos_;
        saw_any = true;
        continue;
      }
      if (c == delimiter_) {
        fields.push_back(std::move(current));
        current = Field{};
        ++pos_;
        saw_any = true;
        continue;
      }
      if (c == '\n' || c == '\r') {
        // Consume the line ending (\r\n or \n or \r).
        if (c == '\r' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '\n') {
          ++pos_;
        }
        ++pos_;
        fields.push_back(std::move(current));
        return fields;
      }
      current.text.push_back(c);
      ++pos_;
      saw_any = true;
    }
    if (in_quotes) {
      return Status::ParseError("unterminated quoted field at end of input");
    }
    if (saw_any || !current.text.empty() || current.quoted) {
      fields.push_back(std::move(current));
    }
    return fields;
  }

  /// Error recovery for permissive mode: skips to just past the next line
  /// ending, abandoning the malformed record. After an unterminated quote
  /// the quoting state is unknowable, so resyncing on a raw newline is the
  /// best available heuristic (it may split a quoted field — that fragment
  /// then fails the field-count check and is dropped too, still accounted).
  void SkipToNextRecord() {
    while (pos_ < text_.size() && text_[pos_] != '\n' && text_[pos_] != '\r') {
      ++pos_;
    }
    if (pos_ < text_.size()) {
      if (text_[pos_] == '\r' && pos_ + 1 < text_.size() &&
          text_[pos_ + 1] == '\n') {
        ++pos_;
      }
      ++pos_;
    }
  }

 private:
  std::string_view text_;
  char delimiter_;
  size_t pos_ = 0;
};

std::string EscapeField(const std::string& field, char delimiter) {
  bool needs_quoting = field.find(delimiter) != std::string::npos ||
                       field.find('"') != std::string::npos ||
                       field.find('\n') != std::string::npos ||
                       field.find('\r') != std::string::npos ||
                       field.empty();
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    out.push_back(c);
    if (c == '"') out.push_back('"');
  }
  out.push_back('"');
  return out;
}

}  // namespace

Result<Table> ReadCsv(std::string_view text, const CsvOptions& options,
                      CsvReadReport* report) {
  MCSM_FAILPOINT(failpoint::kCsvRead);
  CsvReadReport local_report;
  if (report == nullptr) report = &local_report;
  *report = CsvReadReport{};

  // Strip a UTF-8 byte-order mark: spreadsheet exports routinely prepend
  // EF BB BF, which would otherwise glue itself onto the first column name
  // ("\xEF\xBB\xBFid" != "id" in every later lookup).
  if (text.size() >= 3 && text.substr(0, 3) == "\xEF\xBB\xBF") {
    text.remove_prefix(3);
  }

  CsvReader reader(text, options.delimiter);
  if (reader.AtEnd()) {
    return Status::InvalidArgument("empty CSV input (no header row)");
  }
  // Header errors stay fatal in both modes: without a schema, no row can be
  // kept, so "permissively" continuing would just drop the whole file.
  MCSM_ASSIGN_OR_RETURN(auto header, reader.ReadRecord());
  if (header.empty()) {
    return Status::InvalidArgument("empty CSV header row");
  }
  std::vector<std::string> names;
  names.reserve(header.size());
  for (const auto& f : header) {
    if (f.text.empty()) {
      return Status::InvalidArgument("empty column name in CSV header");
    }
    names.push_back(f.text);
  }
  Table table = Table::WithTextColumns(names);

  size_t line = 1;
  while (!reader.AtEnd()) {
    ++line;
    auto record_or = reader.ReadRecord();
    if (!record_or.ok()) {
      if (!options.permissive) return record_or.status();
      ++report->rows_dropped;
      report->RecordError(StrFormat("record %zu: %s", line,
                                    record_or.status().message().c_str()));
      reader.SkipToNextRecord();
      continue;
    }
    auto& record = *record_or;
    if (record.empty()) continue;  // trailing blank line
    if (record.size() == 1 && record[0].text.empty() && !record[0].quoted) {
      continue;  // blank line
    }
    if (record.size() != names.size()) {
      Status st = Status::ParseError(
          StrFormat("record %zu has %zu fields, header has %zu", line,
                    record.size(), names.size()));
      if (!options.permissive) return st;
      ++report->rows_dropped;
      report->RecordError(st.message());
      continue;
    }
    std::vector<Value> row;
    row.reserve(record.size());
    for (auto& f : record) {
      if (options.empty_as_null && f.text.empty() && !f.quoted) {
        row.push_back(Value::MakeNull());
      } else {
        row.emplace_back(std::move(f.text));
      }
    }
    // All columns are TEXT, so AppendRow can only fail on arity — checked
    // above. Propagate rather than drop: a failure here is an internal bug.
    MCSM_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
    ++report->rows_kept;
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options,
                          CsvReadReport* report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open CSV file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadCsv(buffer.str(), options, report);
}

std::string WriteCsv(const Table& table, const CsvOptions& options) {
  std::string out;
  const auto& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c) out.push_back(options.delimiter);
    out += EscapeField(schema.column(c).name, options.delimiter);
  }
  out.push_back('\n');
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c) out.push_back(options.delimiter);
      const Value& v = table.cell(r, c);
      if (v.is_null()) continue;  // NULL -> empty unquoted field
      out += EscapeField(v.is_text() ? v.text() : v.ToDisplayString(),
                         options.delimiter);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  MCSM_FAILPOINT(failpoint::kCsvWrite);
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::InvalidArgument("cannot open for writing: " + path);
  out << WriteCsv(table, options);
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace mcsm::relational
