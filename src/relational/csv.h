#ifndef MCSM_RELATIONAL_CSV_H_
#define MCSM_RELATIONAL_CSV_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "common/result.h"
#include "relational/table.h"

namespace mcsm::relational {

/// \brief RFC-4180-style CSV import/export for tables, so the matcher can be
/// pointed at real exported data (see examples/discover_csv).
///
/// Dialect: comma-separated, double-quote quoting with "" escapes, optional
/// CRLF line endings, first row is the header. All columns import as TEXT;
/// empty unquoted fields import as NULL (a quoted empty string "" imports as
/// an empty TEXT value).
struct CsvOptions {
  char delimiter = ',';
  /// Import empty unquoted fields as NULL rather than "".
  bool empty_as_null = true;
};

/// Parses CSV text into a table (header row defines the schema).
Result<Table> ReadCsv(std::string_view text, const CsvOptions& options = {});

/// Reads a CSV file from disk.
Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options = {});

/// Serializes a table as CSV (header + rows). NULLs serialize as empty
/// unquoted fields; fields containing the delimiter, quotes or newlines are
/// quoted.
std::string WriteCsv(const Table& table, const CsvOptions& options = {});

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace mcsm::relational

#endif  // MCSM_RELATIONAL_CSV_H_
