#ifndef MCSM_RELATIONAL_CSV_H_
#define MCSM_RELATIONAL_CSV_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace mcsm::relational {

/// \brief RFC-4180-style CSV import/export for tables, so the matcher can be
/// pointed at real exported data (see examples/discover_csv).
///
/// Dialect: comma-separated, double-quote quoting with "" escapes, optional
/// CRLF line endings, first row is the header. All columns import as TEXT;
/// empty unquoted fields import as NULL (a quoted empty string "" imports as
/// an empty TEXT value).
struct CsvOptions {
  char delimiter = ',';
  /// Import empty unquoted fields as NULL rather than "".
  bool empty_as_null = true;
  /// Permissive mode: a malformed data row (wrong field count, stray quote,
  /// unterminated quote) is skipped — and accounted for in CsvReadReport —
  /// instead of failing the whole file. Header errors stay fatal: without a
  /// header there is no schema to keep rows under.
  bool permissive = false;
};

/// \brief Accounting for one ReadCsv call: how many data rows made it into
/// the table, how many were dropped (permissive mode), and what the first
/// few errors looked like. Every non-blank data record is counted exactly
/// once, as kept or dropped.
struct CsvReadReport {
  size_t rows_kept = 0;
  size_t rows_dropped = 0;
  /// First error examples ("record 7 has 3 fields, header has 2"), capped at
  /// kMaxErrorExamples so a million-row dirty file cannot balloon memory.
  std::vector<std::string> first_errors;
  static constexpr size_t kMaxErrorExamples = 5;

  void RecordError(std::string message) {
    if (first_errors.size() < kMaxErrorExamples) {
      first_errors.push_back(std::move(message));
    }
  }
};

/// \brief Incremental CSV ingestion: feed chunks, finish into a Table.
///
/// The streaming core behind ReadCsv/ReadCsvFile (which feed one chunk /
/// file-sized chunks respectively) and TableRegistry's incremental
/// fingerprint-while-parse path. Chunk boundaries are invisible to the
/// grammar: a record (or quoted field) split across Feed() calls is carried
/// until its terminator arrives, so any chunking of the same bytes yields a
/// byte-identical table and report.
class CsvStreamParser {
 public:
  /// `report` may be null; `table_options` configures the storage backend of
  /// the table being built (paged ingest streams straight to spill).
  CsvStreamParser(const CsvOptions& options, CsvReadReport* report,
                  const TableOptions& table_options);
  CsvStreamParser(const CsvOptions& options, CsvReadReport* report)
      : CsvStreamParser(options, report, TableOptions::FromEnv()) {}

  /// Consumes one chunk; parses every record completed by it.
  Status Feed(std::string_view chunk);

  /// Flushes the final (unterminated) record and returns the table.
  Result<Table> Finish();

 private:
  /// Parses completed records out of buffer_; `final` also consumes the
  /// unterminated tail record.
  Status Drain(bool final);

  CsvOptions options_;
  CsvReadReport* report_;
  CsvReadReport local_report_;
  TableOptions table_options_;
  std::string buffer_;         ///< unconsumed carry (partial record)
  uint64_t consumed_ = 0;      ///< bytes consumed before buffer_ (offsets)
  bool bom_checked_ = false;
  bool skipping_ = false;      ///< permissive resync spans chunk boundaries
  bool header_done_ = false;
  std::vector<std::string> names_;
  Table table_;
  size_t line_ = 1;            ///< 1-based record counter (header is 1)
  bool finished_ = false;
  Status failed_ = Status::OK();  ///< sticky fatal parse error
};

/// Parses CSV text into a table (header row defines the schema). `report`,
/// when given, receives kept/dropped-row accounting for both strict and
/// permissive mode.
Result<Table> ReadCsv(std::string_view text, const CsvOptions& options = {},
                      CsvReadReport* report = nullptr);

/// Reads a CSV file from disk, streaming it in chunks — the file never has
/// to fit in memory (pair with MCSM_PAGE_BUDGET for larger-than-RAM tables).
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = {},
                          CsvReadReport* report = nullptr);

/// Serializes a table as CSV (header + rows). NULLs serialize as empty
/// unquoted fields; fields containing the delimiter, quotes or newlines are
/// quoted.
std::string WriteCsv(const Table& table, const CsvOptions& options = {});

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace mcsm::relational

#endif  // MCSM_RELATIONAL_CSV_H_
