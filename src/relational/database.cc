#include "relational/database.h"

#include "common/string_util.h"

namespace mcsm::relational {

std::string Database::Key(std::string_view name) const { return ToLower(name); }

Status Database::CreateTable(std::string_view name, Table table) {
  std::string key = Key(name);
  if (tables_.count(key) != 0) {
    return Status::AlreadyExists("table already exists: " + std::string(name));
  }
  tables_[key] = std::make_unique<Table>(std::move(table));
  return Status::OK();
}

Status Database::DropTable(std::string_view name) {
  if (tables_.erase(Key(name)) == 0) {
    return Status::NotFound("no such table: " + std::string(name));
  }
  return Status::OK();
}

bool Database::HasTable(std::string_view name) const {
  return tables_.count(Key(name)) != 0;
}

Result<Table*> Database::GetTable(std::string_view name) {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + std::string(name));
  }
  return it->second.get();
}

Result<const Table*> Database::GetTable(std::string_view name) const {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + std::string(name));
  }
  return const_cast<const Table*>(it->second.get());
}

}  // namespace mcsm::relational
