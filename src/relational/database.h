#ifndef MCSM_RELATIONAL_DATABASE_H_
#define MCSM_RELATIONAL_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "relational/table.h"

namespace mcsm::relational {

/// \brief A named collection of tables — the catalog the SQL engine executes
/// against.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Registers a table; fails if the (case-insensitive) name exists.
  Status CreateTable(std::string_view name, Table table);

  /// Removes a table; fails when absent.
  Status DropTable(std::string_view name);

  bool HasTable(std::string_view name) const;

  /// Looks up a table by case-insensitive name.
  Result<Table*> GetTable(std::string_view name);
  Result<const Table*> GetTable(std::string_view name) const;

  size_t num_tables() const { return tables_.size(); }

 private:
  std::string Key(std::string_view name) const;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace mcsm::relational

#endif  // MCSM_RELATIONAL_DATABASE_H_
