#include "relational/pager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/string_util.h"

namespace mcsm::relational {

namespace {

/// Temp directory for spill files: TMPDIR when set, /tmp otherwise.
std::string SpillDir() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only; nothing calls setenv.
  const char* dir = std::getenv("TMPDIR");
  if (dir != nullptr && *dir != '\0') return dir;
  return "/tmp";
}

}  // namespace

Result<std::shared_ptr<Pager>> Pager::Create(uint64_t budget_bytes) {
  std::string path = SpillDir() + "/mcsm_spill_XXXXXX";
  // mkstemp wants a mutable template; std::string gives us one in place.
  int fd = ::mkstemp(path.data());
  if (fd < 0) {
    return Status::Internal(StrFormat("cannot create spill file in %s: %s",
                                      SpillDir().c_str(),
                                      std::strerror(errno)));
  }
  // Unlink immediately: the fd keeps the file alive, the name does not — the
  // kernel reclaims the space on close (or process death), so a crashed run
  // can never leave spill files behind.
  ::unlink(path.c_str());
  return std::shared_ptr<Pager>(new Pager(budget_bytes, fd));
}

Pager::Pager(uint64_t budget_bytes, int fd)
    : budget_bytes_(budget_bytes), fd_(fd) {}

Pager::~Pager() { ::close(fd_); }

Result<uint32_t> Pager::Write(const char* data, size_t size) {
  MCSM_FAILPOINT(failpoint::kPagerWrite);
  MCSM_CHECK(size > 0 && size <= UINT32_MAX);
  MutexLock lock(mu_);
  const uint64_t offset = file_bytes_;
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::pwrite(fd_, data + written, size - written,
                         static_cast<off_t>(offset + written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(
          StrFormat("spill write failed: %s", std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  MCSM_CHECK(pages_.size() < UINT32_MAX);
  const auto page_id = static_cast<uint32_t>(pages_.size());
  pages_.push_back({offset, static_cast<uint32_t>(size)});
  file_bytes_ += size;
  stats_.spilled_pages += 1;
  stats_.spilled_bytes += size;
  // Warm insert: the segment that was just sealed is exactly what the
  // caller's index build or scan touches next.
  CacheInsert(page_id, std::make_shared<const PageData>(data, data + size));
  return page_id;
}

Result<PagePin> Pager::Load(uint32_t page_id) const {
  MutexLock lock(mu_);
  MCSM_CHECK(page_id < pages_.size());
  auto it = cache_.find(page_id);
  if (it != cache_.end()) {
    stats_.cache_hits += 1;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.pin;
  }
  stats_.cache_misses += 1;
  Status injected = Status::OK();
  if (failpoint::Enabled()) injected = failpoint::Trigger(failpoint::kPagerRead);
  const PageMeta meta = pages_[page_id];
  auto data = std::make_shared<PageData>(meta.bytes);
  Status read_status = injected;
  if (read_status.ok()) {
    size_t got = 0;
    while (got < meta.bytes) {
      ssize_t n = ::pread(fd_, data->data() + got, meta.bytes - got,
                          static_cast<off_t>(meta.offset + got));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        read_status = Status::Internal(
            StrFormat("spill read failed at page %u: %s", page_id,
                      n < 0 ? std::strerror(errno) : "short read"));
        break;
      }
      got += static_cast<size_t>(n);
    }
  }
  if (!read_status.ok()) {
    // Latch the first failure: the hot read path degrades to empty views,
    // and Table::storage_status() is how the degradation stays observable.
    if (first_error_.ok()) first_error_ = read_status;
    return read_status;
  }
  PagePin pin = std::move(data);
  CacheInsert(page_id, pin);
  return pin;
}

void Pager::CacheInsert(uint32_t page_id, PagePin pin) const {
  const uint32_t bytes = static_cast<uint32_t>(pin->size());
  auto it = cache_.find(page_id);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;  // already resident (racing loads); keep the existing pin
  }
  lru_.push_front(page_id);
  cache_.emplace(page_id, CacheEntry{std::move(pin), lru_.begin()});
  cached_bytes_ += bytes;
  while (cached_bytes_ > budget_bytes_ && !lru_.empty()) {
    const uint32_t victim = lru_.back();
    auto vit = cache_.find(victim);
    MCSM_CHECK(vit != cache_.end());
    cached_bytes_ -= vit->second.pin->size();
    cache_.erase(vit);
    lru_.pop_back();
    stats_.evictions += 1;
  }
  stats_.resident_pages = cache_.size();
  stats_.resident_bytes = cached_bytes_;
}

bool Pager::Resident(uint32_t page_id) const {
  MutexLock lock(mu_);
  return cache_.find(page_id) != cache_.end();
}

uint32_t Pager::PageBytes(uint32_t page_id) const {
  MutexLock lock(mu_);
  MCSM_CHECK(page_id < pages_.size());
  return pages_[page_id].bytes;
}

Status Pager::first_error() const {
  MutexLock lock(mu_);
  return first_error_;
}

PagerStats Pager::Stats() const {
  MutexLock lock(mu_);
  PagerStats stats = stats_;
  stats.resident_pages = cache_.size();
  stats.resident_bytes = cached_bytes_;
  return stats;
}

std::shared_ptr<Pager> PagerSource::GetOrCreate() {
  MutexLock lock(mu_);
  if (pager_ != nullptr) return pager_;
  if (!error_.ok()) return nullptr;  // creation already failed; stay degraded
  Result<std::shared_ptr<Pager>> created = Pager::Create(budget_bytes_);
  if (!created.ok()) {
    error_ = created.status();
    return nullptr;
  }
  pager_ = *std::move(created);
  return pager_;
}

std::shared_ptr<Pager> PagerSource::TryGet() const {
  MutexLock lock(mu_);
  return pager_;
}

Status PagerSource::status() const {
  MutexLock lock(mu_);
  return error_;
}

}  // namespace mcsm::relational
