#ifndef MCSM_RELATIONAL_PAGER_H_
#define MCSM_RELATIONAL_PAGER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/result.h"
#include "common/status.h"

namespace mcsm::relational {

/// Bytes of one spilled segment, loaded back into memory. Immutable once
/// published; readers share ownership so cache eviction can never invalidate
/// a view that is still in use.
using PageData = std::vector<char>;

/// A pin on a loaded page: holding one keeps the bytes alive regardless of
/// what the cache evicts. Copying a pin is one shared_ptr refcount bump.
using PagePin = std::shared_ptr<const PageData>;

/// Cache / spill accounting for one Pager (see Table::Stats()).
struct PagerStats {
  uint64_t spilled_pages = 0;    ///< pages written to the backing file
  uint64_t spilled_bytes = 0;    ///< bytes written to the backing file
  uint64_t resident_pages = 0;   ///< pages currently held by the cache
  uint64_t resident_bytes = 0;   ///< bytes currently held by the cache
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t evictions = 0;
};

/// \brief Spill file + byte-budgeted LRU page cache for columnar segments.
///
/// The backing store is one append-only temporary file (created with mkstemp
/// and unlinked immediately, so the kernel reclaims it on process exit no
/// matter how we die). Sealed text segments are written once at ingest and
/// never rewritten; compaction (RemoveRows) appends fresh pages and simply
/// abandons the old ones, which keeps every write sequential and makes the
/// file safe to share between copied tables — each copy owns disjoint page
/// ids, and reads are positional (pread).
///
/// Loads go through an LRU cache capped at `budget_bytes`. The cache stores
/// PagePins; eviction drops the cache's reference, never the bytes a reader
/// still pins, so concurrent readers race-freely keep whatever they are
/// looking at while the budget squeezes everything else out.
///
/// I/O is failpoint-injectable (`pager.write`, `pager.read`) for chaos runs.
/// Write errors propagate to the caller (ingest fails loudly); read errors
/// additionally latch into `first_error()` so a degraded read path — which
/// surfaces empty views — is still observable after the fact.
///
/// Determinism: the cache affects only *where* bytes are read from (memory
/// vs disk), never which bytes a row maps to, so results are byte-identical
/// at any budget, thread count, or eviction order.
class Pager {
 public:
  /// Creates a pager with its backing temp file. `budget_bytes` caps the
  /// cache (0 means "cache nothing": every read goes to disk).
  static Result<std::shared_ptr<Pager>> Create(uint64_t budget_bytes);

  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Appends one sealed segment to the backing file and caches it (warm
  /// ingest: the pages just written are the ones index construction reads
  /// next). Returns the new page id.
  Result<uint32_t> Write(const char* data, size_t size);

  /// Returns the page's bytes, from cache or disk. The returned pin keeps
  /// the bytes alive after eviction.
  Result<PagePin> Load(uint32_t page_id) const;

  /// True when the page is currently cache-resident (stats/tests only —
  /// the answer can change the moment the lock drops).
  bool Resident(uint32_t page_id) const;

  /// Size in bytes of the given page.
  uint32_t PageBytes(uint32_t page_id) const;

  /// First read error observed (OK when none). Read failures degrade to
  /// empty views on the hot path; this is where they stay visible.
  Status first_error() const;

  PagerStats Stats() const;
  uint64_t budget_bytes() const { return budget_bytes_; }

 private:
  explicit Pager(uint64_t budget_bytes, int fd);

  /// Inserts a pin into the cache and evicts LRU entries over budget.
  void CacheInsert(uint32_t page_id, PagePin pin) const MCSM_REQUIRES(mu_);

  struct PageMeta {
    uint64_t offset = 0;  ///< byte offset in the backing file
    uint32_t bytes = 0;
  };
  struct CacheEntry {
    PagePin pin;
    std::list<uint32_t>::iterator lru_it;
  };

  const uint64_t budget_bytes_;
  const int fd_;

  // The cache and its accounting are logically mutable state behind const
  // Load(): reads fill the cache but never change which bytes a page holds.
  mutable Mutex mu_;
  std::vector<PageMeta> pages_ MCSM_GUARDED_BY(mu_);
  uint64_t file_bytes_ MCSM_GUARDED_BY(mu_) = 0;
  /// LRU order, most-recent at the front; cache_ maps page id -> pin + node.
  mutable std::list<uint32_t> lru_ MCSM_GUARDED_BY(mu_);
  mutable std::unordered_map<uint32_t, CacheEntry> cache_ MCSM_GUARDED_BY(mu_);
  mutable uint64_t cached_bytes_ MCSM_GUARDED_BY(mu_) = 0;
  mutable PagerStats stats_ MCSM_GUARDED_BY(mu_);
  mutable Status first_error_ MCSM_GUARDED_BY(mu_) = Status::OK();
};

/// \brief Lazily-created shared pager handle.
///
/// A table configured with a page budget holds one of these; the spill file
/// (and its fd) only comes into existence when a text column actually seals
/// its first segment, so small tables under a global MCSM_PAGE_BUDGET never
/// touch the filesystem. Copied tables share the source — and therefore the
/// spill file.
class PagerSource {
 public:
  explicit PagerSource(uint64_t budget_bytes) : budget_bytes_(budget_bytes) {}

  /// Returns the pager, creating it on first call. Returns nullptr when
  /// creation failed (the error latches into status(); callers degrade by
  /// keeping segments resident).
  std::shared_ptr<Pager> GetOrCreate();

  /// The pager if it exists yet, nullptr otherwise.
  std::shared_ptr<Pager> TryGet() const;

  /// Creation failure, if any (OK while healthy or not yet created).
  Status status() const;

  uint64_t budget_bytes() const { return budget_bytes_; }

 private:
  const uint64_t budget_bytes_;
  mutable Mutex mu_;
  std::shared_ptr<Pager> pager_ MCSM_GUARDED_BY(mu_);
  Status error_ MCSM_GUARDED_BY(mu_) = Status::OK();
};

}  // namespace mcsm::relational

#endif  // MCSM_RELATIONAL_PAGER_H_
