#include "relational/pattern.h"

#include <algorithm>

#include "common/check.h"

namespace mcsm::relational {

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Classic greedy algorithm with single backtrack point per '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

SearchPattern::SearchPattern(std::vector<Segment> segments) {
  // Normalize: collapse consecutive wildcards and drop empty literals.
  // Adjacent literal segments are deliberately NOT merged: each literal
  // corresponds to one known region of a translation formula, and
  // CaptureLiterals() must report one span per literal segment.
  for (auto& seg : segments) {
    if (seg.is_wildcard) {
      if (segments_.empty() || !segments_.back().is_wildcard) {
        segments_.push_back({true, seg.min_one, seg.exact_len, ""});
      } else {
        Segment& last = segments_.back();
        if (last.exact_len > 0 && seg.exact_len > 0) {
          last.exact_len += seg.exact_len;
        } else {
          last.exact_len = 0;  // mixing exact and free degrades to free
        }
        if (seg.min_one) last.min_one = true;
      }
    } else if (!seg.literal.empty()) {
      segments_.push_back(std::move(seg));
    }
  }
}

SearchPattern SearchPattern::FromLikeString(std::string_view pattern) {
  std::vector<Segment> segments;
  std::string current;
  for (char c : pattern) {
    if (c == '%') {
      if (!current.empty()) {
        segments.push_back({false, false, 0, current});
        current.clear();
      }
      segments.push_back({true, false, 0, ""});
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) segments.push_back({false, false, 0, current});
  return SearchPattern(std::move(segments));
}

bool SearchPattern::IsUniversal() const {
  return segments_.size() == 1 && segments_[0].is_wildcard &&
         segments_[0].exact_len == 0;
}

bool SearchPattern::Matches(std::string_view text) const {
  std::vector<Span> spans;
  return TryMatch(text, 0, 0, &spans);
}

bool SearchPattern::TryMatch(std::string_view text, size_t pos, size_t seg,
                             std::vector<Span>* spans) const {
  if (seg == segments_.size()) return pos == text.size();
  const Segment& s = segments_[seg];
  if (!s.is_wildcard) {
    const std::string& lit = s.literal;
    // SafeSubstr clamps, so a literal overhanging the end compares unequal
    // instead of reading past it.
    if (SafeSubstr(text, pos, lit.size()) != lit) return false;
    spans->push_back({pos, lit.size()});
    if (TryMatch(text, pos + lit.size(), seg + 1, spans)) return true;
    spans->pop_back();
    return false;
  }
  // Wildcard with an exact width: consume exactly that many characters.
  if (s.exact_len > 0) {
    if (pos + s.exact_len > text.size()) return false;
    return TryMatch(text, pos + s.exact_len, seg + 1, spans);
  }
  // Free wildcard. A min_one wildcard must consume at least one character.
  if (s.min_one && pos >= text.size()) return false;
  if (seg + 1 == segments_.size()) return true;  // absorbs the rest
  // The next segment is a literal (normalization guarantees alternation):
  // try each occurrence left to right.
  MCSM_DCHECK_BOUNDS(seg + 1, segments_.size());
  MCSM_DCHECK(!segments_[seg + 1].is_wildcard)
      << "normalization must leave no adjacent wildcards";
  const std::string& lit = segments_[seg + 1].literal;
  size_t search_from = pos + (s.min_one ? 1 : 0);
  while (true) {
    size_t found = text.find(lit, search_from);
    if (found == std::string_view::npos) return false;
    spans->push_back({found, lit.size()});
    if (TryMatch(text, found + lit.size(), seg + 2, spans)) return true;
    spans->pop_back();
    search_from = found + 1;
  }
}

std::optional<std::vector<Span>> SearchPattern::CaptureLiterals(
    std::string_view text) const {
  std::vector<Span> spans;
  if (!TryMatch(text, 0, 0, &spans)) return std::nullopt;
  return spans;
}

std::optional<std::vector<bool>> SearchPattern::FreeMask(
    std::string_view text) const {
  auto spans = CaptureLiterals(text);
  if (!spans.has_value()) return std::nullopt;
  std::vector<bool> mask(text.size(), true);
  for (const Span& span : *spans) {
    MCSM_DCHECK(span.end() <= text.size());
    for (size_t i = span.start; i < span.end(); ++i) mask[i] = false;
  }
  return mask;
}

std::string_view SearchPattern::LongestLiteral() const {
  std::string_view best;
  for (const auto& seg : segments_) {
    if (!seg.is_wildcard && seg.literal.size() > best.size()) {
      best = seg.literal;
    }
  }
  return best;
}

std::string SearchPattern::ToLikeString() const {
  std::string out;
  for (const auto& seg : segments_) {
    if (seg.is_wildcard) {
      if (seg.exact_len > 0) {
        out.append(seg.exact_len, '_');
      } else {
        if (seg.min_one) out.push_back('_');
        out.push_back('%');
      }
    } else {
      out += seg.literal;
    }
  }
  return out;
}

}  // namespace mcsm::relational
