#ifndef MCSM_RELATIONAL_PATTERN_H_
#define MCSM_RELATIONAL_PATTERN_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mcsm::relational {

/// SQL LIKE semantics: '%' matches any run of characters (including empty),
/// '_' matches exactly one character. Case sensitive, no escape support.
bool LikeMatch(std::string_view text, std::string_view pattern);

/// A [start, start+length) span of a matched literal segment within a text.
struct Span {
  size_t start;
  size_t length;

  size_t end() const { return start + length; }
  bool operator==(const Span&) const = default;
};

/// \brief A structured search pattern: alternating literal segments and '%'
/// wildcards, with span capture.
///
/// This is the retrieval/masking primitive for the refinement phase
/// (Section 3.4.1): the partial translation formula instantiated on a source
/// row becomes a pattern such as `%kerry`; target instances matching the
/// pattern are retrieved, and Capture() reports exactly which target
/// positions the known (literal) parts occupy so they can be masked out of
/// the alignment (Table 6).
class SearchPattern {
 public:
  struct Segment {
    bool is_wildcard;       ///< true for '%', false for a literal run
    bool min_one = false;   ///< wildcard must consume at least one character
    size_t exact_len = 0;   ///< wildcard must consume exactly this many
                            ///< characters (0 = unconstrained)
    std::string literal;    ///< non-empty iff !is_wildcard
  };

  SearchPattern() = default;
  explicit SearchPattern(std::vector<Segment> segments);

  /// Parses a LIKE-style string where '%' is the only metacharacter.
  static SearchPattern FromLikeString(std::string_view pattern);

  const std::vector<Segment>& segments() const { return segments_; }

  /// True when the pattern is a single '%' (matches everything).
  bool IsUniversal() const;

  /// Whether `text` matches the pattern.
  bool Matches(std::string_view text) const;

  /// Returns the spans of the literal segments (in order) under the
  /// *leftmost* feasible binding, or nullopt when `text` does not match.
  /// Leftmost: the first literal binds as early as possible, then the second,
  /// and so on (backtracking only as required for an overall match).
  std::optional<std::vector<Span>> CaptureLiterals(std::string_view text) const;

  /// Builds a per-character mask over `text`: true = position is *free*
  /// (not covered by any literal segment). nullopt when no match.
  std::optional<std::vector<bool>> FreeMask(std::string_view text) const;

  /// Longest literal segment (empty view when none) — used for index-assisted
  /// candidate filtering.
  std::string_view LongestLiteral() const;

  /// Renders back to a LIKE-style display string.
  std::string ToLikeString() const;

 private:
  bool TryMatch(std::string_view text, size_t pos, size_t seg,
                std::vector<Span>* spans) const;

  std::vector<Segment> segments_;
};

}  // namespace mcsm::relational

#endif  // MCSM_RELATIONAL_PATTERN_H_
