#include "relational/postings.h"

#include <algorithm>

#include "common/check.h"
#include "text/simd.h"

namespace mcsm::relational {

namespace {

uint8_t WidthFor(uint32_t max_value) {
  if (max_value <= 0xFFu) return 1;
  if (max_value <= 0xFFFFu) return 2;
  return 4;
}

void AppendLE(std::vector<uint8_t>* out, uint32_t value, uint8_t width) {
  for (uint8_t b = 0; b < width; ++b) {
    out->push_back(static_cast<uint8_t>(value >> (8 * b)));
  }
}

}  // namespace

bool DecodePostingBlock(const PostingBlockMeta& meta, const uint8_t* data,
                        size_t data_size, uint32_t* rows, uint32_t* tfs) {
  const size_t count = meta.count;
  if (count == 0 || count > kPostingBlockSize) return false;
  const uint32_t rw = meta.row_width;
  const uint32_t tw = meta.tf_width;
  if (rw != 1 && rw != 2 && rw != 4) return false;
  if (tw != 0 && tw != 1 && tw != 2 && tw != 4) return false;
  const size_t delta_bytes = (count - 1) * rw;
  const size_t tf_bytes = tw == 0 ? 0 : count * tw;
  if (meta.offset > data_size ||
      data_size - meta.offset < delta_bytes + tf_bytes) {
    return false;
  }
  const uint8_t* payload = data + meta.offset;
  text::simd::DeltaDecode(meta.first_row, payload, count, rw, rows);
  if (tfs != nullptr) {
    if (tw == 0) {
      std::fill(tfs, tfs + count, 1u);
    } else {
      text::simd::WidenU32(payload + delta_bytes, count, tw, tfs);
    }
  }
  return true;
}

PostingStore PostingStore::Build(std::vector<std::vector<Posting>>&& lists) {
  PostingStore store;
  store.grams_.resize(lists.size());
  size_t total_postings = 0;
  size_t total_blocks = 0;
  for (const auto& list : lists) {
    total_postings += list.size();
    total_blocks += (list.size() + kPostingBlockSize - 1) / kPostingBlockSize;
  }
  store.blocks_.reserve(total_blocks);
  // Bigram deltas of real columns are overwhelmingly 1-byte with an all-ones
  // tf stream, so ~1 byte per posting; reserve 2 to avoid regrowth on the
  // occasional wide block.
  store.data_.reserve(total_postings * 2);

  for (size_t id = 0; id < lists.size(); ++id) {
    std::vector<Posting>& list = lists[id];
    GramRange& gram = store.grams_[id];
    gram.block_begin = static_cast<uint32_t>(store.blocks_.size());
    gram.count = static_cast<uint32_t>(list.size());
    for (size_t start = 0; start < list.size(); start += kPostingBlockSize) {
      const size_t n = std::min(kPostingBlockSize, list.size() - start);
      uint32_t max_delta = 0;
      uint32_t max_tf = 0;
      for (size_t i = 0; i < n; ++i) {
        const Posting& p = list[start + i];
        if (i > 0) {
          max_delta = std::max(max_delta, p.row - list[start + i - 1].row);
        }
        max_tf = std::max(max_tf, p.tf);
      }
      PostingBlockMeta meta;
      meta.first_row = list[start].row;
      meta.last_row = list[start + n - 1].row;
      meta.offset = static_cast<uint32_t>(store.data_.size());
      meta.count = static_cast<uint16_t>(n);
      meta.row_width = n > 1 ? WidthFor(max_delta) : 1;
      meta.tf_width = max_tf <= 1 ? 0 : WidthFor(max_tf);
      for (size_t i = 1; i < n; ++i) {
        AppendLE(&store.data_,
                 list[start + i].row - list[start + i - 1].row,
                 meta.row_width);
      }
      if (meta.tf_width != 0) {
        for (size_t i = 0; i < n; ++i) {
          AppendLE(&store.data_, list[start + i].tf, meta.tf_width);
        }
      }
      store.blocks_.push_back(meta);
    }
    gram.block_end = static_cast<uint32_t>(store.blocks_.size());
    // Release each source list as soon as it is encoded: peak memory stays
    // one uncompressed list above the arena, not the whole uncompressed set.
    std::vector<Posting>().swap(list);
  }
  lists.clear();
  return store;
}

std::pair<const PostingBlockMeta*, const PostingBlockMeta*>
PostingStore::Blocks(uint32_t gram_id) const {
  if (gram_id >= grams_.size()) return {nullptr, nullptr};
  const GramRange& gram = grams_[gram_id];
  const PostingBlockMeta* base = blocks_.data();
  return {base + gram.block_begin, base + gram.block_end};
}

size_t PostingStore::Decode(uint32_t gram_id, std::vector<uint32_t>* rows,
                            std::vector<uint32_t>* tfs) const {
  const uint32_t count = Count(gram_id);
  rows->resize(count);
  if (tfs != nullptr) tfs->resize(count);
  auto [block, end] = Blocks(gram_id);
  size_t at = 0;
  for (; block != end; ++block) {
    const bool ok =
        DecodePostingBlock(*block, data_.data(), data_.size(),
                           rows->data() + at,
                           tfs != nullptr ? tfs->data() + at : nullptr);
    // Encoder output always decodes; the check guards index arithmetic.
    MCSM_DCHECK(ok);
    if (!ok) break;
    at += block->count;
  }
  return at;
}

void PostingStore::Intersect(uint32_t gram_id,
                             std::vector<uint32_t>* candidates,
                             RunBudget* budget) const {
  auto [cur, end] = Blocks(gram_id);
  if (cur == end) {
    candidates->clear();
    return;
  }
  // Survivors accumulate here; thread_local keeps repeated intersections on
  // the retrieval hot path allocation-free.
  thread_local std::vector<uint32_t> kept;
  kept.clear();
  uint32_t rows[kPostingBlockSize];
  const PostingBlockMeta* decoded = nullptr;
  size_t decoded_n = 0;
  const std::vector<uint32_t>& cand = *candidates;
  for (size_t i = 0; i < cand.size(); ++i) {
    const uint32_t c = cand[i];
    if (cur->last_row < c) {
      // Gallop over the skip entries: exponential probe, then binary search
      // for the first block whose last row reaches the candidate. Blocks
      // ruled out by their skip entry are never decoded.
      size_t step = 1;
      const PostingBlockMeta* probe = cur;
      while (static_cast<size_t>(end - probe) > step &&
             (probe + step)->last_row < c) {
        probe += step;
        step *= 2;
      }
      const PostingBlockMeta* hi =
          static_cast<size_t>(end - probe) > step ? probe + step + 1 : end;
      cur = std::lower_bound(
          probe + 1, hi, c,
          [](const PostingBlockMeta& m, uint32_t row) {
            return m.last_row < row;
          });
      if (cur == end) break;  // every later candidate exceeds the list
    }
    if (c < cur->first_row) continue;  // falls in a gap between blocks
    if (decoded != cur) {
      if (budget != nullptr && !budget->ChargePostings(cur->count)) {
        // Out of budget: pass the tail through unfiltered. Callers verify
        // candidates exactly, so this trades verification work for
        // correctness-preserving early exit.
        kept.insert(kept.end(), cand.begin() + static_cast<ptrdiff_t>(i),
                    cand.end());
        break;
      }
      if (!DecodePostingBlock(*cur, data_.data(), data_.size(), rows,
                              nullptr)) {
        kept.insert(kept.end(), cand.begin() + static_cast<ptrdiff_t>(i),
                    cand.end());
        break;
      }
      decoded = cur;
      decoded_n = cur->count;
    }
    if (std::binary_search(rows, rows + decoded_n, c)) kept.push_back(c);
  }
  candidates->assign(kept.begin(), kept.end());
}

size_t PostingStore::ApproxMemoryBytes() const {
  return data_.capacity() + blocks_.capacity() * sizeof(PostingBlockMeta) +
         grams_.capacity() * sizeof(GramRange);
}

}  // namespace mcsm::relational
