#ifndef MCSM_RELATIONAL_POSTINGS_H_
#define MCSM_RELATIONAL_POSTINGS_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/deadline.h"

namespace mcsm::relational {

/// \brief Block-compressed posting lists (DESIGN.md §11).
///
/// A posting list is the ascending sequence of (row, tf) pairs of one q-gram.
/// Instead of a `std::vector<Posting>` per gram (8 bytes per posting plus a
/// heap allocation per gram), every list is split into blocks of up to
/// kPostingBlockSize postings and serialized into one shared byte arena:
/// row ids are delta-encoded (strictly ascending, so deltas >= 1) with a
/// per-block byte width of 1, 2 or 4 chosen by the block's largest delta;
/// the tf stream is stored separately after the deltas with its own width,
/// 0 when every tf in the block is 1 (the overwhelmingly common case for
/// bigrams of short strings). Each block carries a skip entry — first/last
/// row id — so intersections can skip whole blocks without decoding, and a
/// budget-aware walk can stop between blocks.
///
/// Decoding routes through the SIMD dispatch layer (text/simd.h): widening
/// loads plus 4-lane prefix sums, bit-identical to the scalar path.

/// An inverted-index entry in decoded form: a row id and the q-gram's term
/// frequency in that row.
struct Posting {
  uint32_t row;
  uint32_t tf;
};

/// Max postings per block. 128 keeps the decode scratch (rows + tfs + double
/// contributions) around 2 KB — comfortably L1-resident.
inline constexpr size_t kPostingBlockSize = 128;

/// Skip entry + payload descriptor of one block (16 bytes).
struct PostingBlockMeta {
  uint32_t first_row;  ///< row id of the block's first posting
  uint32_t last_row;   ///< row id of the last posting — the skip key
  uint32_t offset;     ///< payload start in the arena
  uint16_t count;      ///< postings in this block (1..kPostingBlockSize)
  uint8_t row_width;   ///< bytes per delta (1/2/4); count-1 deltas
  uint8_t tf_width;    ///< bytes per tf (1/2/4), or 0 when every tf == 1
};
static_assert(sizeof(PostingBlockMeta) == 16, "keep skip entries compact");

/// Decodes one block. `rows` (and `tfs`, unless null) must have room for
/// `meta.count` entries; kPostingBlockSize always suffices for encoder
/// output. Returns false — without reading out of bounds — when the meta is
/// malformed: count of 0 or > kPostingBlockSize, a width outside {1,2,4}
/// ({0,1,2,4} for tf), or a payload extending past `data_size`. This is the
/// validated entry point the fuzz harness drives with arbitrary bytes.
bool DecodePostingBlock(const PostingBlockMeta& meta, const uint8_t* data,
                        size_t data_size, uint32_t* rows, uint32_t* tfs);

/// \brief The shared arena of every gram's compressed posting list.
///
/// Immutable after Build(); all accessors are const and thread-safe. Gram
/// ids index the same dense space as the owning ColumnIndex's dictionary.
class PostingStore {
 public:
  PostingStore() = default;

  /// Compresses `lists` (one ascending (row, tf) list per gram id). Each
  /// input list is released as soon as it is encoded, so peak memory is the
  /// uncompressed size plus one list, not twice the uncompressed size.
  static PostingStore Build(std::vector<std::vector<Posting>>&& lists);

  /// Number of gram ids (the Build() input size).
  size_t gram_count() const { return grams_.size(); }

  /// Postings in `gram_id`'s list (0 for out-of-range ids).
  uint32_t Count(uint32_t gram_id) const {
    return gram_id < grams_.size() ? grams_[gram_id].count : 0;
  }

  /// The block metas of `gram_id`'s list, as a [begin, end) pointer pair
  /// (empty for out-of-range ids or empty lists).
  std::pair<const PostingBlockMeta*, const PostingBlockMeta*> Blocks(
      uint32_t gram_id) const;

  const uint8_t* data() const { return data_.data(); }
  size_t data_size() const { return data_.size(); }

  /// Decodes `gram_id`'s whole list into `rows` / `tfs` (resized to the
  /// list's count; `tfs` may be null). Returns the number of postings.
  size_t Decode(uint32_t gram_id, std::vector<uint32_t>* rows,
                std::vector<uint32_t>* tfs) const;

  /// Keeps only the candidates present in `gram_id`'s list. `candidates`
  /// must be ascending (it stays ascending). Blocks whose skip entry rules
  /// them out are never decoded; runs of candidates between blocks gallop
  /// over the skip entries (exponential + binary search). `budget`, when
  /// given, is charged per decoded block; on exhaustion the remaining
  /// candidates are kept unfiltered — callers verify candidates exactly, so
  /// an unfiltered tail costs verification work, never correctness.
  void Intersect(uint32_t gram_id, std::vector<uint32_t>* candidates,
                 RunBudget* budget = nullptr) const;

  /// Heap bytes of the store (arena + skip entries + per-gram directory).
  size_t ApproxMemoryBytes() const;

 private:
  /// Directory entry per gram id: its block range and total posting count.
  struct GramRange {
    uint32_t block_begin = 0;
    uint32_t block_end = 0;
    uint32_t count = 0;
  };

  std::vector<GramRange> grams_;
  std::vector<PostingBlockMeta> blocks_;
  std::vector<uint8_t> data_;
};

}  // namespace mcsm::relational

#endif  // MCSM_RELATIONAL_POSTINGS_H_
