#include "relational/sampler.h"

#include <algorithm>
#include <cmath>

namespace mcsm::relational {

size_t SampleSize(size_t population, double fraction, size_t min_count) {
  if (population == 0) return 0;
  size_t t = static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(population)));
  t = std::max(t, min_count);
  return std::min(t, population);
}

std::vector<size_t> EquidistantIndices(size_t population, size_t t) {
  std::vector<size_t> out;
  if (population == 0 || t == 0) return out;
  t = std::min(t, population);
  out.reserve(t);
  for (size_t j = 0; j < t; ++j) {
    // Index j * population / t is the paper's "tuple j/fraction" position.
    out.push_back(j * population / t);
  }
  return out;
}

std::vector<std::string> SampleDistinctValues(const ColumnIndex& index,
                                              double fraction,
                                              size_t min_count,
                                              RunBudget* budget) {
  const auto& distinct = index.sorted_distinct();
  size_t t = SampleSize(distinct.size(), fraction, min_count);
  std::vector<std::string> out;
  out.reserve(t);
  for (size_t idx : EquidistantIndices(distinct.size(), t)) {
    if (budget != nullptr && budget->Exhausted()) break;
    out.push_back(distinct[idx]);
  }
  return out;
}

std::vector<size_t> SampleRows(size_t num_rows, size_t t, RunBudget* budget) {
  if (budget != nullptr && budget->Exhausted()) return {};
  return EquidistantIndices(num_rows, t);
}

}  // namespace mcsm::relational
