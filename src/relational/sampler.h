#ifndef MCSM_RELATIONAL_SAMPLER_H_
#define MCSM_RELATIONAL_SAMPLER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "relational/column_index.h"

namespace mcsm::relational {

/// \brief Equidistant ("interleaved") sampling, after Gravano et al.: values
/// are taken at equally spaced positions of the ordered sequence, which a
/// database can serve with a single cursor sweep (cheaper than random
/// sampling, empirically as good — paper Section 3.2).

/// Returns ceil(fraction * population), clamped to [min_count, population].
size_t SampleSize(size_t population, double fraction, size_t min_count);

/// Equidistant positions: t indices spread over [0, population).
std::vector<size_t> EquidistantIndices(size_t population, size_t t);

/// Samples `fraction` of the column's *distinct* values equidistantly from
/// its sorted distinct list (distinctness prevents the value distribution
/// from biasing match counts — Section 3.2). At least `min_count` values are
/// returned when the column has that many. When `budget` is given and
/// already exhausted, a truncated (possibly empty) sample is returned.
std::vector<std::string> SampleDistinctValues(const ColumnIndex& index,
                                              double fraction,
                                              size_t min_count = 1,
                                              RunBudget* budget = nullptr);

/// Samples `t` row indices equidistantly over [0, num_rows). `budget` as in
/// SampleDistinctValues.
std::vector<size_t> SampleRows(size_t num_rows, size_t t,
                               RunBudget* budget = nullptr);

}  // namespace mcsm::relational

#endif  // MCSM_RELATIONAL_SAMPLER_H_
