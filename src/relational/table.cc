#include "relational/table.h"

#include <algorithm>

#include "common/string_util.h"

namespace mcsm::relational {

std::optional<size_t> Schema::FindColumn(std::string_view name) const {
  std::string lowered = ToLower(name);
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (ToLower(columns_[i].name) == lowered) return i;
  }
  return std::nullopt;
}

Table Table::WithTextColumns(const std::vector<std::string>& names) {
  std::vector<ColumnDef> defs;
  defs.reserve(names.size());
  for (const auto& n : names) defs.push_back({n, ColumnType::kText});
  return Table(Schema(std::move(defs)));
}

Status Table::AppendRow(std::vector<Value> row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, table has %zu columns", row.size(),
                  schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    Value& v = row[i];
    if (v.is_null()) continue;
    switch (schema_.column(i).type) {
      case ColumnType::kText:
        if (!v.is_text()) {
          return Status::TypeError("non-text value for TEXT column " +
                                   schema_.column(i).name);
        }
        break;
      case ColumnType::kInteger:
        if (!v.is_integer()) {
          return Status::TypeError("non-integer value for INTEGER column " +
                                   schema_.column(i).name);
        }
        break;
      case ColumnType::kReal:
        if (v.is_integer()) {
          v = Value(static_cast<double>(v.integer()));
        } else if (!v.is_real()) {
          return Status::TypeError("non-numeric value for REAL column " +
                                   schema_.column(i).name);
        }
        break;
    }
  }
  for (size_t i = 0; i < row.size(); ++i) {
    columns_[i].push_back(std::move(row[i]));
  }
  return Status::OK();
}

Status Table::AppendTextRow(const std::vector<std::string>& row) {
  std::vector<Value> values;
  values.reserve(row.size());
  for (const auto& s : row) values.emplace_back(s);
  return AppendRow(std::move(values));
}

Status Table::SetCell(size_t row, size_t col, Value value) {
  if (col >= schema_.num_columns() || row >= num_rows()) {
    return Status::OutOfRange("cell index out of range");
  }
  if (!value.is_null()) {
    switch (schema_.column(col).type) {
      case ColumnType::kText:
        if (!value.is_text()) {
          return Status::TypeError("non-text value for TEXT column " +
                                   schema_.column(col).name);
        }
        break;
      case ColumnType::kInteger:
        if (!value.is_integer()) {
          return Status::TypeError("non-integer value for INTEGER column " +
                                   schema_.column(col).name);
        }
        break;
      case ColumnType::kReal:
        if (value.is_integer()) {
          value = Value(static_cast<double>(value.integer()));
        } else if (!value.is_real()) {
          return Status::TypeError("non-numeric value for REAL column " +
                                   schema_.column(col).name);
        }
        break;
    }
  }
  columns_[col][row] = std::move(value);
  return Status::OK();
}

std::vector<Value> Table::GetRow(size_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col[row]);
  return out;
}

void Table::RemoveRows(const std::vector<size_t>& rows) {
  if (rows.empty()) return;
  std::vector<bool> remove(num_rows(), false);
  for (size_t r : rows) {
    if (r < remove.size()) remove[r] = true;
  }
  for (auto& col : columns_) {
    size_t write = 0;
    for (size_t read = 0; read < col.size(); ++read) {
      if (!remove[read]) {
        if (write != read) col[write] = std::move(col[read]);
        ++write;
      }
    }
    col.resize(write);
  }
}

void Table::Truncate(size_t n) {
  for (auto& col : columns_) {
    if (col.size() > n) col.resize(n);
  }
}

}  // namespace mcsm::relational
