#include "relational/table.h"

#include <algorithm>
#include <utility>

#include "common/env.h"
#include "common/string_util.h"

namespace mcsm::relational {

std::optional<size_t> Schema::FindColumn(std::string_view name) const {
  std::string lowered = ToLower(name);
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (ToLower(columns_[i].name) == lowered) return i;
  }
  return std::nullopt;
}

TableOptions TableOptions::FromEnv() {
  TableOptions options;
  options.use_legacy_store = GetEnvInt("MCSM_LEGACY_STORE", 0) != 0;
  options.page_budget_bytes =
      static_cast<uint64_t>(std::max<int64_t>(0, GetEnvInt("MCSM_PAGE_BUDGET", 0)));
  options.segment_bytes =
      static_cast<size_t>(std::max<int64_t>(0, GetEnvInt("MCSM_PAGE_BYTES", 0)));
  return options;
}

Table::Table(Schema schema, const TableOptions& options)
    : schema_(std::move(schema)), options_(options) {
  if (options_.use_legacy_store) {
    legacy_.resize(schema_.num_columns());
    return;
  }
  // The PagerSource is lazy: the spill file only gets created when a text
  // column seals its first segment, so small tables under a global
  // MCSM_PAGE_BUDGET stay purely in-memory.
  std::shared_ptr<PagerSource> source;
  if (options_.page_budget_bytes > 0) {
    source = std::make_shared<PagerSource>(options_.page_budget_bytes);
  }
  std::vector<ColumnType> types;
  types.reserve(schema_.num_columns());
  for (const ColumnDef& def : schema_.columns()) types.push_back(def.type);
  store_ = ColumnStore(types, std::move(source), options_.segment_bytes);
}

Table Table::WithTextColumns(const std::vector<std::string>& names) {
  return WithTextColumns(names, TableOptions::FromEnv());
}

Table Table::WithTextColumns(const std::vector<std::string>& names,
                             const TableOptions& options) {
  std::vector<ColumnDef> defs;
  defs.reserve(names.size());
  for (const auto& n : names) defs.push_back({n, ColumnType::kText});
  return Table(Schema(std::move(defs)), options);
}

Status Table::CheckValue(size_t col, Value* value) const {
  if (value->is_null()) return Status::OK();
  switch (schema_.column(col).type) {
    case ColumnType::kText:
      if (!value->is_text()) {
        return Status::TypeError("non-text value for TEXT column " +
                                 schema_.column(col).name);
      }
      break;
    case ColumnType::kInteger:
      if (!value->is_integer()) {
        return Status::TypeError("non-integer value for INTEGER column " +
                                 schema_.column(col).name);
      }
      break;
    case ColumnType::kReal:
      if (value->is_integer()) {
        *value = Value(static_cast<double>(value->integer()));
      } else if (!value->is_real()) {
        return Status::TypeError("non-numeric value for REAL column " +
                                 schema_.column(col).name);
      }
      break;
  }
  return Status::OK();
}

Status Table::AppendRow(std::vector<Value> row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, table has %zu columns", row.size(),
                  schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    MCSM_RETURN_IF_ERROR(CheckValue(i, &row[i]));
  }
  if (options_.use_legacy_store) {
    for (size_t i = 0; i < row.size(); ++i) {
      legacy_[i].push_back(std::move(row[i]));
    }
  } else {
    MCSM_RETURN_IF_ERROR(store_.AppendRow(row));
  }
  ++num_rows_;
  return Status::OK();
}

Status Table::AppendTextRow(const std::vector<std::string>& row) {
  std::vector<Value> values;
  values.reserve(row.size());
  for (const auto& s : row) values.emplace_back(s);
  return AppendRow(std::move(values));
}

Status Table::SetCell(size_t row, size_t col, Value value) {
  if (col >= schema_.num_columns() || row >= num_rows_) {
    return Status::OutOfRange("cell index out of range");
  }
  MCSM_RETURN_IF_ERROR(CheckValue(col, &value));
  if (options_.use_legacy_store) {
    legacy_[col][row] = std::move(value);
    return Status::OK();
  }
  return store_.Set(row, col, value);
}

ColumnView Table::Column(size_t col) const {
  if (options_.use_legacy_store) {
    return ColumnView(&legacy_[col], schema_.column(col).type);
  }
  return store_.View(col);
}

std::vector<Value> Table::GetRow(size_t row) const {
  std::vector<Value> out;
  out.reserve(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    out.push_back(ValueAt(row, c));
  }
  return out;
}

Status Table::RemoveRows(const std::vector<size_t>& rows) {
  if (rows.empty()) return Status::OK();
  std::vector<bool> remove(num_rows_, false);
  size_t flagged = 0;
  for (size_t r : rows) {
    if (r < remove.size() && !remove[r]) {
      remove[r] = true;
      ++flagged;
    }
  }
  if (flagged == 0) return Status::OK();
  if (options_.use_legacy_store) {
    for (auto& col : legacy_) {
      size_t write = 0;
      for (size_t read = 0; read < col.size(); ++read) {
        if (!remove[read]) {
          if (write != read) col[write] = std::move(col[read]);
          ++write;
        }
      }
      col.resize(write);
    }
  } else {
    MCSM_RETURN_IF_ERROR(store_.RemoveRows(remove));
  }
  num_rows_ -= flagged;
  return Status::OK();
}

void Table::Truncate(size_t n) {
  if (n >= num_rows_) return;
  if (options_.use_legacy_store) {
    for (auto& col : legacy_) {
      if (col.size() > n) col.resize(n);
    }
  } else {
    store_.Truncate(n);
  }
  num_rows_ = n;
}

namespace {

/// Legacy-store footprint: the Value vectors plus heap-allocated (non-SSO)
/// text payloads. libstdc++'s SSO buffer holds 15 chars, so capacity() > 15
/// implies a heap block of capacity()+1 bytes.
uint64_t LegacyColumnBytes(const std::vector<Value>& col) {
  uint64_t bytes = col.capacity() * sizeof(Value);
  for (const Value& v : col) {
    if (v.is_text() && v.text().capacity() > 15) {
      bytes += v.text().capacity() + 1;
    }
  }
  return bytes;
}

}  // namespace

TableStats Table::Stats() const {
  TableStats stats;
  stats.rows = num_rows_;
  stats.columns = schema_.num_columns();
  if (options_.use_legacy_store) {
    stats.encoding = "legacy";
    for (const auto& col : legacy_) {
      stats.resident_bytes += LegacyColumnBytes(col);
    }
    return stats;
  }
  stats.encoding =
      store_.pager_source() != nullptr ? "columnar+paged" : "columnar";
  for (size_t c = 0; c < store_.num_columns(); ++c) {
    const ColumnData& col = store_.column_data(c);
    stats.resident_bytes += col.nulls.byte_size();
    switch (col.type) {
      case ColumnType::kText: {
        stats.resident_bytes += col.text.meta_bytes();
        for (size_t k = 0; k < col.text.num_sealed_segments(); ++k) {
          const uint32_t bytes = col.text.SegmentBytes(k);
          if (!col.text.SegmentSpilled(k)) {
            stats.resident_pages += 1;
            stats.resident_bytes += bytes;
          } else {
            stats.spilled_bytes += bytes;
            if (col.text.SegmentResident(k)) {
              stats.resident_pages += 1;
              stats.resident_bytes += bytes;
            } else {
              stats.spilled_pages += 1;
            }
          }
        }
        break;
      }
      case ColumnType::kInteger:
        stats.resident_bytes += col.ints.capacity() * sizeof(int64_t);
        break;
      case ColumnType::kReal:
        stats.resident_bytes += col.reals.capacity() * sizeof(double);
        break;
    }
  }
  return stats;
}

Status Table::storage_status() const {
  if (options_.use_legacy_store || store_.pager_source() == nullptr) {
    return Status::OK();
  }
  const PagerSource& source = *store_.pager_source();
  MCSM_RETURN_IF_ERROR(source.status());  // spill-file creation failure
  std::shared_ptr<Pager> pager = source.TryGet();
  if (pager != nullptr) return pager->first_error();
  return Status::OK();
}

}  // namespace mcsm::relational
