#ifndef MCSM_RELATIONAL_TABLE_H_
#define MCSM_RELATIONAL_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/column_store.h"
#include "relational/value.h"

namespace mcsm::relational {

/// Definition of a single column: name and declared type.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kText;
};

/// \brief Ordered list of column definitions with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Case-insensitive column lookup; returns nullopt when absent.
  std::optional<size_t> FindColumn(std::string_view name) const;

 private:
  std::vector<ColumnDef> columns_;
};

/// Storage configuration for one Table (DESIGN.md §13).
struct TableOptions {
  /// Rollback lever: the pre-columnar vector-of-Value row store. Kept for
  /// one PR as the differential baseline; flipped by MCSM_LEGACY_STORE=1.
  bool use_legacy_store = false;
  /// When nonzero, sealed text segments spill to a temp file and fault back
  /// through an LRU cache capped at this many bytes (MCSM_PAGE_BUDGET).
  uint64_t page_budget_bytes = 0;
  /// Sealed-segment size in bytes; 0 means kDefaultSegmentBytes
  /// (MCSM_PAGE_BYTES).
  size_t segment_bytes = 0;

  /// Reads MCSM_LEGACY_STORE / MCSM_PAGE_BUDGET / MCSM_PAGE_BYTES.
  static TableOptions FromEnv();
};

/// Storage accounting for one Table (see /v1/tables/{name}).
struct TableStats {
  uint64_t rows = 0;
  uint64_t columns = 0;
  /// Bytes held in RAM right now: row metadata, null bitmaps, numeric
  /// arrays, open tails, resident sealed segments (legacy: the whole store).
  uint64_t resident_bytes = 0;
  /// Bytes of live sealed segments whose home is the spill file.
  uint64_t spilled_bytes = 0;
  /// Live sealed segments currently in RAM (unpaged or cache-resident).
  uint64_t resident_pages = 0;
  /// Live sealed segments currently only on disk.
  uint64_t spilled_pages = 0;
  /// "legacy" | "columnar" | "columnar+paged".
  std::string encoding;
};

/// \brief Column-oriented table: arena-backed columnar storage by default
/// (ColumnStore; optionally paged to disk), or the legacy row store behind
/// `TableOptions::use_legacy_store`.
///
/// Appends validate value types against the schema (integers are accepted
/// into REAL columns and widened). Reads go through the span-based view API:
/// `Column()` returns a ColumnView, `TextAt()`/`ValueAt()` are per-cell
/// conveniences. The old reference-returning accessors
/// (`cell()`/`column()`/`CellText()`) are gone — lint rule TS001 keeps them
/// out (`relational/table_compat.h` is the one-PR shim for stragglers).
///
/// Copying a Table deep-copies row metadata but shares sealed (immutable)
/// text segments and the spill file; both copies may keep appending —
/// sealed pages are never rewritten, so they can never disagree.
class Table {
 public:
  Table() : Table(Schema(), TableOptions::FromEnv()) {}
  explicit Table(Schema schema) : Table(std::move(schema), TableOptions::FromEnv()) {}
  Table(Schema schema, const TableOptions& options);

  /// Convenience: builds an all-TEXT schema from column names.
  static Table WithTextColumns(const std::vector<std::string>& names);
  static Table WithTextColumns(const std::vector<std::string>& names,
                               const TableOptions& options);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return schema_.num_columns(); }

  /// Appends a row; `row.size()` must equal num_columns() and each value must
  /// be NULL or match the column type.
  Status AppendRow(std::vector<Value> row);

  /// Appends a row of TEXT values (schema must be all-TEXT).
  Status AppendTextRow(const std::vector<std::string>& row);

  /// Replaces one cell; the value must be NULL or match the column type
  /// (integers widen into REAL columns).
  Status SetCell(size_t row, size_t col, Value value);

  /// Read surface: one column as a view (cheap value type; the table must
  /// outlive it and not be mutated while views/cursors are read).
  ColumnView Column(size_t col) const;

  /// TEXT cell as a pinned view; empty view for NULL or non-text cells.
  TextView TextAt(size_t row, size_t col) const {
    return Column(col).GetText(row);
  }

  /// Cell materialized as a Value (copies text payloads).
  Value ValueAt(size_t row, size_t col) const {
    return Column(col).GetValue(row);
  }

  bool IsNull(size_t row, size_t col) const { return Column(col).IsNull(row); }

  /// Returns a materialized copy of row `row`.
  std::vector<Value> GetRow(size_t row) const;

  /// Removes the rows whose indices appear in `rows` (need not be sorted;
  /// duplicates ignored). Used by match-and-remove re-runs (Section 4.1).
  /// Columnar text columns rebuild into fresh segments, which can fail on
  /// spill I/O.
  Status RemoveRows(const std::vector<size_t>& rows);

  /// Keeps only rows [0, n) — used by the scaling benchmark (Fig. 3).
  void Truncate(size_t n);

  /// Storage accounting (resident vs spilled bytes/pages, encoding).
  TableStats Stats() const;

  /// First storage-layer failure observed (pager creation or page read);
  /// OK when healthy. Failed page reads degrade to empty views — this is
  /// how callers detect that it happened.
  Status storage_status() const;

  const TableOptions& options() const { return options_; }

 private:
  /// Validates/widens one value against column `col`'s declared type.
  Status CheckValue(size_t col, Value* value) const;

  Schema schema_;
  TableOptions options_;
  size_t num_rows_ = 0;  ///< explicit: correct even for zero-column schemas
  /// Exactly one backend holds data: legacy_ iff options_.use_legacy_store.
  std::vector<std::vector<Value>> legacy_;
  ColumnStore store_;
};

}  // namespace mcsm::relational

#endif  // MCSM_RELATIONAL_TABLE_H_
