#ifndef MCSM_RELATIONAL_TABLE_H_
#define MCSM_RELATIONAL_TABLE_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/value.h"

namespace mcsm::relational {

/// Definition of a single column: name and declared type.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kText;
};

/// \brief Ordered list of column definitions with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Case-insensitive column lookup; returns nullopt when absent.
  std::optional<size_t> FindColumn(std::string_view name) const;

 private:
  std::vector<ColumnDef> columns_;
};

/// \brief Column-oriented in-memory table.
///
/// Storage is one Value vector per column; all columns have the same length.
/// Appends validate value types against the schema (integers are accepted
/// into REAL columns and widened).
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema)
      : schema_(std::move(schema)), columns_(schema_.num_columns()) {}

  /// Convenience: builds an all-TEXT schema from column names.
  static Table WithTextColumns(const std::vector<std::string>& names);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  size_t num_columns() const { return schema_.num_columns(); }

  /// Appends a row; `row.size()` must equal num_columns() and each value must
  /// be NULL or match the column type.
  Status AppendRow(std::vector<Value> row);

  /// Appends a row of TEXT values (schema must be all-TEXT).
  Status AppendTextRow(const std::vector<std::string>& row);

  /// Replaces one cell; the value must be NULL or match the column type
  /// (integers widen into REAL columns).
  Status SetCell(size_t row, size_t col, Value value);

  const Value& cell(size_t row, size_t col) const { return columns_[col][row]; }

  /// TEXT cell accessed as a view; empty view for NULL or non-text cells.
  std::string_view CellText(size_t row, size_t col) const {
    const Value& v = columns_[col][row];
    return v.is_text() ? std::string_view(v.text()) : std::string_view();
  }

  /// Entire column (column-oriented access).
  const std::vector<Value>& column(size_t col) const { return columns_[col]; }

  /// Returns a copy of row `row`.
  std::vector<Value> GetRow(size_t row) const;

  /// Removes the rows whose indices appear in `rows` (need not be sorted;
  /// duplicates ignored). Used by match-and-remove re-runs (Section 4.1).
  void RemoveRows(const std::vector<size_t>& rows);

  /// Keeps only rows [0, n) — used by the scaling benchmark (Fig. 3).
  void Truncate(size_t n);

 private:
  Schema schema_;
  std::vector<std::vector<Value>> columns_;
};

}  // namespace mcsm::relational

#endif  // MCSM_RELATIONAL_TABLE_H_
