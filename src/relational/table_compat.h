#ifndef MCSM_RELATIONAL_TABLE_COMPAT_H_
#define MCSM_RELATIONAL_TABLE_COMPAT_H_

#include <string>

#include "relational/table.h"

namespace mcsm::relational::compat {

/// \file
/// \brief One-PR compatibility shim for the retired Table accessors.
///
/// The reference-returning surface (`Table::cell()`, `Table::column()`,
/// `Table::CellText()`) is gone — views over arena storage replaced it, and
/// lint rule TS001 bans the old spellings everywhere but here. These free
/// functions are the migration crutch for straggling call sites: they
/// materialize copies (safe under paging, but paying an allocation the view
/// API avoids), so every use is a TODO to move to Column()/TextAt().
/// Scheduled for deletion in the next PR.

/// `table.cell(row, col)` replacement: the cell as an owned Value.
inline Value CellValue(const Table& table, size_t row, size_t col) {
  return table.ValueAt(row, col);
}

/// `table.CellText(row, col)` replacement: the text payload as an owned
/// string (empty for NULL and non-text cells, like CellText was).
inline std::string CellTextCopy(const Table& table, size_t row, size_t col) {
  return std::string(table.TextAt(row, col).view());
}

}  // namespace mcsm::relational::compat

#endif  // MCSM_RELATIONAL_TABLE_COMPAT_H_
