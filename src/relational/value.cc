#include "relational/value.h"

#include <cmath>

#include "common/string_util.h"

namespace mcsm::relational {

const char* ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kText:
      return "TEXT";
    case ColumnType::kInteger:
      return "INTEGER";
    case ColumnType::kReal:
      return "REAL";
  }
  return "UNKNOWN";
}

std::string Value::ToDisplayString() const {
  if (is_null()) return "NULL";
  if (is_integer()) return std::to_string(integer());
  if (is_real()) {
    double v = real();
    if (std::floor(v) == v && std::abs(v) < 1e15) {
      return StrFormat("%.1f", v);
    }
    return StrFormat("%g", v);
  }
  return text();
}

bool Value::SqlEquals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (is_numeric() && other.is_numeric()) return AsDouble() == other.AsDouble();
  if (is_text() && other.is_text()) return text() == other.text();
  return false;
}

int Value::Compare(const Value& other) const {
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_numeric()) return 1;
    return 2;
  };
  int ra = rank(*this), rb = rank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (ra == 0) return 0;  // both NULL
  if (ra == 1) {
    double a = AsDouble(), b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  int cmp = text().compare(other.text());
  return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
}

}  // namespace mcsm::relational
