#ifndef MCSM_RELATIONAL_VALUE_H_
#define MCSM_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace mcsm::relational {

/// Column data types supported by the engine.
enum class ColumnType {
  kText,
  kInteger,
  kReal,
};

const char* ColumnTypeToString(ColumnType type);

/// \brief A dynamically-typed SQL value: NULL, INTEGER, REAL or TEXT.
///
/// Values are small and freely copyable; TEXT payloads use std::string.
class Value {
 public:
  struct Null {
    bool operator==(const Null&) const = default;
  };

  Value() : repr_(Null{}) {}
  Value(int64_t v) : repr_(v) {}          // NOLINT(google-explicit-constructor)
  Value(double v) : repr_(v) {}           // NOLINT
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT
  Value(std::string_view v) : repr_(std::string(v)) {}  // NOLINT

  static Value MakeNull() { return Value(); }

  bool is_null() const { return std::holds_alternative<Null>(repr_); }
  bool is_integer() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_real() const { return std::holds_alternative<double>(repr_); }
  bool is_text() const { return std::holds_alternative<std::string>(repr_); }
  bool is_numeric() const { return is_integer() || is_real(); }

  int64_t integer() const { return std::get<int64_t>(repr_); }
  double real() const { return std::get<double>(repr_); }
  const std::string& text() const { return std::get<std::string>(repr_); }

  /// Numeric view: integer widened to double.
  double AsDouble() const { return is_integer() ? static_cast<double>(integer()) : real(); }

  /// Renders the value for display; NULL renders as "NULL".
  std::string ToDisplayString() const;

  /// SQL equality (NULL is not equal to anything, including NULL — callers
  /// needing three-valued logic must check is_null() first). Numeric types
  /// compare by value across INTEGER/REAL.
  bool SqlEquals(const Value& other) const;

  /// Total ordering for ORDER BY / DISTINCT: NULL < numerics < text.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return repr_ == other.repr_; }

 private:
  std::variant<Null, int64_t, double, std::string> repr_;
};

}  // namespace mcsm::relational

#endif  // MCSM_RELATIONAL_VALUE_H_
