#include "service/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "service/http.h"
#include "service/io_util.h"

namespace mcsm::service {

namespace {

/// RAII socket close.
struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Non-blocking connect with a poll()-based timeout, EINTR-safe. The socket
/// is left in blocking mode with SO_RCVTIMEO/SO_SNDTIMEO deadlines applied.
Status ConnectWithTimeout(int fd, const std::string& host, int port,
                          int connect_timeout_ms, int io_timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const char* ip = host == "localhost" ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, ip, &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("client: '%s' is not an IPv4 address", host.c_str()));
  }

  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      return Status::Internal(  // NOLINTNEXTLINE(concurrency-mt-unsafe)
          StrFormat("connect(%s:%d) failed: %s", host.c_str(), port,
                    std::strerror(errno)));
    }
    // Await writability, re-arming poll() with the remaining time after
    // EINTR so a signal cannot silently extend the deadline.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(connect_timeout_ms);
    for (;;) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0) {
        return Status::Internal(StrFormat("connect(%s:%d) timed out",
                                          host.c_str(), port));
      }
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      int rc = ::poll(&pfd, 1, static_cast<int>(remaining));
      if (rc < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(  // NOLINTNEXTLINE(concurrency-mt-unsafe)
            StrFormat("poll() during connect failed: %s",
                      std::strerror(errno)));
      }
      if (rc == 0) {
        return Status::Internal(StrFormat("connect(%s:%d) timed out",
                                          host.c_str(), port));
      }
      break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      return Status::Internal(
          StrFormat("connect(%s:%d) failed: %s", host.c_str(), port,
                    std::strerror(err != 0 ? err : errno)));  // NOLINT(concurrency-mt-unsafe)
    }
  }

  ::fcntl(fd, F_SETFL, flags);  // back to blocking for deadline-based I/O
  timeval tv{};
  tv.tv_sec = io_timeout_ms / 1000;
  tv.tv_usec = (io_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  return Status::OK();
}

std::string SerializeRequest(const ClientRequest& request) {
  std::string out = StrFormat("%s %s HTTP/1.1\r\n", request.method.c_str(),
                              request.path.c_str());
  out += StrFormat("Host: %s:%d\r\n", request.host.c_str(), request.port);
  if (!request.body.empty() || request.method == "POST" ||
      request.method == "PUT") {
    out += StrFormat("Content-Type: %s\r\n", request.content_type.c_str());
  }
  out += StrFormat("Content-Length: %zu\r\n", request.body.size());
  out += "Connection: close\r\n\r\n";
  out += request.body;
  return out;
}

/// splitmix64 step — the same generator common/rng.cc seeds with; inlined
/// here so a schedule is a tiny value type.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Best-effort Content-Length scan over a raw response head, mirroring the
/// server's PeekContentLength: used only to decide when to stop reading;
/// ParseHttpResponse re-validates strictly. Returns 0 when absent/malformed
/// (0 also means "EOF-framed" for Connection: close responses without a
/// body, which reads the same way).
size_t PeekContentLength(std::string_view head) {
  size_t cursor = 0;
  while (cursor < head.size()) {
    size_t eol = head.find("\r\n", cursor);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(cursor, eol - cursor);
    cursor = eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    if (ToLower(line.substr(0, colon)) != "content-length") continue;
    std::string_view value = Trim(line.substr(colon + 1));
    size_t length = 0;
    for (char c : value) {
      if (c < '0' || c > '9') return 0;
      if (length > (1u << 30)) return length;  // already past any sane limit
      length = length * 10 + static_cast<size_t>(c - '0');
    }
    return length;
  }
  return 0;
}

/// Parses a Retry-After header value (delta-seconds form only; HTTP-date is
/// ignored). Returns the delay in ms, or -1 when absent/malformed.
int ParseRetryAfterMs(std::string_view value) {
  if (value.empty() || value.size() > 6) return -1;
  int64_t seconds = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return -1;
    seconds = seconds * 10 + (c - '0');
  }
  return static_cast<int>(seconds * 1000);
}

}  // namespace

bool MethodIsIdempotent(std::string_view method) {
  return method == "GET" || method == "HEAD" || method == "DELETE" ||
         method == "PUT" || method == "OPTIONS";
}

std::string_view ClientResponse::Header(std::string_view lowered_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lowered_name) return value;
  }
  return {};
}

const char* SendOutcomeName(SendOutcome outcome) {
  switch (outcome) {
    case SendOutcome::kNotSent:
      return "not-sent";
    case SendOutcome::kMaybeSent:
      return "maybe-sent";
    case SendOutcome::kResponded:
      return "responded";
  }
  return "unknown";
}

Result<ClientResponse> ParseHttpResponse(std::string_view data,
                                         size_t head_end,
                                         size_t max_body_bytes) {
  if (head_end < 4 || head_end > data.size()) {
    return Status::ParseError("client: invalid response head boundary");
  }
  std::string_view head = data.substr(0, head_end - 2);  // keep final "\r\n"

  ClientResponse response;

  // Status line: HTTP/1.x SP status-code SP reason CRLF
  size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) {
    return Status::ParseError("client: missing status line terminator");
  }
  std::string_view line = head.substr(0, line_end);
  if (line.substr(0, 5) != "HTTP/") {
    return Status::ParseError("client: response does not start with HTTP/");
  }
  size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 + 4 > line.size()) {
    return Status::ParseError("client: malformed status line");
  }
  std::string_view code = line.substr(sp1 + 1, 3);
  int status = 0;
  for (char c : code) {
    if (c < '0' || c > '9') {
      return Status::ParseError("client: non-numeric status code");
    }
    status = status * 10 + (c - '0');
  }
  if (status < 100 || status > 599) {
    return Status::ParseError("client: status code out of range");
  }
  response.status = status;

  // Header fields (same grammar the server parser accepts).
  size_t cursor = line_end + 2;
  while (cursor < head.size()) {
    size_t eol = head.find("\r\n", cursor);
    if (eol == std::string_view::npos) {
      return Status::ParseError("client: header line missing CRLF");
    }
    std::string_view field = head.substr(cursor, eol - cursor);
    cursor = eol + 2;
    if (field.empty()) break;
    size_t colon = field.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::ParseError("client: malformed header field");
    }
    response.headers.emplace_back(
        ToLower(field.substr(0, colon)),
        std::string(Trim(field.substr(colon + 1))));
  }

  std::string_view length_header = response.Header("content-length");
  if (!length_header.empty()) {
    if (length_header.size() > 10) {
      return Status::ParseError("client: content-length too large");
    }
    size_t content_length = 0;
    for (char c : length_header) {
      if (c < '0' || c > '9') {
        return Status::ParseError("client: non-numeric content-length");
      }
      content_length = content_length * 10 + static_cast<size_t>(c - '0');
    }
    if (content_length > max_body_bytes) {
      return Status::ParseError("client: response body too large");
    }
    if (data.size() - head_end < content_length) {
      return Status::ParseError("client: truncated response body");
    }
    response.body = std::string(data.substr(head_end, content_length));
  } else {
    // Connection: close framing — everything after the head is the body.
    if (data.size() - head_end > max_body_bytes) {
      return Status::ParseError("client: response body too large");
    }
    response.body = std::string(data.substr(head_end));
  }
  return response;
}

HttpClient::HttpClient() : HttpClient(Options()) {}

HttpClient::HttpClient(Options options) : options_(options) {}

Result<ClientResponse> HttpClient::Do(const ClientRequest& request,
                                      SendOutcome* outcome) const {
  auto report = [outcome](SendOutcome o) {
    if (outcome != nullptr) *outcome = o;
  };
  report(SendOutcome::kNotSent);

  // Chaos: a dropped or slow link before any byte moves.
  MCSM_FAILPOINT(failpoint::kClientConnect);

  FdCloser sock{::socket(AF_INET, SOCK_STREAM, 0)};
  if (sock.fd < 0) {
    return Status::Internal(  // NOLINTNEXTLINE(concurrency-mt-unsafe)
        StrFormat("socket() failed: %s", std::strerror(errno)));
  }
  MCSM_RETURN_IF_ERROR(ConnectWithTimeout(sock.fd, request.host,
                                          request.port,
                                          options_.connect_timeout_ms,
                                          options_.io_timeout_ms));

  const std::string wire = SerializeRequest(request);
  size_t sent = 0;
  Status send_status = SendAll(sock.fd, wire.data(), wire.size(), &sent);
  if (!send_status.ok()) {
    // Nothing out yet -> the server cannot have seen the request. Any byte
    // out -> it may have: the head alone can be enough for the server to
    // act on (our own server rejects a request only after the full body,
    // but the classification must not depend on the peer's parser).
    report(sent == 0 ? SendOutcome::kNotSent : SendOutcome::kMaybeSent);
    return send_status;
  }
  report(SendOutcome::kMaybeSent);

  std::string buffer;
  size_t head_end = 0;
  size_t need = 0;
  char chunk[4096];
  for (;;) {
    // Chaos: a stalled or cut link while awaiting the response.
    if (Status st = failpoint::Trigger(failpoint::kClientRead); !st.ok()) {
      return Status::Internal(StrFormat(
          "read from %s:%d failed: %s", request.host.c_str(), request.port,
          std::string(st.message()).c_str()));
    }
    ssize_t n = RecvSome(sock.fd, chunk, sizeof(chunk));
    if (n < 0) {
      return Status::Internal(  // NOLINTNEXTLINE(concurrency-mt-unsafe)
          StrFormat("read from %s:%d failed: %s", request.host.c_str(),
                    request.port, std::strerror(errno)));
    }
    if (n == 0) {
      if (head_end != 0 && need == 0) break;  // EOF-delimited body complete
      return Status::Internal(StrFormat(
          "connection to %s:%d closed before a complete response",
          request.host.c_str(), request.port));
    }
    if (buffer.size() + static_cast<size_t>(n) >
        options_.max_response_bytes + (16 * 1024)) {
      return Status::Internal("response exceeds max_response_bytes");
    }
    buffer.append(chunk, static_cast<size_t>(n));
    if (head_end == 0) {
      head_end = FindHeadEnd(buffer);
      if (head_end == 0) continue;
      // Decide framing: with Content-Length we can stop exactly; without,
      // read to EOF (need stays 0). Strict validation happens in
      // ParseHttpResponse once everything arrived.
      size_t content_length =
          PeekContentLength(std::string_view(buffer).substr(0, head_end));
      if (content_length > 0) need = head_end + content_length;
    }
    if (head_end != 0 && need != 0 && buffer.size() >= need) break;
  }

  auto parsed =
      ParseHttpResponse(buffer, head_end, options_.max_response_bytes);
  if (!parsed.ok()) return parsed.status();
  report(SendOutcome::kResponded);
  return parsed;
}

BackoffSchedule::BackoffSchedule(const RetryPolicy& policy)
    : policy_(policy), state_(policy.jitter_seed) {}

int BackoffSchedule::DelayMs(size_t attempt) {
  if (attempt == 0) return 0;
  int64_t delay = policy_.base_backoff_ms;
  for (size_t i = 1; i < attempt && delay < policy_.max_backoff_ms; ++i) {
    delay *= 2;
  }
  delay = std::min<int64_t>(delay, policy_.max_backoff_ms);
  if (delay <= 1) return static_cast<int>(std::max<int64_t>(delay, 0));
  // Deterministic jitter in [delay/2, delay]: enough spread to de-sync
  // peers, never less than half the nominal wait.
  const int64_t half = delay / 2;
  const uint64_t draw = SplitMix64(&state_) % static_cast<uint64_t>(half + 1);
  return static_cast<int>(half + static_cast<int64_t>(draw));
}

RetryingClient::RetryingClient(HttpClient::Options client_options,
                               RetryPolicy policy, Sleeper sleeper)
    : client_(client_options),
      policy_(policy),
      sleeper_(std::move(sleeper)) {}

Result<ClientResponse> RetryingClient::Do(const ClientRequest& request,
                                          RetryStats* stats) const {
  const bool idempotent =
      request.idempotent || MethodIsIdempotent(request.method);
  BackoffSchedule schedule(policy_);
  const size_t max_attempts = std::max<size_t>(policy_.max_attempts, 1);
  Result<ClientResponse> last = Status::Internal("retry loop never ran");

  auto sleep_ms = [this, stats](int delay) {
    if (delay <= 0) return;
    if (stats != nullptr) stats->delays_ms.push_back(delay);
    if (sleeper_ != nullptr) {
      sleeper_(delay);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  };

  for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    SendOutcome outcome = SendOutcome::kNotSent;
    last = client_.Do(request, &outcome);
    if (stats != nullptr) {
      stats->attempts = attempt;
      stats->last_outcome = outcome;
    }

    int retry_after_ms = -1;
    bool retryable = false;
    if (!last.ok()) {
      // Transport failure: retry is safe iff the request cannot have been
      // acted on, or acting on it twice is harmless.
      retryable = outcome == SendOutcome::kNotSent ||
                  (outcome == SendOutcome::kMaybeSent && idempotent);
    } else {
      const ClientResponse& response = last.value();
      if (response.status == 429 || response.status == 503) {
        // The server explicitly refused before accepting the request
        // (backpressure / draining) — safe to retry any method.
        retryable = true;
        retry_after_ms = ParseRetryAfterMs(response.Header("retry-after"));
      } else if (response.status >= 500) {
        // The handler may have executed before failing.
        retryable = idempotent;
      } else {
        return last;  // success or a definitive 4xx
      }
    }

    if (!retryable || attempt == max_attempts) return last;
    int delay = schedule.DelayMs(attempt);
    if (retry_after_ms >= 0) {
      // Honor the server's hint, bounded by the policy cap; never retry
      // sooner than the server asked.
      delay = std::min(std::max(delay, retry_after_ms),
                       policy_.max_retry_after_ms);
    }
    sleep_ms(delay);
  }
  return last;
}

}  // namespace mcsm::service
