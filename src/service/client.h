#ifndef MCSM_SERVICE_CLIENT_H_
#define MCSM_SERVICE_CLIENT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace mcsm::service {

/// \file
/// \brief Blocking HTTP/1.1 client for replica-to-replica and router traffic
/// (the counterpart of service/http.h's server). Dependency-free like the
/// rest of the service: raw sockets, connect timeout via non-blocking
/// connect + poll, read/write deadlines via SO_RCVTIMEO/SO_SNDTIMEO, all
/// I/O EINTR-safe through service/io_util.h.
///
/// Failure classification is the load-bearing part: a retry layer must never
/// replay a non-idempotent request that the server may already have
/// accepted. Do() therefore reports a SendOutcome alongside any error:
///   kNotSent    nothing reached the server (connect failed, or the failure
///               happened before the first request byte went out) — always
///               safe to retry;
///   kMaybeSent  request bytes left this host but no response arrived — only
///               idempotent requests may retry;
///   kResponded  a complete response was parsed — "retry" decisions move to
///               the status code (429/503 mean the request was refused
///               before acceptance and are safe for any method).

/// One outgoing request. `idempotent` widens the retry policy beyond the
/// method heuristic (MethodIsIdempotent below): table registration is a
/// POST, but re-registering identical content is a fingerprint-keyed no-op
/// on the server, so the router marks it idempotent explicitly.
struct ClientRequest {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string method = "GET";
  std::string path = "/";
  std::string body;
  std::string content_type = "application/json";
  bool idempotent = false;
};

/// GET/HEAD/DELETE/PUT/OPTIONS are idempotent by RFC 9110 semantics (and by
/// this service's actual behaviour: DELETE /v1/jobs/{id} cancels at most
/// once).
bool MethodIsIdempotent(std::string_view method);

struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  ///< names lowered
  std::string body;

  /// Case-insensitive lookup (argument must be lowercase); empty when absent.
  std::string_view Header(std::string_view lowered_name) const;
};

enum class SendOutcome : uint8_t { kNotSent, kMaybeSent, kResponded };

const char* SendOutcomeName(SendOutcome outcome);

/// Parses a complete serialized response (status line + headers + body).
/// `head_end` is FindHeadEnd's result over `data`. With a Content-Length the
/// body must be complete; without one the remainder of `data` is the body
/// (Connection: close framing). Exposed for tests.
Result<ClientResponse> ParseHttpResponse(std::string_view data,
                                         size_t head_end,
                                         size_t max_body_bytes);

/// \brief One-request-per-connection HTTP/1.1 client. Stateless and
/// thread-safe: Do() opens a socket, sends, reads to completion, closes.
class HttpClient {
 public:
  struct Options {
    int connect_timeout_ms = 1000;
    int io_timeout_ms = 5000;          ///< per-socket read/write deadline
    size_t max_response_bytes = 16 * 1024 * 1024;
  };

  HttpClient();  ///< default Options
  explicit HttpClient(Options options);

  /// Executes the request. On error, `*outcome` (when non-null) reports how
  /// far the request got — the retry layer's safety input. Failpoints:
  /// `client.connect` fires before the connect (error = connection dropped,
  /// delay = slow link); `client.read` fires before every receive.
  Result<ClientResponse> Do(const ClientRequest& request,
                            SendOutcome* outcome = nullptr) const;

 private:
  Options options_;
};

/// \brief Capped exponential backoff with deterministic jitter.
///
/// The full delay sequence is a pure function of the policy (seed included):
/// attempt k waits jitter(min(cap, base·2^(k-1))) where jitter draws
/// uniformly from [d/2, d] using the seeded Rng — so tests can assert the
/// exact schedule and two routers with different seeds do not thundering-herd
/// a recovering replica in lockstep.
struct RetryPolicy {
  size_t max_attempts = 4;       ///< total tries, including the first
  int base_backoff_ms = 50;
  int max_backoff_ms = 2000;
  uint64_t jitter_seed = 0;
  /// Cap on an honored Retry-After header (seconds are converted to ms and
  /// clamped here so a hostile/buggy server cannot park the client).
  int max_retry_after_ms = 10000;
};

/// Deterministic delay sequence for one request's retries. DelayMs(k) is the
/// wait before attempt k+1 (k >= 1); calls must be made in order since the
/// jitter stream advances.
class BackoffSchedule {
 public:
  explicit BackoffSchedule(const RetryPolicy& policy);
  int DelayMs(size_t attempt);

 private:
  RetryPolicy policy_;
  uint64_t state_;  ///< splitmix64 jitter stream
};

/// Telemetry for one retried call (tests assert on it; the router feeds its
/// counters from it).
struct RetryStats {
  size_t attempts = 0;
  std::vector<int> delays_ms;    ///< waits actually taken, in order
  SendOutcome last_outcome = SendOutcome::kNotSent;
};

/// \brief HttpClient + RetryPolicy: retries connect failures always, I/O
/// failures and 5xx only for idempotent requests, and 429/503 for any method
/// (the server refused before accepting), honoring Retry-After when present.
/// Each Do() builds a fresh BackoffSchedule from the policy, so a given
/// (policy, failure pattern) pair always produces the same schedule.
class RetryingClient {
 public:
  /// `sleeper` is injectable so tests run without real waits.
  using Sleeper = std::function<void(int delay_ms)>;

  RetryingClient(HttpClient::Options client_options, RetryPolicy policy,
                 Sleeper sleeper = nullptr);

  Result<ClientResponse> Do(const ClientRequest& request,
                            RetryStats* stats = nullptr) const;

 private:
  HttpClient client_;
  RetryPolicy policy_;
  Sleeper sleeper_;
};

}  // namespace mcsm::service

#endif  // MCSM_SERVICE_CLIENT_H_
