#include "service/cluster.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/deadline.h"
#include "common/string_util.h"
#include "service/json.h"
#include "service/registry.h"

namespace mcsm::service {

namespace {

constexpr int kSchemaVersion = 1;

HttpResponse JsonResponse(int status, Json body) {
  if (body.is_object()) {
    body.Set("schema_version",
             Json::Number(static_cast<double>(kSchemaVersion)));
  }
  HttpResponse response;
  response.status = status;
  response.body = body.Dump();
  return response;
}

HttpResponse ErrorResponse(int status, std::string_view message) {
  Json out = Json::Object();
  out.Set("error", Json::Str(std::string(message)));
  return JsonResponse(status, std::move(out));
}

/// Strips the "/v1" API prefix (same normalization DiscoveryService applies).
std::string_view NormalizePath(std::string_view path, bool* versioned) {
  constexpr std::string_view kPrefix = "/v1/";
  if (path.size() >= kPrefix.size() &&
      path.substr(0, kPrefix.size()) == kPrefix) {
    if (versioned != nullptr) *versioned = true;
    return path.substr(3);  // keep the leading '/'
  }
  if (versioned != nullptr) *versioned = false;
  return path;
}

bool ParseJobId(std::string_view tail, uint64_t* id) {
  if (tail.empty() || tail.size() > 18) return false;
  uint64_t value = 0;
  for (char c : tail) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *id = value;
  return true;
}

/// Extracts "state" from a job-snapshot JSON body; empty when unparseable.
std::string SnapshotState(const std::string& body) {
  auto parsed = Json::Parse(body);
  if (!parsed.ok() || !parsed.value().is_object()) return {};
  const Json* state = parsed.value().Find("state");
  if (state == nullptr) return {};
  return state->AsString("");
}

bool IsTerminalState(std::string_view state) {
  return state == "done" || state == "failed" || state == "cancelled";
}

}  // namespace

// ---------------------------------------------------------------- Member --

std::string Member::Key() const { return StrFormat("%s:%d", host.c_str(), port); }

Result<std::vector<Member>> ParseMemberList(std::string_view spec) {
  std::vector<Member> members;
  for (const std::string& entry : Split(spec, ',')) {
    std::string_view item = Trim(entry);
    if (item.empty()) continue;
    size_t colon = item.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 >= item.size()) {
      return Status::InvalidArgument(StrFormat(
          "member '%s' is not host:port", std::string(item).c_str()));
    }
    Member member;
    member.host = std::string(item.substr(0, colon));
    std::string_view digits = item.substr(colon + 1);
    int port = 0;
    for (char c : digits) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument(StrFormat(
            "member '%s' has a non-numeric port", std::string(item).c_str()));
      }
      port = port * 10 + (c - '0');
      if (port > 65535) {
        return Status::InvalidArgument(StrFormat(
            "member '%s' port out of range", std::string(item).c_str()));
      }
    }
    member.port = port;
    for (const Member& existing : members) {
      if (existing == member) {
        return Status::InvalidArgument(StrFormat(
            "member '%s' listed twice", member.Key().c_str()));
      }
    }
    members.push_back(std::move(member));
  }
  if (members.empty()) {
    return Status::InvalidArgument("member list is empty");
  }
  return members;
}

const char* MemberStateName(MemberState state) {
  switch (state) {
    case MemberState::kUnknown:
      return "unknown";
    case MemberState::kUp:
      return "up";
    case MemberState::kDraining:
      return "draining";
    case MemberState::kDown:
      return "down";
  }
  return "invalid";
}

// --------------------------------------------------------------- HashRing --

HashRing::HashRing(std::vector<Member> members, size_t vnodes)
    : members_(std::move(members)) {
  points_.reserve(members_.size() * vnodes);
  for (size_t m = 0; m < members_.size(); ++m) {
    const std::string base = members_[m].Key();
    for (size_t v = 0; v < vnodes; ++v) {
      const std::string label = StrFormat("%s#%zu", base.c_str(), v);
      points_.push_back(Point{FingerprintBytes(label), m});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              // Hash ties broken by member index so the ring order is a
              // pure function of the member list.
              return a.hash != b.hash ? a.hash < b.hash
                                      : a.member < b.member;
            });
}

size_t HashRing::OwnerIndex(uint64_t key) const {
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const Point& p, uint64_t k) { return p.hash < k; });
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->member;
}

std::vector<size_t> HashRing::Succession(uint64_t key) const {
  std::vector<size_t> order;
  order.reserve(members_.size());
  std::vector<bool> seen(members_.size(), false);
  size_t start = std::lower_bound(points_.begin(), points_.end(), key,
                                  [](const Point& p, uint64_t k) {
                                    return p.hash < k;
                                  }) -
                 points_.begin();
  for (size_t i = 0; i < points_.size() && order.size() < members_.size();
       ++i) {
    const Point& point = points_[(start + i) % points_.size()];
    if (seen[point.member]) continue;
    seen[point.member] = true;
    order.push_back(point.member);
  }
  return order;
}

// ---------------------------------------------------------- HealthChecker --

HealthChecker::HealthChecker(std::vector<Member> members, Options options)
    : members_(std::move(members)), options_(options), client_([&] {
        HttpClient::Options client_options;
        client_options.connect_timeout_ms = options.timeout_ms;
        client_options.io_timeout_ms = options.timeout_ms;
        return client_options;
      }()) {
  MutexLock lock(mu_);
  states_.assign(members_.size(), MemberState::kUnknown);
  fail_streak_.assign(members_.size(), 0);
}

HealthChecker::~HealthChecker() { Stop(); }

void HealthChecker::Start() {
  if (thread_.joinable()) return;
  thread_ = std::thread([this] {
    for (;;) {
      ProbeOnce();
      MutexLock lock(mu_);
      if (stopping_) return;
      // Explicit re-check loop: wait_for can wake spuriously, and the
      // analysis cannot see a predicate lambda's lock state.
      stop_cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms));
      if (stopping_) return;
    }
  });
}

void HealthChecker::Stop() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void HealthChecker::ProbeOnce() {
  for (size_t m = 0; m < members_.size(); ++m) {
    ClientRequest request;
    request.host = members_[m].host;
    request.port = members_[m].port;
    request.method = "GET";
    request.path = "/v1/healthz";
    auto result = client_.Do(request);
    // ordering: relaxed — monotonic metrics counter.
    probes_.fetch_add(1, std::memory_order_relaxed);

    MemberState verdict = MemberState::kDown;
    bool failure = true;
    if (result.ok()) {
      const ClientResponse& response = result.value();
      if (response.status == 200 &&
          response.body.find("\"ok\"") != std::string::npos) {
        verdict = MemberState::kUp;
        failure = false;
      } else if (response.status == 503 &&
                 response.body.find("draining") != std::string::npos) {
        verdict = MemberState::kDraining;
        failure = false;
      }
    }

    MutexLock lock(mu_);
    if (!failure) {
      fail_streak_[m] = 0;
      states_[m] = verdict;
      continue;
    }
    ++fail_streak_[m];
    if (fail_streak_[m] >= options_.down_after) {
      states_[m] = MemberState::kDown;
    } else if (states_[m] == MemberState::kUnknown) {
      // Never seen healthy and already failing: don't route to it.
      states_[m] = MemberState::kDown;
    }
    // A member with a healthy history keeps its last state until the
    // streak confirms the outage (one dropped probe must not flap it).
  }
}

MemberState HealthChecker::state(size_t member_index) const {
  MutexLock lock(mu_);
  if (member_index >= states_.size()) return MemberState::kDown;
  return states_[member_index];
}

std::vector<MemberState> HealthChecker::States() const {
  MutexLock lock(mu_);
  return states_;
}

// ---------------------------------------------------------- ClusterRouter --

ClusterRouter::ClusterRouter(std::vector<Member> members,
                             const HealthChecker* health, Options options)
    : members_(members),
      health_(health),
      options_(options),
      ring_(std::move(members), options.vnodes),
      rpc_(options.client, options.retry) {}

HttpResponse ClusterRouter::Handle(const HttpRequest& request) {
  WallTimer timer;
  bool versioned = false;
  const std::string_view path = NormalizePath(request.path, &versioned);
  HttpResponse response = Route(request, path);
  if (!versioned) {
    response.headers.emplace_back("Deprecation", "true");
  }
  forward_latency_.Record(static_cast<uint64_t>(timer.Seconds() * 1000.0));
  // ordering: relaxed — monotonic metrics counter.
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

HttpResponse ClusterRouter::Route(const HttpRequest& request,
                                  std::string_view path) {
  if (path == "/healthz") {
    if (request.method != "GET") {
      return ErrorResponse(405, "method not allowed");
    }
    Json out = Json::Object();
    out.Set("status", Json::Str("ok"));
    out.Set("role", Json::Str("router"));
    return JsonResponse(200, std::move(out));
  }
  if (path == "/metrics") {
    if (request.method != "GET") {
      return ErrorResponse(405, "method not allowed");
    }
    HttpResponse response;
    response.content_type = "text/plain";
    response.body = RenderMetrics();
    return response;
  }
  if (path == "/tables") {
    if (request.method == "POST") return HandlePostTables(request);
    if (request.method == "GET") return HandleGetTables();
    return ErrorResponse(405, "method not allowed");
  }
  if (path == "/jobs") {
    if (request.method == "POST") return HandlePostJobs(request);
    if (request.method == "GET") return HandleGetJobs();
    return ErrorResponse(405, "method not allowed");
  }
  if (path.rfind("/jobs/", 0) == 0) {
    uint64_t id = 0;
    if (!ParseJobId(path.substr(6), &id)) {
      return ErrorResponse(400, "malformed job id");
    }
    return HandleJobById(request, id);
  }
  return ErrorResponse(404, "no such endpoint");
}

std::vector<size_t> ClusterRouter::EligibleSuccession(uint64_t ring_key,
                                                      size_t exclude) const {
  std::vector<size_t> eligible;
  for (size_t m : ring_.Succession(ring_key)) {
    if (m == exclude) continue;
    const MemberState state = health_->state(m);
    if (state == MemberState::kUp || state == MemberState::kUnknown) {
      eligible.push_back(m);
    }
  }
  return eligible;
}

Status ClusterRouter::EnsureTableOn(size_t m, const std::string& name) {
  CatalogEntry entry;
  {
    MutexLock lock(mu_);
    auto it = catalog_.find(name);
    if (it == catalog_.end()) {
      return Status::NotFound(StrFormat(
          "table '%s' is not in the router catalog", name.c_str()));
    }
    entry = it->second;
    const std::string memo =
        StrFormat("%zu#%016llx", m,
                  static_cast<unsigned long long>(entry.fingerprint));
    if (pushed_.count(memo) > 0) return Status::OK();
  }

  Json body = Json::Object();
  body.Set("name", Json::Str(name));
  body.Set("csv", Json::Str(entry.csv));
  if (entry.permissive) body.Set("permissive", Json::Bool(true));

  ClientRequest request;
  request.host = members_[m].host;
  request.port = members_[m].port;
  request.method = "POST";
  request.path = "/v1/tables";
  request.body = body.Dump();
  // Re-registering identical content is a fingerprint-keyed no-op on the
  // replica, so this POST is idempotent and retries are safe.
  request.idempotent = true;
  auto result = rpc_.Do(request);
  if (!result.ok()) return result.status();
  if (result.value().status != 200) {
    return Status::Internal(StrFormat(
        "replica %s refused table '%s': HTTP %d %s",
        members_[m].Key().c_str(), name.c_str(), result.value().status,
        result.value().body.c_str()));
  }
  // ordering: relaxed — monotonic metrics counter.
  tables_pushed_total_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(mu_);
  pushed_.insert(
      StrFormat("%zu#%016llx", m,
                static_cast<unsigned long long>(entry.fingerprint)));
  return Status::OK();
}

HttpResponse ClusterRouter::HandlePostTables(const HttpRequest& request) {
  auto parsed = Json::Parse(request.body);
  if (!parsed.ok()) {
    return ErrorResponse(400, parsed.status().message());
  }
  const Json& body = parsed.value();
  if (!body.is_object()) {
    return ErrorResponse(400, "request body must be a JSON object");
  }
  const Json* name = body.Find("name");
  const Json* csv = body.Find("csv");
  if (name == nullptr || !name->is_string() || csv == nullptr ||
      !csv->is_string()) {
    return ErrorResponse(400, "'name' and 'csv' string fields are required");
  }
  const std::string table_name = name->AsString("");
  CatalogEntry entry;
  entry.csv = csv->AsString("");
  entry.fingerprint = FingerprintBytes(entry.csv);
  if (const Json* permissive = body.Find("permissive")) {
    entry.permissive = permissive->AsBool(false);
  }
  {
    MutexLock lock(mu_);
    catalog_[table_name] = entry;
  }

  // Register on the ring owner now so the common case (jobs follow their
  // tables) pays no push latency at job time. Failover replicas get the
  // table lazily from the catalog.
  const std::vector<size_t> eligible =
      EligibleSuccession(entry.fingerprint, members_.size());
  if (eligible.empty()) {
    return ErrorResponse(503, "no healthy replica to own the table");
  }
  Status pushed = EnsureTableOn(eligible.front(), table_name);
  if (!pushed.ok()) {
    return ErrorResponse(502, pushed.message());
  }
  // ordering: relaxed — monotonic metrics counter.
  forwarded_total_.fetch_add(1, std::memory_order_relaxed);

  Json out = Json::Object();
  out.Set("name", Json::Str(table_name));
  out.Set("fingerprint",
          Json::Str(StrFormat("%016llx", static_cast<unsigned long long>(
                                             entry.fingerprint))));
  out.Set("owner", Json::Str(members_[eligible.front()].Key()));
  return JsonResponse(200, std::move(out));
}

HttpResponse ClusterRouter::HandleGetTables() {
  Json list = Json::Array();
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(catalog_.size());
  for (const auto& [name, entry] : catalog_) names.push_back(name);
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const CatalogEntry& entry = catalog_[name];
    Json item = Json::Object();
    item.Set("name", Json::Str(name));
    item.Set("fingerprint",
             Json::Str(StrFormat("%016llx", static_cast<unsigned long long>(
                                                entry.fingerprint))));
    list.Append(std::move(item));
  }
  Json out = Json::Object();
  out.Set("tables", std::move(list));
  return JsonResponse(200, std::move(out));
}

Result<ClientResponse> ClusterRouter::SubmitJobOn(size_t m,
                                                  uint64_t router_id) {
  std::string body;
  std::string source_table;
  std::string target_table;
  {
    MutexLock lock(mu_);
    auto it = jobs_.find(router_id);
    if (it == jobs_.end()) {
      return Status::NotFound("routed job vanished");
    }
    body = it->second.body;
    source_table = it->second.source_table;
    target_table = it->second.target_table;
  }
  MCSM_RETURN_IF_ERROR(EnsureTableOn(m, source_table));
  MCSM_RETURN_IF_ERROR(EnsureTableOn(m, target_table));

  ClientRequest request;
  request.host = members_[m].host;
  request.port = members_[m].port;
  request.method = "POST";
  request.path = "/v1/jobs";
  request.body = body;
  auto result = rpc_.Do(request);
  if (!result.ok()) return result;
  if (result.value().status == 202) {
    auto parsed = Json::Parse(result.value().body);
    uint64_t remote_id = 0;
    if (parsed.ok() && parsed.value().is_object()) {
      if (const Json* id = parsed.value().Find("id")) {
        remote_id = static_cast<uint64_t>(id->AsNumber(0));
      }
    }
    if (remote_id == 0) {
      return Status::Internal(StrFormat(
          "replica %s 202 without a job id: %s",
          members_[m].Key().c_str(), result.value().body.c_str()));
    }
    MutexLock lock(mu_);
    auto it = jobs_.find(router_id);
    if (it != jobs_.end()) {
      it->second.assignee = m;
      it->second.remote_id = remote_id;
    }
  }
  return result;
}

HttpResponse ClusterRouter::HandlePostJobs(const HttpRequest& request) {
  auto parsed = Json::Parse(request.body);
  if (!parsed.ok()) {
    return ErrorResponse(400, parsed.status().message());
  }
  const Json& body = parsed.value();
  if (!body.is_object()) {
    return ErrorResponse(400, "request body must be a JSON object");
  }
  const Json* source = body.Find("source_table");
  const Json* target = body.Find("target_table");
  if (source == nullptr || !source->is_string() || target == nullptr ||
      !target->is_string()) {
    return ErrorResponse(
        400, "'source_table' and 'target_table' are required");
  }
  const std::string source_name = source->AsString("");
  const std::string target_name = target->AsString("");

  uint64_t ring_key = 0;
  uint64_t router_id = 0;
  {
    MutexLock lock(mu_);
    auto source_it = catalog_.find(source_name);
    auto target_it = catalog_.find(target_name);
    if (source_it == catalog_.end() || target_it == catalog_.end()) {
      return ErrorResponse(
          404, StrFormat("table '%s' is not in the router catalog",
                         (source_it == catalog_.end() ? source_name
                                                      : target_name)
                             .c_str()));
    }
    ring_key = target_it->second.fingerprint;
    router_id = next_id_++;
    RoutedJob job;
    job.router_id = router_id;
    job.body = request.body;
    job.source_table = source_name;
    job.target_table = target_name;
    job.ring_key = ring_key;
    job.assignee = members_.size();  // unassigned
    jobs_.emplace(router_id, std::move(job));
  }

  const std::vector<size_t> eligible =
      EligibleSuccession(ring_key, members_.size());
  HttpResponse last_refusal =
      ErrorResponse(503, "no healthy replica for this job");
  for (size_t m : eligible) {
    auto result = SubmitJobOn(m, router_id);
    if (!result.ok()) {
      // Transport-level failure: the next ring member gets the job.
      // ordering: relaxed — monotonic metrics counter.
      failovers_total_.fetch_add(1, std::memory_order_relaxed);
      last_refusal = ErrorResponse(
          502, StrFormat("replica %s unreachable: %s",
                         members_[m].Key().c_str(),
                         std::string(result.status().message()).c_str()));
      continue;
    }
    const ClientResponse& response = result.value();
    if (response.status == 202) {
      // ordering: relaxed — monotonic metrics counter.
      forwarded_total_.fetch_add(1, std::memory_order_relaxed);
      Json out = Json::Object();
      out.Set("id", Json::Number(static_cast<double>(router_id)));
      out.Set("state", Json::Str("queued"));
      out.Set("member", Json::Str(members_[m].Key()));
      return JsonResponse(202, std::move(out));
    }
    // An HTTP-level refusal (429 backpressure, 400 bad options, ...) is the
    // replica's definitive answer — surface it, headers included, so the
    // client sees Retry-After. No spilling 429s to other members: the ring
    // placement is what keeps index caches warm.
    HttpResponse out;
    out.status = response.status;
    out.body = response.body;
    for (const auto& [name, value] : response.headers) {
      if (name == "retry-after") out.headers.emplace_back("Retry-After", value);
    }
    {
      MutexLock lock(mu_);
      jobs_.erase(router_id);  // never admitted anywhere
    }
    return out;
  }
  MutexLock lock(mu_);
  jobs_.erase(router_id);
  return last_refusal;
}

HttpResponse ClusterRouter::HandleGetJobs() {
  Json list = Json::Array();
  MutexLock lock(mu_);
  std::vector<uint64_t> ids;
  ids.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (uint64_t id : ids) {
    const RoutedJob& job = jobs_[id];
    Json item = Json::Object();
    item.Set("id", Json::Number(static_cast<double>(id)));
    if (job.assignee < members_.size()) {
      item.Set("member", Json::Str(members_[job.assignee].Key()));
      item.Set("remote_id", Json::Number(static_cast<double>(job.remote_id)));
    }
    item.Set("terminal", Json::Bool(job.terminal));
    list.Append(std::move(item));
  }
  Json out = Json::Object();
  out.Set("jobs", std::move(list));
  return JsonResponse(200, std::move(out));
}

std::string ClusterRouter::RewriteSnapshotId(const std::string& body,
                                             uint64_t router_id) const {
  auto parsed = Json::Parse(body);
  if (!parsed.ok() || !parsed.value().is_object()) return body;
  Json object = std::move(parsed).value();
  object.Set("id", Json::Number(static_cast<double>(router_id)));
  return object.Dump();
}

HttpResponse ClusterRouter::HandleJobById(const HttpRequest& request,
                                          uint64_t id) {
  if (request.method != "GET" && request.method != "DELETE") {
    return ErrorResponse(405, "method not allowed");
  }

  size_t assignee = 0;
  uint64_t remote_id = 0;
  uint64_t ring_key = 0;
  {
    MutexLock lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return ErrorResponse(404, "no such job");
    }
    RoutedJob& job = it->second;
    if (job.terminal && request.method == "GET") {
      // Finished jobs are served from the router cache: they survive their
      // replica (and a DELETE on a terminal job is a no-op either way).
      HttpResponse response;
      response.body = job.last_snapshot;
      return response;
    }
    if (job.assignee >= members_.size()) {
      return ErrorResponse(503, "job was never assigned to a replica");
    }
    assignee = job.assignee;
    remote_id = job.remote_id;
    ring_key = job.ring_key;
  }

  ClientRequest forward;
  forward.host = members_[assignee].host;
  forward.port = members_[assignee].port;
  forward.method = request.method;
  forward.path = StrFormat("/v1/jobs/%llu",
                           static_cast<unsigned long long>(remote_id));
  auto result = rpc_.Do(forward);

  if (result.ok() && result.value().status == 200) {
    HttpResponse response;
    response.body = RewriteSnapshotId(result.value().body, id);
    if (request.method == "GET") {
      const std::string state = SnapshotState(result.value().body);
      MutexLock lock(mu_);
      auto it = jobs_.find(id);
      if (it != jobs_.end()) {
        it->second.last_snapshot = response.body;
        if (IsTerminalState(state)) it->second.terminal = true;
      }
    }
    return response;
  }
  if (request.method == "DELETE") {
    // Cancellation of an unreachable replica's job: the replay (if any)
    // will be a fresh submission; report the transport failure honestly.
    if (!result.ok()) {
      return ErrorResponse(502, result.status().message());
    }
    HttpResponse response;
    response.status = result.value().status;
    response.body = result.value().body;
    return response;
  }

  // GET and the assignee answered with an error (or is gone): fail over.
  // The job is replayed from the router's catalog + original body on the
  // next healthy ring member — the determinism contract makes the replay's
  // result byte-identical to what the dead owner would have produced.
  // ordering: relaxed — monotonic metrics counter.
  failovers_total_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return ErrorResponse(404, "no such job");
    if (it->second.failing_over) {
      // One replayer at a time; concurrent pollers see the last snapshot
      // (or a synthetic "running") instead of double-submitting.
      if (!it->second.last_snapshot.empty()) {
        HttpResponse response;
        response.body = it->second.last_snapshot;
        return response;
      }
      Json out = Json::Object();
      out.Set("id", Json::Number(static_cast<double>(id)));
      out.Set("state", Json::Str("queued"));
      out.Set("detail", Json::Str("failover in progress"));
      return JsonResponse(200, std::move(out));
    }
    it->second.failing_over = true;
  }

  HttpResponse outcome = ErrorResponse(503, "no healthy replica for replay");
  for (size_t m : EligibleSuccession(ring_key, assignee)) {
    auto replay = SubmitJobOn(m, id);
    if (!replay.ok() || replay.value().status != 202) continue;
    // ordering: relaxed — monotonic metrics counter.
    replays_total_.fetch_add(1, std::memory_order_relaxed);
    Json out = Json::Object();
    out.Set("id", Json::Number(static_cast<double>(id)));
    out.Set("state", Json::Str("queued"));
    out.Set("member", Json::Str(members_[m].Key()));
    out.Set("replayed", Json::Bool(true));
    outcome = JsonResponse(200, std::move(out));
    break;
  }
  MutexLock lock(mu_);
  auto it = jobs_.find(id);
  if (it != jobs_.end()) it->second.failing_over = false;
  return outcome;
}

std::string ClusterRouter::RenderMetrics() const {
  std::string out;
  auto counter = [&out](const char* name,
                        const std::atomic<uint64_t>& value) {
    // ordering: relaxed — scrape-time read of a monotonic counter.
    out += StrFormat(
        "%s %llu\n", name,
        static_cast<unsigned long long>(
            value.load(std::memory_order_relaxed)));
  };
  counter("mcsm_router_requests_total", requests_total_);
  counter("mcsm_router_forwarded_total", forwarded_total_);
  counter("mcsm_router_failovers_total", failovers_total_);
  counter("mcsm_router_replays_total", replays_total_);
  counter("mcsm_router_tables_pushed_total", tables_pushed_total_);
  out += StrFormat("mcsm_router_health_probes_total %llu\n",
                   static_cast<unsigned long long>(health_->probes()));
  const std::vector<MemberState> states = health_->States();
  for (size_t m = 0; m < members_.size() && m < states.size(); ++m) {
    out += StrFormat("mcsm_cluster_member_state{member=\"%s\",state=\"%s\"} %d\n",
                     members_[m].Key().c_str(),
                     MemberStateName(states[m]),
                     static_cast<int>(states[m]));
  }
  forward_latency_.Render("mcsm_router_forward", &out);
  return out;
}

}  // namespace mcsm::service
