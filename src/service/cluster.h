#ifndef MCSM_SERVICE_CLUSTER_H_
#define MCSM_SERVICE_CLUSTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/annotations.h"
#include "common/result.h"
#include "service/client.h"
#include "service/http.h"
#include "service/metrics.h"

namespace mcsm::service {

/// \file
/// \brief Cluster layer over the /v1 protocol: a static member list, a
/// consistent-hash ring keyed by table fingerprint, health-gated membership
/// via /v1/healthz, and a router that forwards /v1/tables and /v1/jobs to
/// the owning replica — replaying jobs on a healthy peer when the owner
/// dies. Replay is safe because discovery is deterministic (the PR 3/5
/// contract): same tables + same options = byte-identical results, so a
/// replayed job cannot disagree with the one the dead owner was running.

/// One replica address.
struct Member {
  std::string host;
  int port = 0;

  std::string Key() const;  ///< "host:port", the ring/display identity
  bool operator==(const Member& other) const {
    return host == other.host && port == other.port;
  }
};

/// Parses "host:port,host:port,..." (the --route-to flag).
Result<std::vector<Member>> ParseMemberList(std::string_view spec);

/// Health-gated membership states. kUnknown (never probed yet) is treated
/// as eligible for routing so a cold router does not refuse traffic while
/// the first probe sweep is in flight.
enum class MemberState : uint8_t { kUnknown, kUp, kDraining, kDown };

const char* MemberStateName(MemberState state);

/// \brief Consistent-hash ring over the member list. Each member owns
/// `vnodes` points hashed from "host:port#i"; a key's owner is the first
/// point clockwise. Succession(key) yields every member exactly once in
/// ring order — the failover sequence. The ring is immutable after
/// construction (membership *state* changes are the health checker's job;
/// the member *list* is static, per the static-cluster design).
class HashRing {
 public:
  explicit HashRing(std::vector<Member> members, size_t vnodes = 64);

  const std::vector<Member>& members() const { return members_; }

  /// Index into members() of the key's owner. Requires a non-empty ring.
  size_t OwnerIndex(uint64_t key) const;

  /// Member indexes in failover order: owner first, then each remaining
  /// member in ring order, each exactly once.
  std::vector<size_t> Succession(uint64_t key) const;

 private:
  struct Point {
    uint64_t hash;
    size_t member;
  };

  std::vector<Member> members_;
  std::vector<Point> points_;  ///< sorted by hash
};

/// \brief Background health prober: one thread sweeping GET /v1/healthz on
/// every member each `interval_ms`. A 200 {"status":"ok"} marks the member
/// kUp (and resets its failure streak); a 503 {"status":"draining"} marks
/// kDraining (the replica is shutting down — stop routing new work to it);
/// anything else (connect refused, timeout, 5xx) counts one failure, and
/// `down_after` consecutive failures mark kDown.
///
/// Probes use the raw HttpClient with short timeouts and no retries — a
/// health check that retries just delays the verdict the retry policy needs.
class HealthChecker {
 public:
  struct Options {
    int interval_ms = 500;
    int timeout_ms = 500;   ///< connect + I/O deadline per probe
    int down_after = 2;     ///< consecutive failures before kDown
  };

  HealthChecker(std::vector<Member> members, Options options);
  ~HealthChecker();  ///< Stop()s.

  HealthChecker(const HealthChecker&) = delete;
  HealthChecker& operator=(const HealthChecker&) = delete;

  /// Starts the background sweep thread (idempotent).
  void Start();

  /// Stops and joins the sweep thread (idempotent; safe without Start()).
  void Stop();

  /// One synchronous sweep over all members. The background thread calls
  /// this; tests call it directly for deterministic transitions.
  void ProbeOnce();

  MemberState state(size_t member_index) const;
  std::vector<MemberState> States() const;
  const std::vector<Member>& members() const { return members_; }
  uint64_t probes() const {
    // ordering: relaxed — monotonic metrics counter.
    return probes_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<Member> members_;
  Options options_;
  HttpClient client_;

  mutable Mutex mu_;
  std::condition_variable_any stop_cv_;
  bool stopping_ MCSM_GUARDED_BY(mu_) = false;
  std::vector<MemberState> states_ MCSM_GUARDED_BY(mu_);
  std::vector<int> fail_streak_ MCSM_GUARDED_BY(mu_);

  std::atomic<uint64_t> probes_{0};
  std::thread thread_;  ///< started by Start(), joined by Stop()
};

/// \brief The routing tier: an HttpServer handler that owns no tables and
/// runs no jobs, but knows where everything lives.
///
/// - POST /v1/tables: fingerprints the CSV, remembers it in the router
///   catalog (the replay source of truth), and registers it on the owning
///   replica (ring key = the table's own content fingerprint).
/// - POST /v1/jobs: ring key = the *target* table's fingerprint, so jobs
///   against one target land on one replica and reuse its warmed index
///   cache (shared-nothing, fingerprint-keyed warmup). The router lazily
///   pushes both tables to the chosen replica before submitting, then maps
///   its own job id to (member, remote id).
/// - GET /v1/jobs/{id}: polls the assignee with the retry policy; when the
///   assignee is unreachable or unhealthy, fails over — re-registers the
///   tables on the next healthy ring member, resubmits the job there, and
///   keeps serving the poll. Terminal snapshots are cached so a finished
///   job survives its replica.
/// - DELETE /v1/jobs/{id}: forwarded to the current assignee.
///
/// Thread-safe: Handle() is called concurrently from the server pool; all
/// maps live under one mutex, network I/O happens outside it.
class ClusterRouter {
 public:
  struct Options {
    HttpClient::Options client;
    RetryPolicy retry;
    size_t vnodes = 64;
  };

  /// `health` must outlive the router (it is shared with the server main).
  ClusterRouter(std::vector<Member> members, const HealthChecker* health,
                Options options);

  /// The HttpServer handler.
  HttpResponse Handle(const HttpRequest& request);

  /// Prometheus-style router counters + per-member states.
  std::string RenderMetrics() const;

 private:
  struct CatalogEntry {
    std::string csv;
    uint64_t fingerprint = 0;
    bool permissive = false;
  };

  struct RoutedJob {
    uint64_t router_id = 0;
    std::string body;          ///< original POST /v1/jobs body (for replay)
    std::string source_table;
    std::string target_table;
    uint64_t ring_key = 0;     ///< target-table fingerprint
    size_t assignee = 0;       ///< members_ index
    uint64_t remote_id = 0;
    bool terminal = false;
    bool failing_over = false; ///< one replayer at a time
    std::string last_snapshot; ///< last JSON snapshot (router ids), cached
  };

  HttpResponse Route(const HttpRequest& request, std::string_view path);
  HttpResponse HandlePostTables(const HttpRequest& request);
  HttpResponse HandleGetTables();
  HttpResponse HandlePostJobs(const HttpRequest& request);
  HttpResponse HandleGetJobs();
  HttpResponse HandleJobById(const HttpRequest& request, uint64_t id);

  /// Members eligible for new work (kUp/kUnknown), in `ring_key` failover
  /// order, optionally excluding one index.
  std::vector<size_t> EligibleSuccession(uint64_t ring_key,
                                         size_t exclude) const;

  /// Ensures `name` (from the catalog) is registered on member `m`.
  /// Idempotent: re-registration of identical content is a server-side
  /// no-op, and a per-(member, fingerprint) memo skips the wire entirely.
  Status EnsureTableOn(size_t m, const std::string& name);

  /// Submits `job`'s body to member `m` (tables pushed first) and updates
  /// the assignment under mu_. Returns the replica's 202 body on success.
  Result<ClientResponse> SubmitJobOn(size_t m, uint64_t router_id);

  /// Rewrites the replica-local "id" in a job snapshot to the router id.
  std::string RewriteSnapshotId(const std::string& body,
                                uint64_t router_id) const;

  std::vector<Member> members_;
  const HealthChecker* health_;
  Options options_;
  HashRing ring_;
  RetryingClient rpc_;

  mutable Mutex mu_;
  std::unordered_map<std::string, CatalogEntry> catalog_
      MCSM_GUARDED_BY(mu_);
  /// fingerprints known registered per member ("m#fingerprint" keys).
  std::unordered_set<std::string> pushed_ MCSM_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, RoutedJob> jobs_ MCSM_GUARDED_BY(mu_);
  uint64_t next_id_ MCSM_GUARDED_BY(mu_) = 1;

  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> forwarded_total_{0};
  std::atomic<uint64_t> failovers_total_{0};
  std::atomic<uint64_t> replays_total_{0};
  std::atomic<uint64_t> tables_pushed_total_{0};
  LatencyHistogram forward_latency_;
};

}  // namespace mcsm::service

#endif  // MCSM_SERVICE_CLUSTER_H_
