#include "service/http.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "service/io_util.h"

namespace mcsm::service {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Best-effort Content-Length scan over the raw head, used only to decide
/// how many bytes to buffer before the real parse runs (which re-validates
/// strictly). Non-numeric values read as 0 — the strict parse 400s them.
size_t PeekContentLength(std::string_view head) {
  size_t cursor = 0;
  while (cursor < head.size()) {
    size_t eol = head.find("\r\n", cursor);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(cursor, eol - cursor);
    cursor = eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    if (ToLower(line.substr(0, colon)) != "content-length") continue;
    std::string_view value = Trim(line.substr(colon + 1));
    size_t length = 0;
    for (char c : value) {
      if (c < '0' || c > '9') return 0;
      if (length > (1u << 30)) return length;  // already past any sane limit
      length = length * 10 + static_cast<size_t>(c - '0');
    }
    return length;
  }
  return 0;
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view lowered_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lowered_name) return value;
  }
  return {};
}

size_t FindHeadEnd(std::string_view data) {
  size_t pos = data.find("\r\n\r\n");
  if (pos == std::string_view::npos) return 0;
  return pos + 4;
}

Result<HttpRequest> ParseHttpRequest(std::string_view data, size_t head_end,
                                     const HttpLimits& limits) {
  if (head_end < 4 || head_end > data.size()) {
    return Status::ParseError("http: invalid head boundary");
  }
  if (head_end > limits.max_head_bytes) {
    return Status::ParseError("http: header section too large");
  }
  std::string_view head = data.substr(0, head_end - 2);  // keep final "\r\n"

  HttpRequest request;

  // Request line: METHOD SP request-target SP HTTP/1.x CRLF
  size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) {
    return Status::ParseError("http: missing request line terminator");
  }
  std::string_view line = head.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    return Status::ParseError("http: malformed request line");
  }
  std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);
  if (method.empty() || target.empty()) {
    return Status::ParseError("http: empty method or target");
  }
  for (char c : method) {
    if (c < 'A' || c > 'Z') {
      return Status::ParseError("http: method must be uppercase letters");
    }
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Status::ParseError("http: unsupported protocol version");
  }
  if (target[0] != '/') {
    return Status::ParseError("http: request target must be an absolute path");
  }
  request.method = std::string(method);
  size_t qpos = target.find('?');
  if (qpos == std::string_view::npos) {
    request.path = std::string(target);
  } else {
    request.path = std::string(target.substr(0, qpos));
    request.query = std::string(target.substr(qpos + 1));
  }

  // Header fields.
  size_t cursor = line_end + 2;
  while (cursor < head.size()) {
    size_t eol = head.find("\r\n", cursor);
    if (eol == std::string_view::npos) {
      return Status::ParseError("http: header line missing CRLF");
    }
    std::string_view field = head.substr(cursor, eol - cursor);
    cursor = eol + 2;
    if (field.empty()) break;
    size_t colon = field.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::ParseError("http: malformed header field");
    }
    std::string_view name = field.substr(0, colon);
    if (name.find(' ') != std::string_view::npos ||
        name.find('\t') != std::string_view::npos) {
      return Status::ParseError("http: whitespace in header name");
    }
    if (request.headers.size() >= limits.max_headers) {
      return Status::ParseError("http: too many header fields");
    }
    request.headers.emplace_back(ToLower(name),
                                 std::string(Trim(field.substr(colon + 1))));
  }

  // Body: Content-Length only. The service never needs chunked uploads, so
  // Transfer-Encoding is an explicit 'no' rather than a silent truncation.
  if (!request.Header("transfer-encoding").empty()) {
    return Status::ParseError("http: transfer-encoding not supported");
  }
  std::string_view length_header = request.Header("content-length");
  size_t content_length = 0;
  if (!length_header.empty()) {
    if (length_header.size() > 10) {
      return Status::ParseError("http: content-length too large");
    }
    for (char c : length_header) {
      if (c < '0' || c > '9') {
        return Status::ParseError("http: non-numeric content-length");
      }
      content_length = content_length * 10 + static_cast<size_t>(c - '0');
    }
  }
  if (content_length > limits.max_body_bytes) {
    return Status::ParseError("http: body too large");
  }
  if (data.size() - head_end < content_length) {
    return Status::ParseError("http: truncated body");
  }
  request.body = std::string(data.substr(head_end, content_length));
  return request;
}

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 202:
      return "Accepted";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = StrFormat("HTTP/1.1 %d %s\r\n", response.status,
                              StatusText(response.status));
  out += StrFormat("Content-Type: %s\r\n", response.content_type.c_str());
  out += StrFormat("Content-Length: %zu\r\n", response.body.size());
  for (const auto& [name, value] : response.headers) {
    out += StrFormat("%s: %s\r\n", name.c_str(), value.c_str());
  }
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

HttpServer::HttpServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Shutdown(); }

Status HttpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(  // NOLINTNEXTLINE(concurrency-mt-unsafe)
        StrFormat("socket() failed: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::Internal(StrFormat(
        "bind(127.0.0.1:%d) failed: %s", options_.port,
        std::strerror(errno)));  // NOLINT(concurrency-mt-unsafe)
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status st = Status::Internal(  // NOLINTNEXTLINE(concurrency-mt-unsafe)
        StrFormat("listen() failed: %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  pool_ = std::make_unique<ThreadPool>(
      ThreadPool::Background{std::max<size_t>(options_.workers, 1)});
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Shutdown() {
  // Serialized under a mutex: a second caller blocks until the first one
  // finished its joins, then returns — two threads must never race on
  // accept_thread_.join().
  MutexLock lock(shutdown_mu_);
  if (shutdown_done_) return;
  shutdown_done_ = true;
  // ordering: release — pairs with the accept loop's acquire loads so a
  // worker that observes stopping_ also observes everything this thread did
  // before initiating shutdown (belt-and-braces; the listener shutdown()
  // below is what actually wakes the loop).
  stopping_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    // shutdown() wakes the blocking accept(); close() alone is not reliable
    // for that across platforms. The close itself waits until the accept
    // thread is joined so the loop never touches a dead (or reused) fd.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  pool_.reset();  // drains queued connections, then joins workers
}

void HttpServer::AcceptLoop() {
  // Snapshot the listener fd: it is set before this thread starts, and
  // Shutdown() only mutates the member after joining this thread. The
  // local keeps that contract visible (and TSan-clean) here.
  const int listen_fd = listen_fd_;
  // ordering: acquire — pairs with Shutdown()'s release store (both loads in
  // this loop), see the comment there.
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener closed (shutdown) or fatal error: either way, stop.
      return;
    }
    // ordering: acquire — see loop condition above.
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    if (!failpoint::Trigger(failpoint::kServiceAccept).ok()) {
      // Chaos: drop the connection on the floor; the client sees a reset,
      // the server keeps serving.
      ::close(fd);
      continue;
    }
    pool_->Submit([this, fd] { HandleConnection(fd); });
  }
}

void HttpServer::HandleConnection(int fd) {
  timeval tv{};
  tv.tv_sec = options_.io_timeout_ms / 1000;
  tv.tv_usec = (options_.io_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  const HttpLimits& limits = options_.limits;
  std::string buffer;
  size_t head_end = 0;
  size_t need = 0;  // total bytes required once the head is parsed
  HttpResponse response;
  bool have_request = false;
  HttpRequest request;

  char chunk[4096];
  for (;;) {
    ssize_t n = RecvSome(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      // Timeout, reset, or premature close before a full request arrived.
      ::close(fd);
      return;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    if (head_end == 0) {
      head_end = FindHeadEnd(buffer);
      if (head_end == 0) {
        if (buffer.size() > limits.max_head_bytes) {
          response = {413, "application/json",
                      R"({"error":"header section too large"})", {}};
          break;
        }
        continue;
      }
      // Peek Content-Length so we know how much body to wait for; strict
      // validation happens in ParseHttpRequest once everything arrived.
      size_t content_length = PeekContentLength(buffer.substr(0, head_end));
      if (content_length > limits.max_body_bytes) {
        response = {413, "application/json",
                    R"({"error":"body too large"})", {}};
        break;
      }
      need = head_end + content_length;
    }
    if (buffer.size() >= need) {
      // Re-parse now that the whole body is in the buffer (the first parse
      // may have seen a truncated body).
      auto parsed = ParseHttpRequest(buffer, head_end, limits);
      if (!parsed.ok()) {
        response = {400, "application/json",
                    StrFormat(R"({"error":"%s"})",
                              parsed.status().message().c_str()),
                    {}};
      } else {
        request = std::move(parsed).value();
        have_request = true;
      }
      break;
    }
  }

  if (have_request) {
    response = handler_(request);
  }

  std::string wire = SerializeResponse(response);
  // Best-effort: a peer that hung up mid-response is its own problem.
  (void)SendAll(fd, wire.data(), wire.size());
  ::close(fd);
}

}  // namespace mcsm::service
