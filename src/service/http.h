#ifndef MCSM_SERVICE_HTTP_H_
#define MCSM_SERVICE_HTTP_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/result.h"
#include "common/thread_pool.h"

namespace mcsm::service {

/// One parsed HTTP/1.1 request. The parser keeps only what the service
/// needs: method, path (query string split off), headers, body.
struct HttpRequest {
  std::string method;  ///< Uppercase as sent: "GET", "POST", ...
  std::string path;    ///< Absolute path, query string removed.
  std::string query;   ///< Raw query string without the '?'; may be empty.
  std::vector<std::pair<std::string, std::string>> headers;  ///< Names lowered.
  std::string body;

  /// Case-insensitive header lookup (names are lowered at parse time, so the
  /// argument must be lowercase). Returns empty view when absent.
  std::string_view Header(std::string_view lowered_name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra response headers (e.g. "Deprecation" on legacy unversioned
  /// routes). Content-Type/Content-Length/Connection are emitted by
  /// SerializeResponse and must not be duplicated here.
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Parser limits. The fuzzer drives the parser with these defaults; the
/// server enforces the same bounds so a hostile peer cannot balloon memory.
struct HttpLimits {
  size_t max_head_bytes = 16 * 1024;      ///< Request line + headers.
  size_t max_body_bytes = 8 * 1024 * 1024;
  size_t max_headers = 64;
};

/// Locates the end of the header section ("\r\n\r\n") in a byte stream.
/// Returns the offset one past the terminator, or 0 when not yet complete.
size_t FindHeadEnd(std::string_view data);

/// Parses a complete request (head + body already assembled by the caller).
/// `head_end` is the value FindHeadEnd returned. Rejects malformed request
/// lines, oversized header counts, and non-numeric Content-Length.
Result<HttpRequest> ParseHttpRequest(std::string_view data, size_t head_end,
                                     const HttpLimits& limits);

/// Status line reason phrase for the handful of codes the service emits.
const char* StatusText(int status);

/// Renders a full HTTP/1.1 response with Content-Length and
/// "Connection: close" (the server is strictly one-request-per-connection).
std::string SerializeResponse(const HttpResponse& response);

/// \brief Minimal embedded HTTP/1.1 server: one blocking accept-loop thread
/// plus a Background worker pool that parses, dispatches to the handler, and
/// writes the response. Connections are one-shot (Connection: close), which
/// keeps the state machine trivial and is plenty for a control-plane API.
///
/// Lifecycle: Start() binds/listens and spawns the accept thread; Shutdown()
/// stops accepting, closes the listener, and drains in-flight handlers
/// (pool destructor joins). Both are idempotent enough for signal-driven
/// shutdown: the signal handler just stores a flag; the main thread calls
/// Shutdown().
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    int port = 0;           ///< 0 = kernel-assigned ephemeral port.
    size_t workers = 4;     ///< Connection-handling threads.
    int io_timeout_ms = 5000;  ///< Per-socket read/write timeout.
    HttpLimits limits;
  };

  HttpServer(Options options, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:port, listens, and starts the accept loop.
  Status Start();

  /// Stops accepting, closes the listener, and waits for in-flight
  /// connections to finish. Safe to call more than once.
  void Shutdown();

  /// The bound port (valid after Start(); useful with port = 0).
  int port() const { return port_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  Options options_;
  Handler handler_;
  // listen_fd_/port_/accept_thread_/pool_ are written by Start() before any
  // concurrency exists and torn down by the first Shutdown() caller after
  // the accept thread is joined — their discipline is thread start/join
  // happens-before, not a lock (the accept thread must never block on
  // shutdown_mu_, or Shutdown()'s join-under-lock would deadlock).
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  Mutex shutdown_mu_;  ///< Serializes Shutdown() callers.
  bool shutdown_done_ MCSM_GUARDED_BY(shutdown_mu_) = false;
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace mcsm::service

#endif  // MCSM_SERVICE_HTTP_H_
