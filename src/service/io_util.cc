#include "service/io_util.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace mcsm::service {

ssize_t RecvSome(int fd, char* buffer, size_t capacity) {
  for (;;) {
    ssize_t n = ::recv(fd, buffer, capacity, 0);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

Status SendAll(int fd, const char* data, size_t size, size_t* sent) {
  size_t done = 0;
  if (sent != nullptr) *sent = 0;
  while (done < size) {
    ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(  // NOLINTNEXTLINE(concurrency-mt-unsafe)
          StrFormat("send() failed after %zu/%zu bytes: %s", done, size,
                    std::strerror(errno)));
    }
    if (n == 0) {
      // send() returning 0 on a stream socket means the peer is gone.
      return Status::Internal(
          StrFormat("send() made no progress after %zu/%zu bytes", done,
                    size));
    }
    done += static_cast<size_t>(n);
    if (sent != nullptr) *sent = done;
  }
  return Status::OK();
}

}  // namespace mcsm::service
