#ifndef MCSM_SERVICE_IO_UTIL_H_
#define MCSM_SERVICE_IO_UTIL_H_

#include <sys/types.h>

#include <cstddef>

#include "common/status.h"

namespace mcsm::service {

/// \file
/// \brief EINTR/short-write-safe socket I/O, shared by the embedded HTTP
/// server (service/http.cc) and the cluster client (service/client.cc).
///
/// POSIX read/write on sockets may return early: -1/EINTR when a signal
/// lands mid-call, or a short count when the kernel buffer fills. Every raw
/// loop in the service funnels through these two helpers so the retry
/// discipline lives in exactly one place.

/// One recv() that retries EINTR. Returns the byte count (> 0), 0 on orderly
/// EOF, or -1 with errno set for any other error (including EAGAIN when an
/// SO_RCVTIMEO receive deadline expires).
ssize_t RecvSome(int fd, char* buffer, size_t capacity);

/// Writes the whole buffer, retrying EINTR and continuing after short
/// writes. Sends with MSG_NOSIGNAL so a peer reset surfaces as EPIPE, not
/// SIGPIPE. `sent` (optional) reports how many bytes went out even on
/// failure — the client uses it to distinguish "request never left" from
/// "request may have been accepted" when deciding whether a retry is safe.
Status SendAll(int fd, const char* data, size_t size, size_t* sent = nullptr);

}  // namespace mcsm::service

#endif  // MCSM_SERVICE_IO_UTIL_H_
