#include "service/job_manager.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "core/explain.h"
#include "vm/compiler.h"
#include "vm/executor.h"

namespace mcsm::service {

namespace {

/// Merges `cap` into `limits`: each nonzero cap axis becomes the minimum of
/// the two (0 = unlimited on either side). wall_ms is left alone — the
/// deadline is a latency control, not a degradation axis.
void TightenLimits(BudgetLimits* limits, const BudgetLimits& cap) {
  auto tighten = [](uint64_t* axis, uint64_t cap_value) {
    if (cap_value == 0) return;
    *axis = (*axis == 0) ? cap_value : std::min(*axis, cap_value);
  };
  tighten(&limits->max_postings_scanned, cap.max_postings_scanned);
  tighten(&limits->max_pairs_aligned, cap.max_pairs_aligned);
  tighten(&limits->max_candidate_formulas, cap.max_candidate_formulas);
}

}  // namespace

const char* JobModeName(JobMode mode) {
  switch (mode) {
    case JobMode::kDiscover:
      return "discover";
    case JobMode::kTranslate:
      return "translate";
  }
  return "unknown";
}

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

JobManager::JobManager(const TableRegistry* registry, IndexCache* cache,
                       Options options)
    : registry_(registry),
      cache_(cache),
      options_(options),
      pool_(ThreadPool::Background{std::max<size_t>(options.workers, 1)}) {}

JobManager::~JobManager() { Drain(); }

Result<uint64_t> JobManager::Submit(JobRequest request) {
  if (request.mode == JobMode::kDiscover && !request.program_wire.empty()) {
    return Status::InvalidArgument(
        "'program' is only valid with \"mode\": \"translate\"");
  }
  TableEntry source = registry_->Find(request.source_table);
  if (source.table == nullptr) {
    return Status::NotFound(
        StrFormat("source table '%s' is not registered",
                  request.source_table.c_str()));
  }
  // Translate-with-program skips discovery, so it needs no target table at
  // all; decode the program up front so a malformed wire form is a 400 at
  // submit, not a failed job later.
  const bool translate_with_program =
      request.mode == JobMode::kTranslate && !request.program_wire.empty();
  TableEntry target;
  if (translate_with_program) {
    auto program = vm::Program::Deserialize(request.program_wire);
    if (!program.ok()) return program.status();
    if (program->min_columns() > source.table->num_columns()) {
      return Status::InvalidArgument(
          StrFormat("program needs %u source columns, table '%s' has %zu",
                    program->min_columns(), request.source_table.c_str(),
                    source.table->num_columns()));
    }
  } else {
    target = registry_->Find(request.target_table);
    if (target.table == nullptr) {
      return Status::NotFound(
          StrFormat("target table '%s' is not registered",
                    request.target_table.c_str()));
    }
    if (request.target_column >= target.table->num_columns()) {
      return Status::InvalidArgument(
          StrFormat("target column %zu out of range (table has %zu columns)",
                    request.target_column, target.table->num_columns()));
    }
  }
  if (request.deadline_ms < 0) {
    return Status::InvalidArgument("deadline_ms must be >= 0");
  }
  // One validation path for every search knob a client can set
  // (SearchOptions::Validate); InvalidArgument maps to HTTP 400. The env
  // fields are still manager-owned — RunJob overwrites them below — so a
  // request can only fail on its algorithm knobs.
  MCSM_RETURN_IF_ERROR(request.options.Validate());

  const JobMode mode = request.mode;
  uint64_t id = 0;
  {
    MutexLock lock(mu_);
    if (queued_ >= options_.max_queue) {
      // ordering: relaxed — monotonic metrics counter.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          StrFormat("job queue full (%zu queued); retry later",
                    queued_));
    }
    // Admission gate: past the watermark, new jobs run with tightened work
    // caps — the service answers with truncated-but-valid partials (still
    // machine-independent, the caps are work units) before it sheds its
    // first request.
    if (options_.degrade_at > 0 && queued_ >= options_.degrade_at) {
      TightenLimits(&request.limits, options_.degraded_limits);
      request.degraded = true;
      // ordering: relaxed — monotonic metrics counter.
      degraded_.fetch_add(1, std::memory_order_relaxed);
    }
    id = next_id_++;
    auto job = std::make_unique<Job>();
    job->id = id;
    job->request = std::move(request);
    job->source = std::move(source);
    job->target = std::move(target);
    if (job->request.trace) {
      // Created at submit so even a cancelled-before-running traced job has
      // a (possibly empty) trace to serve.
      job->trace_sink = std::make_shared<InMemoryTraceSink>();
      // ordering: relaxed — monotonic metrics counter.
      traced_.fetch_add(1, std::memory_order_relaxed);
    }
    jobs_.emplace(id, std::move(job));
    ++queued_;
    ++active_;
  }
  // ordering: relaxed — monotonic metrics counter.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (mode == JobMode::kTranslate) {
    // ordering: relaxed — monotonic metrics counter.
    translate_jobs_.fetch_add(1, std::memory_order_relaxed);
  }
  pool_.Submit([this, id] { RunJob(id); });
  return id;
}

bool JobManager::Cancel(uint64_t id) {
  MutexLock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job* job = it->second.get();
  job->cancel_requested = true;
  if (job->state == JobState::kRunning && job->budget != nullptr) {
    job->budget->Cancel();  // search stops at its next budget check
  }
  // Queued jobs flip to kCancelled when their pool task fires (RunJob sees
  // the flag before doing any work); terminal jobs ignore the flag.
  return true;
}

Result<JobSnapshot> JobManager::Get(uint64_t id) const {
  MutexLock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound(StrFormat("no job with id %llu",
                                      static_cast<unsigned long long>(id)));
  }
  return SnapshotLocked(*it->second);
}

Result<std::string> JobManager::TraceJson(uint64_t id) const {
  std::shared_ptr<InMemoryTraceSink> sink;
  {
    MutexLock lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return Status::NotFound(StrFormat(
          "no job with id %llu", static_cast<unsigned long long>(id)));
    }
    if (it->second->trace_sink == nullptr) {
      return Status::NotFound(StrFormat(
          "job %llu was not traced (submit with \"trace\": true)",
          static_cast<unsigned long long>(id)));
    }
    sink = it->second->trace_sink;
  }
  // Rendering happens outside mu_ — the sink is internally synchronized and
  // shared ownership keeps it alive even if the job is evicted meanwhile.
  return TraceEventsToJson(sink->CanonicalEvents());
}

std::vector<JobSnapshot> JobManager::List() const {
  MutexLock lock(mu_);
  std::vector<JobSnapshot> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(SnapshotLocked(*job));
  std::sort(out.begin(), out.end(),
            [](const JobSnapshot& a, const JobSnapshot& b) {
              return a.id < b.id;
            });
  return out;
}

void JobManager::Drain() {
  MutexLock lock(mu_);
  // Explicit wait loop (not the predicate overload): the thread-safety
  // analysis cannot see that a predicate lambda runs with mu_ held.
  while (active_ != 0) {
    drained_cv_.wait(lock);
  }
}

size_t JobManager::queue_depth() const {
  MutexLock lock(mu_);
  return queued_;
}

int JobManager::RetryAfterSeconds() const {
  const uint64_t depth = static_cast<uint64_t>(queue_depth());
  // ordering: relaxed — monotonic metrics counters; a slightly stale mean
  // only shifts an advisory hint.
  const uint64_t runs = runs_measured_.load(std::memory_order_relaxed);
  const uint64_t mean_ms =
      runs > 0 ? run_ms_total_.load(std::memory_order_relaxed) / runs : 500;
  const uint64_t workers = std::max<uint64_t>(options_.workers, 1);
  // Time to drain the queue ahead of a resubmission, rounded up to seconds.
  const uint64_t wait_ms = (depth + 1) * std::max<uint64_t>(mean_ms, 1);
  const uint64_t seconds = (wait_ms / workers + 999) / 1000;
  return static_cast<int>(std::min<uint64_t>(std::max<uint64_t>(seconds, 1),
                                             60));
}

JobSnapshot JobManager::SnapshotLocked(const Job& job) const {
  if (job.state == JobState::kDone || job.state == JobState::kFailed ||
      job.state == JobState::kCancelled) {
    return job.result;  // terminal snapshot was sealed at transition
  }
  JobSnapshot snapshot;
  snapshot.id = job.id;
  snapshot.state = job.state;
  snapshot.mode = job.request.mode;
  snapshot.source_table = job.request.source_table;
  snapshot.target_table = job.request.target_table;
  snapshot.target_column = job.request.target_column;
  snapshot.traced = job.request.trace;
  snapshot.degraded = job.request.degraded;
  return snapshot;
}

void JobManager::FinishLocked(Job* job, JobState terminal) {
  job->state = terminal;
  job->result.state = terminal;
  job->result.run_seconds = job->run_seconds;
  // Only the sealed snapshot is served from here on: drop the table pins and
  // budget so a replaced table is not kept alive by finished jobs.
  job->source = TableEntry{};
  job->target = TableEntry{};
  job->budget.reset();
  // ordering: relaxed — monotonic metrics counters; the terminal-state
  // transition itself is published by mu_, not by these.
  switch (terminal) {
    case JobState::kDone:
      completed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobState::kFailed:
      // ordering: relaxed — see above.
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobState::kCancelled:
      // ordering: relaxed — see above.
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
  terminal_order_.push_back(job->id);
  while (terminal_order_.size() > options_.max_terminal) {
    jobs_.erase(terminal_order_.front());
    terminal_order_.pop_front();
  }
  --active_;
  if (active_ == 0) drained_cv_.notify_all();
}

void JobManager::RunJob(uint64_t id) {
  std::shared_ptr<const relational::Table> source_table;
  std::shared_ptr<const relational::Table> target_table;
  core::SearchOptions options;
  size_t target_column = 0;
  JobMode mode = JobMode::kDiscover;
  std::string program_wire;
  RunBudget* budget = nullptr;
  // Local ref keeps the sink alive for the whole run even if the job entry
  // is evicted concurrently.
  std::shared_ptr<InMemoryTraceSink> trace_sink;
  uint64_t source_fp = 0;
  uint64_t target_fp = 0;

  {
    MutexLock lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return;
    Job* job = it->second.get();
    --queued_;
    if (job->cancel_requested) {
      job->result = SnapshotLocked(*job);
      FinishLocked(job, JobState::kCancelled);
      return;
    }
    job->state = JobState::kRunning;
    // Admission-gate work caps (if any) plus the client's deadline.
    BudgetLimits limits = job->request.limits;
    limits.wall_ms = job->request.deadline_ms;
    job->budget = std::make_unique<RunBudget>(limits);
    budget = job->budget.get();
    trace_sink = job->trace_sink;
    source_table = job->source.table;
    target_table = job->target.table;
    source_fp = job->source.fingerprint;
    target_fp = job->target.fingerprint;
    options = job->request.options;
    target_column = job->request.target_column;
    mode = job->request.mode;
    program_wire = job->request.program_wire;
  }

  const auto started = std::chrono::steady_clock::now();
  auto seal = [&](auto&& fill, JobState terminal) {
    // The explain report renders outside mu_ (the sink is internally
    // synchronized, and by now the search has finished emitting).
    std::string explain;
    if (trace_sink != nullptr) {
      explain = core::ExplainText(trace_sink->CanonicalEvents());
      // ordering: relaxed — monotonic metrics counters.
      trace_events_.fetch_add(trace_sink->event_count(),
                              std::memory_order_relaxed);
      trace_spans_.fetch_add(trace_sink->span_count(),
                             std::memory_order_relaxed);
    }
    MutexLock lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return;
    Job* job = it->second.get();
    job->run_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - started)
                           .count();
    // ordering: relaxed — monotonic accumulators; RetryAfterSeconds only
    // needs an approximate mean.
    run_ms_total_.fetch_add(
        static_cast<uint64_t>(job->run_seconds * 1000.0),
        std::memory_order_relaxed);
    runs_measured_.fetch_add(1, std::memory_order_relaxed);
    job->result = SnapshotLocked(*job);
    fill(&job->result);
    if (trace_sink != nullptr) job->result.explain = std::move(explain);
    FinishLocked(job, terminal);
  };

  // Chaos site: MCSM_FAILPOINTS=service.job=error makes jobs fail cleanly
  // (state kFailed, error populated, server keeps serving); delay:Nms models
  // slow jobs to exercise queue backpressure and deadline trips.
  if (Status st = failpoint::Trigger(failpoint::kServiceJob); !st.ok()) {
    seal([&](JobSnapshot* r) { r->error = st.message(); }, JobState::kFailed);
    return;
  }

  // Translate-with-program jobs replay a saved program and skip discovery
  // entirely; everything else discovers first.
  vm::Program program;
  std::string formula_text;
  std::string sql_text;
  size_t matched_rows = 0;
  if (mode == JobMode::kTranslate && !program_wire.empty()) {
    auto decoded = vm::Program::Deserialize(program_wire);
    if (!decoded.ok()) {  // validated at Submit; a failure here is hostile
      seal([&](JobSnapshot* r) { r->error = decoded.status().message(); },
           JobState::kFailed);
      return;
    }
    program = std::move(decoded.value());
  } else {
    options.env.shared_budget = budget;
    options.env.trace = trace_sink.get();
    relational::ColumnIndex::Options target_index_options;
    target_index_options.q = options.q;
    target_index_options.build_postings = true;
    options.env.target_index = cache_->GetOrBuild(target_table, target_fp,
                                                  target_column,
                                                  target_index_options);
    options.env.source_index_provider =
        [this, source_table, source_fp,
         q = options.q](size_t column)
        -> std::shared_ptr<const relational::ColumnIndex> {
      relational::ColumnIndex::Options source_index_options;
      source_index_options.q = q;
      source_index_options.build_postings = false;
      return cache_->GetOrBuild(source_table, source_fp, column,
                                source_index_options);
    };

    auto discovered = core::DiscoverTranslation(*source_table, *target_table,
                                                target_column, options);
    if (!discovered.ok()) {
      seal([&](JobSnapshot* r) { r->error = discovered.status().message(); },
           JobState::kFailed);
      return;
    }
    const core::DiscoveredTranslation& translation = discovered.value();
    const bool was_cancelled =
        translation.truncated() &&
        translation.search.budget_trip == BudgetTrip::kCancelled;
    if (mode == JobMode::kDiscover) {
      seal(
          [&](JobSnapshot* r) {
            r->formula =
                translation.formula().ToString(source_table->schema());
            r->sql = translation.sql;
            r->matched_rows = translation.coverage.matched_rows();
            r->truncated = translation.truncated();
            if (translation.truncated()) {
              r->budget_trip = BudgetTripName(translation.search.budget_trip);
            }
          },
          was_cancelled ? JobState::kCancelled : JobState::kDone);
      return;
    }
    formula_text = translation.formula().ToString(source_table->schema());
    sql_text = translation.sql;
    matched_rows = translation.coverage.matched_rows();
    if (was_cancelled) {
      // Cancelled mid-discovery: no rows were translated.
      seal(
          [&](JobSnapshot* r) {
            r->formula = formula_text;
            r->truncated = true;
            r->budget_trip = BudgetTripName(BudgetTrip::kCancelled);
          },
          JobState::kCancelled);
      return;
    }
    auto compiled =
        vm::CompileFormula(translation.formula(), source_table->schema());
    if (!compiled.ok()) {
      // E.g. the deadline tripped before discovery completed the formula —
      // there is nothing runnable to translate with.
      seal([&](JobSnapshot* r) { r->error = compiled.status().message(); },
           JobState::kFailed);
      return;
    }
    program = std::move(compiled.value());
  }

  // Bulk translation: charges the same per-job budget (rows + remaining
  // deadline), so cancel/deadline semantics match discovery jobs.
  vm::TranslateOptions translate_options;
  translate_options.num_threads = options.num_threads;
  translate_options.budget = budget;
  auto translated = vm::Translate(program, *source_table, translate_options);
  if (!translated.ok()) {
    seal([&](JobSnapshot* r) { r->error = translated.status().message(); },
         JobState::kFailed);
    return;
  }
  const vm::TranslateResult& result = translated.value();
  // ordering: relaxed — monotonic metrics counter (mcsm_translate_rows_total).
  translate_rows_.fetch_add(result.output_rows(), std::memory_order_relaxed);
  const bool was_cancelled =
      result.truncated && result.budget_trip == BudgetTrip::kCancelled;
  seal(
      [&](JobSnapshot* r) {
        r->formula = formula_text;
        r->sql = sql_text;
        r->matched_rows = matched_rows;
        r->rows_in = result.rows_processed;
        r->rows_translated = result.output_rows();
        r->truncated = result.truncated;
        if (result.truncated) {
          r->budget_trip = BudgetTripName(result.budget_trip);
        }
        r->program = program.Disassemble();
        r->program_wire_hex = vm::BytesToHex(program.Serialize());
      },
      was_cancelled ? JobState::kCancelled : JobState::kDone);
}

}  // namespace mcsm::service
