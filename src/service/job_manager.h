#ifndef MCSM_SERVICE_JOB_MANAGER_H_
#define MCSM_SERVICE_JOB_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/deadline.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/matcher.h"
#include "service/registry.h"

namespace mcsm::service {

/// Lifecycle of one discovery job. Terminal states: done, failed, cancelled.
/// A deadline_ms trip is NOT failed — the job lands in kDone with
/// truncated=true and the best partial formula (anytime semantics).
enum class JobState : uint8_t {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
};

const char* JobStateName(JobState state);

/// What a job does: discover a translation formula (the default), or bulk-
/// translate the source table with the formula bytecode VM (DESIGN.md §12) —
/// discovering first, or replaying a client-supplied wire program.
enum class JobMode : uint8_t {
  kDiscover,
  kTranslate,
};

const char* JobModeName(JobMode mode);

/// What a client submits: which registered tables to match and how long the
/// run may take. `options` carries the search knobs; its budget/shared_budget
/// fields are overwritten by the manager (deadline_ms is the one public
/// latency control).
struct JobRequest {
  JobMode mode = JobMode::kDiscover;
  std::string source_table;
  std::string target_table;
  size_t target_column = 0;
  /// Translate mode only: raw wire bytes of a saved vm::Program (the HTTP
  /// layer decodes the hex `program` field into this). When empty, the job
  /// discovers a formula first and compiles it; when set, target_table /
  /// target_column are not needed and discovery is skipped entirely.
  std::string program_wire;
  /// Wall-clock execution budget in milliseconds, mapped onto RunBudget
  /// (0 = unlimited). Measured from the moment the job starts RUNNING, so a
  /// queued job does not burn its budget waiting for a worker.
  int64_t deadline_ms = 0;
  /// Capture a structured trace of the run (POST /v1/jobs {"trace": true}).
  /// The trace is held in memory with the job — readable via
  /// GET /v1/jobs/{id}/trace until the job is evicted by retention — and the
  /// result snapshot gains an `explain` decision log.
  bool trace = false;
  /// Work-unit caps applied to the run (wall_ms is ignored: deadline_ms is
  /// the one wall-clock control). Normally empty; the admission gate
  /// tightens these under load so an overloaded replica degrades to
  /// truncated-but-valid partials instead of queueing unbounded work.
  BudgetLimits limits;
  /// Set by the admission gate when `limits` were tightened under load; the
  /// snapshot reports it so clients can tell a degraded partial from a
  /// deadline trip.
  bool degraded = false;
  core::SearchOptions options;
};

/// Immutable view of a job for handlers: everything GET /jobs/{id} renders.
struct JobSnapshot {
  uint64_t id = 0;
  JobState state = JobState::kQueued;
  JobMode mode = JobMode::kDiscover;
  std::string source_table;
  std::string target_table;
  size_t target_column = 0;
  /// Valid in kDone.
  std::string formula;
  std::string sql;
  size_t matched_rows = 0;
  bool truncated = false;
  std::string budget_trip;  ///< axis name when truncated ("wall-clock", ...)
  /// True when the admission gate ran this job with tightened work caps.
  bool degraded = false;
  /// Valid in kFailed.
  std::string error;
  double run_seconds = 0;  ///< execution time (0 until the job ran)
  /// True when the job was submitted with trace=true.
  bool traced = false;
  /// The "why this formula won" decision log (terminal traced jobs only).
  std::string explain;
  /// Translate-mode jobs (valid in kDone/kCancelled): source rows executed
  /// (the processed prefix when truncated) and covered rows produced.
  size_t rows_in = 0;
  size_t rows_translated = 0;
  /// Translate-mode jobs: the program that ran — human-readable disassembly
  /// plus the hex wire form a client can save and replay.
  std::string program;
  std::string program_wire_hex;
};

/// \brief Async discovery-job manager: a bounded queue in front of a
/// Background thread pool, with per-job RunBudget for deadlines and
/// cooperative cancellation.
///
/// Backpressure: Submit rejects with ResourceExhausted (HTTP 429) once
/// `max_queue` jobs are queued-not-yet-running. Running jobs don't count —
/// the pool bounds those at `workers` — so total admitted-but-unfinished
/// work is workers + max_queue.
///
/// Cancellation: a queued job flips straight to kCancelled; a running job
/// gets its RunBudget tripped (one CAS) and stops at the search's next
/// budget check, landing in kCancelled with whatever partial it had. Either
/// way Cancel returns immediately.
///
/// Retention: at its terminal transition a job drops its table pins and
/// budget (only the sealed snapshot is served afterwards), and once more
/// than `max_terminal` terminal jobs exist the oldest are evicted — so
/// neither jobs_ nor replaced tables grow without bound over the service
/// lifetime. Get/Cancel on an evicted id return NotFound/false.
class JobManager {
 public:
  struct Options {
    size_t workers = 2;
    size_t max_queue = 16;
    /// Terminal jobs retained for GET /jobs/{id}; oldest evicted beyond this.
    size_t max_terminal = 256;
    /// Queue-depth watermark at which admission degrades new jobs by
    /// tightening their work caps to `degraded_limits` (0 = never degrade).
    /// Must be below max_queue for degradation to precede shedding.
    size_t degrade_at = 0;
    /// Caps merged (min-of-nonzero) into a degraded job's limits. Work-unit
    /// axes only: caps are machine-independent, so a degraded partial is
    /// byte-identical wherever it runs — wall_ms here is ignored.
    BudgetLimits degraded_limits;
  };

  /// `registry` and `cache` must outlive the manager; both may be shared
  /// with the HTTP handlers.
  JobManager(const TableRegistry* registry, IndexCache* cache,
             Options options);

  /// Drains: queued jobs still run to completion before destruction returns
  /// (the pool destructor finishes its queue). Cancel first for a fast exit.
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Validates the request (tables exist, target column in range) and
  /// enqueues it. Returns the job id, or ResourceExhausted when the queue is
  /// full (map to 429), or NotFound/InvalidArgument for bad requests.
  Result<uint64_t> Submit(JobRequest request);

  /// Requests cancellation; returns false for unknown ids, true otherwise
  /// (including jobs already terminal, where it is a no-op).
  bool Cancel(uint64_t id);

  /// Snapshot for GET /jobs/{id}; NotFound for unknown ids.
  Result<JobSnapshot> Get(uint64_t id) const;

  /// The captured trace as `{"schema_version":1,"events":[...]}` in the
  /// canonical (Id-sorted) order. NotFound for unknown ids AND for jobs that
  /// were not submitted with trace=true — both map to HTTP 404.
  Result<std::string> TraceJson(uint64_t id) const;

  std::vector<JobSnapshot> List() const;

  /// Blocks until every submitted job is terminal (SIGTERM drain).
  void Drain();

  /// Jobs admitted but not yet running (the admission gate's watermark
  /// input; also what Retry-After is derived from).
  size_t queue_depth() const;

  /// Suggested client wait before resubmitting after a 429: queue depth ×
  /// mean observed job latency ÷ workers, clamped to [1s, 60s]. With no
  /// latency history yet a 500 ms prior is assumed.
  int RetryAfterSeconds() const;

  /// Monotonic counters for /metrics.
  uint64_t submitted() const { return Counter(submitted_); }
  uint64_t rejected() const { return Counter(rejected_); }
  uint64_t degraded() const { return Counter(degraded_); }
  uint64_t completed() const { return Counter(completed_); }
  uint64_t failed() const { return Counter(failed_); }
  uint64_t cancelled() const { return Counter(cancelled_); }
  uint64_t traced() const { return Counter(traced_); }
  uint64_t trace_events() const { return Counter(trace_events_); }
  uint64_t trace_spans() const { return Counter(trace_spans_); }
  uint64_t translate_jobs() const { return Counter(translate_jobs_); }
  uint64_t translate_rows() const { return Counter(translate_rows_); }

 private:
  struct Job {
    uint64_t id = 0;
    JobState state = JobState::kQueued;
    JobRequest request;
    // Tables resolved at submit time, so a later re-registration of the
    // name cannot change what this job runs against.
    TableEntry source;
    TableEntry target;
    bool cancel_requested = false;
    std::unique_ptr<RunBudget> budget;  ///< created when the job starts
    /// Per-job trace capture (trace=true requests). Unlike budget/pins this
    /// survives the terminal transition — it IS the artifact the trace
    /// endpoint serves — and is bounded by max_terminal retention.
    std::shared_ptr<InMemoryTraceSink> trace_sink;
    JobSnapshot result;                 ///< filled at terminal transition
    double run_seconds = 0;
  };

  // ordering: relaxed — monotonic metrics counters; readers tolerate a
  // slightly stale value and never infer other state from them.
  static uint64_t Counter(const std::atomic<uint64_t>& counter) {
    return counter.load(std::memory_order_relaxed);
  }

  void RunJob(uint64_t id);
  /// Builds the snapshot under mu_.
  JobSnapshot SnapshotLocked(const Job& job) const MCSM_REQUIRES(mu_);
  /// Terminal bookkeeping under mu_ (counter + drain wakeup).
  void FinishLocked(Job* job, JobState terminal) MCSM_REQUIRES(mu_);

  const TableRegistry* registry_;
  IndexCache* cache_;
  Options options_;

  mutable Mutex mu_;
  std::condition_variable_any drained_cv_;
  std::unordered_map<uint64_t, std::unique_ptr<Job>> jobs_
      MCSM_GUARDED_BY(mu_);
  /// Terminal job ids, oldest first — the retention-eviction order.
  std::deque<uint64_t> terminal_order_ MCSM_GUARDED_BY(mu_);
  uint64_t next_id_ MCSM_GUARDED_BY(mu_) = 1;
  size_t queued_ MCSM_GUARDED_BY(mu_) = 0;  ///< admitted, not yet running
  size_t active_ MCSM_GUARDED_BY(mu_) = 0;  ///< not yet terminal

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> degraded_{0};
  /// Run-latency accumulator feeding RetryAfterSeconds (jobs that actually
  /// executed; cancelled-before-running jobs are excluded).
  std::atomic<uint64_t> run_ms_total_{0};
  std::atomic<uint64_t> runs_measured_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> traced_{0};
  std::atomic<uint64_t> trace_events_{0};
  std::atomic<uint64_t> trace_spans_{0};
  std::atomic<uint64_t> translate_jobs_{0};
  std::atomic<uint64_t> translate_rows_{0};

  // Declared last: its destructor drains the task queue while the fields
  // above are still alive for the running tasks.
  ThreadPool pool_;
};

}  // namespace mcsm::service

#endif  // MCSM_SERVICE_JOB_MANAGER_H_
