#include "service/json.h"

#include <cmath>
#include <cstdlib>

#include "common/string_util.h"

namespace mcsm::service {

Json Json::Bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double n) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = n;
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::AsBool(bool fallback) const {
  return type_ == Type::kBool ? bool_ : fallback;
}

double Json::AsNumber(double fallback) const {
  return type_ == Type::kNumber ? number_ : fallback;
}

std::string Json::AsString(std::string fallback) const {
  return type_ == Type::kString ? string_ : std::move(fallback);
}

void Json::Append(Json value) {
  type_ = Type::kArray;
  array_.push_back(std::move(value));
}

const Json* Json::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::Set(std::string key, Json value) {
  type_ = Type::kObject;
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

namespace {

void DumpString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat(
              "\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpNumber(double n, std::string* out) {
  if (!std::isfinite(n)) {
    // JSON has no NaN/Inf; the service never produces them, but a defined
    // rendering beats undefined text if one slips through.
    *out += "null";
    return;
  }
  double integral;
  if (std::modf(n, &integral) == 0.0 && std::fabs(n) < 1e15) {
    *out += StrFormat("%lld", static_cast<long long>(n));
  } else {
    *out += StrFormat("%.17g", n);
  }
}

}  // namespace

void Json::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      DumpNumber(number_, out);
      return;
    case Type::kString:
      DumpString(string_, out);
      return;
    case Type::kArray:
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i) out->push_back(',');
        array_[i].DumpTo(out);
      }
      out->push_back(']');
      return;
    case Type::kObject:
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i) out->push_back(',');
        DumpString(object_[i].first, out);
        out->push_back(':');
        object_[i].second.DumpTo(out);
      }
      out->push_back('}');
      return;
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

namespace {

/// Recursive-descent JSON parser over a string_view. Position-tracking
/// errors, a depth cap (Json::kMaxDepth), and full \uXXXX handling including
/// surrogate pairs. No allocations beyond the output value.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    SkipWhitespace();
    MCSM_ASSIGN_OR_RETURN(Json value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const char* message) const {
    return Status::ParseError(
        StrFormat("json: %s at offset %zu", message, pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue(size_t depth) {
    if (depth > Json::kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        MCSM_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json::Str(std::move(s));
      }
      case 't':
        if (ConsumeWord("true")) return Json::Bool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeWord("false")) return Json::Bool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeWord("null")) return Json();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseObject(size_t depth) {
    ++pos_;  // '{'
    Json out = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return out;
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      MCSM_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      MCSM_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      out.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return out;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray(size_t depth) {
    ++pos_;  // '['
    Json out = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return out;
    for (;;) {
      MCSM_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      out.Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return out;
      return Error("expected ',' or ']' in array");
    }
  }

  /// Parses the 4 hex digits after "\u"; returns the code unit or -1.
  int ParseHex4() {
    if (pos_ + 4 > text_.size()) return -1;
    int unit = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = c - 'A' + 10;
      } else {
        return -1;
      }
      unit = unit * 16 + digit;
    }
    pos_ += 4;
    return unit;
  }

  static void AppendUtf8(unsigned long cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Error("dangling escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          int unit = ParseHex4();
          if (unit < 0) return Error("invalid \\u escape");
          unsigned long cp = static_cast<unsigned long>(unit);
          if (unit >= 0xD800 && unit <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate");
            }
            pos_ += 2;
            int low = ParseHex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000ul +
                 ((static_cast<unsigned long>(unit) - 0xD800ul) << 10) +
                 (static_cast<unsigned long>(low) - 0xDC00ul);
          } else if (unit >= 0xDC00 && unit <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<Json> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
      // sign consumed
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    // The slice is a valid JSON number grammar-wise; strtod cannot fail on it
    // (overflow clamps to +-HUGE_VAL, which isfinite() rejects below).
    std::string digits(text_.substr(start, pos_ - start));
    double value = std::strtod(digits.c_str(), nullptr);
    if (!std::isfinite(value)) return Error("number out of range");
    return Json::Number(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace mcsm::service
