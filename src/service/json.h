#ifndef MCSM_SERVICE_JSON_H_
#define MCSM_SERVICE_JSON_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace mcsm::service {

/// \brief Minimal JSON value: parser + serializer for the service's
/// request/response bodies. Dependency-free by design (the container bakes in
/// no JSON library) and small on purpose: the service exchanges flat objects
/// of strings, numbers and booleans, not arbitrary documents.
///
/// Representation notes:
///  - numbers are doubles (like JavaScript); integral values serialize
///    without a decimal point so ids and counts round-trip cleanly.
///  - objects preserve insertion order (responses render deterministically,
///    which the determinism tests rely on); key lookup is linear — fine for
///    the handful of keys a request carries.
///  - parsing enforces a nesting-depth cap so the fuzzer cannot overflow the
///    stack with ten thousand '['s.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Null by default.
  Json() = default;

  static Json Bool(bool b);
  static Json Number(double n);
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }

  /// Scalar accessors with a fallback for wrong-type/absent values, so
  /// handlers read optional fields in one line.
  bool AsBool(bool fallback) const;
  double AsNumber(double fallback) const;
  std::string AsString(std::string fallback) const;

  /// Array access. at() requires i < size().
  size_t size() const { return array_.size(); }
  const Json& at(size_t i) const { return array_[i]; }
  void Append(Json value);

  /// Object access: pointer to the member value, or nullptr when this is not
  /// an object or has no such key.
  const Json* Find(std::string_view key) const;
  /// Sets (or replaces) an object member.
  void Set(std::string key, Json value);

  /// Compact serialization (no whitespace). Strings escape the two mandatory
  /// characters, control characters, and nothing else — UTF-8 passes through.
  std::string Dump() const;

  /// Parses one JSON document; trailing non-whitespace is an error.
  static Result<Json> Parse(std::string_view text);

  /// Maximum container nesting Parse accepts.
  static constexpr size_t kMaxDepth = 64;

 private:
  void DumpTo(std::string* out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace mcsm::service

#endif  // MCSM_SERVICE_JSON_H_
