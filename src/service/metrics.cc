#include "service/metrics.h"

#include "common/string_util.h"

namespace mcsm::service {

void LatencyHistogram::Record(uint64_t elapsed_ms) {
  size_t slot = kBoundsMs.size();  // overflow bucket by default
  for (size_t i = 0; i < kBoundsMs.size(); ++i) {
    if (elapsed_ms <= kBoundsMs[i]) {
      slot = i;
      break;
    }
  }
  // ordering: relaxed — independent monotonic counters; a concurrent Render
  // may see the bucket bump before the count bump (or vice versa), which only
  // skews one in-flight scrape by one observation.
  buckets_[slot].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ms_.fetch_add(elapsed_ms, std::memory_order_relaxed);
}

void LatencyHistogram::Render(const std::string& name,
                              std::string* out) const {
  uint64_t cumulative = 0;
  // ordering: relaxed — see Record(); scrape-time reads of independent
  // counters need no cross-counter consistency.
  for (size_t i = 0; i < kBoundsMs.size(); ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    *out += StrFormat("%s_ms_le_%llu %llu\n", name.c_str(),
                      static_cast<unsigned long long>(kBoundsMs[i]),
                      static_cast<unsigned long long>(cumulative));
  }
  // ordering: relaxed — see above.
  cumulative += buckets_[kBoundsMs.size()].load(std::memory_order_relaxed);
  *out += StrFormat("%s_ms_le_inf %llu\n", name.c_str(),
                    static_cast<unsigned long long>(cumulative));
  *out += StrFormat("%s_ms_count %llu\n", name.c_str(),
                    static_cast<unsigned long long>(count()));
  *out += StrFormat("%s_ms_sum %llu\n", name.c_str(),
                    static_cast<unsigned long long>(sum_ms()));
}

}  // namespace mcsm::service
