#ifndef MCSM_SERVICE_METRICS_H_
#define MCSM_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace mcsm::service {

/// \brief Fixed-bucket latency histogram, lock-free on the record path.
///
/// Buckets are upper bounds in milliseconds; an observation lands in the
/// first bucket whose bound it does not exceed, with a +Inf overflow bucket
/// at the end. Rendering is cumulative (Prometheus-style "le" semantics) so
/// scrapers can derive quantiles without the service taking a stance.
class LatencyHistogram {
 public:
  static constexpr std::array<uint64_t, 12> kBoundsMs = {
      1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000};

  void Record(uint64_t elapsed_ms);

  // ordering: relaxed — monotonic metrics counters; a scrape may observe a
  // count/sum pair from slightly different instants, which Prometheus-style
  // consumers tolerate by design.
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_ms() const { return sum_ms_.load(std::memory_order_relaxed); }

  /// Appends text-format lines: one "<name>_ms_le_<bound> <cumulative>" per
  /// bucket (plus _inf), then "<name>_ms_count" and "<name>_ms_sum".
  void Render(const std::string& name, std::string* out) const;

 private:
  // One extra slot for the +Inf overflow bucket.
  std::array<std::atomic<uint64_t>, kBoundsMs.size() + 1> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ms_{0};
};

}  // namespace mcsm::service

#endif  // MCSM_SERVICE_METRICS_H_
