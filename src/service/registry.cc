#include "service/registry.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace mcsm::service {

uint64_t FingerprintBytes(std::string_view bytes) {
  Fingerprinter fp;
  fp.Update(bytes);
  return fp.Digest();
}

namespace {

/// Chunk size for the streaming fingerprint + parse passes. Small enough to
/// exercise the chunked parser on real bodies, large enough to amortize the
/// per-chunk call overhead.
constexpr size_t kIngestChunkBytes = 256 * 1024;

}  // namespace

Result<TableEntry> TableRegistry::RegisterCsv(
    const std::string& name, std::string_view csv_text,
    const relational::CsvOptions& options) {
  if (name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  // Pass 1 — incremental fingerprint (chunked exactly like the parse pass):
  // cheap relative to parsing, and it lets a byte-identical re-registration
  // skip the parse entirely.
  Fingerprinter fp;
  for (size_t pos = 0; pos < csv_text.size(); pos += kIngestChunkBytes) {
    fp.Update(csv_text.substr(pos, kIngestChunkBytes));
  }
  const uint64_t fingerprint = fp.Digest();
  {
    ReaderLock lock(mu_);
    auto it = tables_.find(name);
    if (it != tables_.end() && it->second.fingerprint == fingerprint) {
      return it->second;  // byte-identical re-registration: no reparse
    }
  }

  // Pass 2 — streaming parse. The body arrives in memory today (HTTP), but
  // the table it builds streams into columnar storage and spills under
  // MCSM_PAGE_BUDGET as it grows. Same failpoint semantics as the ReadCsv
  // path this replaces: one kCsvRead trigger per actual parse (a dedup hit
  // above never parses, so it never trips).
  MCSM_FAILPOINT(failpoint::kCsvRead);
  relational::CsvReadReport report;
  relational::CsvStreamParser parser(options, &report);
  for (size_t pos = 0; pos < csv_text.size(); pos += kIngestChunkBytes) {
    MCSM_RETURN_IF_ERROR(parser.Feed(csv_text.substr(pos, kIngestChunkBytes)));
  }
  MCSM_ASSIGN_OR_RETURN(relational::Table parsed, parser.Finish());
  TableEntry entry;
  entry.name = name;
  entry.fingerprint = fingerprint;
  entry.table =
      std::make_shared<const relational::Table>(std::move(parsed));
  entry.rows = entry.table->num_rows();
  entry.columns = entry.table->num_columns();
  entry.rows_dropped = report.rows_dropped;

  WriterLock lock(mu_);
  tables_[name] = entry;  // replaces any previous binding for the name
  return entry;
}

TableEntry TableRegistry::Find(const std::string& name) const {
  ReaderLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return TableEntry{};
  return it->second;
}

std::vector<TableEntry> TableRegistry::List() const {
  ReaderLock lock(mu_);
  std::vector<TableEntry> out;
  out.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) out.push_back(entry);
  std::sort(out.begin(), out.end(),
            [](const TableEntry& a, const TableEntry& b) {
              return a.name < b.name;
            });
  return out;
}

size_t TableRegistry::size() const {
  ReaderLock lock(mu_);
  return tables_.size();
}

IndexCache::IndexCache(size_t byte_budget) : byte_budget_(byte_budget) {}

namespace {

std::string CacheKey(uint64_t fingerprint, size_t column,
                     const relational::ColumnIndex::Options& options) {
  return StrFormat("%016llx/c%zu/q%zu/p%d",
                   static_cast<unsigned long long>(fingerprint), column,
                   options.q, options.build_postings ? 1 : 0);
}

}  // namespace

std::shared_ptr<const relational::ColumnIndex> IndexCache::GetOrBuild(
    const std::shared_ptr<const relational::Table>& table,
    uint64_t fingerprint, size_t column,
    const relational::ColumnIndex::Options& options) {
  if (table == nullptr || column >= table->num_columns()) return nullptr;
  const std::string key = CacheKey(fingerprint, column, options);
  {
    ReaderLock lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      // LRU touch without the exclusive lock: a relaxed store of a fresh
      // global sequence number. Ties/races between concurrent hits only
      // perturb eviction order among entries touched in the same instant.
      // ordering: relaxed — last_used/use_clock order eviction heuristically,
      // they never publish data; hits_ is a monotonic counter.
      it->second->last_used.store(
          use_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second->index;
    }
  }
  // ordering: relaxed — monotonic counter (metrics only).
  misses_.fetch_add(1, std::memory_order_relaxed);

  // Build outside any lock: index construction is the expensive part and
  // must not serialize unrelated cache reads.
  auto entry = std::make_unique<Entry>();
  entry->table = table;
  entry->index = std::make_shared<const relational::ColumnIndex>(
      *table, column, options);
  entry->bytes = entry->index->ApproxMemoryBytes();
  // ordering: relaxed — eviction-heuristic sequence number, see the hit path.
  entry->last_used.store(use_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);

  WriterLock lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Lost the build race; adopt the winner and drop our copy.
    return it->second->index;
  }
  bytes_ += entry->bytes;
  auto index = entry->index;
  entries_.emplace(key, std::move(entry));
  EvictUnderLock();
  return index;
}

void IndexCache::EvictUnderLock() {
  // Evict lowest last-used until the budget holds. The newest entry is
  // always the freshest sequence number, so a single oversized insert evicts
  // everything else and then stops (entries_.size() > 1 guard).
  while (bytes_ > byte_budget_ && entries_.size() > 1) {
    auto victim = entries_.end();
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      // ordering: relaxed — heuristic LRU scan; a stale value only perturbs
      // which entry is evicted, never correctness.
      uint64_t used = it->second->last_used.load(std::memory_order_relaxed);
      if (used < oldest) {
        oldest = used;
        victim = it;
      }
    }
    if (victim == entries_.end()) break;
    bytes_ -= victim->second->bytes;
    entries_.erase(victim);
    // ordering: relaxed — monotonic counter (metrics only).
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

IndexCacheStats IndexCache::stats() const {
  IndexCacheStats stats;
  // ordering: relaxed — monotonic counter reads (metrics only).
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  ReaderLock lock(mu_);
  stats.bytes = bytes_;
  stats.entries = entries_.size();
  return stats;
}

}  // namespace mcsm::service
