#ifndef MCSM_SERVICE_REGISTRY_H_
#define MCSM_SERVICE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/result.h"
#include "relational/column_index.h"
#include "relational/csv.h"
#include "relational/table.h"

namespace mcsm::service {

/// \brief Incremental FNV-1a content fingerprint.
///
/// Byte-stream hashing is associative over chunk boundaries, so feeding a
/// body in arbitrary pieces (streaming ingest) yields exactly the digest
/// FingerprintBytes computes over the whole — the property RegisterCsv's
/// single-pass fingerprint-while-parse path depends on.
class Fingerprinter {
 public:
  void Update(std::string_view bytes) {
    for (char c : bytes) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 1099511628211ull;  // FNV prime
    }
  }
  uint64_t Digest() const { return hash_; }

 private:
  uint64_t hash_ = 1469598103934665603ull;  // FNV offset basis
};

/// FNV-1a over raw bytes — the content fingerprint that keys both table
/// dedup and the index cache. Not cryptographic; collisions would only cost
/// a spurious cache share between tables an operator uploaded with identical
/// 64-bit fingerprints, which FNV makes vanishingly unlikely for this
/// workload (dozens of tables, not billions).
uint64_t FingerprintBytes(std::string_view bytes);

/// One registered table, as returned to handlers and listings.
struct TableEntry {
  std::string name;
  uint64_t fingerprint = 0;
  std::shared_ptr<const relational::Table> table;
  size_t rows = 0;
  size_t columns = 0;
  size_t rows_dropped = 0;  ///< permissive-CSV rows skipped at registration
};

/// \brief Named table store for the service. Tables are immutable once
/// registered (shared_ptr<const Table>); re-registering a name with
/// byte-identical content is a no-op returning the existing entry, while new
/// content replaces the binding (in-flight jobs keep the old table alive
/// through their shared_ptr). The registry never evicts — tables are the
/// operator's working set; only derived indexes face a byte budget.
class TableRegistry {
 public:
  /// Parses `csv_text` and registers it under `name`. Fingerprint-identical
  /// re-registration returns the existing entry without reparsing.
  Result<TableEntry> RegisterCsv(const std::string& name,
                                 std::string_view csv_text,
                                 const relational::CsvOptions& options = {});

  /// nullopt-style lookup: empty entry (null table) when the name is absent.
  TableEntry Find(const std::string& name) const;

  std::vector<TableEntry> List() const;
  size_t size() const;

 private:
  mutable SharedMutex mu_;
  std::unordered_map<std::string, TableEntry> tables_ MCSM_GUARDED_BY(mu_);
};

/// Cache observability counters (monotonic; read by GET /metrics).
struct IndexCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t bytes = 0;    ///< current charged bytes
  uint64_t entries = 0;  ///< current entry count
};

/// \brief Byte-budgeted memoization of ColumnIndex builds, keyed by
/// (table fingerprint, column, q, postings). The hot path — a repeat job
/// against an already-indexed table — takes a shared lock and one relaxed
/// atomic store; builds happen outside any lock, with a double-checked
/// insert so concurrent first-users race benignly (one build wins, the
/// loser's work is dropped).
///
/// Eviction is LRU by a global use-clock: entries carry an atomic last-used
/// sequence number (bumped on hit without taking the exclusive lock), and
/// inserts evict lowest-sequence entries until the budget holds. Evicted
/// indexes stay alive for any job still holding the shared_ptr; "evicted"
/// only means "next user rebuilds".
class IndexCache {
 public:
  /// `byte_budget` caps the sum of ApproxMemoryBytes over cached entries.
  /// One oversized index still caches (the alternative — rebuilding it for
  /// every job — is strictly worse); it just evicts everything else.
  explicit IndexCache(size_t byte_budget);

  /// Returns the cached index for (fingerprint, column, options) or builds,
  /// inserts and returns it. `table` is retained alongside the index: a
  /// ColumnIndex references its Table, so cache entries keep their table
  /// alive even if the registry re-binds the name.
  std::shared_ptr<const relational::ColumnIndex> GetOrBuild(
      const std::shared_ptr<const relational::Table>& table,
      uint64_t fingerprint, size_t column,
      const relational::ColumnIndex::Options& options);

  IndexCacheStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const relational::Table> table;
    std::shared_ptr<const relational::ColumnIndex> index;
    size_t bytes = 0;
    std::atomic<uint64_t> last_used{0};
  };

  void EvictUnderLock() MCSM_REQUIRES(mu_);

  const size_t byte_budget_;
  mutable SharedMutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Entry>> entries_
      MCSM_GUARDED_BY(mu_);
  size_t bytes_ MCSM_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> use_clock_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace mcsm::service

#endif  // MCSM_SERVICE_REGISTRY_H_
