#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/string_util.h"
#include "service/json.h"
#include "vm/program.h"

namespace mcsm::service {

namespace {

/// Current wire-format version, included in every JSON response.
constexpr int kSchemaVersion = 1;

HttpResponse JsonResponse(int status, Json body) {
  if (body.is_object()) {
    body.Set("schema_version",
             Json::Number(static_cast<double>(kSchemaVersion)));
  }
  HttpResponse response;
  response.status = status;
  response.body = body.Dump();
  return response;
}

/// JSON error with schema_version — replaces the raw string literals so
/// every JSON response, errors included, carries the version field.
HttpResponse ErrorResponse(int status, std::string_view message) {
  Json out = Json::Object();
  out.Set("error", Json::Str(std::string(message)));
  return JsonResponse(status, std::move(out));
}

HttpResponse StatusResponse(const Status& status) {
  HttpResponse response;
  response.status = HttpStatusFor(status);
  response.body = ErrorBody(status);
  return response;
}

Json TableEntryJson(const TableEntry& entry) {
  Json out = Json::Object();
  out.Set("name", Json::Str(entry.name));
  out.Set("fingerprint",
          Json::Str(StrFormat("%016llx", static_cast<unsigned long long>(
                                             entry.fingerprint))));
  out.Set("rows", Json::Number(static_cast<double>(entry.rows)));
  out.Set("columns", Json::Number(static_cast<double>(entry.columns)));
  if (entry.rows_dropped > 0) {
    out.Set("rows_dropped",
            Json::Number(static_cast<double>(entry.rows_dropped)));
  }
  return out;
}

Json JobSnapshotJson(const JobSnapshot& snapshot) {
  Json out = Json::Object();
  out.Set("id", Json::Number(static_cast<double>(snapshot.id)));
  out.Set("state", Json::Str(JobStateName(snapshot.state)));
  out.Set("mode", Json::Str(JobModeName(snapshot.mode)));
  out.Set("source_table", Json::Str(snapshot.source_table));
  out.Set("target_table", Json::Str(snapshot.target_table));
  out.Set("target_column",
          Json::Number(static_cast<double>(snapshot.target_column)));
  if (snapshot.state == JobState::kDone ||
      snapshot.state == JobState::kCancelled) {
    out.Set("formula", Json::Str(snapshot.formula));
    out.Set("sql", Json::Str(snapshot.sql));
    out.Set("matched_rows",
            Json::Number(static_cast<double>(snapshot.matched_rows)));
    out.Set("truncated", Json::Bool(snapshot.truncated));
    if (snapshot.truncated) {
      out.Set("budget_trip", Json::Str(snapshot.budget_trip));
    }
    if (snapshot.mode == JobMode::kTranslate) {
      out.Set("rows_in",
              Json::Number(static_cast<double>(snapshot.rows_in)));
      out.Set("rows_translated",
              Json::Number(static_cast<double>(snapshot.rows_translated)));
      out.Set("program", Json::Str(snapshot.program));
      out.Set("program_wire", Json::Str(snapshot.program_wire_hex));
    }
  }
  if (snapshot.degraded) {
    out.Set("degraded", Json::Bool(true));
  }
  if (snapshot.state == JobState::kFailed) {
    out.Set("error", Json::Str(snapshot.error));
  }
  if (snapshot.state != JobState::kQueued &&
      snapshot.state != JobState::kRunning) {
    out.Set("run_seconds", Json::Number(snapshot.run_seconds));
  }
  out.Set("traced", Json::Bool(snapshot.traced));
  if (!snapshot.explain.empty()) {
    out.Set("explain", Json::Str(snapshot.explain));
  }
  return out;
}

/// Parses the {id} tail of /jobs/{id}; false for empty/non-numeric tails.
bool ParseJobId(std::string_view tail, uint64_t* id) {
  if (tail.empty() || tail.size() > 18) return false;
  uint64_t value = 0;
  for (char c : tail) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *id = value;
  return true;
}

}  // namespace

int HttpStatusFor(const Status& status) {
  if (status.ok()) return 200;
  if (status.IsNotFound()) return 404;
  if (status.IsInvalidArgument() || status.IsParseError()) return 400;
  if (status.IsResourceExhausted()) return 429;
  return 500;
}

std::string ErrorBody(const Status& status) {
  Json out = Json::Object();
  out.Set("error", Json::Str(std::string(status.message())));
  out.Set("schema_version", Json::Number(1));
  return out.Dump();
}

DiscoveryService::DiscoveryService(Options options)
    : options_(options),
      cache_(options.cache_bytes),
      jobs_(&registry_, &cache_,
            JobManager::Options{options.job_workers, options.max_queue,
                                options.retained_jobs, options.degrade_at,
                                options.degraded_limits}) {}

namespace {

/// Strips the "/v1" API prefix; `*versioned` reports whether it was present.
/// "/v1/jobs" -> "/jobs"; "/jobs" stays (a deprecated alias).
std::string_view NormalizePath(std::string_view path, bool* versioned) {
  constexpr std::string_view kPrefix = "/v1/";
  if (path.size() >= kPrefix.size() &&
      path.substr(0, kPrefix.size()) == kPrefix) {
    if (versioned != nullptr) *versioned = true;
    return path.substr(3);  // keep the leading '/'
  }
  if (versioned != nullptr) *versioned = false;
  return path;
}

}  // namespace

HttpResponse DiscoveryService::Handle(const HttpRequest& request) {
  const auto started = std::chrono::steady_clock::now();
  HttpResponse response = Route(request);
  const uint64_t elapsed_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  const std::string_view path = NormalizePath(request.path, nullptr);
  if (path == "/tables" || path.rfind("/tables/", 0) == 0) {
    tables_latency_.Record(elapsed_ms);
  } else if (path == "/jobs" || path.rfind("/jobs/", 0) == 0) {
    jobs_latency_.Record(elapsed_ms);
  } else if (path == "/metrics") {
    metrics_latency_.Record(elapsed_ms);
  } else {
    other_latency_.Record(elapsed_ms);
  }
  // ordering: relaxed — monotonic metrics counters.
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  if (response.status >= 400) {
    requests_bad_.fetch_add(1, std::memory_order_relaxed);
  }
  return response;
}

HttpResponse DiscoveryService::Route(const HttpRequest& request) {
  bool versioned = false;
  const std::string_view path = NormalizePath(request.path, &versioned);
  HttpResponse response = RouteNormalized(request, path);
  if (!versioned) {
    // Deprecated unversioned alias: identical behaviour, flagged response.
    response.headers.emplace_back("Deprecation", "true");
  }
  return response;
}

HttpResponse DiscoveryService::RouteNormalized(const HttpRequest& request,
                                               std::string_view path) {
  if (path == "/healthz") {
    if (request.method != "GET") {
      return ErrorResponse(405, "method not allowed");
    }
    Json out = Json::Object();
    if (draining()) {
      // SIGTERM drain in progress: health-gated routers read this as "stop
      // sending new work"; in-flight jobs still finish and can be polled.
      out.Set("status", Json::Str("draining"));
      return JsonResponse(503, std::move(out));
    }
    out.Set("status", Json::Str("ok"));
    return JsonResponse(200, std::move(out));
  }
  if (path == "/metrics") {
    if (request.method != "GET") {
      return ErrorResponse(405, "method not allowed");
    }
    HttpResponse response;
    response.content_type = "text/plain";
    response.body = RenderMetrics();
    return response;
  }
  if (path == "/tables") {
    if (request.method == "POST") return HandlePostTables(request);
    if (request.method == "GET") return HandleGetTables();
    return ErrorResponse(405, "method not allowed");
  }
  if (path.rfind("/tables/", 0) == 0) {
    return HandleTableByName(request, std::string(path.substr(8)));
  }
  if (path == "/jobs") {
    if (request.method == "POST") return HandlePostJobs(request);
    if (request.method == "GET") return HandleGetJobs();
    return ErrorResponse(405, "method not allowed");
  }
  if (path.rfind("/jobs/", 0) == 0) {
    std::string_view tail = path.substr(6);
    bool want_trace = false;
    constexpr std::string_view kTraceSuffix = "/trace";
    if (tail.size() > kTraceSuffix.size() &&
        tail.substr(tail.size() - kTraceSuffix.size()) == kTraceSuffix) {
      want_trace = true;
      tail.remove_suffix(kTraceSuffix.size());
    }
    uint64_t id = 0;
    if (!ParseJobId(tail, &id)) {
      return ErrorResponse(400, "malformed job id");
    }
    if (want_trace) return HandleJobTrace(request, id);
    return HandleJobById(request, id);
  }
  return ErrorResponse(404, "no such endpoint");
}

HttpResponse DiscoveryService::HandlePostTables(const HttpRequest& request) {
  auto parsed = Json::Parse(request.body);
  if (!parsed.ok()) {
    return StatusResponse(parsed.status());
  }
  const Json& body = parsed.value();
  if (!body.is_object()) {
    return ErrorResponse(400, "request body must be a JSON object");
  }
  const Json* name = body.Find("name");
  const Json* csv = body.Find("csv");
  if (name == nullptr || !name->is_string() || csv == nullptr ||
      !csv->is_string()) {
    return ErrorResponse(400, "'name' and 'csv' string fields are required");
  }
  relational::CsvOptions csv_options;
  if (const Json* permissive = body.Find("permissive")) {
    csv_options.permissive = permissive->AsBool(false);
  }
  auto entry = registry_.RegisterCsv(name->AsString(""), csv->AsString(""),
                                     csv_options);
  if (!entry.ok()) {
    return StatusResponse(entry.status());
  }
  return JsonResponse(200, TableEntryJson(entry.value()));
}

HttpResponse DiscoveryService::HandleGetTables() {
  Json list = Json::Array();
  for (const TableEntry& entry : registry_.List()) {
    list.Append(TableEntryJson(entry));
  }
  Json out = Json::Object();
  out.Set("tables", std::move(list));
  return JsonResponse(200, out);
}

HttpResponse DiscoveryService::HandleTableByName(const HttpRequest& request,
                                                 const std::string& name) {
  if (request.method != "GET") {
    return ErrorResponse(405, "method not allowed");
  }
  if (name.empty()) {
    return ErrorResponse(400, "table name must be non-empty");
  }
  const TableEntry entry = registry_.Find(name);
  if (entry.table == nullptr) {
    return ErrorResponse(404, "no such table: " + name);
  }
  Json out = TableEntryJson(entry);
  const relational::TableStats stats = entry.table->Stats();
  Json storage = Json::Object();
  storage.Set("encoding", Json::Str(stats.encoding));
  storage.Set("resident_bytes",
              Json::Number(static_cast<double>(stats.resident_bytes)));
  storage.Set("spilled_bytes",
              Json::Number(static_cast<double>(stats.spilled_bytes)));
  storage.Set("resident_pages",
              Json::Number(static_cast<double>(stats.resident_pages)));
  storage.Set("spilled_pages",
              Json::Number(static_cast<double>(stats.spilled_pages)));
  out.Set("storage", std::move(storage));
  // A latched spill-I/O error means reads may degrade to empty views; the
  // table still serves, so it is reported, not turned into an HTTP failure.
  const Status storage_status = entry.table->storage_status();
  if (!storage_status.ok()) {
    out.Set("storage_error", Json::Str(std::string(storage_status.message())));
  }
  return JsonResponse(200, std::move(out));
}

HttpResponse DiscoveryService::HandlePostJobs(const HttpRequest& request) {
  auto parsed = Json::Parse(request.body);
  if (!parsed.ok()) {
    return StatusResponse(parsed.status());
  }
  const Json& body = parsed.value();
  if (!body.is_object()) {
    return ErrorResponse(400, "request body must be a JSON object");
  }
  JobRequest job;
  if (const Json* mode = body.Find("mode")) {
    const std::string mode_name = mode->AsString("");
    if (mode_name == "translate") {
      job.mode = JobMode::kTranslate;
    } else if (mode_name != "discover") {
      return ErrorResponse(400,
                           "'mode' must be \"discover\" or \"translate\"");
    }
  }
  if (const Json* program = body.Find("program")) {
    if (!program->is_string()) {
      return ErrorResponse(400, "'program' must be a hex string");
    }
    auto wire = vm::HexToBytes(program->AsString(""));
    if (!wire.ok()) return StatusResponse(wire.status());
    job.program_wire = std::move(wire.value());
  }
  const Json* source = body.Find("source_table");
  const Json* target = body.Find("target_table");
  const Json* column = body.Find("target_column");
  // A translate job replaying a saved program needs no target at all;
  // everything else discovers and therefore needs the full triple.
  const bool needs_target =
      !(job.mode == JobMode::kTranslate && !job.program_wire.empty());
  if (source == nullptr || !source->is_string() ||
      (needs_target &&
       (target == nullptr || !target->is_string() || column == nullptr))) {
    return ErrorResponse(
        400, "'source_table', 'target_table' and 'target_column' are required");
  }
  job.source_table = source->AsString("");
  if (target != nullptr) job.target_table = target->AsString("");
  if (column != nullptr) {
    double column_number = column->AsNumber(-1);
    if (column_number < 0 || column_number > 1e9 ||
        column_number != static_cast<double>(
                             static_cast<uint64_t>(column_number))) {
      return ErrorResponse(400,
                           "'target_column' must be a non-negative integer");
    }
    job.target_column = static_cast<size_t>(column_number);
  }
  if (const Json* deadline = body.Find("deadline_ms")) {
    double ms = deadline->AsNumber(-1);
    if (ms < 0 || ms > 1e12) {
      return ErrorResponse(400,
                           "'deadline_ms' must be a non-negative number");
    }
    job.deadline_ms = static_cast<int64_t>(ms);
  }
  if (const Json* threads = body.Find("num_threads")) {
    double thread_number = threads->AsNumber(-1);
    if (thread_number < 0 || thread_number > 1e9 ||
        thread_number != static_cast<double>(
                             static_cast<uint64_t>(thread_number))) {
      return ErrorResponse(400,
                           "'num_threads' must be a non-negative integer");
    }
    // Clamped: a request-supplied pool size must not be able to make a
    // worker spawn an absurd thread count (std::thread failure terminates
    // the process). 0 keeps the search's auto-sizing.
    const size_t cap =
        std::max<size_t>(std::thread::hardware_concurrency(), 1);
    job.options.num_threads =
        std::min(static_cast<size_t>(thread_number), cap);
  }
  if (const Json* separators = body.Find("detect_separators")) {
    job.options.detect_separators = separators->AsBool(false);
  }
  if (const Json* trace = body.Find("trace")) {
    job.trace = trace->AsBool(false);
  }
  // Algorithm knobs: passed through raw and validated in one place —
  // SearchOptions::Validate at Submit — so the HTTP layer does not
  // duplicate (and drift from) the search layer's rules.
  if (const Json* q = body.Find("q")) {
    job.options.q = static_cast<size_t>(
        std::max(0.0, std::min(q->AsNumber(0), 64.0)));
  }
  if (const Json* fraction = body.Find("sample_fraction")) {
    job.options.sample_fraction = fraction->AsNumber(-1);
  }

  auto submitted = jobs_.Submit(std::move(job));
  if (!submitted.ok()) {
    HttpResponse response = StatusResponse(submitted.status());
    if (submitted.status().IsResourceExhausted()) {
      // Shed: tell the client when resubmitting is likely to succeed
      // (queue depth × mean job latency, see JobManager::RetryAfterSeconds).
      response.headers.emplace_back(
          "Retry-After", StrFormat("%d", jobs_.RetryAfterSeconds()));
    }
    return response;
  }
  Json out = Json::Object();
  out.Set("id", Json::Number(static_cast<double>(submitted.value())));
  out.Set("state", Json::Str("queued"));
  return JsonResponse(202, out);
}

HttpResponse DiscoveryService::HandleGetJobs() {
  Json list = Json::Array();
  for (const JobSnapshot& snapshot : jobs_.List()) {
    list.Append(JobSnapshotJson(snapshot));
  }
  Json out = Json::Object();
  out.Set("jobs", std::move(list));
  return JsonResponse(200, out);
}

HttpResponse DiscoveryService::HandleJobById(const HttpRequest& request,
                                             uint64_t id) {
  if (request.method == "GET") {
    auto snapshot = jobs_.Get(id);
    if (!snapshot.ok()) {
      return StatusResponse(snapshot.status());
    }
    return JsonResponse(200, JobSnapshotJson(snapshot.value()));
  }
  if (request.method == "DELETE") {
    if (!jobs_.Cancel(id)) {
      return ErrorResponse(404, "no such job");
    }
    Json out = Json::Object();
    out.Set("id", Json::Number(static_cast<double>(id)));
    out.Set("cancel_requested", Json::Bool(true));
    return JsonResponse(200, out);
  }
  return ErrorResponse(405, "method not allowed");
}

HttpResponse DiscoveryService::HandleJobTrace(const HttpRequest& request,
                                              uint64_t id) {
  if (request.method != "GET") {
    return ErrorResponse(405, "method not allowed");
  }
  auto trace = jobs_.TraceJson(id);
  if (!trace.ok()) {
    return StatusResponse(trace.status());
  }
  // The body already carries schema_version (TraceEventsToJson emits it),
  // so it goes out verbatim rather than through JsonResponse.
  HttpResponse response;
  response.body = std::move(trace.value());
  return response;
}

std::string DiscoveryService::RenderMetrics() const {
  std::string out;
  const IndexCacheStats cache_stats = cache_.stats();
  auto counter = [&out](const char* name, uint64_t value) {
    out += StrFormat("%s %llu\n", name,
                     static_cast<unsigned long long>(value));
  };
  // ordering: relaxed — scrape-time reads of monotonic counters.
  counter("mcsm_requests_total",
          requests_total_.load(std::memory_order_relaxed));
  counter("mcsm_requests_bad",
          requests_bad_.load(std::memory_order_relaxed));
  counter("mcsm_tables_registered", registry_.size());
  counter("mcsm_index_cache_hits", cache_stats.hits);
  counter("mcsm_index_cache_misses", cache_stats.misses);
  counter("mcsm_index_cache_evictions", cache_stats.evictions);
  counter("mcsm_index_cache_bytes", cache_stats.bytes);
  counter("mcsm_index_cache_entries", cache_stats.entries);
  counter("mcsm_jobs_submitted", jobs_.submitted());
  counter("mcsm_jobs_rejected", jobs_.rejected());
  // Load-shedding ladder: degraded (admitted with tightened caps) fills
  // before shed (429'd); shed aliases rejected for dashboard clarity.
  counter("mcsm_jobs_degraded_total", jobs_.degraded());
  counter("mcsm_jobs_shed_total", jobs_.rejected());
  counter("mcsm_jobs_queue_depth", jobs_.queue_depth());
  counter("mcsm_service_draining", draining() ? 1 : 0);
  counter("mcsm_jobs_completed", jobs_.completed());
  counter("mcsm_jobs_failed", jobs_.failed());
  counter("mcsm_jobs_cancelled", jobs_.cancelled());
  counter("mcsm_jobs_traced", jobs_.traced());
  counter("mcsm_translate_jobs_total", jobs_.translate_jobs());
  counter("mcsm_translate_rows_total", jobs_.translate_rows());
  counter("mcsm_trace_events_total", jobs_.trace_events());
  counter("mcsm_trace_spans_total", jobs_.trace_spans());
  tables_latency_.Render("mcsm_http_tables", &out);
  jobs_latency_.Render("mcsm_http_jobs", &out);
  metrics_latency_.Render("mcsm_http_metrics", &out);
  other_latency_.Render("mcsm_http_other", &out);
  return out;
}

}  // namespace mcsm::service
