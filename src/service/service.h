#ifndef MCSM_SERVICE_SERVICE_H_
#define MCSM_SERVICE_SERVICE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "service/http.h"
#include "service/job_manager.h"
#include "service/metrics.h"
#include "service/registry.h"

namespace mcsm::service {

/// \brief The discovery service: routes HTTP requests onto the table
/// registry, index cache and job manager, and renders /metrics.
///
/// The API is versioned under /v1/ and every JSON response carries
/// "schema_version": 1. The original unversioned paths remain as deprecated
/// aliases: they behave identically but answer with a "Deprecation: true"
/// response header. Endpoints (all request/response bodies are JSON unless
/// noted):
///   POST   /v1/tables         {"name","csv"[,"permissive"]} -> table entry
///   GET    /v1/tables         -> {"tables":[...]}
///   GET    /v1/tables/{name}  -> table entry + "storage" stats (encoding,
///                                resident/spilled bytes and pages)
///   POST   /v1/jobs           {"source_table","target_table","target_column"
///                              [,"deadline_ms","trace","num_threads","q",
///                              "sample_fraction","detect_separators"]}
///                             -> 202 {"id"} | 429 when full
///   GET    /v1/jobs           -> {"jobs":[...]}
///   GET    /v1/jobs/{id}      -> job snapshot (state, formula, truncated,
///                                explain when traced, ...)
///   GET    /v1/jobs/{id}/trace -> {"schema_version","events":[...]}; 404
///                                for unknown ids AND untraced jobs
///   DELETE /v1/jobs/{id}      -> requests cancellation
///   GET    /v1/metrics        -> text/plain counters + latency histograms
///   GET    /v1/healthz        -> {"status":"ok"}
///
/// Status mapping: NotFound->404, InvalidArgument/ParseError->400 (incl.
/// SearchOptions::Validate failures at job intake),
/// ResourceExhausted->429 (queue backpressure), anything else->500. A job
/// whose deadline trips is NOT an HTTP error: it completes as
/// state=done, truncated=true.
class DiscoveryService {
 public:
  struct Options {
    size_t job_workers = 2;
    size_t max_queue = 16;
    size_t cache_bytes = 256 * 1024 * 1024;
    /// Terminal jobs retained for GET /jobs/{id}; oldest evicted beyond this.
    size_t retained_jobs = 256;
    /// Queue-depth watermark where admission starts degrading jobs
    /// (tightened work caps -> truncated-but-valid partials) instead of
    /// queueing full-cost work. 0 = degrade disabled. Must be < max_queue to
    /// take effect before shedding.
    size_t degrade_at = 0;
    /// Work caps merged into degraded jobs (see JobManager::Options).
    BudgetLimits degraded_limits;
  };

  explicit DiscoveryService(Options options);

  /// The HttpServer handler. Thread-safe; called concurrently from the
  /// server's worker pool.
  HttpResponse Handle(const HttpRequest& request);

  TableRegistry& registry() { return registry_; }
  IndexCache& cache() { return cache_; }
  JobManager& jobs() { return jobs_; }

  /// Flips /v1/healthz to 503 {"status":"draining"} so health-gated routers
  /// stop sending new work while in-flight jobs finish. Call at the start of
  /// SIGTERM drain, while the HTTP server is still answering.
  void BeginDrain() { draining_.store(true); }
  bool draining() const { return draining_.load(); }

  /// Renders the /metrics text body (also used by tests directly).
  std::string RenderMetrics() const;

 private:
  HttpResponse Route(const HttpRequest& request);
  /// Dispatches an already /v1-stripped path.
  HttpResponse RouteNormalized(const HttpRequest& request,
                               std::string_view path);
  HttpResponse HandlePostTables(const HttpRequest& request);
  HttpResponse HandleGetTables();
  HttpResponse HandleTableByName(const HttpRequest& request,
                                 const std::string& name);
  HttpResponse HandlePostJobs(const HttpRequest& request);
  HttpResponse HandleGetJobs();
  HttpResponse HandleJobById(const HttpRequest& request, uint64_t id);
  HttpResponse HandleJobTrace(const HttpRequest& request, uint64_t id);

  Options options_;
  TableRegistry registry_;
  IndexCache cache_;
  JobManager jobs_;

  // Per-endpoint request latency (handler time, not socket time).
  LatencyHistogram tables_latency_;
  LatencyHistogram jobs_latency_;
  LatencyHistogram metrics_latency_;
  LatencyHistogram other_latency_;
  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> requests_bad_{0};  ///< 4xx/5xx responses
  /// Set once by BeginDrain (seq_cst: rarely touched, never on a hot path).
  std::atomic<bool> draining_{false};
};

/// Maps a Status to the HTTP code documented on DiscoveryService.
int HttpStatusFor(const Status& status);

/// Renders {"error": "..."} with proper escaping.
std::string ErrorBody(const Status& status);

}  // namespace mcsm::service

#endif  // MCSM_SERVICE_SERVICE_H_
