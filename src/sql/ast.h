#ifndef MCSM_SQL_AST_H_
#define MCSM_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "relational/table.h"
#include "relational/value.h"

namespace mcsm::sql {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression node kinds.
enum class ExprKind {
  kLiteral,    ///< value
  kColumnRef,  ///< name
  kUnary,      ///< op in {"-", "not"}, args[0]
  kBinary,     ///< op in {"+","-","*","/","||","=","<>","<","<=",">",">=","and","or"}
  kLike,       ///< args[0] LIKE args[1], possibly negated
  kIsNull,     ///< args[0] IS [NOT] NULL
  kFunction,   ///< name(args...) — scalar function
  kSubstring,  ///< substring(args[0] from args[1] [for args[2]])
  kPosition,   ///< position(args[0] in args[1])
  kAggregate,  ///< name in {count,sum,avg,min,max}; args empty = count(*)
};

/// \brief A SQL expression tree node.
///
/// A single struct with a kind discriminator keeps the parser and evaluator
/// compact; the fields used depend on `kind` as documented above.
struct Expr {
  ExprKind kind;
  relational::Value literal;      // kLiteral
  std::string name;               // kColumnRef, kFunction, kAggregate
  std::string op;                 // kUnary, kBinary
  std::vector<ExprPtr> args;
  bool negated = false;           // kLike, kIsNull
  bool distinct = false;          // kAggregate: count(distinct x)

  static ExprPtr Literal(relational::Value v) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kLiteral;
    e->literal = std::move(v);
    return e;
  }
  static ExprPtr Column(std::string name) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kColumnRef;
    e->name = std::move(name);
    return e;
  }
  static ExprPtr Binary(std::string op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBinary;
    e->op = std::move(op);
    e->args.push_back(std::move(lhs));
    e->args.push_back(std::move(rhs));
    return e;
  }
};

/// One item of a select list: expression plus optional alias, or '*'.
struct SelectItem {
  ExprPtr expr;       // null when is_star
  std::string alias;  // empty = derive from expression
  bool is_star = false;
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

struct SelectStatement {
  bool distinct = false;   ///< SELECT DISTINCT
  std::vector<SelectItem> items;
  std::string from_table;  ///< empty for table-less SELECT (expression eval)
  ExprPtr where;           ///< may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;          ///< may be null; requires group_by or aggregates
  std::vector<OrderItem> order_by;
  std::optional<size_t> limit;
};

struct CreateTableStatement {
  std::string table;
  std::vector<relational::ColumnDef> columns;
};

struct InsertStatement {
  std::string table;
  /// Each row is a list of expressions (evaluated without a row context, so
  /// effectively constants).
  std::vector<std::vector<ExprPtr>> rows;
};

struct UpdateStatement {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  ///< may be null (updates every row)
};

struct DeleteStatement {
  std::string table;
  ExprPtr where;  ///< may be null (deletes every row)
};

struct DropTableStatement {
  std::string table;
};

/// A parsed statement (exactly one of the pointers is set).
struct Statement {
  std::unique_ptr<SelectStatement> select;
  std::unique_ptr<CreateTableStatement> create_table;
  std::unique_ptr<InsertStatement> insert;
  std::unique_ptr<UpdateStatement> update;
  std::unique_ptr<DeleteStatement> del;
  std::unique_ptr<DropTableStatement> drop_table;
};

}  // namespace mcsm::sql

#endif  // MCSM_SQL_AST_H_
