#include "sql/engine.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "sql/evaluator.h"
#include "sql/parser.h"

namespace mcsm::sql {

using relational::Table;
using relational::Value;

Result<Value> ResultSet::ScalarValue() const {
  if (rows.size() != 1 || rows[0].size() != 1) {
    return Status::InvalidArgument(
        StrFormat("expected a 1x1 result, got %zux%zu", rows.size(),
                  rows.empty() ? 0 : rows[0].size()));
  }
  return rows[0][0];
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::vector<size_t> widths(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  size_t shown = std::min(max_rows, rows.size());
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      widths[c] = std::max(widths[c], rows[r][c].ToDisplayString().size());
    }
  }
  std::string out;
  auto append_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out += "| ";
      out += cells[c];
      out += std::string(widths[c] - cells[c].size() + 1, ' ');
    }
    out += "|\n";
  };
  append_row(columns);
  std::string sep;
  for (size_t c = 0; c < columns.size(); ++c) {
    sep += "+" + std::string(widths[c] + 2, '-');
  }
  sep += "+\n";
  out = sep + out + sep;
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> cells;
    cells.reserve(columns.size());
    for (size_t c = 0; c < columns.size(); ++c) {
      cells.push_back(rows[r][c].ToDisplayString());
    }
    append_row(cells);
  }
  if (rows.size() > shown) {
    out += StrFormat("... (%zu more rows)\n", rows.size() - shown);
  }
  out += sep;
  return out;
}

Result<ResultSet> Engine::Execute(std::string_view sql) {
  MCSM_FAILPOINT(failpoint::kSqlExecute);
  MCSM_ASSIGN_OR_RETURN(Statement stmt, Parse(sql));
  return ExecuteStatement(stmt);
}

Result<ResultSet> Engine::ExecuteStatement(const Statement& stmt) {
  if (stmt.select) return ExecuteSelect(*stmt.select);
  if (stmt.create_table) return ExecuteCreateTable(*stmt.create_table);
  if (stmt.insert) return ExecuteInsert(*stmt.insert);
  if (stmt.update) return ExecuteUpdate(*stmt.update);
  if (stmt.del) return ExecuteDelete(*stmt.del);
  if (stmt.drop_table) {
    MCSM_RETURN_IF_ERROR(db_->DropTable(stmt.drop_table->table));
    return ResultSet{};
  }
  return Status::Internal("empty statement");
}

Result<ResultSet> Engine::ExecuteCreateTable(const CreateTableStatement& create) {
  Table table{relational::Schema(create.columns)};
  MCSM_RETURN_IF_ERROR(db_->CreateTable(create.table, std::move(table)));
  return ResultSet{};
}

Result<ResultSet> Engine::ExecuteInsert(const InsertStatement& insert) {
  MCSM_ASSIGN_OR_RETURN(Table * table, db_->GetTable(insert.table));
  for (const auto& row_exprs : insert.rows) {
    std::vector<Value> row;
    row.reserve(row_exprs.size());
    for (const auto& e : row_exprs) {
      MCSM_ASSIGN_OR_RETURN(Value v, EvalScalar(*e, nullptr, 0));
      row.push_back(std::move(v));
    }
    MCSM_RETURN_IF_ERROR(table->AppendRow(std::move(row)));
  }
  return ResultSet{};
}

Result<ResultSet> Engine::ExecuteUpdate(const UpdateStatement& update) {
  MCSM_ASSIGN_OR_RETURN(Table * table, db_->GetTable(update.table));
  // Resolve assignment targets up front.
  std::vector<size_t> columns;
  for (const auto& [name, expr] : update.assignments) {
    auto col = table->schema().FindColumn(name);
    if (!col.has_value()) return Status::NotFound("no such column: " + name);
    columns.push_back(*col);
  }
  for (size_t row = 0; row < table->num_rows(); ++row) {
    if (update.where) {
      MCSM_ASSIGN_OR_RETURN(bool hit, EvalPredicate(*update.where, table, row));
      if (!hit) continue;
    }
    // Evaluate every right-hand side against the pre-update row, then write.
    std::vector<Value> values;
    for (const auto& [name, expr] : update.assignments) {
      MCSM_ASSIGN_OR_RETURN(Value v, EvalScalar(*expr, table, row));
      values.push_back(std::move(v));
    }
    for (size_t i = 0; i < columns.size(); ++i) {
      MCSM_RETURN_IF_ERROR(table->SetCell(row, columns[i], std::move(values[i])));
    }
  }
  return ResultSet{};
}

Result<ResultSet> Engine::ExecuteDelete(const DeleteStatement& del) {
  MCSM_ASSIGN_OR_RETURN(Table * table, db_->GetTable(del.table));
  std::vector<size_t> doomed;
  for (size_t row = 0; row < table->num_rows(); ++row) {
    if (del.where) {
      MCSM_ASSIGN_OR_RETURN(bool hit, EvalPredicate(*del.where, table, row));
      if (!hit) continue;
    }
    doomed.push_back(row);
  }
  MCSM_RETURN_IF_ERROR(table->RemoveRows(doomed));
  return ResultSet{};
}

namespace {

// A grouping key: rendered values with a type tag so 1 and '1' differ.
std::string GroupKey(const std::vector<Value>& values) {
  std::string key;
  for (const Value& v : values) {
    if (v.is_null()) {
      key += "n|";
    } else if (v.is_text()) {
      key += "t" + v.text() + "|";
    } else {
      key += "d" + v.ToDisplayString() + "|";
    }
    key += '\x1f';
  }
  return key;
}

}  // namespace

Result<ResultSet> Engine::ExecuteSelect(const SelectStatement& select) {
  const Table* table = nullptr;
  if (!select.from_table.empty()) {
    MCSM_ASSIGN_OR_RETURN(table, static_cast<const relational::Database*>(db_)
                                     ->GetTable(select.from_table));
  }

  // Expand the select list (resolve '*').
  struct OutputColumn {
    const Expr* expr = nullptr;  // null for direct column pass-through
    size_t direct_column = 0;    // valid when expr == nullptr
    std::string name;
  };
  std::vector<OutputColumn> outputs;
  bool any_aggregate = false;
  for (const auto& item : select.items) {
    if (item.is_star) {
      if (table == nullptr) {
        return Status::InvalidArgument("SELECT * requires a FROM table");
      }
      for (size_t c = 0; c < table->schema().num_columns(); ++c) {
        outputs.push_back({nullptr, c, table->schema().column(c).name});
      }
      continue;
    }
    OutputColumn out;
    out.expr = item.expr.get();
    out.name = !item.alias.empty() ? item.alias : ExprToString(*item.expr);
    if (ContainsAggregate(*item.expr)) any_aggregate = true;
    outputs.push_back(std::move(out));
  }
  if (any_aggregate && select.group_by.empty()) {
    for (const auto& out : outputs) {
      if (out.expr == nullptr || !ContainsAggregate(*out.expr)) {
        return Status::InvalidArgument(
            "mixing aggregate and non-aggregate select items requires GROUP BY");
      }
    }
  }

  // Filter phase.
  std::vector<size_t> selected_rows;
  const size_t num_rows = table ? table->num_rows() : 1;
  for (size_t r = 0; r < num_rows; ++r) {
    if (select.where) {
      MCSM_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*select.where, table, r));
      if (!keep) continue;
    }
    selected_rows.push_back(r);
  }

  ResultSet result;
  for (const auto& out : outputs) result.columns.push_back(out.name);

  // ORDER BY may name a select-list alias (standard SQL): map each order
  // item that is a bare identifier matching an output name to that output's
  // projected value.
  std::vector<int> order_alias(select.order_by.size(), -1);
  for (size_t k = 0; k < select.order_by.size(); ++k) {
    const Expr& e = *select.order_by[k].expr;
    if (e.kind != ExprKind::kColumnRef) continue;
    // A real table column of the same name takes precedence.
    if (table != nullptr && table->schema().FindColumn(e.name).has_value()) {
      continue;
    }
    for (size_t o = 0; o < outputs.size(); ++o) {
      if (ToLower(outputs[o].name) == e.name) {
        order_alias[k] = static_cast<int>(o);
        break;
      }
    }
  }

  const bool grouped = !select.group_by.empty() || any_aggregate ||
                       (select.having != nullptr);
  // Sort keys evaluated alongside projection so ORDER BY works uniformly
  // over plain, grouped and aggregated selects.
  std::vector<std::vector<Value>> sort_keys;

  if (grouped) {
    // Partition the selected rows into groups (one group when GROUP BY is
    // absent — plain aggregation).
    std::map<std::string, std::vector<size_t>> groups;
    if (select.group_by.empty()) {
      groups[""] = selected_rows;
    } else {
      for (size_t r : selected_rows) {
        std::vector<Value> key_values;
        for (const auto& e : select.group_by) {
          MCSM_ASSIGN_OR_RETURN(Value v, EvalScalar(*e, table, r));
          key_values.push_back(std::move(v));
        }
        groups[GroupKey(key_values)].push_back(r);
      }
    }

    for (const auto& [key, rows] : groups) {
      if (rows.empty() && !select.group_by.empty()) continue;
      // HAVING: aggregate predicates run over the group, scalar ones over
      // the representative row.
      if (select.having) {
        Value verdict;
        if (ContainsAggregate(*select.having)) {
          MCSM_ASSIGN_OR_RETURN(verdict,
                                EvalAggregate(*select.having, table, rows));
        } else if (!rows.empty()) {
          MCSM_ASSIGN_OR_RETURN(verdict,
                                EvalScalar(*select.having, table, rows[0]));
        }
        if (verdict.is_null() || !verdict.is_numeric() ||
            verdict.AsDouble() == 0.0) {
          continue;
        }
      }
      std::vector<Value> row;
      for (const auto& out : outputs) {
        if (out.expr == nullptr) {
          if (rows.empty()) return Status::InvalidArgument(
              "SELECT * over an empty aggregate group");
          row.push_back(table->ValueAt(rows[0], out.direct_column));
        } else if (ContainsAggregate(*out.expr)) {
          MCSM_ASSIGN_OR_RETURN(Value v, EvalAggregate(*out.expr, table, rows));
          row.push_back(std::move(v));
        } else {
          // Non-aggregate item under grouping: evaluated on the group's
          // representative row (lenient, SQLite-style; meaningful when the
          // item is one of the GROUP BY expressions).
          if (rows.empty()) {
            row.push_back(Value::MakeNull());
          } else {
            MCSM_ASSIGN_OR_RETURN(Value v, EvalScalar(*out.expr, table, rows[0]));
            row.push_back(std::move(v));
          }
        }
      }
      std::vector<Value> keys;
      for (size_t k = 0; k < select.order_by.size(); ++k) {
        if (order_alias[k] >= 0) {
          keys.push_back(row[static_cast<size_t>(order_alias[k])]);
          continue;
        }
        const auto& item = select.order_by[k];
        Value v;
        if (ContainsAggregate(*item.expr)) {
          MCSM_ASSIGN_OR_RETURN(v, EvalAggregate(*item.expr, table, rows));
        } else if (!rows.empty()) {
          MCSM_ASSIGN_OR_RETURN(v, EvalScalar(*item.expr, table, rows[0]));
        }
        keys.push_back(std::move(v));
      }
      result.rows.push_back(std::move(row));
      sort_keys.push_back(std::move(keys));
    }
  } else {
    for (size_t r : selected_rows) {
      std::vector<Value> row;
      row.reserve(outputs.size());
      for (const auto& out : outputs) {
        if (out.expr == nullptr) {
          row.push_back(table->ValueAt(r, out.direct_column));
        } else {
          MCSM_ASSIGN_OR_RETURN(Value v, EvalScalar(*out.expr, table, r));
          row.push_back(std::move(v));
        }
      }
      std::vector<Value> keys;
      for (size_t k = 0; k < select.order_by.size(); ++k) {
        if (order_alias[k] >= 0) {
          keys.push_back(row[static_cast<size_t>(order_alias[k])]);
          continue;
        }
        MCSM_ASSIGN_OR_RETURN(Value v,
                              EvalScalar(*select.order_by[k].expr, table, r));
        keys.push_back(std::move(v));
      }
      result.rows.push_back(std::move(row));
      sort_keys.push_back(std::move(keys));
    }
  }

  // DISTINCT: dedupe projected rows (first occurrence wins).
  if (select.distinct) {
    std::set<std::string> seen;
    std::vector<std::vector<Value>> rows;
    std::vector<std::vector<Value>> keys;
    for (size_t i = 0; i < result.rows.size(); ++i) {
      if (seen.insert(GroupKey(result.rows[i])).second) {
        rows.push_back(std::move(result.rows[i]));
        keys.push_back(std::move(sort_keys[i]));
      }
    }
    result.rows = std::move(rows);
    sort_keys = std::move(keys);
  }

  if (!select.order_by.empty()) {
    std::vector<size_t> order(result.rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < select.order_by.size(); ++k) {
        int cmp = sort_keys[a][k].Compare(sort_keys[b][k]);
        if (cmp != 0) return select.order_by[k].ascending ? cmp < 0 : cmp > 0;
      }
      return false;
    });
    std::vector<std::vector<Value>> sorted;
    sorted.reserve(result.rows.size());
    for (size_t i : order) sorted.push_back(std::move(result.rows[i]));
    result.rows = std::move(sorted);
  }

  if (select.limit.has_value() && result.rows.size() > *select.limit) {
    result.rows.resize(*select.limit);
  }
  return result;
}

}  // namespace mcsm::sql
