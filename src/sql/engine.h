#ifndef MCSM_SQL_ENGINE_H_
#define MCSM_SQL_ENGINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/database.h"
#include "relational/value.h"
#include "sql/ast.h"

namespace mcsm::sql {

/// \brief Tabular query result: column names plus row-major values.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<relational::Value>> rows;

  size_t num_rows() const { return rows.size(); }
  size_t num_columns() const { return columns.size(); }

  /// Convenience for single-cell results (e.g. count(*) queries).
  Result<relational::Value> ScalarValue() const;

  /// Renders an ASCII table for display.
  std::string ToString(size_t max_rows = 20) const;
};

/// \brief Executes parsed or textual SQL statements against a Database.
///
/// Execution is row-at-a-time over the in-memory tables: filter (WHERE) →
/// group (GROUP BY/HAVING) → project/aggregate → dedupe (DISTINCT) → sort
/// (ORDER BY) → LIMIT, plus UPDATE/DELETE/DROP. This is the "basic SQL
/// facility" the paper assumes of the co-operating DBMS.
class Engine {
 public:
  explicit Engine(relational::Database* db) : db_(db) {}

  /// Parses and executes one statement. CREATE/INSERT/UPDATE/DELETE/DROP
  /// return an empty ResultSet ("rows affected" is not modeled).
  Result<ResultSet> Execute(std::string_view sql);

  /// Executes an already-parsed statement.
  Result<ResultSet> ExecuteStatement(const Statement& stmt);

  relational::Database* database() { return db_; }

 private:
  Result<ResultSet> ExecuteSelect(const SelectStatement& select);
  Result<ResultSet> ExecuteCreateTable(const CreateTableStatement& create);
  Result<ResultSet> ExecuteInsert(const InsertStatement& insert);
  Result<ResultSet> ExecuteUpdate(const UpdateStatement& update);
  Result<ResultSet> ExecuteDelete(const DeleteStatement& del);

  relational::Database* db_;
};

}  // namespace mcsm::sql

#endif  // MCSM_SQL_ENGINE_H_
