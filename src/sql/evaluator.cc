#include "sql/evaluator.h"

#include <algorithm>
#include <set>
#include <cmath>

#include "common/string_util.h"
#include "relational/pattern.h"

namespace mcsm::sql {

using relational::Value;

namespace {

// Three-valued logic encoding: -1 unknown (NULL), 0 false, 1 true.
int ToTruth(const Value& v) {
  if (v.is_null()) return -1;
  if (v.is_numeric()) return v.AsDouble() != 0.0 ? 1 : 0;
  return -1;
}

Result<Value> EvalBinary(const Expr& expr, const Value& lhs, const Value& rhs) {
  const std::string& op = expr.op;
  if (op == "and" || op == "or") {
    int a = ToTruth(lhs), b = ToTruth(rhs);
    if (op == "and") {
      if (a == 0 || b == 0) return Value(static_cast<int64_t>(0));
      if (a == 1 && b == 1) return Value(static_cast<int64_t>(1));
      return Value::MakeNull();
    }
    if (a == 1 || b == 1) return Value(static_cast<int64_t>(1));
    if (a == 0 && b == 0) return Value(static_cast<int64_t>(0));
    return Value::MakeNull();
  }
  if (lhs.is_null() || rhs.is_null()) return Value::MakeNull();
  if (op == "||") {
    std::string a = lhs.is_text() ? lhs.text() : lhs.ToDisplayString();
    std::string b = rhs.is_text() ? rhs.text() : rhs.ToDisplayString();
    return Value(a + b);
  }
  if (op == "+" || op == "-" || op == "*" || op == "/") {
    if (!lhs.is_numeric() || !rhs.is_numeric()) {
      return Status::TypeError("arithmetic on non-numeric value");
    }
    if (lhs.is_integer() && rhs.is_integer() && op != "/") {
      int64_t a = lhs.integer(), b = rhs.integer();
      if (op == "+") return Value(a + b);
      if (op == "-") return Value(a - b);
      return Value(a * b);
    }
    double a = lhs.AsDouble(), b = rhs.AsDouble();
    if (op == "+") return Value(a + b);
    if (op == "-") return Value(a - b);
    if (op == "*") return Value(a * b);
    if (b == 0.0) return Status::InvalidArgument("division by zero");
    if (lhs.is_integer() && rhs.is_integer()) {
      return Value(lhs.integer() / rhs.integer());
    }
    return Value(a / b);
  }
  // Comparisons.
  int cmp;
  if (lhs.is_numeric() && rhs.is_numeric()) {
    double a = lhs.AsDouble(), b = rhs.AsDouble();
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else if (lhs.is_text() && rhs.is_text()) {
    int c = lhs.text().compare(rhs.text());
    cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
  } else {
    return Status::TypeError("cannot compare " + lhs.ToDisplayString() + " with " +
                             rhs.ToDisplayString());
  }
  bool result;
  if (op == "=") {
    result = cmp == 0;
  } else if (op == "<>") {
    result = cmp != 0;
  } else if (op == "<") {
    result = cmp < 0;
  } else if (op == "<=") {
    result = cmp <= 0;
  } else if (op == ">") {
    result = cmp > 0;
  } else if (op == ">=") {
    result = cmp >= 0;
  } else {
    return Status::Internal("unknown binary operator: " + op);
  }
  return Value(static_cast<int64_t>(result ? 1 : 0));
}

Result<Value> EvalFunction(const Expr& expr, const std::vector<Value>& args) {
  const std::string& name = expr.name;
  auto require_args = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::InvalidArgument(
          StrFormat("%s() expects %zu argument(s), got %zu", name.c_str(), n,
                    args.size()));
    }
    return Status::OK();
  };
  if (name == "char_length" || name == "length") {
    MCSM_RETURN_IF_ERROR(require_args(1));
    if (args[0].is_null()) return Value::MakeNull();
    if (!args[0].is_text()) return Status::TypeError(name + "() expects TEXT");
    return Value(static_cast<int64_t>(args[0].text().size()));
  }
  if (name == "lower" || name == "upper") {
    MCSM_RETURN_IF_ERROR(require_args(1));
    if (args[0].is_null()) return Value::MakeNull();
    if (!args[0].is_text()) return Status::TypeError(name + "() expects TEXT");
    return Value(name == "lower" ? ToLower(args[0].text())
                                 : ToUpper(args[0].text()));
  }
  if (name == "concat") {
    std::string out;
    for (const auto& a : args) {
      if (a.is_null()) continue;  // concat() skips NULLs (PostgreSQL semantics)
      out += a.is_text() ? a.text() : a.ToDisplayString();
    }
    return Value(out);
  }
  if (name == "replace") {
    MCSM_RETURN_IF_ERROR(require_args(3));
    for (const auto& a : args) {
      if (a.is_null()) return Value::MakeNull();
      if (!a.is_text()) return Status::TypeError("replace() expects TEXT");
    }
    const std::string& subject = args[0].text();
    const std::string& needle = args[1].text();
    const std::string& repl = args[2].text();
    if (needle.empty()) return Value(subject);
    std::string out;
    size_t pos = 0;
    while (true) {
      size_t found = subject.find(needle, pos);
      if (found == std::string::npos) {
        out += subject.substr(pos);
        break;
      }
      out += subject.substr(pos, found - pos);
      out += repl;
      pos = found + needle.size();
    }
    return Value(out);
  }
  if (name == "abs") {
    MCSM_RETURN_IF_ERROR(require_args(1));
    if (args[0].is_null()) return Value::MakeNull();
    if (args[0].is_integer()) return Value(std::abs(args[0].integer()));
    if (args[0].is_real()) return Value(std::abs(args[0].real()));
    return Status::TypeError("abs() expects a numeric value");
  }
  return Status::NotImplemented("unknown function: " + name);
}

}  // namespace

Result<Value> EvalScalar(const Expr& expr, const relational::Table* table,
                         size_t row) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumnRef: {
      if (table == nullptr) {
        return Status::InvalidArgument("column reference without a table: " +
                                       expr.name);
      }
      auto col = table->schema().FindColumn(expr.name);
      if (!col.has_value()) {
        return Status::NotFound("no such column: " + expr.name);
      }
      return table->ValueAt(row, *col);
    }
    case ExprKind::kUnary: {
      MCSM_ASSIGN_OR_RETURN(Value v, EvalScalar(*expr.args[0], table, row));
      if (expr.op == "not") {
        int t = ToTruth(v);
        if (t < 0) return Value::MakeNull();
        return Value(static_cast<int64_t>(t == 0 ? 1 : 0));
      }
      if (expr.op == "-") {
        if (v.is_null()) return Value::MakeNull();
        if (v.is_integer()) return Value(-v.integer());
        if (v.is_real()) return Value(-v.real());
        return Status::TypeError("unary minus on non-numeric value");
      }
      return Status::Internal("unknown unary operator: " + expr.op);
    }
    case ExprKind::kBinary: {
      // AND/OR need lazy-ish handling for three-valued logic but both sides
      // are side-effect free, so evaluating eagerly is fine.
      MCSM_ASSIGN_OR_RETURN(Value lhs, EvalScalar(*expr.args[0], table, row));
      MCSM_ASSIGN_OR_RETURN(Value rhs, EvalScalar(*expr.args[1], table, row));
      return EvalBinary(expr, lhs, rhs);
    }
    case ExprKind::kLike: {
      MCSM_ASSIGN_OR_RETURN(Value subject, EvalScalar(*expr.args[0], table, row));
      MCSM_ASSIGN_OR_RETURN(Value pattern, EvalScalar(*expr.args[1], table, row));
      if (subject.is_null() || pattern.is_null()) return Value::MakeNull();
      if (!subject.is_text() || !pattern.is_text()) {
        return Status::TypeError("LIKE expects TEXT operands");
      }
      bool matched = relational::LikeMatch(subject.text(), pattern.text());
      if (expr.negated) matched = !matched;
      return Value(static_cast<int64_t>(matched ? 1 : 0));
    }
    case ExprKind::kIsNull: {
      MCSM_ASSIGN_OR_RETURN(Value v, EvalScalar(*expr.args[0], table, row));
      bool is_null = v.is_null();
      if (expr.negated) is_null = !is_null;
      return Value(static_cast<int64_t>(is_null ? 1 : 0));
    }
    case ExprKind::kFunction: {
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const auto& a : expr.args) {
        MCSM_ASSIGN_OR_RETURN(Value v, EvalScalar(*a, table, row));
        args.push_back(std::move(v));
      }
      return EvalFunction(expr, args);
    }
    case ExprKind::kSubstring: {
      MCSM_ASSIGN_OR_RETURN(Value subject, EvalScalar(*expr.args[0], table, row));
      MCSM_ASSIGN_OR_RETURN(Value from, EvalScalar(*expr.args[1], table, row));
      Value count;
      if (expr.args.size() > 2) {
        MCSM_ASSIGN_OR_RETURN(count, EvalScalar(*expr.args[2], table, row));
      }
      if (subject.is_null() || from.is_null() ||
          (expr.args.size() > 2 && count.is_null())) {
        return Value::MakeNull();
      }
      if (!subject.is_text() || !from.is_integer() ||
          (expr.args.size() > 2 && !count.is_integer())) {
        return Status::TypeError("substring(TEXT from INT [for INT])");
      }
      const std::string& s = subject.text();
      // SQL-standard semantics (as in PostgreSQL): the result is the
      // intersection of [from, from+count) with [1, len+1), 1-based.
      int64_t start = from.integer();
      int64_t end;  // exclusive, 1-based
      if (expr.args.size() > 2) {
        if (count.integer() < 0) {
          return Status::InvalidArgument("negative substring length");
        }
        end = start + count.integer();
      } else {
        end = static_cast<int64_t>(s.size()) + 1;
      }
      int64_t lo = std::max<int64_t>(start, 1);
      int64_t hi = std::min<int64_t>(end, static_cast<int64_t>(s.size()) + 1);
      if (lo >= hi) return Value(std::string());
      return Value(s.substr(static_cast<size_t>(lo - 1),
                            static_cast<size_t>(hi - lo)));
    }
    case ExprKind::kPosition: {
      MCSM_ASSIGN_OR_RETURN(Value needle, EvalScalar(*expr.args[0], table, row));
      MCSM_ASSIGN_OR_RETURN(Value hay, EvalScalar(*expr.args[1], table, row));
      if (needle.is_null() || hay.is_null()) return Value::MakeNull();
      if (!needle.is_text() || !hay.is_text()) {
        return Status::TypeError("position(TEXT in TEXT)");
      }
      size_t found = hay.text().find(needle.text());
      return Value(static_cast<int64_t>(
          found == std::string::npos ? 0 : found + 1));
    }
    case ExprKind::kAggregate:
      return Status::InvalidArgument(
          "aggregate used in a scalar context: " + expr.name);
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> EvalPredicate(const Expr& expr, const relational::Table* table,
                           size_t row) {
  MCSM_ASSIGN_OR_RETURN(Value v, EvalScalar(expr, table, row));
  return ToTruth(v) == 1;
}

Result<Value> EvalAggregate(const Expr& expr, const relational::Table* table,
                            const std::vector<size_t>& rows) {
  if (expr.kind == ExprKind::kAggregate) {
    if (expr.args.empty()) {
      // count(*)
      return Value(static_cast<int64_t>(rows.size()));
    }
    const Expr& arg = *expr.args[0];
    if (expr.name == "count") {
      if (expr.distinct) {
        std::set<std::string> seen_text;
        std::set<double> seen_num;
        int64_t count = 0;
        for (size_t r : rows) {
          MCSM_ASSIGN_OR_RETURN(Value v, EvalScalar(arg, table, r));
          if (v.is_null()) continue;
          if (v.is_text()) {
            if (seen_text.insert(v.text()).second) ++count;
          } else {
            if (seen_num.insert(v.AsDouble()).second) ++count;
          }
        }
        return Value(count);
      }
      int64_t count = 0;
      for (size_t r : rows) {
        MCSM_ASSIGN_OR_RETURN(Value v, EvalScalar(arg, table, r));
        if (!v.is_null()) ++count;
      }
      return Value(count);
    }
    if (expr.name == "sum" || expr.name == "avg") {
      double total = 0;
      int64_t count = 0;
      bool all_int = true;
      for (size_t r : rows) {
        MCSM_ASSIGN_OR_RETURN(Value v, EvalScalar(arg, table, r));
        if (v.is_null()) continue;
        if (!v.is_numeric()) {
          return Status::TypeError(expr.name + "() expects numeric values");
        }
        if (!v.is_integer()) all_int = false;
        total += v.AsDouble();
        ++count;
      }
      if (count == 0) return Value::MakeNull();
      if (expr.name == "avg") return Value(total / static_cast<double>(count));
      if (all_int) return Value(static_cast<int64_t>(total));
      return Value(total);
    }
    if (expr.name == "min" || expr.name == "max") {
      Value best;
      for (size_t r : rows) {
        MCSM_ASSIGN_OR_RETURN(Value v, EvalScalar(arg, table, r));
        if (v.is_null()) continue;
        if (best.is_null()) {
          best = std::move(v);
          continue;
        }
        int cmp = v.Compare(best);
        if ((expr.name == "min" && cmp < 0) || (expr.name == "max" && cmp > 0)) {
          best = std::move(v);
        }
      }
      return best;
    }
    return Status::NotImplemented("unknown aggregate: " + expr.name);
  }

  if (!ContainsAggregate(expr)) {
    // Constant subtree (no row context available at aggregation level).
    return EvalScalar(expr, nullptr, 0);
  }

  switch (expr.kind) {
    case ExprKind::kBinary: {
      MCSM_ASSIGN_OR_RETURN(Value lhs, EvalAggregate(*expr.args[0], table, rows));
      MCSM_ASSIGN_OR_RETURN(Value rhs, EvalAggregate(*expr.args[1], table, rows));
      return EvalBinary(expr, lhs, rhs);
    }
    case ExprKind::kUnary: {
      MCSM_ASSIGN_OR_RETURN(Value v, EvalAggregate(*expr.args[0], table, rows));
      if (expr.op == "-") {
        if (v.is_null()) return Value::MakeNull();
        if (v.is_integer()) return Value(-v.integer());
        if (v.is_real()) return Value(-v.real());
        return Status::TypeError("unary minus on non-numeric value");
      }
      int t = ToTruth(v);
      if (t < 0) return Value::MakeNull();
      return Value(static_cast<int64_t>(t == 0 ? 1 : 0));
    }
    default:
      return Status::NotImplemented(
          "aggregates may only be composed with scalar operators");
  }
}

bool ContainsAggregate(const Expr& expr) {
  if (expr.kind == ExprKind::kAggregate) return true;
  for (const auto& a : expr.args) {
    if (a && ContainsAggregate(*a)) return true;
  }
  return false;
}

std::string ExprToString(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      if (expr.literal.is_text()) {
        std::string escaped;
        for (char c : expr.literal.text()) {
          escaped += c;
          if (c == '\'') escaped += '\'';
        }
        return "'" + escaped + "'";
      }
      return expr.literal.ToDisplayString();
    case ExprKind::kColumnRef:
      return expr.name;
    case ExprKind::kUnary:
      return expr.op == "not" ? "not " + ExprToString(*expr.args[0])
                              : "-" + ExprToString(*expr.args[0]);
    case ExprKind::kBinary:
      return "(" + ExprToString(*expr.args[0]) + " " + expr.op + " " +
             ExprToString(*expr.args[1]) + ")";
    case ExprKind::kLike:
      return ExprToString(*expr.args[0]) + (expr.negated ? " not like " : " like ") +
             ExprToString(*expr.args[1]);
    case ExprKind::kIsNull:
      return ExprToString(*expr.args[0]) +
             (expr.negated ? " is not null" : " is null");
    case ExprKind::kFunction: {
      std::string out = expr.name + "(";
      for (size_t i = 0; i < expr.args.size(); ++i) {
        if (i) out += ", ";
        out += ExprToString(*expr.args[i]);
      }
      return out + ")";
    }
    case ExprKind::kSubstring: {
      std::string out = "substring(" + ExprToString(*expr.args[0]) + " from " +
                        ExprToString(*expr.args[1]);
      if (expr.args.size() > 2) out += " for " + ExprToString(*expr.args[2]);
      return out + ")";
    }
    case ExprKind::kPosition:
      return "position(" + ExprToString(*expr.args[0]) + " in " +
             ExprToString(*expr.args[1]) + ")";
    case ExprKind::kAggregate: {
      std::string out = expr.name + "(";
      if (expr.args.empty()) {
        out += "*";
      } else {
        if (expr.distinct) out += "distinct ";
        out += ExprToString(*expr.args[0]);
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace mcsm::sql
