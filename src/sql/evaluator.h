#ifndef MCSM_SQL_EVALUATOR_H_
#define MCSM_SQL_EVALUATOR_H_

#include <cstddef>

#include "common/result.h"
#include "relational/table.h"
#include "sql/ast.h"

namespace mcsm::sql {

/// \brief Scalar expression evaluation against one row of a table.
///
/// SQL NULL semantics: any NULL operand yields NULL for scalar operators and
/// functions; AND/OR use three-valued logic; comparisons with NULL yield
/// NULL. Booleans are represented as INTEGER 0/1 (NULL for unknown).
///
/// `table` may be null for table-less evaluation (constant expressions);
/// column references then fail with InvalidArgument.
Result<relational::Value> EvalScalar(const Expr& expr,
                                     const relational::Table* table,
                                     size_t row);

/// Evaluates `expr` as a WHERE predicate: true only when the value is a
/// non-null, non-zero numeric.
Result<bool> EvalPredicate(const Expr& expr, const relational::Table* table,
                           size_t row);

/// True when the expression tree contains an aggregate node.
bool ContainsAggregate(const Expr& expr);

/// Evaluates an expression containing aggregates over the given row set
/// (single-group aggregation). Non-aggregate subtrees must be constant.
/// Supports count(*) / count(x) / count(distinct x) / sum / avg / min / max,
/// composed with scalar operators (e.g. `count(*) * 2`).
Result<relational::Value> EvalAggregate(const Expr& expr,
                                        const relational::Table* table,
                                        const std::vector<size_t>& rows);

/// Renders an expression back to SQL text (for error messages and display).
std::string ExprToString(const Expr& expr);

}  // namespace mcsm::sql

#endif  // MCSM_SQL_EVALUATOR_H_
