#include "sql/lexer.h"

#include <array>
#include <cctype>

#include "common/string_util.h"

namespace mcsm::sql {

namespace {

bool IsKeywordWord(const std::string& lower) {
  static constexpr std::array<std::string_view, 44> kKeywords = {
      "select", "from",   "where",  "and",    "or",     "not",    "as",
      "like",   "is",     "null",   "order",  "by",     "asc",    "desc",
      "limit",  "create", "table",  "insert", "into",   "values", "distinct",
      "count",  "sum",    "avg",    "min",    "max",    "substring", "for",
      "text",   "integer", "real",  "char_length", "length", "lower", "upper",
      "position", "in",   "offset", "group",  "having", "update", "set",
      "delete", "drop",
  };
  for (auto k : kKeywords) {
    if (lower == k) return true;
  }
  return false;
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    // Line comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    if (c == '\'') {
      // String literal with '' escape.
      std::string value;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            value.push_back('\'');
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          value.push_back(sql[i]);
          ++i;
        }
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %zu", start));
      }
      tokens.push_back({TokenType::kString, std::move(value), 0, 0, start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t end = i;
      bool is_real = false;
      while (end < n && (std::isdigit(static_cast<unsigned char>(sql[end])) ||
                         sql[end] == '.')) {
        if (sql[end] == '.') is_real = true;
        ++end;
      }
      std::string text(sql.substr(i, end - i));
      Token tok;
      tok.position = start;
      tok.text = text;
      if (is_real) {
        tok.type = TokenType::kReal;
        tok.real = std::stod(text);
      } else {
        tok.type = TokenType::kInteger;
        tok.integer = std::stoll(text);
      }
      tokens.push_back(std::move(tok));
      i = end;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = i;
      while (end < n && (std::isalnum(static_cast<unsigned char>(sql[end])) ||
                         sql[end] == '_')) {
        ++end;
      }
      std::string lower = ToLower(sql.substr(i, end - i));
      TokenType type =
          IsKeywordWord(lower) ? TokenType::kKeyword : TokenType::kIdentifier;
      tokens.push_back({type, std::move(lower), 0, 0, start});
      i = end;
      continue;
    }
    // Symbols, longest-first.
    auto push_symbol = [&](std::string sym) {
      size_t len = sym.size();
      tokens.push_back({TokenType::kSymbol, std::move(sym), 0, 0, start});
      i += len;
    };
    if (c == '|' && i + 1 < n && sql[i + 1] == '|') {
      push_symbol("||");
      continue;
    }
    if (c == '<' && i + 1 < n && sql[i + 1] == '>') {
      push_symbol("<>");
      continue;
    }
    if (c == '!' && i + 1 < n && sql[i + 1] == '=') {
      push_symbol("<>");  // normalize != to <>
      continue;
    }
    if (c == '<' && i + 1 < n && sql[i + 1] == '=') {
      push_symbol("<=");
      continue;
    }
    if (c == '>' && i + 1 < n && sql[i + 1] == '=') {
      push_symbol(">=");
      continue;
    }
    if (std::string_view("()*,=<>+-/.;").find(c) != std::string_view::npos) {
      push_symbol(std::string(1, c));
      continue;
    }
    return Status::ParseError(
        StrFormat("unexpected character '%c' at offset %zu", c, start));
  }
  tokens.push_back({TokenType::kEnd, "", 0, 0, n});
  return tokens;
}

}  // namespace mcsm::sql
