#ifndef MCSM_SQL_LEXER_H_
#define MCSM_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mcsm::sql {

enum class TokenType {
  kIdentifier,  ///< bare word that is not a keyword (normalized lower-case)
  kKeyword,     ///< SQL keyword (normalized lower-case)
  kString,      ///< 'single quoted', with '' as the quote escape
  kInteger,
  kReal,
  kSymbol,      ///< operator/punctuation: ( ) , * = <> <= >= < > + - / || .
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     ///< normalized text (keywords/identifiers lower-cased)
  int64_t integer = 0;  ///< valid when type == kInteger
  double real = 0;      ///< valid when type == kReal
  size_t position = 0;  ///< byte offset in the input, for error messages

  bool Is(TokenType t, std::string_view s) const {
    return type == t && text == s;
  }
  bool IsKeyword(std::string_view s) const { return Is(TokenType::kKeyword, s); }
  bool IsSymbol(std::string_view s) const { return Is(TokenType::kSymbol, s); }
};

/// Tokenizes a SQL string. Keywords are recognized case-insensitively.
/// Returns ParseError on malformed input (unterminated string, stray char).
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace mcsm::sql

#endif  // MCSM_SQL_LEXER_H_
