#include "sql/parser.h"

#include <utility>

#include "common/string_util.h"

namespace mcsm::sql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (Peek().IsKeyword("select")) {
      MCSM_ASSIGN_OR_RETURN(auto select, ParseSelect());
      stmt.select = std::make_unique<SelectStatement>(std::move(select));
    } else if (Peek().IsKeyword("create")) {
      MCSM_ASSIGN_OR_RETURN(auto create, ParseCreateTable());
      stmt.create_table =
          std::make_unique<CreateTableStatement>(std::move(create));
    } else if (Peek().IsKeyword("insert")) {
      MCSM_ASSIGN_OR_RETURN(auto insert, ParseInsert());
      stmt.insert = std::make_unique<InsertStatement>(std::move(insert));
    } else if (Peek().IsKeyword("update")) {
      MCSM_ASSIGN_OR_RETURN(auto update, ParseUpdate());
      stmt.update = std::make_unique<UpdateStatement>(std::move(update));
    } else if (Peek().IsKeyword("delete")) {
      MCSM_ASSIGN_OR_RETURN(auto del, ParseDelete());
      stmt.del = std::make_unique<DeleteStatement>(std::move(del));
    } else if (Peek().IsKeyword("drop")) {
      MCSM_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "drop"));
      MCSM_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "table"));
      DropTableStatement drop;
      MCSM_ASSIGN_OR_RETURN(drop.table, ExpectIdentifier());
      stmt.drop_table =
          std::make_unique<DropTableStatement>(std::move(drop));
    } else {
      return ErrorHere(
          "expected SELECT, CREATE, INSERT, UPDATE, DELETE or DROP");
    }
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      return ErrorHere("trailing input after statement");
    }
    return stmt;
  }

  Result<ExprPtr> ParseStandaloneExpression() {
    MCSM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Peek().type != TokenType::kEnd) {
      return ErrorHere("trailing input after expression");
    }
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Accept(TokenType type, std::string_view text) {
    if (Peek().Is(type, text)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptKeyword(std::string_view kw) {
    return Accept(TokenType::kKeyword, kw);
  }
  bool AcceptSymbol(std::string_view sym) {
    return Accept(TokenType::kSymbol, sym);
  }
  Status Expect(TokenType type, std::string_view text) {
    if (!Accept(type, text)) {
      return Status::ParseError(StrFormat("expected '%s' at offset %zu, got '%s'",
                                          std::string(text).c_str(),
                                          Peek().position, Peek().text.c_str()));
    }
    return Status::OK();
  }
  Status ErrorHere(std::string_view what) const {
    return Status::ParseError(StrFormat("%s at offset %zu (near '%s')",
                                        std::string(what).c_str(),
                                        Peek().position, Peek().text.c_str()));
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError(StrFormat("expected identifier at offset %zu",
                                          Peek().position));
    }
    return Advance().text;
  }

  Result<SelectStatement> ParseSelect() {
    MCSM_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "select"));
    SelectStatement select;
    select.distinct = AcceptKeyword("distinct");
    // Select list.
    do {
      SelectItem item;
      if (Peek().IsSymbol("*")) {
        Advance();
        item.is_star = true;
      } else {
        MCSM_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("as")) {
          MCSM_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
        } else if (Peek().type == TokenType::kIdentifier) {
          // Bare alias.
          item.alias = Advance().text;
        }
      }
      select.items.push_back(std::move(item));
    } while (AcceptSymbol(","));

    if (AcceptKeyword("from")) {
      MCSM_ASSIGN_OR_RETURN(select.from_table, ExpectIdentifier());
    }
    if (AcceptKeyword("where")) {
      MCSM_ASSIGN_OR_RETURN(select.where, ParseExpr());
    }
    if (AcceptKeyword("group")) {
      MCSM_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "by"));
      do {
        MCSM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        select.group_by.push_back(std::move(e));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("having")) {
      MCSM_ASSIGN_OR_RETURN(select.having, ParseExpr());
    }
    if (AcceptKeyword("order")) {
      MCSM_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "by"));
      do {
        OrderItem item;
        MCSM_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("desc")) {
          item.ascending = false;
        } else {
          AcceptKeyword("asc");
        }
        select.order_by.push_back(std::move(item));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("limit")) {
      if (Peek().type != TokenType::kInteger) {
        return ErrorHere("expected integer after LIMIT");
      }
      select.limit = static_cast<size_t>(Advance().integer);
    }
    return select;
  }

  Result<CreateTableStatement> ParseCreateTable() {
    MCSM_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "create"));
    MCSM_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "table"));
    CreateTableStatement create;
    MCSM_ASSIGN_OR_RETURN(create.table, ExpectIdentifier());
    MCSM_RETURN_IF_ERROR(Expect(TokenType::kSymbol, "("));
    do {
      relational::ColumnDef def;
      MCSM_ASSIGN_OR_RETURN(def.name, ExpectIdentifier());
      if (AcceptKeyword("text")) {
        def.type = relational::ColumnType::kText;
      } else if (AcceptKeyword("integer")) {
        def.type = relational::ColumnType::kInteger;
      } else if (AcceptKeyword("real")) {
        def.type = relational::ColumnType::kReal;
      } else {
        return ErrorHere("expected column type (TEXT, INTEGER, REAL)");
      }
      create.columns.push_back(std::move(def));
    } while (AcceptSymbol(","));
    MCSM_RETURN_IF_ERROR(Expect(TokenType::kSymbol, ")"));
    return create;
  }

  Result<InsertStatement> ParseInsert() {
    MCSM_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "insert"));
    MCSM_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "into"));
    InsertStatement insert;
    MCSM_ASSIGN_OR_RETURN(insert.table, ExpectIdentifier());
    MCSM_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "values"));
    do {
      MCSM_RETURN_IF_ERROR(Expect(TokenType::kSymbol, "("));
      std::vector<ExprPtr> row;
      do {
        MCSM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
      } while (AcceptSymbol(","));
      MCSM_RETURN_IF_ERROR(Expect(TokenType::kSymbol, ")"));
      insert.rows.push_back(std::move(row));
    } while (AcceptSymbol(","));
    return insert;
  }

  Result<UpdateStatement> ParseUpdate() {
    MCSM_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "update"));
    UpdateStatement update;
    MCSM_ASSIGN_OR_RETURN(update.table, ExpectIdentifier());
    MCSM_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "set"));
    do {
      std::string column;
      MCSM_ASSIGN_OR_RETURN(column, ExpectIdentifier());
      MCSM_RETURN_IF_ERROR(Expect(TokenType::kSymbol, "="));
      MCSM_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      update.assignments.emplace_back(std::move(column), std::move(value));
    } while (AcceptSymbol(","));
    if (AcceptKeyword("where")) {
      MCSM_ASSIGN_OR_RETURN(update.where, ParseExpr());
    }
    return update;
  }

  Result<DeleteStatement> ParseDelete() {
    MCSM_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "delete"));
    MCSM_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "from"));
    DeleteStatement del;
    MCSM_ASSIGN_OR_RETURN(del.table, ExpectIdentifier());
    if (AcceptKeyword("where")) {
      MCSM_ASSIGN_OR_RETURN(del.where, ParseExpr());
    }
    return del;
  }

  // Expression grammar, lowest precedence first.
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    MCSM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AcceptKeyword("or")) {
      MCSM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary("or", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    MCSM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (AcceptKeyword("and")) {
      MCSM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Binary("and", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("not")) {
      MCSM_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->op = "not";
      e->args.push_back(std::move(operand));
      return ExprPtr(std::move(e));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    MCSM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    // IS [NOT] NULL
    if (AcceptKeyword("is")) {
      bool negated = AcceptKeyword("not");
      MCSM_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "null"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIsNull;
      e->negated = negated;
      e->args.push_back(std::move(lhs));
      return ExprPtr(std::move(e));
    }
    // [NOT] LIKE
    bool negated = false;
    if (Peek().IsKeyword("not") && Peek(1).IsKeyword("like")) {
      Advance();
      negated = true;
    }
    if (AcceptKeyword("like")) {
      MCSM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kLike;
      e->negated = negated;
      e->args.push_back(std::move(lhs));
      e->args.push_back(std::move(rhs));
      return ExprPtr(std::move(e));
    }
    if (negated) return ErrorHere("expected LIKE after NOT");
    for (const char* op : {"=", "<>", "<=", ">=", "<", ">"}) {
      if (AcceptSymbol(op)) {
        MCSM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return ExprPtr(Expr::Binary(op, std::move(lhs), std::move(rhs)));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    MCSM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      const char* op = nullptr;
      if (Peek().IsSymbol("+")) {
        op = "+";
      } else if (Peek().IsSymbol("-")) {
        op = "-";
      } else if (Peek().IsSymbol("||")) {
        op = "||";
      } else {
        break;
      }
      Advance();
      MCSM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    MCSM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      const char* op = nullptr;
      if (Peek().IsSymbol("*")) {
        op = "*";
      } else if (Peek().IsSymbol("/")) {
        op = "/";
      } else {
        break;
      }
      Advance();
      MCSM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (AcceptSymbol("-")) {
      MCSM_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->op = "-";
      e->args.push_back(std::move(operand));
      return ExprPtr(std::move(e));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    if (tok.type == TokenType::kInteger) {
      Advance();
      return ExprPtr(Expr::Literal(relational::Value(tok.integer)));
    }
    if (tok.type == TokenType::kReal) {
      Advance();
      return ExprPtr(Expr::Literal(relational::Value(tok.real)));
    }
    if (tok.type == TokenType::kString) {
      Advance();
      return ExprPtr(Expr::Literal(relational::Value(tok.text)));
    }
    if (tok.IsKeyword("null")) {
      Advance();
      return ExprPtr(Expr::Literal(relational::Value::MakeNull()));
    }
    if (tok.IsSymbol("(")) {
      Advance();
      MCSM_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      MCSM_RETURN_IF_ERROR(Expect(TokenType::kSymbol, ")"));
      return inner;
    }
    if (tok.IsKeyword("substring")) {
      Advance();
      return ParseSubstringCall();
    }
    if (tok.IsKeyword("position")) {
      Advance();
      MCSM_RETURN_IF_ERROR(Expect(TokenType::kSymbol, "("));
      MCSM_ASSIGN_OR_RETURN(ExprPtr needle, ParseExpr());
      MCSM_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "in"));
      MCSM_ASSIGN_OR_RETURN(ExprPtr haystack, ParseExpr());
      MCSM_RETURN_IF_ERROR(Expect(TokenType::kSymbol, ")"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kPosition;
      e->args.push_back(std::move(needle));
      e->args.push_back(std::move(haystack));
      return ExprPtr(std::move(e));
    }
    // Aggregates.
    for (const char* agg : {"count", "sum", "avg", "min", "max"}) {
      if (tok.IsKeyword(agg)) {
        Advance();
        MCSM_RETURN_IF_ERROR(Expect(TokenType::kSymbol, "("));
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kAggregate;
        e->name = agg;
        if (AcceptSymbol("*")) {
          if (e->name != "count") return ErrorHere("'*' only valid in count(*)");
        } else {
          e->distinct = AcceptKeyword("distinct");
          MCSM_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          e->args.push_back(std::move(arg));
        }
        MCSM_RETURN_IF_ERROR(Expect(TokenType::kSymbol, ")"));
        return ExprPtr(std::move(e));
      }
    }
    // Scalar functions spelled as keywords.
    for (const char* fn : {"char_length", "length", "lower", "upper"}) {
      if (tok.IsKeyword(fn)) {
        Advance();
        MCSM_RETURN_IF_ERROR(Expect(TokenType::kSymbol, "("));
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kFunction;
        e->name = tok.text;
        MCSM_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        e->args.push_back(std::move(arg));
        MCSM_RETURN_IF_ERROR(Expect(TokenType::kSymbol, ")"));
        return ExprPtr(std::move(e));
      }
    }
    if (tok.type == TokenType::kIdentifier) {
      Advance();
      // Function call or column ref.
      if (Peek().IsSymbol("(")) {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kFunction;
        e->name = tok.text;
        if (!Peek().IsSymbol(")")) {
          do {
            MCSM_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            e->args.push_back(std::move(arg));
          } while (AcceptSymbol(","));
        }
        MCSM_RETURN_IF_ERROR(Expect(TokenType::kSymbol, ")"));
        return ExprPtr(std::move(e));
      }
      return ExprPtr(Expr::Column(tok.text));
    }
    return ErrorHere("expected expression");
  }

  Result<ExprPtr> ParseSubstringCall() {
    MCSM_RETURN_IF_ERROR(Expect(TokenType::kSymbol, "("));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kSubstring;
    MCSM_ASSIGN_OR_RETURN(ExprPtr subject, ParseExpr());
    e->args.push_back(std::move(subject));
    if (AcceptKeyword("from")) {
      MCSM_ASSIGN_OR_RETURN(ExprPtr from, ParseExpr());
      e->args.push_back(std::move(from));
      if (AcceptKeyword("for")) {
        MCSM_ASSIGN_OR_RETURN(ExprPtr count, ParseExpr());
        e->args.push_back(std::move(count));
      }
    } else if (AcceptSymbol(",")) {
      MCSM_ASSIGN_OR_RETURN(ExprPtr from, ParseExpr());
      e->args.push_back(std::move(from));
      if (AcceptSymbol(",")) {
        MCSM_ASSIGN_OR_RETURN(ExprPtr count, ParseExpr());
        e->args.push_back(std::move(count));
      }
    } else {
      return ErrorHere("expected FROM or ',' in substring()");
    }
    MCSM_RETURN_IF_ERROR(Expect(TokenType::kSymbol, ")"));
    return ExprPtr(std::move(e));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> Parse(std::string_view sql) {
  MCSM_ASSIGN_OR_RETURN(auto tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<ExprPtr> ParseExpression(std::string_view expr) {
  MCSM_ASSIGN_OR_RETURN(auto tokens, Tokenize(expr));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

}  // namespace mcsm::sql
