#ifndef MCSM_SQL_PARSER_H_
#define MCSM_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace mcsm::sql {

/// Parses a single SQL statement (optionally ';'-terminated). Supported:
///   SELECT items FROM t [WHERE e] [ORDER BY e [ASC|DESC], ...] [LIMIT n]
///   SELECT items                       -- table-less expression evaluation
///   CREATE TABLE t (col TYPE, ...)
///   INSERT INTO t VALUES (...), (...)
Result<Statement> Parse(std::string_view sql);

/// Parses a standalone expression (used by tests and by programmatic query
/// construction).
Result<ExprPtr> ParseExpression(std::string_view expr);

}  // namespace mcsm::sql

#endif  // MCSM_SQL_PARSER_H_
