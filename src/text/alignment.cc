#include "text/alignment.h"

#include <algorithm>

#include "common/check.h"

namespace mcsm::text {

std::vector<MatchedRun> RunsFromScript(const std::vector<EditStep>& script) {
  std::vector<MatchedRun> runs;
  for (const auto& step : script) {
    if (step.op != EditOp::kMatch) continue;
    if (!runs.empty()) {
      MatchedRun& last = runs.back();
      if (last.source_start + last.length == step.source_pos &&
          last.target_start + last.length == step.target_pos) {
        ++last.length;
        continue;
      }
    }
    runs.push_back({step.source_pos, step.target_pos, 1});
  }
  return runs;
}

RecipeAlignment AlignLcsAnchored(std::string_view source, std::string_view target,
                                 const std::vector<bool>* target_allowed,
                                 const EditCosts& costs, LcsTieBreak tie) {
  RecipeAlignment result;
  if (target_allowed != nullptr) {
    MCSM_CHECK(target_allowed->size() == target.size())
        << "target mask has " << target_allowed->size()
        << " entries for a target of length " << target.size();
  }
  if (source.empty() || target.empty()) return result;

  CommonSubstring anchor =
      target_allowed == nullptr
          ? LongestCommonSubstring(source, target, tie)
          : MaskedLongestCommonSubstring(source, target, *target_allowed, tie);
  if (anchor.length == 0) return result;
  MCSM_DCHECK(anchor.source_start + anchor.length <= source.size());
  MCSM_DCHECK(anchor.target_start + anchor.length <= target.size());

  // Prefix: everything before the anchor in both strings.
  std::string_view src_prefix = SafeSubstr(source, 0, anchor.source_start);
  std::string_view tgt_prefix = SafeSubstr(target, 0, anchor.target_start);
  std::vector<EditStep> prefix_script;
  if (!src_prefix.empty() && !tgt_prefix.empty()) {
    if (target_allowed != nullptr) {
      std::vector<bool> mask(target_allowed->begin(),
                             target_allowed->begin() +
                                 static_cast<ptrdiff_t>(anchor.target_start));
      prefix_script = MaskedEditScript(src_prefix, tgt_prefix, mask, costs);
    } else {
      prefix_script = EditScript(src_prefix, tgt_prefix, costs);
    }
  }
  for (const auto& run : RunsFromScript(prefix_script)) result.runs.push_back(run);

  // The anchor itself.
  result.runs.push_back({anchor.source_start, anchor.target_start, anchor.length});

  // Suffix: everything after the anchor.
  size_t src_after = anchor.source_start + anchor.length;
  size_t tgt_after = anchor.target_start + anchor.length;
  std::string_view src_suffix = SafeSubstr(source, src_after);
  std::string_view tgt_suffix = SafeSubstr(target, tgt_after);
  std::vector<EditStep> suffix_script;
  if (!src_suffix.empty() && !tgt_suffix.empty()) {
    if (target_allowed != nullptr) {
      std::vector<bool> mask(target_allowed->begin() +
                                 static_cast<ptrdiff_t>(tgt_after),
                             target_allowed->end());
      suffix_script = MaskedEditScript(src_suffix, tgt_suffix, mask, costs);
    } else {
      suffix_script = EditScript(src_suffix, tgt_suffix, costs);
    }
  }
  for (auto run : RunsFromScript(suffix_script)) {
    run.source_start += src_after;
    run.target_start += tgt_after;
    result.runs.push_back(run);
  }

  // Merge runs that became adjacent across the anchor boundary (e.g. the
  // anchor ends where a suffix match begins with consecutive indices).
  std::vector<MatchedRun> merged;
  for (const auto& run : result.runs) {
    if (!merged.empty()) {
      MatchedRun& last = merged.back();
      if (last.source_start + last.length == run.source_start &&
          last.target_start + last.length == run.target_start) {
        last.length += run.length;
        continue;
      }
    }
    merged.push_back(run);
  }
  result.runs = std::move(merged);
  return result;
}

}  // namespace mcsm::text
