#ifndef MCSM_TEXT_ALIGNMENT_H_
#define MCSM_TEXT_ALIGNMENT_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/edit_distance.h"
#include "text/lcs.h"

namespace mcsm::text {

/// A maximal run of characters copied verbatim from the source string into
/// the target string: source[source_start, source_start+length) appears at
/// target[target_start, target_start+length), with both index ranges
/// consecutive. All indices 0-based.
struct MatchedRun {
  size_t source_start;
  size_t target_start;
  size_t length;

  bool operator==(const MatchedRun&) const = default;
};

/// \brief The result of aligning a source key against a target instance
/// (the paper's "recipe" ingredient, Sections 3.3.2 and 3.4.2).
///
/// The alignment is anchored on the leftmost longest common substring; the
/// regions before and after the anchor are completed with a minimum-cost edit
/// script (unit costs), whose Match steps contribute further runs. With a
/// target mask, masked positions can neither anchor nor match (Table 6).
struct RecipeAlignment {
  /// Matched runs in target order (strictly increasing target_start, and by
  /// construction strictly increasing source_start).
  std::vector<MatchedRun> runs;

  /// Total number of matched characters.
  size_t matched_chars() const {
    size_t total = 0;
    for (const auto& r : runs) total += r.length;
    return total;
  }
};

/// Aligns `source` (a value from a candidate source column — the "key")
/// against `target` (an instance of the aggregate column). If
/// `target_allowed` is non-null it must have target.size() entries; positions
/// with false are excluded from matching.
RecipeAlignment AlignLcsAnchored(std::string_view source, std::string_view target,
                                 const std::vector<bool>* target_allowed = nullptr,
                                 const EditCosts& costs = EditCosts{},
                                 LcsTieBreak tie = LcsTieBreak::kLeftmost);

/// Extracts matched runs from an arbitrary edit script (maximal runs of
/// kMatch steps with consecutive source and target positions).
std::vector<MatchedRun> RunsFromScript(const std::vector<EditStep>& script);

}  // namespace mcsm::text

#endif  // MCSM_TEXT_ALIGNMENT_H_
