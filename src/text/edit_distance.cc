#include "text/edit_distance.h"

#include <algorithm>
#include <limits>

namespace mcsm::text {

namespace {

constexpr int kInfinity = std::numeric_limits<int>::max() / 4;

// Full DP table for script extraction. dp[i][j] = min cost to transform
// source[0,i) into target[0,j).
std::vector<std::vector<int>> BuildTable(std::string_view source,
                                         std::string_view target,
                                         const std::vector<bool>* target_allowed,
                                         const EditCosts& costs) {
  const size_t n = source.size(), m = target.size();
  std::vector<std::vector<int>> dp(n + 1, std::vector<int>(m + 1, 0));
  for (size_t i = 1; i <= n; ++i) dp[i][0] = dp[i - 1][0] + costs.del;
  for (size_t j = 1; j <= m; ++j) dp[0][j] = dp[0][j - 1] + costs.insert;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const bool allowed = target_allowed == nullptr || (*target_allowed)[j - 1];
      int best = kInfinity;
      if (allowed && source[i - 1] == target[j - 1]) {
        best = dp[i - 1][j - 1];  // match, cost 0
      } else if (allowed) {
        best = dp[i - 1][j - 1] + costs.replace;
      }
      best = std::min(best, dp[i][j - 1] + costs.insert);
      best = std::min(best, dp[i - 1][j] + costs.del);
      dp[i][j] = best;
    }
  }
  return dp;
}

std::vector<EditStep> Backtrace(std::string_view source, std::string_view target,
                                const std::vector<std::vector<int>>& dp,
                                const std::vector<bool>* target_allowed,
                                const EditCosts& costs) {
  std::vector<EditStep> script;
  size_t i = source.size(), j = target.size();
  while (i > 0 || j > 0) {
    const bool allowed =
        j > 0 && (target_allowed == nullptr || (*target_allowed)[j - 1]);
    // Preference order on ties: match, replace, insert, delete.
    if (i > 0 && j > 0 && allowed && source[i - 1] == target[j - 1] &&
        dp[i][j] == dp[i - 1][j - 1]) {
      script.push_back({EditOp::kMatch, i - 1, j - 1});
      --i;
      --j;
    } else if (i > 0 && j > 0 && allowed &&
               dp[i][j] == dp[i - 1][j - 1] + costs.replace &&
               source[i - 1] != target[j - 1]) {
      script.push_back({EditOp::kReplace, i - 1, j - 1});
      --i;
      --j;
    } else if (j > 0 && dp[i][j] == dp[i][j - 1] + costs.insert) {
      script.push_back({EditOp::kInsert, i, j - 1});
      --j;
    } else {
      script.push_back({EditOp::kDelete, i - 1, j});
      --i;
    }
  }
  std::reverse(script.begin(), script.end());
  return script;
}

}  // namespace

int LevenshteinDistance(std::string_view source, std::string_view target,
                        const EditCosts& costs) {
  // Two-row DP: O(min(|s|,|t|)) space. Note replace/insert/delete costs are
  // not symmetric in general, so we do not swap the operands.
  const size_t n = source.size(), m = target.size();
  std::vector<int> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j) * costs.insert;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i) * costs.del;
    for (size_t j = 1; j <= m; ++j) {
      int best = prev[j - 1] +
                 (source[i - 1] == target[j - 1] ? 0 : costs.replace);
      best = std::min(best, cur[j - 1] + costs.insert);
      best = std::min(best, prev[j] + costs.del);
      cur[j] = best;
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

std::vector<EditStep> EditScript(std::string_view source, std::string_view target,
                                 const EditCosts& costs) {
  auto dp = BuildTable(source, target, nullptr, costs);
  return Backtrace(source, target, dp, nullptr, costs);
}

std::vector<EditStep> MaskedEditScript(std::string_view source,
                                       std::string_view target,
                                       const std::vector<bool>& target_allowed,
                                       const EditCosts& costs) {
  auto dp = BuildTable(source, target, &target_allowed, costs);
  return Backtrace(source, target, dp, &target_allowed, costs);
}

std::string EditScriptToString(const std::vector<EditStep>& script) {
  std::string out;
  out.reserve(script.size());
  for (const auto& step : script) out.push_back(static_cast<char>(step.op));
  return out;
}

}  // namespace mcsm::text
