#ifndef MCSM_TEXT_EDIT_DISTANCE_H_
#define MCSM_TEXT_EDIT_DISTANCE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace mcsm::text {

/// Edit operations in an alignment script between a source string and a
/// target string, in the sense of Levenshtein / Monge-Elkan.
enum class EditOp : char {
  kMatch = '=',    ///< source char copied to target unchanged
  kReplace = 'R',  ///< source char replaced by a different target char
  kInsert = 'I',   ///< target char not present in source
  kDelete = 'D',   ///< source char absent from target
};

/// One step of an edit script. Positions are 0-based indices into the source
/// and target strings; for kInsert `source_pos` is the position *before*
/// which the insertion happens (and is not consumed), symmetrically for
/// kDelete and `target_pos`.
struct EditStep {
  EditOp op;
  size_t source_pos;
  size_t target_pos;

  bool operator==(const EditStep&) const = default;
};

/// Unit costs for the three mutating operations. The paper found cost values
/// non-critical and used 1 for all (Section 4, citing Monge & Elkan).
struct EditCosts {
  int replace = 1;
  int insert = 1;
  int del = 1;
};

/// Levenshtein distance between `source` and `target` (O(|s|*|t|) time,
/// O(min) space).
int LevenshteinDistance(std::string_view source, std::string_view target,
                        const EditCosts& costs = EditCosts{});

/// Computes a minimum-cost edit script transforming `source` into `target`.
/// When several minimum-cost scripts exist, matches are preferred, then
/// replaces, then inserts, then deletes — this keeps matched runs maximal and
/// deterministic.
std::vector<EditStep> EditScript(std::string_view source, std::string_view target,
                                 const EditCosts& costs = EditCosts{});

/// As EditScript, but a match at target position j is only permitted when
/// `target_allowed[j]` is true (Table 6 in the paper: positions already
/// covered by the partial translation are masked out). Replaces at masked
/// positions are likewise disallowed (the masked char must be produced by an
/// insertion). `target_allowed.size()` must equal `target.size()`.
std::vector<EditStep> MaskedEditScript(std::string_view source,
                                       std::string_view target,
                                       const std::vector<bool>& target_allowed,
                                       const EditCosts& costs = EditCosts{});

/// Renders the operation matrix row for debugging, e.g. "=RRII".
std::string EditScriptToString(const std::vector<EditStep>& script);

}  // namespace mcsm::text

#endif  // MCSM_TEXT_EDIT_DISTANCE_H_
