#include "text/lcs.h"

#include <algorithm>
#include <array>
#include <limits>

#include "common/check.h"

namespace mcsm::text {

namespace {

// FNV-1a over the two strings; used by the kHashed tie-break.
uint64_t PairHash(std::string_view a, std::string_view b) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::string_view s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;
    }
  };
  mix(a);
  h ^= 0xFF;
  h *= 1099511628211ULL;
  mix(b);
  return h;
}

// Shared implementation for the (optionally masked) longest common substring.
CommonSubstring LcsubImpl(std::string_view source, std::string_view target,
                          const std::vector<bool>* target_allowed,
                          LcsTieBreak tie) {
  const size_t n = source.size(), m = target.size();
  if (target_allowed != nullptr) {
    MCSM_CHECK(target_allowed->size() == m)
        << "target mask has " << target_allowed->size()
        << " entries for a target of length " << m;
  }
  CommonSubstring best;
  if (n == 0 || m == 0) return best;
  // Candidates achieving the current maximum length (capped — diffusing ties
  // over up to 64 choices is enough, and pathological inputs stay bounded).
  constexpr size_t kMaxTieCandidates = 64;
  std::vector<CommonSubstring> ties;
  // run[j] = length of common suffix of source[0,i) and target[0,j).
  std::vector<size_t> prev(m + 1, 0), cur(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const bool allowed = target_allowed == nullptr || (*target_allowed)[j - 1];
      if (allowed && source[i - 1] == target[j - 1]) {
        cur[j] = prev[j - 1] + 1;
        if (cur[j] > best.length) {
          best.length = cur[j];
          best.source_start = i - cur[j];
          best.target_start = j - cur[j];
          ties.clear();
          ties.push_back(best);
        } else if (cur[j] == best.length && best.length > 0 &&
                   ties.size() < kMaxTieCandidates) {
          // Runs extend one char at a time, so a run of the maximum length
          // is recorded exactly once (when it first reaches that length).
          ties.push_back({i - cur[j], j - cur[j], cur[j]});
        }
      } else {
        cur[j] = 0;
      }
    }
    std::swap(prev, cur);
  }
  if (best.length == 0 || ties.size() <= 1) return best;
  if (tie == LcsTieBreak::kLeftmost) {
    // Smallest source start, then smallest target start. The scan above
    // visits (i, j) in order of increasing END positions, so re-scan.
    CommonSubstring leftmost = ties[0];
    for (const auto& c : ties) {
      if (c.source_start < leftmost.source_start ||
          (c.source_start == leftmost.source_start &&
           c.target_start < leftmost.target_start)) {
        leftmost = c;
      }
    }
    return leftmost;
  }
  return ties[PairHash(source, target) % ties.size()];
}

// Classic LCS length DP row: lengths[j] = LCS(source, target[0,j)).
std::vector<size_t> LcsLengthRow(std::string_view source, std::string_view target) {
  const size_t m = target.size();
  std::vector<size_t> prev(m + 1, 0), cur(m + 1, 0);
  for (size_t i = 1; i <= source.size(); ++i) {
    for (size_t j = 1; j <= m; ++j) {
      if (source[i - 1] == target[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev;
}

void HirschbergRec(std::string_view source, std::string_view target,
                   size_t source_off, size_t target_off,
                   std::vector<std::pair<size_t, size_t>>* out) {
  const size_t n = source.size();
  if (n == 0 || target.empty()) return;
  if (n == 1) {
    size_t pos = target.find(source[0]);
    if (pos != std::string_view::npos) {
      out->emplace_back(source_off, target_off + pos);
    }
    return;
  }
  const size_t mid = n / 2;
  std::string_view top = SafeSubstr(source, 0, mid);
  std::string_view bottom = SafeSubstr(source, mid);
  std::string rev_bottom(bottom.rbegin(), bottom.rend());
  std::string rev_target(target.rbegin(), target.rend());

  std::vector<size_t> left = LcsLengthRow(top, target);
  std::vector<size_t> right = LcsLengthRow(rev_bottom, rev_target);

  size_t best_j = 0, best_val = 0;
  const size_t m = target.size();
  for (size_t j = 0; j <= m; ++j) {
    size_t val = left[j] + right[m - j];
    if (val > best_val) {
      best_val = val;
      best_j = j;
    }
  }
  MCSM_DCHECK(best_j <= m);
  HirschbergRec(top, SafeSubstr(target, 0, best_j), source_off, target_off, out);
  HirschbergRec(bottom, SafeSubstr(target, best_j), source_off + mid,
                target_off + best_j, out);
}

}  // namespace

CommonSubstring LongestCommonSubstring(std::string_view source,
                                       std::string_view target,
                                       LcsTieBreak tie) {
  return LcsubImpl(source, target, nullptr, tie);
}

CommonSubstring MaskedLongestCommonSubstring(
    std::string_view source, std::string_view target,
    const std::vector<bool>& target_allowed, LcsTieBreak tie) {
  return LcsubImpl(source, target, &target_allowed, tie);
}

std::vector<std::pair<size_t, size_t>> HirschbergLcs(std::string_view source,
                                                     std::string_view target) {
  std::vector<std::pair<size_t, size_t>> out;
  HirschbergRec(source, target, 0, 0, &out);
  return out;
}

std::vector<std::pair<size_t, size_t>> HuntSzymanskiLcs(std::string_view source,
                                                        std::string_view target) {
  const size_t n = source.size(), m = target.size();
  std::vector<std::pair<size_t, size_t>> out;
  if (n == 0 || m == 0) return out;

  // matchlist[c] = positions of character c in target, descending.
  std::array<std::vector<size_t>, 256> matchlist;
  for (size_t j = m; j > 0; --j) {
    matchlist[static_cast<unsigned char>(target[j - 1])].push_back(j - 1);
  }

  // thresh[k] = smallest target index ending a common subsequence of length k
  // with the source prefix processed so far. link records predecessors for
  // reconstruction.
  struct Node {
    size_t i, j;
    int prev;  // index into nodes, -1 for none
  };
  std::vector<size_t> thresh;            // strictly increasing target indices
  std::vector<int> thresh_node;          // node index achieving thresh[k]
  std::vector<Node> nodes;

  for (size_t i = 0; i < n; ++i) {
    const auto& positions = matchlist[static_cast<unsigned char>(source[i])];
    // Descending j guarantees each j is considered against the state from the
    // previous source positions only.
    for (size_t j : positions) {
      // Find k = first index with thresh[k] >= j.
      auto it = std::lower_bound(thresh.begin(), thresh.end(), j);
      size_t k = static_cast<size_t>(it - thresh.begin());
      if (it == thresh.end()) {
        thresh.push_back(j);
        thresh_node.push_back(-1);
      } else {
        *it = j;
      }
      MCSM_DCHECK_BOUNDS(k, thresh_node.size());
      int prev = (k == 0) ? -1 : thresh_node[k - 1];
      nodes.push_back({i, j, prev});
      thresh_node[k] = static_cast<int>(nodes.size()) - 1;
    }
  }

  if (thresh.empty()) return out;
  int cur = thresh_node.back();
  while (cur != -1) {
    out.emplace_back(nodes[cur].i, nodes[cur].j);
    cur = nodes[cur].prev;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

size_t LcsLength(std::string_view source, std::string_view target) {
  return LcsLengthRow(source, target).back();
}

}  // namespace mcsm::text
