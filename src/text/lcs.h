#ifndef MCSM_TEXT_LCS_H_
#define MCSM_TEXT_LCS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace mcsm::text {

/// Result of a longest-common-substring search: a run of `length` characters
/// equal between the two strings, starting at `source_start` / `target_start`
/// (0-based). length == 0 means no common character.
struct CommonSubstring {
  size_t source_start = 0;
  size_t target_start = 0;
  size_t length = 0;

  bool operator==(const CommonSubstring&) const = default;
};

/// Tie-breaking policy when several common substrings share the maximum
/// length. The paper "arbitrarily select[s] the leftmost" (Section 3.3.2).
enum class LcsTieBreak {
  /// Smallest source start, then smallest target start (paper's examples,
  /// Tables 5 and 6).
  kLeftmost,
  /// Deterministic pseudo-random choice keyed on the string pair. Used by
  /// the search: serendipitous one/two-character matches between unrelated
  /// strings then spread across positions instead of piling onto the
  /// leftmost one and outvoting genuine translations (see DESIGN.md).
  kHashed,
};

/// Finds the longest common *substring* (contiguous) of `source` and
/// `target`. O(|s|*|t|) time, O(|t|) space.
CommonSubstring LongestCommonSubstring(std::string_view source,
                                       std::string_view target,
                                       LcsTieBreak tie = LcsTieBreak::kLeftmost);

/// Masked variant: target positions j with target_allowed[j] == false cannot
/// participate in the common substring (Table 6: regions already covered by
/// the partial translation are excluded). `target_allowed.size()` must equal
/// `target.size()`.
CommonSubstring MaskedLongestCommonSubstring(
    std::string_view source, std::string_view target,
    const std::vector<bool>& target_allowed,
    LcsTieBreak tie = LcsTieBreak::kLeftmost);

/// Longest common *subsequence* via Hirschberg's linear-space algorithm
/// (Hirschberg 1975, cited by the paper). Returns the pairs of (source,
/// target) indices of the subsequence, in order.
std::vector<std::pair<size_t, size_t>> HirschbergLcs(std::string_view source,
                                                     std::string_view target);

/// Longest common subsequence via Hunt & Szymanski (1977), O((n+R) log n)
/// where R is the number of matching position pairs. Returns index pairs as
/// HirschbergLcs. Efficient when the strings share few characters.
std::vector<std::pair<size_t, size_t>> HuntSzymanskiLcs(std::string_view source,
                                                        std::string_view target);

/// Length-only LCS (classic DP, O(min) space) — used by tests to
/// cross-validate the two subsequence algorithms.
size_t LcsLength(std::string_view source, std::string_view target);

}  // namespace mcsm::text

#endif  // MCSM_TEXT_LCS_H_
