#include "text/qgram.h"

#include <algorithm>

#include "common/check.h"
#include "text/simd.h"

namespace mcsm::text {

namespace {

/// Per-thread scratch for the frozen FindIds path (packed windows and their
/// hash buckets): query-time lookups stay zero-allocation in steady state.
struct LookupScratch {
  std::vector<uint32_t> packed;
  std::vector<uint32_t> buckets;
};

thread_local LookupScratch t_lookup;

}  // namespace

std::vector<std::string> QGrams(std::string_view s, size_t q) {
  std::vector<std::string> out;
  if (q == 0 || s.size() < q) return out;
  out.reserve(s.size() - q + 1);
  for (size_t i = 0; i + q <= s.size(); ++i) {
    out.emplace_back(s.substr(i, q));
  }
  return out;
}

std::unordered_map<std::string, int> QGramProfile(std::string_view s, size_t q) {
  std::unordered_map<std::string, int> profile;
  if (q == 0 || s.size() < q) return profile;
  for (size_t i = 0; i + q <= s.size(); ++i) {
    profile[std::string(s.substr(i, q))]++;
  }
  return profile;
}

size_t QGramCount(size_t len, size_t q) {
  if (q == 0 || len < q) return 0;
  return len - q + 1;
}

std::vector<std::string> QGramsExcluding(std::string_view s, size_t q,
                                         std::string_view excluded) {
  std::vector<std::string> out;
  if (q == 0 || s.size() < q) return out;
  for (size_t i = 0; i + q <= s.size(); ++i) {
    std::string_view gram = s.substr(i, q);
    bool clean = true;
    for (char c : gram) {
      if (excluded.find(c) != std::string_view::npos) {
        clean = false;
        break;
      }
    }
    if (clean) out.emplace_back(gram);
  }
  return out;
}

namespace {

// Packs the q bytes at s[i..i+q) into a u32 key (little-endian). Only
// equality matters to callers, so the byte order is arbitrary but fixed.
inline uint32_t PackGramKey(std::string_view s, size_t i, size_t q) {
  uint32_t packed = 0;
  for (size_t j = 0; j < q; ++j) {
    packed |= static_cast<uint32_t>(static_cast<unsigned char>(s[i + j]))
              << (8 * j);
  }
  return packed;
}

// Reusable scratch for the packed-gram fast paths below, plus a memo of the
// last `a` side: refinement calls SharedQGramsMasked with the same key
// against every candidate in a row, so the sorted key profile is rebuilt
// once per (key, q) instead of once per call. One struct = one TLS guard
// per call.
struct SharedGramScratch {
  std::string last_a;
  size_t last_q = 0;
  std::vector<uint32_t> ga;
  std::vector<uint32_t> gb;

  // Returns the sorted packed grams of `a`, reusing the previous result
  // when (a, q) is unchanged.
  const std::vector<uint32_t>& SortedGramsOfA(std::string_view a, size_t q) {
    if (q == last_q && a == last_a) return ga;
    ga.clear();
    for (size_t i = 0; i + q <= a.size(); ++i) {
      ga.push_back(PackGramKey(a, i, q));
    }
    std::sort(ga.begin(), ga.end());
    last_a.assign(a.data(), a.size());
    last_q = q;
    return ga;
  }
};

thread_local SharedGramScratch t_shared_grams;

// Multiset-intersection size of two sorted key arrays: exactly
// sum_over_grams(min(count_a, count_b)), what the map-based profiles used
// to compute.
inline int SortedSharedCount(const std::vector<uint32_t>& ga,
                             const std::vector<uint32_t>& gb) {
  int shared = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < ga.size() && j < gb.size()) {
    if (ga[i] < gb[j]) {
      ++i;
    } else if (gb[j] < ga[i]) {
      ++j;
    } else {
      ++shared;
      ++i;
      ++j;
    }
  }
  return shared;
}

}  // namespace

int SharedQGramsMasked(std::string_view a, std::string_view b,
                       const std::vector<bool>& b_allowed, size_t q) {
  if (q == 0 || a.size() < q || b.size() < q) return 0;
  if (q <= 4) {
    // The refinement loop (Eq.5 vote scoring) calls this tens of millions of
    // times per search on short values; packing grams into u32 keys and
    // merging two sorted arrays replaces the two per-call hash maps (and
    // their per-gram string allocations) that used to dominate whole-run
    // profiles.
    SharedGramScratch& scratch = t_shared_grams;
    const std::vector<uint32_t>& ga = scratch.SortedGramsOfA(a, q);
    std::vector<uint32_t>& gb = scratch.gb;
    gb.clear();
    for (size_t i = 0; i + q <= b.size(); ++i) {
      bool free = true;
      for (size_t j = i; j < i + q; ++j) {
        if (!b_allowed[j]) {
          free = false;
          break;
        }
      }
      if (free) gb.push_back(PackGramKey(b, i, q));
    }
    std::sort(gb.begin(), gb.end());
    return SortedSharedCount(ga, gb);
  }
  auto pa = QGramProfile(a, q);
  std::unordered_map<std::string, int> pb;
  for (size_t i = 0; i + q <= b.size(); ++i) {
    bool free = true;
    for (size_t j = i; j < i + q; ++j) {
      if (!b_allowed[j]) {
        free = false;
        break;
      }
    }
    if (free) pb[std::string(b.substr(i, q))]++;
  }
  int shared = 0;
  for (const auto& [gram, count] : pb) {
    auto it = pa.find(gram);
    if (it != pa.end()) shared += std::min(count, it->second);
  }
  return shared;
}

uint32_t QGramDictionary::Intern(std::string_view gram) {
  auto it = ids_.find(gram);
  if (it != ids_.end()) return it->second;
  if (frozen_) {
    // The flat tables describe a stale gram set from here on; drop them.
    // Callers re-Freeze() after their last Intern.
    frozen_ = false;
    direct_.clear();
    oa_keys_.clear();
    oa_ids_.clear();
  }
  uint32_t id = static_cast<uint32_t>(grams_.size());
  grams_.emplace_back(gram);
  ids_.emplace(grams_.back(), id);
  return id;
}

uint32_t QGramDictionary::Pack32(std::string_view gram) {
  uint32_t packed = 0;
  for (size_t i = 0; i < gram.size(); ++i) {
    packed |= static_cast<uint32_t>(static_cast<unsigned char>(gram[i]))
              << (8 * i);
  }
  return packed;
}

uint32_t QGramDictionary::FindPacked(uint32_t packed) const {
  if (q_ <= 2) return direct_[packed];
  uint32_t h = (packed * simd::kHashMult) >> oa_shift_;
  while (true) {
    const uint32_t id = oa_ids_[h];
    if (id == kNoGram || oa_keys_[h] == packed) return id;
    h = (h + 1) & oa_mask_;
  }
}

void QGramDictionary::Freeze() {
  frozen_ = false;
  direct_.clear();
  oa_keys_.clear();
  oa_ids_.clear();
  if (q_ == 0 || q_ > 4) return;
  // Every interned gram must pack into q_ bytes; Intern() accepts arbitrary
  // strings, so a foreign-length gram (possible via the precomputed-df
  // TfIdfModel constructor) keeps the dictionary on the hash-map path.
  for (const std::string& g : grams_) {
    if (g.size() != q_) return;
  }
  if (q_ <= 2) {
    direct_.assign(q_ == 1 ? 256u : 65536u, kNoGram);
    for (uint32_t id = 0; id < grams_.size(); ++id) {
      direct_[Pack32(grams_[id])] = id;
    }
  } else {
    // Load factor <= 0.5 keeps linear-probe chains short and guarantees an
    // empty slot terminates every miss probe.
    size_t capacity = 16;
    while (capacity < 2 * grams_.size()) capacity *= 2;
    oa_mask_ = static_cast<uint32_t>(capacity - 1);
    oa_shift_ = 32;
    for (size_t c = capacity; c > 1; c /= 2) --oa_shift_;
    oa_keys_.assign(capacity, 0);
    oa_ids_.assign(capacity, kNoGram);
    for (uint32_t id = 0; id < grams_.size(); ++id) {
      const uint32_t packed = Pack32(grams_[id]);
      uint32_t h = (packed * simd::kHashMult) >> oa_shift_;
      while (oa_ids_[h] != kNoGram) h = (h + 1) & oa_mask_;
      oa_keys_[h] = packed;
      oa_ids_[h] = id;
    }
  }
  frozen_ = true;
}

size_t QGramDictionary::ApproxFastLookupBytes() const {
  return (direct_.capacity() + oa_keys_.capacity() + oa_ids_.capacity()) *
         sizeof(uint32_t);
}

uint32_t QGramDictionary::Find(std::string_view gram) const {
  if (frozen_) {
    // Freeze() verified every interned gram has length q_, so any other
    // length cannot be present.
    if (gram.size() != q_) return kNoGram;
    return FindPacked(Pack32(gram));
  }
  auto it = ids_.find(gram);
  return it == ids_.end() ? kNoGram : it->second;
}

void QGramDictionary::FindIdsFrozen(std::string_view s,
                                    std::vector<uint32_t>* out) const {
  const size_t windows = s.size() - q_ + 1;
  const size_t base = out->size();
  out->resize(base + windows);
  uint32_t* dst = out->data() + base;
  if (q_ == 2) {
    // One direct-address load per bigram; AVX2 runs 8 windows per iteration.
    simd::LookupGrams2(s, direct_.data(), dst);
    return;
  }
  if (q_ == 1) {
    for (size_t i = 0; i < windows; ++i) {
      dst[i] = direct_[static_cast<unsigned char>(s[i])];
    }
    return;
  }
  // q == 3..4: pack the windows, hash them in batch (8 per AVX2 iteration),
  // then resolve each bucket with a scalar linear probe.
  t_lookup.packed.resize(windows);
  t_lookup.buckets.resize(windows);
  for (size_t i = 0; i < windows; ++i) {
    t_lookup.packed[i] = Pack32(s.substr(i, q_));
  }
  simd::HashBatch32(t_lookup.packed.data(), windows, oa_shift_,
                    t_lookup.buckets.data());
  for (size_t i = 0; i < windows; ++i) {
    const uint32_t packed = t_lookup.packed[i];
    uint32_t h = t_lookup.buckets[i];
    while (true) {
      const uint32_t id = oa_ids_[h];
      if (id == kNoGram || oa_keys_[h] == packed) {
        dst[i] = id;
        break;
      }
      h = (h + 1) & oa_mask_;
    }
  }
}

void QGramDictionary::FindIds(std::string_view s,
                              std::vector<uint32_t>* out) const {
  if (q_ == 0 || s.size() < q_) return;
  if (frozen_) {
    FindIdsFrozen(s, out);
    return;
  }
  for (size_t i = 0; i + q_ <= s.size(); ++i) {
    out->push_back(Find(s.substr(i, q_)));
  }
}

void QGramDictionary::InternIds(std::string_view s,
                                std::vector<uint32_t>* out) {
  if (q_ == 0 || s.size() < q_) return;
  for (size_t i = 0; i + q_ <= s.size(); ++i) {
    out->push_back(Intern(s.substr(i, q_)));
  }
}

int SharedQGrams(std::string_view a, std::string_view b, size_t q) {
  if (q == 0 || a.size() < q || b.size() < q) return 0;
  if (q <= 4) {
    // Same packed sort+merge fast path as SharedQGramsMasked, minus the mask.
    SharedGramScratch& scratch = t_shared_grams;
    const std::vector<uint32_t>& ga = scratch.SortedGramsOfA(a, q);
    std::vector<uint32_t>& gb = scratch.gb;
    gb.clear();
    for (size_t i = 0; i + q <= b.size(); ++i) {
      gb.push_back(PackGramKey(b, i, q));
    }
    std::sort(gb.begin(), gb.end());
    return SortedSharedCount(ga, gb);
  }
  auto pa = QGramProfile(a, q);
  auto pb = QGramProfile(b, q);
  // Iterate over the smaller profile.
  if (pb.size() < pa.size()) std::swap(pa, pb);
  int shared = 0;
  for (const auto& [gram, count] : pa) {
    auto it = pb.find(gram);
    if (it != pb.end()) shared += std::min(count, it->second);
  }
  return shared;
}

}  // namespace mcsm::text
