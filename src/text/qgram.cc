#include "text/qgram.h"

#include <algorithm>

namespace mcsm::text {

std::vector<std::string> QGrams(std::string_view s, size_t q) {
  std::vector<std::string> out;
  if (q == 0 || s.size() < q) return out;
  out.reserve(s.size() - q + 1);
  for (size_t i = 0; i + q <= s.size(); ++i) {
    out.emplace_back(s.substr(i, q));
  }
  return out;
}

std::unordered_map<std::string, int> QGramProfile(std::string_view s, size_t q) {
  std::unordered_map<std::string, int> profile;
  if (q == 0 || s.size() < q) return profile;
  for (size_t i = 0; i + q <= s.size(); ++i) {
    profile[std::string(s.substr(i, q))]++;
  }
  return profile;
}

size_t QGramCount(size_t len, size_t q) {
  if (q == 0 || len < q) return 0;
  return len - q + 1;
}

std::vector<std::string> QGramsExcluding(std::string_view s, size_t q,
                                         std::string_view excluded) {
  std::vector<std::string> out;
  if (q == 0 || s.size() < q) return out;
  for (size_t i = 0; i + q <= s.size(); ++i) {
    std::string_view gram = s.substr(i, q);
    bool clean = true;
    for (char c : gram) {
      if (excluded.find(c) != std::string_view::npos) {
        clean = false;
        break;
      }
    }
    if (clean) out.emplace_back(gram);
  }
  return out;
}

int SharedQGramsMasked(std::string_view a, std::string_view b,
                       const std::vector<bool>& b_allowed, size_t q) {
  if (q == 0 || a.size() < q || b.size() < q) return 0;
  auto pa = QGramProfile(a, q);
  std::unordered_map<std::string, int> pb;
  for (size_t i = 0; i + q <= b.size(); ++i) {
    bool free = true;
    for (size_t j = i; j < i + q; ++j) {
      if (!b_allowed[j]) {
        free = false;
        break;
      }
    }
    if (free) pb[std::string(b.substr(i, q))]++;
  }
  int shared = 0;
  for (const auto& [gram, count] : pb) {
    auto it = pa.find(gram);
    if (it != pa.end()) shared += std::min(count, it->second);
  }
  return shared;
}

uint32_t QGramDictionary::Intern(std::string_view gram) {
  auto it = ids_.find(gram);
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(grams_.size());
  grams_.emplace_back(gram);
  ids_.emplace(grams_.back(), id);
  return id;
}

uint32_t QGramDictionary::Find(std::string_view gram) const {
  auto it = ids_.find(gram);
  return it == ids_.end() ? kNoGram : it->second;
}

void QGramDictionary::FindIds(std::string_view s,
                              std::vector<uint32_t>* out) const {
  if (q_ == 0 || s.size() < q_) return;
  for (size_t i = 0; i + q_ <= s.size(); ++i) {
    out->push_back(Find(s.substr(i, q_)));
  }
}

void QGramDictionary::InternIds(std::string_view s,
                                std::vector<uint32_t>* out) {
  if (q_ == 0 || s.size() < q_) return;
  for (size_t i = 0; i + q_ <= s.size(); ++i) {
    out->push_back(Intern(s.substr(i, q_)));
  }
}

int SharedQGrams(std::string_view a, std::string_view b, size_t q) {
  auto pa = QGramProfile(a, q);
  auto pb = QGramProfile(b, q);
  // Iterate over the smaller profile.
  if (pb.size() < pa.size()) std::swap(pa, pb);
  int shared = 0;
  for (const auto& [gram, count] : pa) {
    auto it = pb.find(gram);
    if (it != pb.end()) shared += std::min(count, it->second);
  }
  return shared;
}

}  // namespace mcsm::text
