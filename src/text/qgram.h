#ifndef MCSM_TEXT_QGRAM_H_
#define MCSM_TEXT_QGRAM_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mcsm::text {

/// \brief q-gram utilities (Ukkonen, "Approximate string-matching with
/// q-grams and maximal matches").
///
/// A string of length n has n-q+1 q-grams; strings shorter than q have none.
/// The paper uses bi-grams (q=2) throughout but the library is generic in q.

/// Returns the list of q-grams of `s`, in order, with multiplicity.
std::vector<std::string> QGrams(std::string_view s, size_t q);

/// Returns the q-gram profile of `s`: q-gram -> occurrence count.
std::unordered_map<std::string, int> QGramProfile(std::string_view s, size_t q);

/// Returns the number of q-grams in a string of length `len` (0 if len < q).
size_t QGramCount(size_t len, size_t q);

/// Returns q-grams of `s` that contain no character from `excluded`.
/// Used when a separator template is active: search keys must not contain
/// separator characters (Section 6.1).
std::vector<std::string> QGramsExcluding(std::string_view s, size_t q,
                                         std::string_view excluded);

/// Returns the number of q-grams shared between `a` and `b`, counting
/// multiplicity (the min of the two profiles, summed).
int SharedQGrams(std::string_view a, std::string_view b, size_t q);

/// As SharedQGrams, but only q-grams of `b` lying entirely within positions
/// where `b_allowed` is true are considered (`b_allowed.size() == b.size()`).
/// Used by the refinement filter: the key must share material with the
/// *unexplained* portion of the target instance.
int SharedQGramsMasked(std::string_view a, std::string_view b,
                       const std::vector<bool>& b_allowed, size_t q);

}  // namespace mcsm::text

#endif  // MCSM_TEXT_QGRAM_H_
