#ifndef MCSM_TEXT_QGRAM_H_
#define MCSM_TEXT_QGRAM_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mcsm::text {

/// \brief q-gram utilities (Ukkonen, "Approximate string-matching with
/// q-grams and maximal matches").
///
/// A string of length n has n-q+1 q-grams; strings shorter than q have none.
/// The paper uses bi-grams (q=2) throughout but the library is generic in q.

/// Returns the list of q-grams of `s`, in order, with multiplicity.
std::vector<std::string> QGrams(std::string_view s, size_t q);

/// Returns the q-gram profile of `s`: q-gram -> occurrence count.
std::unordered_map<std::string, int> QGramProfile(std::string_view s, size_t q);

/// Returns the number of q-grams in a string of length `len` (0 if len < q).
size_t QGramCount(size_t len, size_t q);

/// Returns q-grams of `s` that contain no character from `excluded`.
/// Used when a separator template is active: search keys must not contain
/// separator characters (Section 6.1).
std::vector<std::string> QGramsExcluding(std::string_view s, size_t q,
                                         std::string_view excluded);

/// Returns the number of q-grams shared between `a` and `b`, counting
/// multiplicity (the min of the two profiles, summed).
int SharedQGrams(std::string_view a, std::string_view b, size_t q);

/// As SharedQGrams, but only q-grams of `b` lying entirely within positions
/// where `b_allowed` is true are considered (`b_allowed.size() == b.size()`).
/// Used by the refinement filter: the key must share material with the
/// *unexplained* portion of the target instance.
int SharedQGramsMasked(std::string_view a, std::string_view b,
                       const std::vector<bool>& b_allowed, size_t q);

/// \brief Interning dictionary: q-gram string <-> dense uint32_t id.
///
/// Built once per column index / tf-idf model. Interning turns every hot
/// per-gram statistic (df, idf, postings) into a flat vector indexed by id,
/// and every later lookup into one transparent hash probe with no string
/// allocation. Not thread-safe for Intern; Find and the accessors are
/// read-only and safe to share across threads once building is done.
///
/// After interning, Freeze() builds a flat fast-lookup structure for short
/// grams (q <= 4, the practical range — the paper uses q = 2 throughout):
/// bigrams and unigrams get a direct-address table (one load per probe, no
/// hashing at all), 3- and 4-grams a linear-probed open-addressing table
/// over the gram bytes packed into a uint32. Frozen FindIds dispatches to
/// the batched SIMD kernels in text/simd.h (8-16 grams per iteration); the
/// results are bit-identical to the hash-map path at every dispatch tier.
class QGramDictionary {
 public:
  /// Sentinel id for grams that were never interned.
  static constexpr uint32_t kNoGram = 0xFFFFFFFFu;

  explicit QGramDictionary(size_t q) : q_(q) {}

  size_t q() const { return q_; }
  /// Number of distinct grams interned so far (ids are 0..size()-1).
  size_t size() const { return grams_.size(); }

  /// Id of `gram`, interning it if new. Invalidates a prior Freeze().
  uint32_t Intern(std::string_view gram);

  /// Id of `gram`, or kNoGram when it was never interned. No allocation.
  uint32_t Find(std::string_view gram) const;

  /// The gram spelled by `id` (requires id < size()).
  std::string_view gram(uint32_t id) const { return grams_[id]; }

  /// Appends the ids of s's q-grams, in order and with multiplicity, to
  /// `out`; grams never interned appear as kNoGram.
  void FindIds(std::string_view s, std::vector<uint32_t>* out) const;

  /// As FindIds but interning, so no kNoGram entries are produced.
  void InternIds(std::string_view s, std::vector<uint32_t>* out);

  /// Builds the flat fast-lookup tables for the current gram set. Call once
  /// after the last Intern (ColumnIndex / TfIdfModel construction does).
  /// No-op for q == 0 or q > 4, and when any interned gram's length differs
  /// from q (defensive: such grams cannot be packed) — lookups then stay on
  /// the hash map, with identical results.
  void Freeze();

  /// True when Find/FindIds run on the flat tables (after Freeze, until the
  /// next Intern).
  bool frozen() const { return frozen_; }

  /// Heap bytes of the fast-lookup tables (0 when not frozen). Counted by
  /// ColumnIndex::ApproxMemoryBytes so cache charges follow the layout.
  size_t ApproxFastLookupBytes() const;

 private:
  /// `gram` packed little-endian into a uint32 (requires gram.size() <= 4).
  static uint32_t Pack32(std::string_view gram);

  /// Fast-path probe of a packed gram (requires frozen_).
  uint32_t FindPacked(uint32_t packed) const;

  /// Batched frozen FindIds over the windows of `s` (requires frozen_).
  void FindIdsFrozen(std::string_view s, std::vector<uint32_t>* out) const;

  /// Heterogeneous hashing so std::string keys can be probed with a
  /// string_view (C++20 transparent lookup) — the whole point of the class.
  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  size_t q_;
  std::vector<std::string> grams_;
  std::unordered_map<std::string, uint32_t, TransparentHash, std::equal_to<>>
      ids_;

  /// Fast-lookup state (valid while frozen_):
  /// q <= 2 — direct_[packed gram] = id (256 or 65536 entries);
  /// q == 3..4 — linear-probed table: slot h holds (oa_keys_[h], oa_ids_[h]),
  /// empty slots marked by oa_ids_[h] == kNoGram, bucket = multiply-shift
  /// hash of the packed gram (simd::kHashMult, shift oa_shift_).
  bool frozen_ = false;
  std::vector<uint32_t> direct_;
  std::vector<uint32_t> oa_keys_;
  std::vector<uint32_t> oa_ids_;
  uint32_t oa_mask_ = 0;
  uint32_t oa_shift_ = 0;
};

}  // namespace mcsm::text

#endif  // MCSM_TEXT_QGRAM_H_
