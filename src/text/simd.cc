#include "text/simd.h"

#include <atomic>
#include <cstring>
#include <string>

#include "common/check.h"
#include "common/env.h"

// The only translation unit allowed to see intrinsics headers (lint rule
// SI001). Vector functions carry per-function target attributes instead of
// file-level -mavx2 flags, so one object file holds every tier and nothing
// above the baseline ISA can leak into code that runs unconditionally.
#if defined(MCSM_SIMD_ENABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define MCSM_SIMD_X86 1
#include <immintrin.h>
#else
#define MCSM_SIMD_X86 0
#endif

namespace mcsm::text::simd {

namespace {

inline uint32_t ReadLE(const uint8_t* p, uint32_t width) {
  switch (width) {
    case 1:
      return p[0];
    case 2:
      return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8;
    default: {
      uint32_t v;
      std::memcpy(&v, p, sizeof(v));
      return v;
    }
  }
}

// --- Scalar reference kernels ----------------------------------------------
// These are the semantics; the vector paths below must match them bit for
// bit (tests/simd_test.cc diffs every kernel at every detected tier).

void LookupGrams2Scalar(const char* s, size_t windows, const uint32_t* table,
                        uint32_t* out) {
  const auto* u = reinterpret_cast<const unsigned char*>(s);
  for (size_t i = 0; i < windows; ++i) {
    const uint32_t packed =
        static_cast<uint32_t>(u[i]) | static_cast<uint32_t>(u[i + 1]) << 8;
    out[i] = table[packed];
  }
}

void HashBatch32Scalar(const uint32_t* packed, size_t n, uint32_t shift,
                       uint32_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = (packed[i] * kHashMult) >> shift;
}

void DeltaDecodeScalar(uint32_t base, const uint8_t* bytes, size_t count,
                       uint32_t width, uint32_t* out_rows) {
  uint32_t acc = base;
  out_rows[0] = acc;
  for (size_t i = 1; i < count; ++i) {
    acc += ReadLE(bytes + (i - 1) * width, width);
    out_rows[i] = acc;
  }
}

void WidenU32Scalar(const uint8_t* bytes, size_t count, uint32_t width,
                    uint32_t* out) {
  for (size_t i = 0; i < count; ++i) out[i] = ReadLE(bytes + i * width, width);
}

void TfContributionsScalar(double key_weight, double idf, const uint32_t* tf,
                           size_t count, double* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = key_weight * (static_cast<double>(tf[i]) * idf);
  }
}

#if MCSM_SIMD_X86

// --- SSE4.2 tier -----------------------------------------------------------

/// Widening load of 4 deltas starting at `p` (little-endian, `width` bytes
/// each) into 4 uint32 lanes.
__attribute__((target("sse4.2"))) inline __m128i Load4Deltas(const uint8_t* p,
                                                             uint32_t width) {
  switch (width) {
    case 1: {
      uint32_t raw;
      std::memcpy(&raw, p, sizeof(raw));
      return _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(raw)));
    }
    case 2:
      return _mm_cvtepu16_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
    default:
      return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
}

__attribute__((target("sse4.2"))) void DeltaDecodeSse42(
    uint32_t base, const uint8_t* bytes, size_t count, uint32_t width,
    uint32_t* out_rows) {
  out_rows[0] = base;
  const size_t deltas = count - 1;
  // Running total lives in every lane; each step computes the in-register
  // inclusive prefix sum of 4 deltas, adds the running total, and broadcasts
  // the new last lane. Integer adds — identical to the scalar loop.
  __m128i run = _mm_set1_epi32(static_cast<int>(base));
  size_t i = 0;
  for (; i + 4 <= deltas; i += 4) {
    __m128i d = Load4Deltas(bytes + i * width, width);
    d = _mm_add_epi32(d, _mm_slli_si128(d, 4));
    d = _mm_add_epi32(d, _mm_slli_si128(d, 8));
    const __m128i rows = _mm_add_epi32(d, run);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out_rows + 1 + i), rows);
    run = _mm_shuffle_epi32(rows, _MM_SHUFFLE(3, 3, 3, 3));
  }
  uint32_t acc = static_cast<uint32_t>(_mm_cvtsi128_si32(run));
  for (; i < deltas; ++i) {
    acc += ReadLE(bytes + i * width, width);
    out_rows[1 + i] = acc;
  }
}

__attribute__((target("sse4.2"))) void WidenU32Sse42(const uint8_t* bytes,
                                                     size_t count,
                                                     uint32_t width,
                                                     uint32_t* out) {
  size_t i = 0;
  if (width == 1) {
    for (; i + 4 <= count; i += 4) {
      uint32_t raw;
      std::memcpy(&raw, bytes + i, sizeof(raw));
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out + i),
          _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(raw))));
    }
  } else if (width == 2) {
    for (; i + 4 <= count; i += 4) {
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out + i),
          _mm_cvtepu16_epi32(
              _mm_loadl_epi64(reinterpret_cast<const __m128i*>(bytes + i * 2))));
    }
  } else {
    std::memcpy(out, bytes, count * sizeof(uint32_t));
    return;
  }
  for (; i < count; ++i) out[i] = ReadLE(bytes + i * width, width);
}

// --- AVX2 tier -------------------------------------------------------------

__attribute__((target("avx2"))) void LookupGrams2Avx2(const char* s,
                                                      size_t windows,
                                                      const uint32_t* table,
                                                      uint32_t* out) {
  const auto* u = reinterpret_cast<const unsigned char*>(s);
  size_t i = 0;
  // 8 bigram windows per iteration: widen bytes [i, i+8) and [i+1, i+9) to
  // 32-bit lanes, OR them into the packed bigram values, gather the ids.
  for (; i + 8 <= windows; i += 8) {
    const __m128i lo =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(u + i));
    const __m128i hi =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(u + i + 1));
    const __m256i idx = _mm256_or_si256(
        _mm256_cvtepu8_epi32(lo),
        _mm256_slli_epi32(_mm256_cvtepu8_epi32(hi), 8));
    const __m256i ids = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(table), idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), ids);
  }
  LookupGrams2Scalar(s + i, windows - i, table, out + i);
}

__attribute__((target("avx2"))) void HashBatch32Avx2(const uint32_t* packed,
                                                     size_t n, uint32_t shift,
                                                     uint32_t* out) {
  const __m256i mult = _mm256_set1_epi32(static_cast<int>(kHashMult));
  const __m128i sh = _mm_cvtsi32_si128(static_cast<int>(shift));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(packed + i));
    const __m256i h = _mm256_srl_epi32(_mm256_mullo_epi32(v, mult), sh);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
  }
  HashBatch32Scalar(packed + i, n - i, shift, out + i);
}

__attribute__((target("avx2"))) void TfContributionsAvx2(double key_weight,
                                                         double idf,
                                                         const uint32_t* tf,
                                                         size_t count,
                                                         double* out) {
  const __m256d vidf = _mm256_set1_pd(idf);
  const __m256d vkw = _mm256_set1_pd(key_weight);
  size_t i = 0;
  // Same expression as the scalar loop — kw * (double(tf) * idf), two
  // multiplies, no FMA contraction possible — so each lane rounds exactly
  // like its scalar counterpart.
  for (; i + 4 <= count; i += 4) {
    const __m128i t =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(tf + i));
    const __m256d td = _mm256_cvtepi32_pd(t);  // tf < 2^31: signed convert ok
    _mm256_storeu_pd(out + i, _mm256_mul_pd(vkw, _mm256_mul_pd(td, vidf)));
  }
  TfContributionsScalar(key_weight, idf, tf + i, count - i, out + i);
}

#endif  // MCSM_SIMD_X86

// --- Dispatch --------------------------------------------------------------

Level Detect() {
#if MCSM_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Level::kAVX2;
  if (__builtin_cpu_supports("sse4.2")) return Level::kSSE42;
#endif
  return Level::kScalar;
}

Level ParseLevelName(const std::string& name, Level fallback) {
  if (name == "scalar") return Level::kScalar;
  if (name == "sse42") return Level::kSSE42;
  if (name == "avx2") return Level::kAVX2;
  return fallback;
}

/// Active tier, or -1 before first resolution. Resolution is idempotent
/// (cpuid + env are stable), so the benign first-use race re-resolves to the
/// same value on every thread.
std::atomic<int> g_active{-1};

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSSE42:
      return "sse42";
    case Level::kAVX2:
      return "avx2";
  }
  return "unknown";
}

Level DetectedLevel() {
  static const Level detected = Detect();
  return detected;
}

Level ActiveLevel() {
  // ordering: relaxed — the value is a self-contained int; no other memory
  // is published through it, and re-resolving on a racy first read is
  // idempotent (see g_active).
  int v = g_active.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<Level>(v);
  Level level = ParseLevelName(GetEnvString("MCSM_SIMD_LEVEL", ""),
                               DetectedLevel());
  if (level > DetectedLevel()) level = DetectedLevel();
  // ordering: relaxed — same rationale as the load above.
  g_active.store(static_cast<int>(level), std::memory_order_relaxed);
  return level;
}

void SetActiveLevelForTesting(Level level) {
  if (level > DetectedLevel()) level = DetectedLevel();
  // ordering: relaxed — test-only toggle of a self-contained int.
  g_active.store(static_cast<int>(level), std::memory_order_relaxed);
}

// --- Kernel entry points ---------------------------------------------------

void LookupGrams2(std::string_view s, const uint32_t* table, uint32_t* out) {
  if (s.size() < 2) return;
  const size_t windows = s.size() - 1;
#if MCSM_SIMD_X86
  if (ActiveLevel() >= Level::kAVX2) {
    LookupGrams2Avx2(s.data(), windows, table, out);
    return;
  }
#endif
  LookupGrams2Scalar(s.data(), windows, table, out);
}

void HashBatch32(const uint32_t* packed, size_t n, uint32_t shift,
                 uint32_t* out) {
#if MCSM_SIMD_X86
  if (ActiveLevel() >= Level::kAVX2) {
    HashBatch32Avx2(packed, n, shift, out);
    return;
  }
#endif
  HashBatch32Scalar(packed, n, shift, out);
}

void DeltaDecode(uint32_t base, const uint8_t* bytes, size_t count,
                 uint32_t width, uint32_t* out_rows) {
  if (count == 0) return;
  MCSM_DCHECK(width == 1 || width == 2 || width == 4);
#if MCSM_SIMD_X86
  if (ActiveLevel() >= Level::kSSE42) {
    DeltaDecodeSse42(base, bytes, count, width, out_rows);
    return;
  }
#endif
  DeltaDecodeScalar(base, bytes, count, width, out_rows);
}

void WidenU32(const uint8_t* bytes, size_t count, uint32_t width,
              uint32_t* out) {
  MCSM_DCHECK(width == 1 || width == 2 || width == 4);
#if MCSM_SIMD_X86
  if (ActiveLevel() >= Level::kSSE42) {
    WidenU32Sse42(bytes, count, width, out);
    return;
  }
#endif
  WidenU32Scalar(bytes, count, width, out);
}

void TfContributions(double key_weight, double idf, const uint32_t* tf,
                     size_t count, double* out) {
#if MCSM_SIMD_X86
  if (ActiveLevel() >= Level::kAVX2) {
    TfContributionsAvx2(key_weight, idf, tf, count, out);
    return;
  }
#endif
  TfContributionsScalar(key_weight, idf, tf, count, out);
}

}  // namespace mcsm::text::simd
