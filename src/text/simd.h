#ifndef MCSM_TEXT_SIMD_H_
#define MCSM_TEXT_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mcsm::text::simd {

/// \brief The one SIMD funnel of the engine.
///
/// Every vectorized kernel in the deterministic core lives behind this
/// header; intrinsics headers (`immintrin.h`) may be included from
/// `text/simd.cc` only (lint rule SI001), so instruction-set concerns never
/// leak into the algorithmic code.
///
/// Contract: every kernel produces bit-for-bit identical output at every
/// Level. Integer kernels are trivially exact; the one floating-point kernel
/// (TfContributions) evaluates the same two-multiply expression per element
/// in both paths, so IEEE-754 rounding is identical lane by lane — no
/// reassociation, no FMA contraction (see DESIGN.md §11). This is what lets
/// the PR 3/5 determinism contract survive runtime dispatch: scalar and SIMD
/// replicas of a cluster, or a cache entry built before a binary upgrade,
/// agree byte-for-byte.

/// Instruction-set tiers, ordered. Dispatch picks the highest tier that is
/// (a) compiled in (CMake option MCSM_SIMD, on by default for x86-64),
/// (b) supported by the running CPU, and (c) not vetoed by the
/// MCSM_SIMD_LEVEL environment variable ("scalar" | "sse42" | "avx2").
enum class Level : int {
  kScalar = 0,  ///< portable C++, always available
  kSSE42 = 1,   ///< 128-bit integer kernels (delta prefix sums)
  kAVX2 = 2,    ///< 256-bit gathers/hashing/double math
};

/// Human-readable tier name ("scalar", "sse42", "avx2").
const char* LevelName(Level level);

/// Highest tier compiled in and supported by this CPU (cpuid probe, cached).
Level DetectedLevel();

/// The tier kernels currently dispatch to: DetectedLevel() clamped by
/// MCSM_SIMD_LEVEL and SetActiveLevelForTesting. Cheap (one relaxed load).
Level ActiveLevel();

/// Forces dispatch to `level` (clamped to DetectedLevel()) — differential
/// tests pin the scalar path and diff it against the vector paths. Not for
/// production use; racy only in the benign "next call re-reads" sense.
void SetActiveLevelForTesting(Level level);

/// Multiplier of the 32-bit multiply-shift gram hash (2^32 / golden ratio,
/// odd). Shared with QGramDictionary so scalar probes agree with HashBatch32.
inline constexpr uint32_t kHashMult = 0x9E3779B1u;

/// out[i] = table[s[i] | s[i+1] << 8] for the |s|-1 bigram windows of `s`.
/// `table` has 65536 entries (the direct-address bigram dictionary).
/// AVX2 path: 8 windows per iteration via widening loads + a 256-bit gather.
void LookupGrams2(std::string_view s, const uint32_t* table, uint32_t* out);

/// out[i] = (packed[i] * kHashMult) >> shift — the open-addressing bucket of
/// each packed q-gram (q = 3..4). `shift` is 32 - log2(table capacity).
/// AVX2 path: 8 hashes per iteration.
void HashBatch32(const uint32_t* packed, size_t n, uint32_t shift,
                 uint32_t* out);

/// Decodes one posting block's row ids: out_rows[0] = base and
/// out_rows[i] = out_rows[i-1] + delta[i-1], where the `count-1` deltas are
/// stored little-endian in `bytes`, `width` (1, 2 or 4) bytes each.
/// SSE4.2 path: widening loads + 4-lane prefix sums.
/// `bytes` must hold (count-1)*width readable bytes (the caller bounds-checks
/// — DecodePostingBlock in relational/postings.h is the validated entry).
void DeltaDecode(uint32_t base, const uint8_t* bytes, size_t count,
                 uint32_t width, uint32_t* out_rows);

/// Widens `count` little-endian unsigned values of `width` (1, 2 or 4) bytes
/// to uint32 (the tf stream of a posting block).
void WidenU32(const uint8_t* bytes, size_t count, uint32_t width,
              uint32_t* out);

/// out[i] = key_weight * (double(tf[i]) * idf) — the per-posting tf-idf
/// contribution of the rarest-first accumulator (paper Eq. 4 terms).
/// AVX2 path: 4 doubles per iteration, same two multiplies per lane as the
/// scalar expression (bit-identical, no reassociation).
void TfContributions(double key_weight, double idf, const uint32_t* tf,
                     size_t count, double* out);

}  // namespace mcsm::text::simd

#endif  // MCSM_TEXT_SIMD_H_
