#include "text/similarity.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"
#include "text/edit_distance.h"
#include "text/qgram.h"

namespace mcsm::text {

double NormalizedEditSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  int distance = LevenshteinDistance(a, b);
  return 1.0 - static_cast<double>(distance) / static_cast<double>(longest);
}

std::vector<std::string> Tokenize(std::string_view s) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : s) {
    if (IsAlnumAscii(c)) {
      current.push_back(c);
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

double MongeElkanSimilarity(std::string_view a, std::string_view b) {
  auto tokens_a = Tokenize(a);
  auto tokens_b = Tokenize(b);
  if (tokens_a.empty()) return tokens_b.empty() ? 1.0 : 0.0;
  if (tokens_b.empty()) return 0.0;
  double total = 0.0;
  for (const auto& ta : tokens_a) {
    double best = 0.0;
    for (const auto& tb : tokens_b) {
      best = std::max(best, NormalizedEditSimilarity(ta, tb));
    }
    total += best;
  }
  return total / static_cast<double>(tokens_a.size());
}

double MongeElkanSymmetric(std::string_view a, std::string_view b) {
  return (MongeElkanSimilarity(a, b) + MongeElkanSimilarity(b, a)) / 2.0;
}

namespace {

std::unordered_set<std::string> GramSet(std::string_view s, size_t q) {
  std::unordered_set<std::string> set;
  if (q == 0 || s.size() < q) return set;
  for (size_t i = 0; i + q <= s.size(); ++i) set.insert(std::string(s.substr(i, q)));
  return set;
}

size_t Intersection(const std::unordered_set<std::string>& a,
                    const std::unordered_set<std::string>& b) {
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  size_t shared = 0;
  for (const auto& g : small) {
    if (large.count(g) != 0) ++shared;
  }
  return shared;
}

}  // namespace

double JaccardQGramSimilarity(std::string_view a, std::string_view b, size_t q) {
  auto sa = GramSet(a, q);
  auto sb = GramSet(b, q);
  if (sa.empty() && sb.empty()) return 1.0;
  size_t shared = Intersection(sa, sb);
  return static_cast<double>(shared) /
         static_cast<double>(sa.size() + sb.size() - shared);
}

double OverlapQGramCoefficient(std::string_view a, std::string_view b, size_t q) {
  auto sa = GramSet(a, q);
  auto sb = GramSet(b, q);
  if (sa.empty() || sb.empty()) return sa.empty() && sb.empty() ? 1.0 : 0.0;
  size_t shared = Intersection(sa, sb);
  return static_cast<double>(shared) /
         static_cast<double>(std::min(sa.size(), sb.size()));
}

}  // namespace mcsm::text
