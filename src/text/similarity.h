#ifndef MCSM_TEXT_SIMILARITY_H_
#define MCSM_TEXT_SIMILARITY_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace mcsm::text {

/// \brief Normalized string similarities used for record-linkage style
/// comparisons (Monge & Elkan 1997, the paper's citation [14], and the
/// q-gram measures of the Gravano/Koudas line of work).

/// 1 - LevenshteinDistance / max(|a|, |b|); 1.0 for two empty strings.
double NormalizedEditSimilarity(std::string_view a, std::string_view b);

/// Splits on non-alphanumeric characters, dropping empty tokens.
std::vector<std::string> Tokenize(std::string_view s);

/// Monge-Elkan similarity: mean over a's tokens of the best
/// NormalizedEditSimilarity against any of b's tokens. Asymmetric by
/// definition; MongeElkanSymmetric averages both directions.
double MongeElkanSimilarity(std::string_view a, std::string_view b);
double MongeElkanSymmetric(std::string_view a, std::string_view b);

/// Jaccard similarity of the two q-gram sets (distinct grams).
double JaccardQGramSimilarity(std::string_view a, std::string_view b, size_t q);

/// Overlap coefficient of the two q-gram sets: |A ∩ B| / min(|A|, |B|).
double OverlapQGramCoefficient(std::string_view a, std::string_view b, size_t q);

}  // namespace mcsm::text

#endif  // MCSM_TEXT_SIMILARITY_H_
