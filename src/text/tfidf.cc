#include "text/tfidf.h"

#include <algorithm>
#include <cmath>

namespace mcsm::text {

TfIdfModel::TfIdfModel(const std::vector<std::string>& corpus, size_t q)
    : q_(q), corpus_size_(corpus.size()) {
  auto dict = std::make_shared<QGramDictionary>(q);
  std::vector<uint32_t> ids;  // per-instance scratch
  for (const auto& s : corpus) {
    ids.clear();
    dict->InternIds(s, &ids);
    if (df_.size() < dict->size()) df_.resize(dict->size(), 0);
    // Sort so duplicates are adjacent: df counts each gram once per instance.
    std::sort(ids.begin(), ids.end());
    for (size_t i = 0; i < ids.size(); ++i) {
      if (i == 0 || ids[i] != ids[i - 1]) df_[ids[i]]++;
    }
  }
  dict->Freeze();
  dict_ = std::move(dict);
  ComputeIdf();
}

TfIdfModel::TfIdfModel(
    const std::unordered_map<std::string, int>& document_frequency,
    size_t corpus_size, size_t q)
    : q_(q), corpus_size_(corpus_size) {
  auto dict = std::make_shared<QGramDictionary>(q);
  df_.reserve(document_frequency.size());
  for (const auto& [gram, df] : document_frequency) {
    uint32_t id = dict->Intern(gram);
    if (df_.size() <= id) df_.resize(id + 1, 0);
    df_[id] = df;
  }
  dict->Freeze();
  dict_ = std::move(dict);
  ComputeIdf();
}

TfIdfModel::TfIdfModel(std::shared_ptr<const QGramDictionary> dictionary,
                       std::vector<int> df_by_id, size_t corpus_size)
    : q_(dictionary->q()),
      corpus_size_(corpus_size),
      dict_(std::move(dictionary)),
      df_(std::move(df_by_id)) {
  ComputeIdf();
}

void TfIdfModel::ComputeIdf() {
  idf_.assign(df_.size(), 0.0);
  if (corpus_size_ == 0) return;
  const double n = static_cast<double>(corpus_size_);
  for (size_t id = 0; id < df_.size(); ++id) {
    if (df_[id] > 0) idf_[id] = std::log2(n / static_cast<double>(df_[id]));
  }
}

int TfIdfModel::DocumentFrequency(std::string_view gram) const {
  return DocumentFrequencyById(dict_->Find(gram));
}

double TfIdfModel::Idf(std::string_view gram) const {
  return IdfById(dict_->Find(gram));
}

std::unordered_map<std::string, double> TfIdfModel::WeightVector(
    std::string_view s) const {
  std::unordered_map<std::string, double> weights;
  auto profile = QGramProfile(s, q_);
  for (const auto& [gram, tf] : profile) {
    double idf = Idf(gram);
    if (idf > 0.0) weights[gram] = static_cast<double>(tf) * idf;
  }
  return weights;
}

double TfIdfModel::ScorePair(std::string_view a, std::string_view b) const {
  auto wa = WeightVector(a);
  auto wb = WeightVector(b);
  if (wb.size() < wa.size()) std::swap(wa, wb);
  double score = 0.0;
  for (const auto& [gram, w] : wa) {
    auto it = wb.find(gram);
    if (it != wb.end()) score += w * it->second;
  }
  return score;
}

double TfIdfModel::CosinePair(std::string_view a, std::string_view b) const {
  auto wa = WeightVector(a);
  auto wb = WeightVector(b);
  double dot = 0.0;
  for (const auto& [gram, w] : wa) {
    auto it = wb.find(gram);
    if (it != wb.end()) dot += w * it->second;
  }
  double na = 0.0, nb = 0.0;
  for (const auto& [gram, w] : wa) na += w * w;
  for (const auto& [gram, w] : wb) nb += w * w;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace mcsm::text
