#include "text/tfidf.h"

#include <cmath>
#include <unordered_set>

#include "text/qgram.h"

namespace mcsm::text {

TfIdfModel::TfIdfModel(const std::vector<std::string>& corpus, size_t q)
    : q_(q), corpus_size_(corpus.size()) {
  for (const auto& s : corpus) {
    std::unordered_set<std::string> seen;
    for (size_t i = 0; q > 0 && i + q <= s.size(); ++i) {
      seen.insert(s.substr(i, q));
    }
    for (const auto& gram : seen) document_frequency_[gram]++;
  }
}

TfIdfModel::TfIdfModel(std::unordered_map<std::string, int> document_frequency,
                       size_t corpus_size, size_t q)
    : q_(q),
      corpus_size_(corpus_size),
      document_frequency_(std::move(document_frequency)) {}

int TfIdfModel::DocumentFrequency(std::string_view gram) const {
  auto it = document_frequency_.find(std::string(gram));
  return it == document_frequency_.end() ? 0 : it->second;
}

double TfIdfModel::Idf(std::string_view gram) const {
  int n = DocumentFrequency(gram);
  if (n <= 0 || corpus_size_ == 0) return 0.0;
  return std::log2(static_cast<double>(corpus_size_) / static_cast<double>(n));
}

std::unordered_map<std::string, double> TfIdfModel::WeightVector(
    std::string_view s) const {
  std::unordered_map<std::string, double> weights;
  auto profile = QGramProfile(s, q_);
  for (const auto& [gram, tf] : profile) {
    double idf = Idf(gram);
    if (idf > 0.0) weights[gram] = static_cast<double>(tf) * idf;
  }
  return weights;
}

double TfIdfModel::ScorePair(std::string_view a, std::string_view b) const {
  auto wa = WeightVector(a);
  auto wb = WeightVector(b);
  if (wb.size() < wa.size()) std::swap(wa, wb);
  double score = 0.0;
  for (const auto& [gram, w] : wa) {
    auto it = wb.find(gram);
    if (it != wb.end()) score += w * it->second;
  }
  return score;
}

double TfIdfModel::CosinePair(std::string_view a, std::string_view b) const {
  auto wa = WeightVector(a);
  auto wb = WeightVector(b);
  double dot = 0.0;
  for (const auto& [gram, w] : wa) {
    auto it = wb.find(gram);
    if (it != wb.end()) dot += w * it->second;
  }
  double na = 0.0, nb = 0.0;
  for (const auto& [gram, w] : wa) na += w * w;
  for (const auto& [gram, w] : wb) nb += w * w;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace mcsm::text
