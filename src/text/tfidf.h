#ifndef MCSM_TEXT_TFIDF_H_
#define MCSM_TEXT_TFIDF_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mcsm::text {

/// \brief tf-idf weighting of q-grams over a corpus of column values
/// (paper Eq. 3) and the pair scoring function built on it (Eq. 4).
///
/// w_ij = tf_ij * log2(N / n_j)  where N is the number of instances in the
/// corpus and n_j the number of instances containing q-gram j at least once.
/// ScorePair(a, b) = sum_j w_aj * w_bj over q-grams j shared by a and b.
class TfIdfModel {
 public:
  /// Builds document-frequency statistics from `corpus` using `q`-grams.
  TfIdfModel(const std::vector<std::string>& corpus, size_t q);

  /// Builds from precomputed document frequencies.
  TfIdfModel(std::unordered_map<std::string, int> document_frequency,
             size_t corpus_size, size_t q);

  size_t q() const { return q_; }
  size_t corpus_size() const { return corpus_size_; }

  /// Number of corpus instances containing `gram` at least once.
  int DocumentFrequency(std::string_view gram) const;

  /// idf component: log2(N / n). Returns 0 for unseen grams (n == 0), which
  /// drops them from scoring — an unseen gram cannot be shared anyway.
  double Idf(std::string_view gram) const;

  /// Weight vector of a string: q-gram -> tf * idf.
  std::unordered_map<std::string, double> WeightVector(std::string_view s) const;

  /// Paper Eq. 4: dot product of the two weight vectors.
  double ScorePair(std::string_view a, std::string_view b) const;

  /// Cosine variant: Eq. 4 normalized by the vector magnitudes. Used by the
  /// literature the paper builds on (Gravano et al., Chaudhuri et al.); kept
  /// for the ablation benchmark.
  double CosinePair(std::string_view a, std::string_view b) const;

 private:
  size_t q_;
  size_t corpus_size_ = 0;
  std::unordered_map<std::string, int> document_frequency_;
};

}  // namespace mcsm::text

#endif  // MCSM_TEXT_TFIDF_H_
