#ifndef MCSM_TEXT_TFIDF_H_
#define MCSM_TEXT_TFIDF_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/qgram.h"

namespace mcsm::text {

/// \brief tf-idf weighting of q-grams over a corpus of column values
/// (paper Eq. 3) and the pair scoring function built on it (Eq. 4).
///
/// w_ij = tf_ij * log2(N / n_j)  where N is the number of instances in the
/// corpus and n_j the number of instances containing q-gram j at least once.
/// ScorePair(a, b) = sum_j w_aj * w_bj over q-grams j shared by a and b.
///
/// Grams are interned through a QGramDictionary: document frequency and idf
/// live in flat vectors indexed by gram id, so the hot per-gram lookups are
/// one allocation-free hash probe plus an array read. The dictionary can be
/// shared with the column index that built the df statistics (the model and
/// the index then agree on ids by construction).
class TfIdfModel {
 public:
  /// Builds document-frequency statistics from `corpus` using `q`-grams.
  TfIdfModel(const std::vector<std::string>& corpus, size_t q);

  /// Builds from precomputed document frequencies.
  TfIdfModel(const std::unordered_map<std::string, int>& document_frequency,
             size_t corpus_size, size_t q);

  /// Builds over an existing dictionary: `df_by_id[id]` is the document
  /// frequency of `dictionary->gram(id)`. The dictionary is shared, not
  /// copied (the column index path).
  TfIdfModel(std::shared_ptr<const QGramDictionary> dictionary,
             std::vector<int> df_by_id, size_t corpus_size);

  size_t q() const { return q_; }
  size_t corpus_size() const { return corpus_size_; }

  /// The interning dictionary backing this model.
  const QGramDictionary& dictionary() const { return *dict_; }

  /// Number of corpus instances containing `gram` at least once.
  int DocumentFrequency(std::string_view gram) const;
  /// By interned id (QGramDictionary::kNoGram and out-of-range ids count 0).
  int DocumentFrequencyById(uint32_t id) const {
    return id < df_.size() ? df_[id] : 0;
  }

  /// idf component: log2(N / n). Returns 0 for unseen grams (n == 0), which
  /// drops them from scoring — an unseen gram cannot be shared anyway.
  double Idf(std::string_view gram) const;
  /// By interned id (0 for kNoGram / out-of-range ids).
  double IdfById(uint32_t id) const { return id < idf_.size() ? idf_[id] : 0.0; }

  /// Weight vector of a string: q-gram -> tf * idf.
  std::unordered_map<std::string, double> WeightVector(std::string_view s) const;

  /// Paper Eq. 4: dot product of the two weight vectors.
  double ScorePair(std::string_view a, std::string_view b) const;

  /// Cosine variant: Eq. 4 normalized by the vector magnitudes. Used by the
  /// literature the paper builds on (Gravano et al., Chaudhuri et al.); kept
  /// for the ablation benchmark.
  double CosinePair(std::string_view a, std::string_view b) const;

 private:
  /// Fills idf_ from df_ (idf = log2(N / df), 0 when df or N is 0).
  void ComputeIdf();

  size_t q_;
  size_t corpus_size_ = 0;
  std::shared_ptr<const QGramDictionary> dict_;
  std::vector<int> df_;     ///< document frequency by gram id
  std::vector<double> idf_; ///< precomputed log2(N / df) by gram id
};

}  // namespace mcsm::text

#endif  // MCSM_TEXT_TFIDF_H_
