#include "vm/compiler.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"

namespace mcsm::vm {

using core::Region;
using core::TranslationFormula;

Result<Program> CompileFormula(const TranslationFormula& formula,
                               const relational::Schema& schema) {
  if (!formula.IsComplete()) {
    return Status::InvalidArgument(
        "cannot compile a formula with unknown regions: " +
        formula.ToString(schema));
  }
  if (formula.empty()) {
    return Status::InvalidArgument("cannot compile an empty formula");
  }

  // Pass 1: allocate one register per referenced column (first-reference
  // order, so codegen is deterministic) and fold every span's length
  // requirement into the register's single hoisted guard.
  std::vector<size_t> reg_columns;          // register -> source column
  std::vector<uint32_t> reg_min_len;        // register -> hoisted guard
  const auto register_for = [&](size_t column) {
    for (size_t r = 0; r < reg_columns.size(); ++r) {
      if (reg_columns[r] == column) return r;
    }
    reg_columns.push_back(column);
    reg_min_len.push_back(0);
    return reg_columns.size() - 1;
  };
  for (const Region& r : formula.regions()) {
    if (r.kind != Region::Kind::kColumnSpan) continue;
    if (r.column >= schema.num_columns()) {
      return Status::OutOfRange(
          StrFormat("formula references column %zu beyond schema (%zu)",
                    r.column, schema.num_columns()));
    }
    // The Region contract is 1-based positions with start <= end; a formula
    // violating it never comes out of discovery, but compile is also fed
    // deserialized/fuzzed formulas, so reject instead of underflowing.
    if (r.start == 0 || (!r.to_end && r.end < r.start)) {
      return Status::InvalidArgument(
          StrFormat("span with invalid range [%zu-%zu]", r.start, r.end));
    }
    const size_t need = r.to_end ? r.start : r.end;
    if (need > UINT32_MAX) {
      return Status::InvalidArgument("span position exceeds u32 range");
    }
    const size_t reg = register_for(r.column);
    reg_min_len[reg] =
        std::max(reg_min_len[reg], static_cast<uint32_t>(need));
  }
  if (reg_columns.size() > Program::kMaxRegisters) {
    return Status::InvalidArgument(
        StrFormat("formula references %zu columns (vm limit %u)",
                  reg_columns.size(), Program::kMaxRegisters));
  }

  // Pass 2: loads + guards up front, then the emit sequence, then ret.
  Program program;
  program.set_num_registers(static_cast<uint32_t>(reg_columns.size()));
  program.set_min_columns(
      reg_columns.empty()
          ? 0
          : static_cast<uint32_t>(
                *std::max_element(reg_columns.begin(), reg_columns.end()) +
                1));
  for (size_t reg = 0; reg < reg_columns.size(); ++reg) {
    program.Append({OpCode::kLoadCol, static_cast<uint32_t>(reg),
                    static_cast<uint32_t>(reg_columns[reg]), 0});
    if (reg_min_len[reg] > 0) {
      program.Append({OpCode::kGuardLen, static_cast<uint32_t>(reg),
                      reg_min_len[reg], 0});
    }
  }
  for (const Region& r : formula.regions()) {
    switch (r.kind) {
      case Region::Kind::kLiteral:
        if (!r.literal.empty()) program.AppendLiteral(r.literal);
        break;
      case Region::Kind::kColumnSpan: {
        const auto reg = static_cast<uint32_t>(register_for(r.column));
        const auto start0 = static_cast<uint32_t>(r.start - 1);
        if (r.to_end) {
          program.Append({OpCode::kEmitTail, reg, start0, 0});
        } else {
          program.Append({OpCode::kEmitSub, reg, start0,
                          static_cast<uint32_t>(r.end - r.start + 1)});
        }
        break;
      }
      case Region::Kind::kUnknown:
        return Status::Internal("unknown region survived IsComplete() check");
    }
  }
  program.Append({OpCode::kRet, 0, 0, 0});
  MCSM_RETURN_IF_ERROR(program.Validate());
  return program;
}

}  // namespace mcsm::vm
