#ifndef MCSM_VM_COMPILER_H_
#define MCSM_VM_COMPILER_H_

#include "common/result.h"
#include "core/formula.h"
#include "relational/table.h"
#include "vm/program.h"

namespace mcsm::vm {

/// \brief Compiles a discovered TranslationFormula into a validated Program.
///
/// Rejects exactly what SqlEmitter::ToSql rejects — incomplete or empty
/// formulas (InvalidArgument) and spans referencing columns beyond `schema`
/// (OutOfRange) — so a formula either lowers to both backends or to neither.
///
/// Lowering: each referenced source column gets one register, loaded once
/// per row in first-reference order and followed by a single hoisted
/// kGuardLen carrying the max length any span of that column requires (a
/// fixed span `[start-end]` needs `end` characters, a `[start-n]` tail needs
/// `start`). Then the regions lower in order — kEmitSub / kEmitTail /
/// kEmitLit (empty literals compile to nothing, matching the SQL path's
/// `'' ||` no-op) — and a final kRet commits the row. The hoisted guards
/// fail uncovered rows before any byte is emitted; the emit ops re-check
/// their own bounds, so the guard placement is a fast path, not a semantic
/// dependency.
Result<Program> CompileFormula(const core::TranslationFormula& formula,
                               const relational::Schema& schema);

}  // namespace mcsm::vm

#endif  // MCSM_VM_COMPILER_H_
