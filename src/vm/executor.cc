#include "vm/executor.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace mcsm::vm {

Executor::Executor(const Program& program)
    : program_(&program), regs_(program.num_registers()) {}

size_t Executor::ExecuteRange(const relational::Table& source, size_t begin,
                              size_t end, RunBudget* budget,
                              TranslationChunk* out) {
  MCSM_CHECK(source.num_columns() >= program_->min_columns());
  MCSM_CHECK(begin <= end && end <= source.num_rows());
  const std::vector<Instruction>& code = program_->code();
  const std::string_view literals = program_->literals();
  if (out->offsets.empty()) out->offsets.push_back(0);

  // One cursor per source column: the range walks rows in order, so each
  // kLoadCol pays one segment pin per segment instead of one per row. A
  // loaded view stays valid until the same column's next load — one row
  // later, after this row's guards and emits have consumed it.
  std::vector<relational::TextCursor> cells;
  cells.reserve(source.num_columns());
  for (size_t c = 0; c < source.num_columns(); ++c) {
    cells.emplace_back(source.Column(c));
  }

  size_t row = begin;
  while (row < end) {
    const size_t quantum = std::min(kChargeQuantum, end - row);
    // Charge before executing: when the charge trips, none of the quantum's
    // rows ran, so the processed count stays an exact row boundary.
    if (budget != nullptr && !budget->ChargeRows(quantum)) break;
    for (const size_t stop = row + quantum; row < stop; ++row) {
      const size_t row_start = out->bytes.size();
      bool covered = true;
      for (const Instruction& instr : code) {
        if (instr.op == OpCode::kLoadCol) {
          regs_[instr.a] = cells[instr.b].Get(row);
        } else if (instr.op == OpCode::kGuardLen) {
          if (regs_[instr.a].size() < instr.b) {
            covered = false;
            break;
          }
        } else if (instr.op == OpCode::kEmitSub) {
          const std::string_view v = regs_[instr.a];
          // u64 sum: a hostile program may put b+c past u32 wraparound.
          if (v.size() < uint64_t{instr.b} + instr.c) {
            covered = false;
            break;
          }
          out->bytes.append(v.data() + instr.b, instr.c);
        } else if (instr.op == OpCode::kEmitTail) {
          const std::string_view v = regs_[instr.a];
          if (v.size() < uint64_t{instr.b} + 1) {
            covered = false;
            break;
          }
          out->bytes.append(v.data() + instr.b, v.size() - instr.b);
        } else if (instr.op == OpCode::kEmitLit) {
          out->bytes.append(literals.data() + instr.a, instr.b);
        } else {  // kRet — always the last instruction, so just fall out.
          break;
        }
      }
      if (covered) {
        // The u32 offset/row-id layout caps one chunk at 4G output bytes —
        // far beyond any batch; trip loudly instead of wrapping silently.
        MCSM_CHECK(out->bytes.size() <= UINT32_MAX);
        out->rows.push_back(static_cast<uint32_t>(row));
        out->offsets.push_back(static_cast<uint32_t>(out->bytes.size()));
      } else {
        out->bytes.resize(row_start);  // roll the failed row's bytes back
      }
    }
  }
  return row - begin;
}

Result<TranslateResult> Translate(const Program& program,
                                  const relational::Table& source,
                                  const TranslateOptions& options) {
  MCSM_RETURN_IF_ERROR(program.Validate());
  if (source.num_columns() < program.min_columns()) {
    return Status::InvalidArgument(
        StrFormat("program needs %u source columns, table has %zu",
                  program.min_columns(), source.num_columns()));
  }
  const size_t batch_rows = std::max<size_t>(1, options.batch_rows);
  const size_t total_rows = source.num_rows();
  if (total_rows > UINT32_MAX) {
    return Status::InvalidArgument("table exceeds u32 row-id range");
  }
  const size_t num_batches = (total_rows + batch_rows - 1) / batch_rows;
  RunBudget* budget = options.budget;

  TranslateResult result;
  if (num_batches <= 1 || options.num_threads == 1) {
    // Inline path: one chunk is the result.
    Executor executor(program);
    TranslationChunk chunk;
    result.rows_processed =
        executor.ExecuteRange(source, 0, total_rows, budget, &chunk);
    result.rows = std::move(chunk.rows);
    result.offsets = std::move(chunk.offsets);
    result.bytes = std::move(chunk.bytes);
  } else {
    // Parallel path: per-batch chunks written into private slots, merged in
    // batch order afterwards (the PR 3 determinism idiom — scheduling can
    // never reorder output). Each worker charges the shared budget; a batch
    // that starts after the trip processes zero rows.
    std::vector<TranslationChunk> chunks(num_batches);
    std::vector<size_t> processed(num_batches, 0);
    ThreadPool pool(options.num_threads);
    pool.ParallelFor(num_batches, [&](size_t batch) {
      Executor executor(program);
      const size_t begin = batch * batch_rows;
      const size_t end = std::min(begin + batch_rows, total_rows);
      processed[batch] =
          executor.ExecuteRange(source, begin, end, budget, &chunks[batch]);
    });
    // Keep the contiguous processed prefix: batches after the first
    // incomplete one may have run (dynamic scheduling), but splicing them in
    // would leave a hole in the middle of the output.
    size_t keep = num_batches;
    for (size_t batch = 0; batch < num_batches; ++batch) {
      const size_t begin = batch * batch_rows;
      const size_t end = std::min(begin + batch_rows, total_rows);
      result.rows_processed = begin + processed[batch];
      if (processed[batch] < end - begin) {
        keep = batch + 1;
        break;
      }
    }
    result.offsets.push_back(0);
    for (size_t batch = 0; batch < keep && batch < num_batches; ++batch) {
      const TranslationChunk& chunk = chunks[batch];
      MCSM_CHECK(result.bytes.size() + chunk.bytes.size() <= UINT32_MAX);
      const auto base = static_cast<uint32_t>(result.bytes.size());
      result.bytes += chunk.bytes;
      for (size_t i = 0; i < chunk.size(); ++i) {
        result.rows.push_back(chunk.rows[i]);
        result.offsets.push_back(base + chunk.offsets[i + 1]);
      }
    }
  }
  result.truncated = result.rows_processed < total_rows;
  result.budget_trip =
      budget != nullptr ? budget->trip() : BudgetTrip::kNone;
  return result;
}

}  // namespace mcsm::vm
