#ifndef MCSM_VM_EXECUTOR_H_
#define MCSM_VM_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "relational/table.h"
#include "vm/program.h"

namespace mcsm::vm {

/// \brief Output sink for one executed batch: covered source rows, their
/// translated values packed back-to-back in one byte arena, and the offsets
/// that delimit them. Reusable across batches via Clear() — steady-state
/// execution performs zero per-row allocation (the arena and vectors grow
/// amortized, register scratch is fixed).
struct TranslationChunk {
  std::vector<uint32_t> rows;     ///< covered source row ids, ascending
  std::vector<uint32_t> offsets;  ///< rows.size()+1 offsets into bytes
  std::string bytes;              ///< translated values, concatenated

  void Clear() {
    rows.clear();
    offsets.clear();
    bytes.clear();
  }
  size_t size() const { return rows.size(); }
  std::string_view value(size_t i) const {
    return std::string_view(bytes).substr(offsets[i],
                                          offsets[i + 1] - offsets[i]);
  }
};

/// \brief Register interpreter for one validated Program.
///
/// Per-row semantics are exactly TranslationFormula::Apply: a row either
/// produces the full concatenation of its emit operations or nothing at all
/// (any guard/emit that does not fit the loaded value rolls the row's bytes
/// back and moves on). The executor is memory-safe on *any* validated
/// program — emits bounds-check against the live register, so a hostile wire
/// program without guards degrades to covering fewer rows, never to an OOB
/// read.
class Executor {
 public:
  /// `program` must be validated and must outlive the executor.
  explicit Executor(const Program& program);

  /// Executes rows [begin, end) of `source` (which must have at least
  /// program.min_columns() columns — checked by Translate, MCSM_CHECKed
  /// here), appending covered rows to `out`. Charges `budget` (nullable) in
  /// small row quanta and stops at a row boundary once it trips; returns the
  /// number of rows actually processed, always a prefix of [begin, end).
  size_t ExecuteRange(const relational::Table& source, size_t begin,
                      size_t end, RunBudget* budget, TranslationChunk* out);

  /// Rows charged to the budget per ChargeRows call; also the cadence of
  /// wall-clock/cancellation checks, so a trip mid-batch loses at most this
  /// many rows of granularity.
  static constexpr size_t kChargeQuantum = 64;

 private:
  const Program* program_;
  std::vector<std::string_view> regs_;  ///< fixed scratch, reused per row
};

/// Options for bulk table translation.
struct TranslateOptions {
  /// Rows per batch: the parallel work unit and the output-merge granularity.
  size_t batch_rows = 4096;
  /// Worker threads (ThreadPool semantics: 1 = fully inline, 0 = hardware).
  size_t num_threads = 1;
  /// Optional shared budget; translation charges rows and stops early once
  /// any axis trips, returning the processed prefix tagged truncated.
  RunBudget* budget = nullptr;
};

/// \brief Result of translating a table: the covered-row outputs for the
/// processed prefix [0, rows_processed) of the source.
///
/// Output is byte-identical at every thread count for the same processed
/// prefix: batches are merged in batch order and each row's bytes depend
/// only on that row. (A tripping budget is charged in scheduling order, so
/// *where* the prefix ends can vary across runs — the prefix's content
/// cannot.)
struct TranslateResult {
  std::vector<uint32_t> rows;     ///< covered source row ids, ascending
  std::vector<uint32_t> offsets;  ///< rows.size()+1 offsets into bytes
  std::string bytes;              ///< translated values, concatenated
  size_t rows_processed = 0;      ///< prefix of the source actually executed
  bool truncated = false;         ///< budget tripped before the last row
  BudgetTrip budget_trip = BudgetTrip::kNone;

  size_t output_rows() const { return rows.size(); }
  std::string_view value(size_t i) const {
    return std::string_view(bytes).substr(offsets[i],
                                          offsets[i + 1] - offsets[i]);
  }
};

/// Translates every row of `source` with `program`. Fails fast
/// (InvalidArgument) when the program needs more columns than `source` has
/// or is structurally invalid.
Result<TranslateResult> Translate(const Program& program,
                                  const relational::Table& source,
                                  const TranslateOptions& options = {});

}  // namespace mcsm::vm

#endif  // MCSM_VM_EXECUTOR_H_
