#include "vm/program.h"

#include <cstddef>

#include "common/check.h"
#include "common/string_util.h"

namespace mcsm::vm {
namespace {

constexpr char kMagic[4] = {'M', 'C', 'V', 'M'};
constexpr size_t kHeaderBytes = 4 + 5 * 4;   // magic + five u32 fields
constexpr size_t kInstructionBytes = 1 + 3 * 4;
constexpr size_t kChecksumBytes = 4;

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t GetU32(std::string_view wire, size_t pos) {
  MCSM_DCHECK(pos + 4 <= wire.size());
  const auto b = [&](size_t i) {
    return static_cast<uint32_t>(static_cast<unsigned char>(wire[pos + i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

uint32_t Fnv1a(std::string_view bytes) {
  uint32_t h = 2166136261u;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 16777619u;
  }
  return h;
}

void AppendEscaped(std::string* out, std::string_view text) {
  out->push_back('"');
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20 &&
               static_cast<unsigned char>(c) < 0x7f) {
      out->push_back(c);
    } else {
      *out += StrFormat("\\x%02x", static_cast<unsigned char>(c));
    }
  }
  out->push_back('"');
}

}  // namespace

const char* OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kLoadCol:
      return "load";
    case OpCode::kGuardLen:
      return "guard";
    case OpCode::kEmitSub:
      return "emit";
    case OpCode::kEmitTail:
      return "tail";
    case OpCode::kEmitLit:
      return "lit";
    case OpCode::kRet:
      return "ret";
  }
  return "bad";
}

void Program::AppendLiteral(std::string_view text) {
  Instruction instr;
  instr.op = OpCode::kEmitLit;
  instr.a = static_cast<uint32_t>(literals_.size());
  instr.b = static_cast<uint32_t>(text.size());
  literals_ += text;
  code_.push_back(instr);
}

Status Program::Validate() const {
  if (code_.empty()) return Status::InvalidArgument("vm: empty program");
  if (code_.size() > kMaxInstructions) {
    return Status::InvalidArgument("vm: too many instructions");
  }
  if (num_registers_ > kMaxRegisters) {
    return Status::InvalidArgument("vm: register count exceeds limit");
  }
  if (min_columns_ > kMaxColumns) {
    return Status::InvalidArgument("vm: column requirement exceeds limit");
  }
  if (literals_.size() > kMaxLiteralBytes) {
    return Status::InvalidArgument("vm: literal pool exceeds limit");
  }
  uint64_t loaded = 0;  // bitmask over registers (kMaxRegisters <= 64)
  for (size_t i = 0; i < code_.size(); ++i) {
    const Instruction& instr = code_[i];
    const bool last = i + 1 == code_.size();
    const auto fail = [&](const char* what) {
      return Status::InvalidArgument(
          StrFormat("vm: instruction %zu (%s): %s", i, OpCodeName(instr.op),
                    what));
    };
    if (instr.op != OpCode::kRet && last) {
      return fail("program must end with ret");
    }
    switch (instr.op) {
      case OpCode::kLoadCol:
        if (instr.a >= num_registers_) return fail("register out of range");
        if (instr.b >= min_columns_) return fail("column out of range");
        if (instr.c != 0) return fail("unused operand must be zero");
        loaded |= uint64_t{1} << instr.a;
        break;
      case OpCode::kGuardLen:
        if (instr.a >= num_registers_) return fail("register out of range");
        if ((loaded & (uint64_t{1} << instr.a)) == 0) {
          return fail("register read before load");
        }
        if (instr.b == 0) return fail("guard of zero is a no-op");
        if (instr.c != 0) return fail("unused operand must be zero");
        break;
      case OpCode::kEmitSub:
        if (instr.a >= num_registers_) return fail("register out of range");
        if ((loaded & (uint64_t{1} << instr.a)) == 0) {
          return fail("register read before load");
        }
        if (instr.c == 0) return fail("empty span");
        if (uint64_t{instr.b} + instr.c > UINT32_MAX) {
          return fail("span end overflows");
        }
        break;
      case OpCode::kEmitTail:
        if (instr.a >= num_registers_) return fail("register out of range");
        if ((loaded & (uint64_t{1} << instr.a)) == 0) {
          return fail("register read before load");
        }
        if (instr.c != 0) return fail("unused operand must be zero");
        break;
      case OpCode::kEmitLit:
        if (instr.b == 0) return fail("empty literal");
        if (uint64_t{instr.a} + instr.b > literals_.size()) {
          return fail("literal span outside pool");
        }
        if (instr.c != 0) return fail("unused operand must be zero");
        break;
      case OpCode::kRet:
        if (!last) return fail("ret before end of program");
        if (instr.a != 0 || instr.b != 0 || instr.c != 0) {
          return fail("unused operand must be zero");
        }
        break;
      default:
        return fail("unknown opcode");
    }
  }
  return Status::OK();
}

std::string Program::Serialize() const {
  std::string out;
  out.reserve(kHeaderBytes + code_.size() * kInstructionBytes +
              literals_.size() + kChecksumBytes);
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, kWireVersion);
  PutU32(&out, num_registers_);
  PutU32(&out, min_columns_);
  PutU32(&out, static_cast<uint32_t>(code_.size()));
  PutU32(&out, static_cast<uint32_t>(literals_.size()));
  for (const Instruction& instr : code_) {
    out.push_back(static_cast<char>(instr.op));
    PutU32(&out, instr.a);
    PutU32(&out, instr.b);
    PutU32(&out, instr.c);
  }
  out += literals_;
  PutU32(&out, Fnv1a(out));
  return out;
}

Result<Program> Program::Deserialize(std::string_view wire) {
  if (wire.size() < kHeaderBytes + kChecksumBytes) {
    return Status::ParseError("vm wire: truncated header");
  }
  if (wire.substr(0, 4) != std::string_view(kMagic, sizeof(kMagic))) {
    return Status::ParseError("vm wire: bad magic");
  }
  const uint32_t version = GetU32(wire, 4);
  if (version != kWireVersion) {
    return Status::ParseError(StrFormat(
        "vm wire: version %u not supported (expected %u)", version,
        kWireVersion));
  }
  Program program;
  program.num_registers_ = GetU32(wire, 8);
  program.min_columns_ = GetU32(wire, 12);
  const uint32_t instruction_count = GetU32(wire, 16);
  const uint32_t literal_bytes = GetU32(wire, 20);
  // Reject absurd counts before sizing anything by them.
  if (instruction_count > kMaxInstructions) {
    return Status::ParseError("vm wire: instruction count exceeds limit");
  }
  if (literal_bytes > kMaxLiteralBytes) {
    return Status::ParseError("vm wire: literal pool exceeds limit");
  }
  const uint64_t expected = kHeaderBytes +
                            uint64_t{instruction_count} * kInstructionBytes +
                            literal_bytes + kChecksumBytes;
  if (wire.size() != expected) {
    return Status::ParseError(
        wire.size() < expected ? "vm wire: truncated body"
                               : "vm wire: trailing garbage");
  }
  const size_t body_end = wire.size() - kChecksumBytes;
  if (GetU32(wire, body_end) != Fnv1a(wire.substr(0, body_end))) {
    return Status::ParseError("vm wire: checksum mismatch");
  }
  size_t pos = kHeaderBytes;
  program.code_.reserve(instruction_count);
  for (uint32_t i = 0; i < instruction_count; ++i) {
    Instruction instr;
    const auto raw = static_cast<unsigned char>(wire[pos]);
    if (raw < static_cast<uint8_t>(OpCode::kLoadCol) ||
        raw > static_cast<uint8_t>(OpCode::kRet)) {
      return Status::ParseError(
          StrFormat("vm wire: instruction %u: unknown opcode %u", i, raw));
    }
    instr.op = static_cast<OpCode>(raw);
    instr.a = GetU32(wire, pos + 1);
    instr.b = GetU32(wire, pos + 5);
    instr.c = GetU32(wire, pos + 9);
    program.code_.push_back(instr);
    pos += kInstructionBytes;
  }
  program.literals_.assign(wire.substr(pos, literal_bytes));
  MCSM_RETURN_IF_ERROR(program.Validate());
  return program;
}

std::string Program::Disassemble() const {
  std::string out = StrFormat(
      "; vm program v%u: %zu instructions, %u registers, needs >= %u source "
      "columns, %zu literal bytes\n",
      kWireVersion, code_.size(), num_registers_, min_columns_,
      literals_.size());
  for (size_t i = 0; i < code_.size(); ++i) {
    const Instruction& instr = code_[i];
    std::string line = StrFormat("%4zu: %-5s ", i, OpCodeName(instr.op));
    switch (instr.op) {
      case OpCode::kLoadCol:
        line += StrFormat("r%u, col %u", instr.a, instr.b);
        break;
      case OpCode::kGuardLen:
        line += StrFormat("r%u, len >= %u", instr.a, instr.b);
        break;
      case OpCode::kEmitSub:
        line += StrFormat("r%u[%u..%u)", instr.a, instr.b, instr.b + instr.c);
        break;
      case OpCode::kEmitTail:
        line += StrFormat("r%u[%u..]", instr.a, instr.b);
        break;
      case OpCode::kEmitLit:
        AppendEscaped(&line, SafeSubstr(literals_, instr.a, instr.b));
        break;
      case OpCode::kRet:
        break;
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    out += line;
    out.push_back('\n');
  }
  return out;
}

std::string BytesToHex(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

Result<std::string> HexToBytes(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::ParseError("hex: odd number of digits");
  }
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return Status::ParseError("hex: invalid digit");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace mcsm::vm
