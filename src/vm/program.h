#ifndef MCSM_VM_PROGRAM_H_
#define MCSM_VM_PROGRAM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mcsm::vm {

/// \brief Bytecode operations of the translation VM.
///
/// The register model is deliberately tiny: registers hold read-only views of
/// the current row's source cells, loaded once per row no matter how many
/// spans reference the column. Emit operations append bytes to the row's
/// output; any emit whose span does not fit the register's value fails the
/// row (exactly the rows TranslationFormula::Apply returns nullopt for and
/// the emitted SQL's WHERE clause filters out — that three-way agreement is
/// the subsystem's acceptance contract, see DESIGN.md §12).
enum class OpCode : uint8_t {
  /// regs[a] = view of source cell (row, column b). NULL and non-text cells
  /// load as the empty view, so every later length guard fails the row —
  /// matching the SQL path's `col is not null` predicate.
  kLoadCol = 1,
  /// Fail the row unless regs[a].size() >= b. The compiler hoists one guard
  /// per register (the max requirement over every span that reads it) so
  /// uncovered rows bail before emitting a single byte. Semantically
  /// redundant — emits re-check their own bounds — but it keeps the
  /// uncovered-row path allocation- and copy-free.
  kGuardLen = 2,
  /// Append bytes [b, b+c) of regs[a]; fail the row when the value is
  /// shorter than b+c (a fixed span `[start-end]` needs the full width).
  kEmitSub = 3,
  /// Append bytes [b, end) of regs[a]; fail the row when the value has no
  /// character at position b (a `[start-n]` span needs at least one char).
  kEmitTail = 4,
  /// Append literal-pool bytes [a, a+b) — a separator literal.
  kEmitLit = 5,
  /// Commit the row's output. Every program ends with exactly one kRet.
  kRet = 6,
};

/// Human-readable mnemonic ("load", "guard", ...).
const char* OpCodeName(OpCode op);

/// One fixed-width instruction: an opcode plus up to three u32 operands
/// (meaning per opcode documented above). Fixed width keeps decode branchless
/// and the wire form trivially seekable.
struct Instruction {
  OpCode op = OpCode::kRet;
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t c = 0;

  bool operator==(const Instruction&) const = default;
};

/// \brief A validated translation program: instructions plus the literal
/// pool they reference.
///
/// Programs are built by vm::CompileFormula or decoded from the versioned
/// wire form; both paths end in Validate(), so an Executor can trust every
/// operand (register indices in range, literal spans inside the pool,
/// exactly one trailing kRet) and run without per-instruction bounds checks
/// beyond the row-data guards that are part of the semantics.
///
/// Wire form v1 (all integers little-endian):
///   "MCVM" | u32 version | u32 num_registers | u32 min_columns
///   | u32 instruction_count | u32 literal_bytes
///   | instruction_count x (u8 op, u32 a, u32 b, u32 c)
///   | literal pool bytes | u32 FNV-1a checksum of everything preceding
/// Decode rejects bad magic, version skew, truncation, trailing garbage and
/// checksum mismatch with a Status (never aborts), then runs Validate().
class Program {
 public:
  Program() = default;

  const std::vector<Instruction>& code() const { return code_; }
  std::string_view literals() const { return literals_; }
  /// Registers the program uses (executor scratch is sized by this).
  uint32_t num_registers() const { return num_registers_; }
  /// Minimum source-table column count; every kLoadCol column is below it.
  uint32_t min_columns() const { return min_columns_; }

  /// Construction interface (compiler, tests, fuzzer). Finish with
  /// Validate() before handing the program to an Executor.
  void Append(Instruction instr) { code_.push_back(instr); }
  /// Interns `text` into the literal pool and appends a kEmitLit.
  void AppendLiteral(std::string_view text);
  void set_num_registers(uint32_t n) { num_registers_ = n; }
  void set_min_columns(uint32_t n) { min_columns_ = n; }

  /// Structural validity: see class comment. Returns the first violation.
  Status Validate() const;

  /// Encodes the versioned wire form (see class comment).
  std::string Serialize() const;

  /// Decodes and validates a wire-form program.
  static Result<Program> Deserialize(std::string_view wire);

  /// Human-readable listing, one instruction per line, literals quoted and
  /// escaped. Stable across platforms (golden-tested).
  std::string Disassemble() const;

  bool operator==(const Program&) const = default;

  /// Hard caps enforced by Validate() — generous for real formulas (a
  /// formula references a handful of columns), tight enough that a hostile
  /// wire program cannot make the executor allocate absurd scratch.
  static constexpr uint32_t kMaxRegisters = 64;
  static constexpr uint32_t kMaxColumns = 4096;
  static constexpr uint32_t kMaxInstructions = 1 << 16;
  static constexpr uint32_t kMaxLiteralBytes = 1 << 20;
  static constexpr uint32_t kWireVersion = 1;

 private:
  std::vector<Instruction> code_;
  std::string literals_;
  uint32_t num_registers_ = 0;
  uint32_t min_columns_ = 0;
};

/// Lowercase-hex encoding of arbitrary bytes (wire programs travel through
/// JSON job requests/snapshots as hex).
std::string BytesToHex(std::string_view bytes);

/// Inverse of BytesToHex; rejects odd length and non-hex digits.
Result<std::string> HexToBytes(std::string_view hex);

}  // namespace mcsm::vm

#endif  // MCSM_VM_PROGRAM_H_
