#include "text/alignment.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mcsm::text {
namespace {

TEST(AlignmentTest, ExactSuffixMatch) {
  // "warner" -> "rhwarner": single run covering the whole key (Table 5's
  // %B3[123456] / %B3[1-n]).
  auto alignment = AlignLcsAnchored("warner", "rhwarner");
  ASSERT_EQ(alignment.runs.size(), 1u);
  EXPECT_EQ(alignment.runs[0], (MatchedRun{0, 2, 6}));
}

TEST(AlignmentTest, KlwarderProducesTwoRuns) {
  // "warner" -> "klwarder": anchor "war", edit suffix matches "er"
  // (Table 5's %B3[123]%B3[56]).
  auto alignment = AlignLcsAnchored("warner", "klwarder");
  ASSERT_EQ(alignment.runs.size(), 2u);
  EXPECT_EQ(alignment.runs[0], (MatchedRun{0, 2, 3}));  // "war"
  EXPECT_EQ(alignment.runs[1], (MatchedRun{4, 6, 2}));  // "er"
}

TEST(AlignmentTest, GhkarerCase) {
  // "warner" -> "ghkarer": anchor "ar", suffix matches "er"
  // (Table 5's %B3[23]B3[56]).
  auto alignment = AlignLcsAnchored("warner", "ghkarer");
  ASSERT_EQ(alignment.runs.size(), 2u);
  EXPECT_EQ(alignment.runs[0], (MatchedRun{1, 3, 2}));  // "ar"
  EXPECT_EQ(alignment.runs[1], (MatchedRun{4, 5, 2}));  // "er"
}

TEST(AlignmentTest, MaskedTable6Case) {
  // Table 6: "henry" against "rhwarner" with "warner" masked out; the
  // leftmost 1-char anchor is 'h' at target position 1.
  std::string target = "rhwarner";
  std::vector<bool> allowed = {true, true, false, false,
                               false, false, false, false};
  auto alignment = AlignLcsAnchored("henry", target, &allowed);
  ASSERT_EQ(alignment.runs.size(), 1u);
  EXPECT_EQ(alignment.runs[0], (MatchedRun{0, 1, 1}));  // 'h' -> position 1
}

TEST(AlignmentTest, NoCommonCharactersYieldsNoRuns) {
  auto alignment = AlignLcsAnchored("abc", "xyz");
  EXPECT_TRUE(alignment.runs.empty());
  EXPECT_EQ(alignment.matched_chars(), 0u);
}

TEST(AlignmentTest, EmptyInputs) {
  EXPECT_TRUE(AlignLcsAnchored("", "abc").runs.empty());
  EXPECT_TRUE(AlignLcsAnchored("abc", "").runs.empty());
}

TEST(AlignmentTest, AdjacentRunsMerge) {
  // If prefix/suffix matches extend the anchor contiguously they merge into
  // one run.
  auto alignment = AlignLcsAnchored("abcdef", "abcdef");
  ASSERT_EQ(alignment.runs.size(), 1u);
  EXPECT_EQ(alignment.runs[0], (MatchedRun{0, 0, 6}));
}

TEST(AlignmentTest, RunsFromScriptGroupsConsecutiveMatches) {
  auto script = EditScript("warner", "klwarder");
  auto runs = RunsFromScript(script);
  // Every run must copy equal characters at consecutive positions.
  for (const auto& run : runs) {
    EXPECT_EQ(std::string_view("warner").substr(run.source_start, run.length),
              std::string_view("klwarder").substr(run.target_start, run.length));
  }
}

class AlignmentProperty : public ::testing::TestWithParam<int> {};

TEST_P(AlignmentProperty, RunsAreValidOrderedAndDisjoint) {
  Rng rng(GetParam() * 7717);
  for (int trial = 0; trial < 80; ++trial) {
    std::string key = rng.RandomString(1 + rng.Uniform(12), "abcd");
    std::string target = rng.RandomString(1 + rng.Uniform(16), "abcd");
    std::vector<bool> mask(target.size());
    for (size_t i = 0; i < mask.size(); ++i) mask[i] = rng.Bernoulli(0.7);
    auto alignment = AlignLcsAnchored(key, target, &mask);
    size_t prev_src_end = 0, prev_tgt_end = 0;
    for (const auto& run : alignment.runs) {
      ASSERT_GT(run.length, 0u);
      ASSERT_LE(run.source_start + run.length, key.size());
      ASSERT_LE(run.target_start + run.length, target.size());
      // Characters equal and target positions unmasked.
      for (size_t k = 0; k < run.length; ++k) {
        EXPECT_EQ(key[run.source_start + k], target[run.target_start + k]);
        EXPECT_TRUE(mask[run.target_start + k]);
      }
      // Strictly ordered and disjoint in both strings.
      EXPECT_GE(run.source_start, prev_src_end);
      EXPECT_GE(run.target_start, prev_tgt_end);
      prev_src_end = run.source_start + run.length;
      prev_tgt_end = run.target_start + run.length;
    }
  }
}

TEST_P(AlignmentProperty, IdenticalStringsFullyMatch) {
  Rng rng(GetParam() * 13);
  for (int trial = 0; trial < 40; ++trial) {
    std::string s = rng.RandomString(1 + rng.Uniform(20), "abcdef");
    auto alignment = AlignLcsAnchored(s, s);
    EXPECT_EQ(alignment.matched_chars(), s.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlignmentProperty, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace mcsm::text
