#include "core/autotune.h"

#include <gtest/gtest.h>

#include "core/matcher.h"

#include "datagen/datasets.h"

namespace mcsm::core {
namespace {

TEST(AutoTuneTest, FindsStableFractionOnUserId) {
  datagen::UserIdOptions o;
  o.rows = 3000;
  auto data = datagen::MakeUserIdDataset(o);
  auto result = AutoTuneSampleFraction(data.source, data.target, 0);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->sample_fraction, 0.0);
  EXPECT_LE(result->sample_fraction, 0.32);
  EXPECT_FALSE(result->initial_formula.empty());
  EXPECT_GE(result->probed_fractions.size(), 2u);
  // The tuned fraction must actually drive a successful search.
  SearchOptions so;
  so.sample_fraction = result->sample_fraction;
  auto d = DiscoverTranslation(data.source, data.target, 0, so);
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_TRUE(d->formula().IsComplete());
}

TEST(AutoTuneTest, StableWellBelowTenPercentOnLargeData) {
  // Figure 2's claim: very small samples already rank/bootstrap correctly on
  // large datasets.
  datagen::MergedNamesOptions o;
  o.rows = 30000;
  o.distinct_names = 3000;
  auto data = datagen::MakeMergedNamesDataset(o);
  auto result = AutoTuneSampleFraction(data.source, data.target, 0);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(result->sample_fraction, 0.08);
}

TEST(AutoTuneTest, InvalidRangeRejected) {
  datagen::UserIdOptions o;
  o.rows = 200;
  auto data = datagen::MakeUserIdDataset(o);
  EXPECT_TRUE(AutoTuneSampleFraction(data.source, data.target, 0, {}, 0.0, 0.1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(AutoTuneSampleFraction(data.source, data.target, 0, {}, 0.5, 0.1)
                  .status()
                  .IsInvalidArgument());
}

TEST(AutoTuneTest, HopelessDataFails) {
  relational::Table source = relational::Table::WithTextColumns({"a"});
  relational::Table target = relational::Table::WithTextColumns({"t"});
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(source.AppendTextRow({"aaaa"}).ok());
    ASSERT_TRUE(target.AppendTextRow({"zzzz"}).ok());
  }
  EXPECT_FALSE(AutoTuneSampleFraction(source, target, 0).ok());
}

}  // namespace
}  // namespace mcsm::core
