// Chaos suite: runs the discovery pipeline (CSV I/O -> translation search ->
// SQL execution) with faults injected at every registered failpoint site and
// asserts the pipeline always either returns a clean error Status or a
// degraded-but-valid result — never crashes, hangs, or aborts.
//
// The suite is also run by CI with MCSM_FAILPOINTS set (one site per matrix
// leg), so every assertion must hold regardless of which sites the
// environment arms on top of the programmatic ones.

#include <string>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "core/matcher.h"
#include "datagen/datasets.h"
#include "relational/csv.h"
#include "relational/database.h"
#include "sql/engine.h"

namespace mcsm {
namespace {

// One shared small dataset: chaos runs exercise control flow, not accuracy.
const datagen::Dataset& ChaosDataset() {
  static const datagen::Dataset* dataset = [] {
    datagen::UserIdOptions o;
    o.rows = 400;
    return new datagen::Dataset(datagen::MakeUserIdDataset(o));
  }();
  return *dataset;
}

core::SearchOptions ChaosSearchOptions() {
  core::SearchOptions o;
  o.sample_fraction = 0.10;
  return o;
}

// The full pipeline a client would run: persist the source table as CSV,
// read it back permissively, discover a translation, and execute a query.
// Any failure must surface as a Status from here, nothing else.
Status RunPipeline() {
  const datagen::Dataset& data = ChaosDataset();

  const std::string path = ::testing::TempDir() + "mcsm_chaos.csv";
  MCSM_RETURN_IF_ERROR(relational::WriteCsvFile(data.source, path));

  relational::CsvOptions csv_options;
  csv_options.permissive = true;
  relational::CsvReadReport report;
  MCSM_ASSIGN_OR_RETURN(relational::Table source,
                        relational::ReadCsvFile(path, csv_options, &report));
  // Permissive-mode invariant: every kept row landed in the table.
  EXPECT_EQ(report.rows_kept, source.num_rows());

  MCSM_ASSIGN_OR_RETURN(
      core::DiscoveredTranslation discovered,
      core::DiscoverTranslation(source, data.target, data.target_column,
                                ChaosSearchOptions()));
  // A truncated or incomplete result is valid degraded output; only a
  // complete formula carries SQL worth executing.
  if (!discovered.sql.empty()) {
    relational::Database db;
    MCSM_RETURN_IF_ERROR(db.CreateTable("t1", std::move(source)));
    sql::Engine engine(&db);
    MCSM_RETURN_IF_ERROR(
        engine.Execute("select count(*) from t1").status());
  }
  return Status::OK();
}

class ChaosTest : public ::testing::Test {
 protected:
  // Restore whatever MCSM_FAILPOINTS specifies (nothing, in local runs) so
  // tests neither leak programmatic arms nor clobber the CI matrix state.
  void SetUp() override { failpoint::ReloadFromEnv(); }
  void TearDown() override { failpoint::ReloadFromEnv(); }
};

TEST_F(ChaosTest, PipelineUnderEnvironmentFailpoints) {
  // Runs under whatever the environment armed (the CI chaos matrix); with a
  // clean environment this is the baseline green path.
  Status st = RunPipeline();
  EXPECT_TRUE(st.ok() || !st.ToString().empty());
}

TEST_F(ChaosTest, ErrorInjectionAtEverySiteDegradesCleanly) {
  for (const std::string& site : failpoint::RegisteredSites()) {
    SCOPED_TRACE(site);
    failpoint::DisarmAll();
    ASSERT_TRUE(failpoint::Arm(site, "error:injected by chaos suite").ok());
    Status st = RunPipeline();
    // Either the fault was swallowed by a degradation path (permissive CSV,
    // anytime search) or it surfaced as the injected Internal error.
    EXPECT_TRUE(st.ok() || st.IsInternal()) << st.ToString();
  }
}

TEST_F(ChaosTest, StridedErrorInjectionStillCompletes) {
  for (const std::string& site : failpoint::RegisteredSites()) {
    SCOPED_TRACE(site);
    failpoint::DisarmAll();
    ASSERT_TRUE(failpoint::Arm(site, "error@3").ok());
    Status st = RunPipeline();
    EXPECT_TRUE(st.ok() || st.IsInternal()) << st.ToString();
  }
}

TEST_F(ChaosTest, DelayInjectionNeverAltersTheOutcome) {
  // Baseline (no injection beyond the environment's).
  failpoint::DisarmAll();
  Status baseline = RunPipeline();
  for (const std::string& site : failpoint::RegisteredSites()) {
    SCOPED_TRACE(site);
    failpoint::DisarmAll();
    ASSERT_TRUE(failpoint::Arm(site, "delay:5ms").ok());
    Status st = RunPipeline();
    // A delay is not an error: the pipeline's verdict must match the
    // uninjected run (delays only matter once a deadline budget is set).
    EXPECT_EQ(st.ok(), baseline.ok()) << st.ToString();
  }
}

TEST_F(ChaosTest, DelayPlusDeadlineYieldsTruncatedNotError) {
  failpoint::DisarmAll();
  ASSERT_TRUE(failpoint::Arm(failpoint::kIndexPattern, "delay:50ms").ok());
  core::SearchOptions options = ChaosSearchOptions();
  options.budget.wall_ms = 75;
  const datagen::Dataset& data = ChaosDataset();
  auto d = core::DiscoverTranslation(data.source, data.target,
                                     data.target_column, options);
  // The injected latency eats the deadline; anytime semantics demand a
  // result (possibly truncated), not an error and not a hang.
  ASSERT_TRUE(d.ok()) << d.status().ToString();
}

}  // namespace
}  // namespace mcsm
