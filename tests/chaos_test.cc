// Chaos suite: runs the discovery pipeline (CSV I/O -> translation search ->
// SQL execution) with faults injected at every registered failpoint site and
// asserts the pipeline always either returns a clean error Status or a
// degraded-but-valid result — never crashes, hangs, or aborts.
//
// The suite is also run by CI with MCSM_FAILPOINTS set (one site per matrix
// leg), so every assertion must hold regardless of which sites the
// environment arms on top of the programmatic ones.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "core/matcher.h"
#include "datagen/datasets.h"
#include "relational/csv.h"
#include "relational/database.h"
#include "service/job_manager.h"
#include "service/registry.h"
#include "sql/engine.h"

namespace mcsm {
namespace {

// One shared small dataset: chaos runs exercise control flow, not accuracy.
const datagen::Dataset& ChaosDataset() {
  static const datagen::Dataset* dataset = [] {
    datagen::UserIdOptions o;
    o.rows = 400;
    return new datagen::Dataset(datagen::MakeUserIdDataset(o));
  }();
  return *dataset;
}

core::SearchOptions ChaosSearchOptions() {
  core::SearchOptions o;
  o.sample_fraction = 0.10;
  return o;
}

// The full pipeline a client would run: persist the source table as CSV,
// read it back permissively, discover a translation, and execute a query.
// Any failure must surface as a Status from here, nothing else.
Status RunPipeline() {
  const datagen::Dataset& data = ChaosDataset();

  const std::string path = ::testing::TempDir() + "mcsm_chaos.csv";
  MCSM_RETURN_IF_ERROR(relational::WriteCsvFile(data.source, path));

  relational::CsvOptions csv_options;
  csv_options.permissive = true;
  relational::CsvReadReport report;
  MCSM_ASSIGN_OR_RETURN(relational::Table source,
                        relational::ReadCsvFile(path, csv_options, &report));
  // Permissive-mode invariant: every kept row landed in the table.
  EXPECT_EQ(report.rows_kept, source.num_rows());

  MCSM_ASSIGN_OR_RETURN(
      core::DiscoveredTranslation discovered,
      core::DiscoverTranslation(source, data.target, data.target_column,
                                ChaosSearchOptions()));
  // A truncated or incomplete result is valid degraded output; only a
  // complete formula carries SQL worth executing.
  if (!discovered.sql.empty()) {
    relational::Database db;
    MCSM_RETURN_IF_ERROR(db.CreateTable("t1", std::move(source)));
    sql::Engine engine(&db);
    MCSM_RETURN_IF_ERROR(
        engine.Execute("select count(*) from t1").status());
  }
  return Status::OK();
}

class ChaosTest : public ::testing::Test {
 protected:
  // Restore whatever MCSM_FAILPOINTS specifies (nothing, in local runs) so
  // tests neither leak programmatic arms nor clobber the CI matrix state.
  void SetUp() override { failpoint::ReloadFromEnv(); }
  void TearDown() override { failpoint::ReloadFromEnv(); }
};

TEST_F(ChaosTest, PipelineUnderEnvironmentFailpoints) {
  // Runs under whatever the environment armed (the CI chaos matrix); with a
  // clean environment this is the baseline green path.
  Status st = RunPipeline();
  EXPECT_TRUE(st.ok() || !st.ToString().empty());
}

TEST_F(ChaosTest, ErrorInjectionAtEverySiteDegradesCleanly) {
  for (const std::string& site : failpoint::RegisteredSites()) {
    SCOPED_TRACE(site);
    failpoint::DisarmAll();
    ASSERT_TRUE(failpoint::Arm(site, "error:injected by chaos suite").ok());
    Status st = RunPipeline();
    // Either the fault was swallowed by a degradation path (permissive CSV,
    // anytime search) or it surfaced as the injected Internal error.
    EXPECT_TRUE(st.ok() || st.IsInternal()) << st.ToString();
  }
}

TEST_F(ChaosTest, StridedErrorInjectionStillCompletes) {
  for (const std::string& site : failpoint::RegisteredSites()) {
    SCOPED_TRACE(site);
    failpoint::DisarmAll();
    ASSERT_TRUE(failpoint::Arm(site, "error@3").ok());
    Status st = RunPipeline();
    EXPECT_TRUE(st.ok() || st.IsInternal()) << st.ToString();
  }
}

TEST_F(ChaosTest, DelayInjectionNeverAltersTheOutcome) {
  // Baseline (no injection beyond the environment's).
  failpoint::DisarmAll();
  Status baseline = RunPipeline();
  for (const std::string& site : failpoint::RegisteredSites()) {
    SCOPED_TRACE(site);
    failpoint::DisarmAll();
    ASSERT_TRUE(failpoint::Arm(site, "delay:5ms").ok());
    Status st = RunPipeline();
    // A delay is not an error: the pipeline's verdict must match the
    // uninjected run (delays only matter once a deadline budget is set).
    EXPECT_EQ(st.ok(), baseline.ok()) << st.ToString();
  }
}

// Submits `count` identical jobs against a fresh registry + cache + manager
// and waits for every one to reach a terminal state. Returns those states.
// Used under failpoint injection: the invariant is that jobs always land
// somewhere terminal — failed is acceptable under an armed error site,
// hanging or crashing never is.
std::vector<service::JobState> RunServiceJobs(size_t count) {
  const datagen::Dataset& data = ChaosDataset();
  service::TableRegistry registry;
  auto source = registry.RegisterCsv("people",
                                     relational::WriteCsv(data.source));
  auto target = registry.RegisterCsv("logins",
                                     relational::WriteCsv(data.target));
  std::vector<service::JobState> states;
  if (!source.ok() || !target.ok()) return states;  // csv.read armed: fine

  service::IndexCache cache(64 * 1024 * 1024);
  service::JobManager::Options options;
  options.workers = 2;
  options.max_queue = count;
  service::JobManager manager(&registry, &cache, options);
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < count; ++i) {
    service::JobRequest request;
    request.source_table = "people";
    request.target_table = "logins";
    request.target_column = data.target_column;
    request.options = ChaosSearchOptions();
    auto id = manager.Submit(request);
    if (id.ok()) ids.push_back(id.value());
  }
  manager.Drain();
  for (uint64_t id : ids) {
    auto snapshot = manager.Get(id);
    if (snapshot.ok()) states.push_back(snapshot->state);
  }
  return states;
}

TEST_F(ChaosTest, ServiceJobsUnderErrorInjectionLandTerminal) {
  for (const char* spec : {"error:injected", "error@2"}) {
    SCOPED_TRACE(spec);
    failpoint::DisarmAll();
    ASSERT_TRUE(failpoint::Arm(failpoint::kServiceJob, spec).ok());
    std::vector<service::JobState> states = RunServiceJobs(4);
    ASSERT_EQ(states.size(), 4u);
    for (service::JobState state : states) {
      // Drain returned, so every job is terminal; under service.job error
      // injection the only legal outcomes are failed (fault fired) or done
      // (stride skipped this job).
      EXPECT_TRUE(state == service::JobState::kFailed ||
                  state == service::JobState::kDone)
          << service::JobStateName(state);
    }
  }
}

TEST_F(ChaosTest, ServiceJobsUnderSearchFaultsLandTerminal) {
  // Faults inside the search (index.similar) must surface per-job as failed
  // or degrade to done — and never wedge the manager.
  for (const char* spec : {"error:injected", "delay:10ms"}) {
    SCOPED_TRACE(spec);
    failpoint::DisarmAll();
    ASSERT_TRUE(failpoint::Arm(failpoint::kIndexSimilar, spec).ok());
    std::vector<service::JobState> states = RunServiceJobs(3);
    ASSERT_EQ(states.size(), 3u);
    for (service::JobState state : states) {
      EXPECT_TRUE(state == service::JobState::kFailed ||
                  state == service::JobState::kDone)
          << service::JobStateName(state);
    }
  }
}

TEST_F(ChaosTest, ConcurrentServiceJobsAreDeterministic) {
  // N identical concurrent jobs produce byte-identical formulas — including
  // under a delay failpoint, which perturbs timing but may not perturb
  // results.
  failpoint::DisarmAll();
  ASSERT_TRUE(failpoint::Arm(failpoint::kIndexSimilar, "delay:1ms").ok());
  const datagen::Dataset& data = ChaosDataset();
  service::TableRegistry registry;
  auto source = registry.RegisterCsv("people",
                                     relational::WriteCsv(data.source));
  auto target = registry.RegisterCsv("logins",
                                     relational::WriteCsv(data.target));
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(target.ok());
  service::IndexCache cache(64 * 1024 * 1024);
  service::JobManager::Options options;
  options.workers = 4;
  options.max_queue = 8;
  service::JobManager manager(&registry, &cache, options);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    service::JobRequest request;
    request.source_table = "people";
    request.target_table = "logins";
    request.target_column = data.target_column;
    request.options = ChaosSearchOptions();
    auto id = manager.Submit(request);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(id.value());
  }
  manager.Drain();
  std::set<std::string> formulas;
  for (uint64_t id : ids) {
    auto snapshot = manager.Get(id);
    ASSERT_TRUE(snapshot.ok());
    ASSERT_EQ(snapshot->state, service::JobState::kDone)
        << snapshot->error;
    formulas.insert(snapshot->formula);
  }
  EXPECT_EQ(formulas.size(), 1u) << "jobs diverged";
}

TEST_F(ChaosTest, DelayPlusDeadlineYieldsTruncatedNotError) {
  failpoint::DisarmAll();
  ASSERT_TRUE(failpoint::Arm(failpoint::kIndexPattern, "delay:50ms").ok());
  core::SearchOptions options = ChaosSearchOptions();
  options.env.budget.wall_ms = 75;
  const datagen::Dataset& data = ChaosDataset();
  auto d = core::DiscoverTranslation(data.source, data.target,
                                     data.target_column, options);
  // The injected latency eats the deadline; anytime semantics demand a
  // result (possibly truncated), not an error and not a hang.
  ASSERT_TRUE(d.ok()) << d.status().ToString();
}

}  // namespace
}  // namespace mcsm
