#include "common/check.h"

#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

namespace mcsm {
namespace {

// ---- MCSM_CHECK --------------------------------------------------------

TEST(CheckTest, PassingCheckIsSilent) {
  MCSM_CHECK(1 + 1 == 2);
  MCSM_CHECK(true) << "message is never evaluated on the passing path";
}

TEST(CheckDeathTest, FailingCheckAbortsWithConditionText) {
  EXPECT_DEATH(MCSM_CHECK(2 + 2 == 5), "CHECK failed: 2 \\+ 2 == 5");
}

TEST(CheckDeathTest, FailureMessageIncludesStreamedContext) {
  int rows = 3;
  EXPECT_DEATH(MCSM_CHECK(rows == 4) << "got " << rows << " rows",
               "CHECK failed: rows == 4 got 3 rows");
}

TEST(CheckDeathTest, FailureMessageIncludesSourceLocation) {
  EXPECT_DEATH(MCSM_CHECK(false), "check_test\\.cc");
}

TEST(CheckTest, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  MCSM_CHECK([&] { return ++calls; }() > 0);
  EXPECT_EQ(calls, 1);
}

// ---- MCSM_CHECK_OK -----------------------------------------------------

TEST(CheckTest, CheckOkAcceptsOkStatusAndOkResult) {
  MCSM_CHECK_OK(Status::OK());
  Result<int> r(7);
  MCSM_CHECK_OK(r);
}

TEST(CheckDeathTest, CheckOkAbortsWithStatusMessage) {
  EXPECT_DEATH(MCSM_CHECK_OK(Status::NotFound("no such table")),
               "CHECK_OK failed: .*NotFound: no such table");
}

TEST(CheckDeathTest, CheckOkAbortsOnErrorResult) {
  Result<int> r(Status::ParseError("bad digit"));
  EXPECT_DEATH(MCSM_CHECK_OK(r), "ParseError: bad digit");
}

// ---- MCSM_CHECK_BOUNDS / MCSM_DCHECK -----------------------------------

TEST(CheckTest, BoundsCheckAcceptsValidIndices) {
  MCSM_CHECK_BOUNDS(0, 1);
  MCSM_CHECK_BOUNDS(9, 10);
}

TEST(CheckDeathTest, BoundsCheckAbortsAndPrintsBothValues) {
  EXPECT_DEATH(MCSM_CHECK_BOUNDS(5, 5), "index 5 out of bounds for size 5");
}

TEST(CheckDeathTest, DcheckFiresExactlyWhenEnabled) {
  // Active in debug builds and whenever MCSM_FORCE_DCHECKS is defined (the
  // sanitizer presets); compiled out otherwise.
#if MCSM_DCHECK_IS_ON
  EXPECT_DEATH(MCSM_DCHECK(false) << "contract", "contract");
#else
  MCSM_DCHECK(false) << "contract";  // must be a silent no-op
#endif
}

TEST(CheckTest, DcheckCompilesInControlFlow) {
  // MCSM_DCHECK must behave as a single statement in unbraced contexts.
  if (1 > 0)
    MCSM_DCHECK(true);
  else
    MCSM_DCHECK(true);
}

// ---- SafeSubstr --------------------------------------------------------

TEST(SafeSubstrTest, InRangeBehavesLikeSubstr) {
  std::string_view s = "abcdef";
  EXPECT_EQ(SafeSubstr(s, 0), "abcdef");
  EXPECT_EQ(SafeSubstr(s, 2), "cdef");
  EXPECT_EQ(SafeSubstr(s, 1, 3), "bcd");
  EXPECT_EQ(SafeSubstr(s, 5, 1), "f");
}

TEST(SafeSubstrTest, PosAtOrPastEndYieldsEmpty) {
  std::string_view s = "abc";
  EXPECT_EQ(SafeSubstr(s, 3), "");
  EXPECT_EQ(SafeSubstr(s, 4), "");
  EXPECT_EQ(SafeSubstr(s, std::string_view::npos), "");
  EXPECT_EQ(SafeSubstr(std::string_view{}, 0), "");
  EXPECT_EQ(SafeSubstr(std::string_view{}, 1), "");
}

TEST(SafeSubstrTest, CountClampsToAvailableCharacters) {
  std::string_view s = "abc";
  EXPECT_EQ(SafeSubstr(s, 1, 100), "bc");
  EXPECT_EQ(SafeSubstr(s, 0, std::string_view::npos), "abc");
  EXPECT_EQ(SafeSubstr(s, 2, 0), "");
}

TEST(SafeSubstrTest, ResultViewsAliasTheInput) {
  std::string_view s = "abcdef";
  std::string_view sub = SafeSubstr(s, 2, 2);
  EXPECT_EQ(sub.data(), s.data() + 2);  // a view, not a copy
}

}  // namespace
}  // namespace mcsm
