// Coverage for the blocking HTTP client and its retry layer: response
// parsing, deterministic backoff schedules, outcome classification (the
// retry-safety contract), Retry-After handling, and the client.connect /
// client.read failpoints — all against a real HttpServer on a loopback
// socket where a live peer is needed.

#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "service/client.h"
#include "service/http.h"

namespace mcsm::service {
namespace {

// ------------------------------------------------------ response parsing ----

Result<ClientResponse> ParseWire(const std::string& wire) {
  return ParseHttpResponse(wire, FindHeadEnd(wire), 1 << 20);
}

TEST(ClientParseTest, ParsesContentLengthFramedResponse) {
  auto parsed = ParseWire(
      "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
      "Content-Length: 11\r\nConnection: close\r\n\r\n{\"ok\":true}");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->status, 200);
  EXPECT_EQ(parsed->body, "{\"ok\":true}");
  // Header names are lowered at parse time; lookup wants lowercase.
  EXPECT_EQ(parsed->Header("content-type"), "application/json");
  EXPECT_EQ(parsed->Header("absent"), "");
}

TEST(ClientParseTest, ParsesEofFramedResponse) {
  auto parsed = ParseWire("HTTP/1.1 404 Not Found\r\n\r\nmissing");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->status, 404);
  EXPECT_EQ(parsed->body, "missing");
}

TEST(ClientParseTest, RejectsMalformedResponses) {
  // Not HTTP at all.
  EXPECT_FALSE(ParseWire("SMTP/1.1 200 OK\r\n\r\n").ok());
  // Non-numeric and out-of-range status codes.
  EXPECT_FALSE(ParseWire("HTTP/1.1 2xx OK\r\n\r\n").ok());
  EXPECT_FALSE(ParseWire("HTTP/1.1 999 Huh\r\n\r\n").ok());
  // Body shorter than Content-Length promises.
  EXPECT_FALSE(
      ParseWire("HTTP/1.1 200 OK\r\nContent-Length: 50\r\n\r\nshort").ok());
  // Header without a name.
  EXPECT_FALSE(ParseWire("HTTP/1.1 200 OK\r\n: bad\r\n\r\n").ok());
}

TEST(ClientParseTest, EnforcesBodyCap) {
  const std::string big(64, 'x');
  const std::string wire =
      "HTTP/1.1 200 OK\r\nContent-Length: 64\r\n\r\n" + big;
  EXPECT_TRUE(ParseHttpResponse(wire, FindHeadEnd(wire), 64).ok());
  EXPECT_FALSE(ParseHttpResponse(wire, FindHeadEnd(wire), 63).ok());
}

TEST(ClientTest, MethodIdempotencyHeuristic) {
  EXPECT_TRUE(MethodIsIdempotent("GET"));
  EXPECT_TRUE(MethodIsIdempotent("DELETE"));
  EXPECT_TRUE(MethodIsIdempotent("PUT"));
  EXPECT_FALSE(MethodIsIdempotent("POST"));
  EXPECT_FALSE(MethodIsIdempotent("PATCH"));
}

// ------------------------------------------------------- backoff schedule ----

TEST(BackoffScheduleTest, DeterministicUnderFixedSeed) {
  RetryPolicy policy;
  policy.base_backoff_ms = 50;
  policy.max_backoff_ms = 2000;
  policy.jitter_seed = 42;

  BackoffSchedule a(policy);
  BackoffSchedule b(policy);
  std::vector<int> first;
  std::vector<int> second;
  for (size_t attempt = 1; attempt <= 8; ++attempt) {
    first.push_back(a.DelayMs(attempt));
    second.push_back(b.DelayMs(attempt));
  }
  // The schedule is a pure function of the policy, seed included.
  EXPECT_EQ(first, second);

  // Each delay is jittered within [nominal/2, nominal] of the capped
  // exponential; the last attempts are pinned to the cap's window.
  int64_t nominal = policy.base_backoff_ms;
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_GE(first[i], nominal / 2) << "attempt " << i + 1;
    EXPECT_LE(first[i], nominal) << "attempt " << i + 1;
    nominal = std::min<int64_t>(nominal * 2, policy.max_backoff_ms);
  }
  EXPECT_GE(first.back(), policy.max_backoff_ms / 2);
  EXPECT_LE(first.back(), policy.max_backoff_ms);
}

TEST(BackoffScheduleTest, DifferentSeedsDesynchronize) {
  RetryPolicy policy;
  policy.jitter_seed = 1;
  RetryPolicy other = policy;
  other.jitter_seed = 2;
  BackoffSchedule a(policy);
  BackoffSchedule b(other);
  bool any_difference = false;
  for (size_t attempt = 1; attempt <= 8; ++attempt) {
    if (a.DelayMs(attempt) != b.DelayMs(attempt)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

// --------------------------------------------------------- live-server ----

/// Starts an HttpServer around `handler` on an ephemeral port.
class LiveServer {
 public:
  explicit LiveServer(HttpServer::Handler handler)
      : server_(MakeOptions(), std::move(handler)) {
    Status started = server_.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~LiveServer() { server_.Shutdown(); }

  int port() { return server_.port(); }
  void Shutdown() { server_.Shutdown(); }

 private:
  static HttpServer::Options MakeOptions() {
    HttpServer::Options options;
    options.port = 0;
    options.workers = 2;
    return options;
  }
  HttpServer server_;
};

/// A loopback port with nothing listening on it: bind + release, then the
/// kernel refuses connections to it (racy in theory, reliable in a test).
int ClosedPort() {
  HttpServer::Options options;
  options.port = 0;
  HttpServer probe(options, [](const HttpRequest&) { return HttpResponse{}; });
  EXPECT_TRUE(probe.Start().ok());
  int port = probe.port();
  probe.Shutdown();
  return port;
}

RetryPolicy TestPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff_ms = 10;
  policy.max_backoff_ms = 100;
  policy.jitter_seed = 7;
  return policy;
}

ClientRequest Get(int port, const std::string& path) {
  ClientRequest request;
  request.port = port;
  request.method = "GET";
  request.path = path;
  return request;
}

ClientRequest Post(int port, const std::string& path,
                   const std::string& body) {
  ClientRequest request;
  request.port = port;
  request.method = "POST";
  request.path = path;
  request.body = body;
  return request;
}

TEST(HttpClientTest, RoundTripsAgainstRealServer) {
  LiveServer server([](const HttpRequest& request) {
    HttpResponse response;
    response.body = "{\"method\":\"" + request.method + "\",\"echo\":\"" +
                    request.body + "\"}";
    return response;
  });

  HttpClient client;
  SendOutcome outcome = SendOutcome::kNotSent;
  auto got = client.Do(Post(server.port(), "/v1/echo", "payload"), &outcome);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->status, 200);
  EXPECT_EQ(got->body, "{\"method\":\"POST\",\"echo\":\"payload\"}");
  EXPECT_EQ(outcome, SendOutcome::kResponded);
}

TEST(HttpClientTest, ConnectRefusedIsNotSent) {
  HttpClient::Options options;
  options.connect_timeout_ms = 300;
  HttpClient client(options);
  SendOutcome outcome = SendOutcome::kResponded;
  auto got = client.Do(Get(ClosedPort(), "/"), &outcome);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(outcome, SendOutcome::kNotSent);
}

TEST(HttpClientTest, RejectsNonNumericHost) {
  HttpClient client;
  ClientRequest request = Get(1, "/");
  request.host = "no-dns-in-this-client.example";
  auto got = client.Do(request);
  EXPECT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsInvalidArgument()) << got.status();
}

// ------------------------------------------------------------ retrying ----

/// Sleeper that never sleeps; delays land in RetryStats regardless.
RetryingClient::Sleeper NoSleep() {
  return [](int) {};
}

TEST(RetryingClientTest, GivesUpAtAttemptCapWithReproducibleSchedule) {
  const int port = ClosedPort();
  RetryPolicy policy = TestPolicy();

  RetryingClient client(HttpClient::Options{}, policy, NoSleep());
  RetryStats stats;
  auto got = client.Do(Get(port, "/"), &stats);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(stats.attempts, policy.max_attempts);
  EXPECT_EQ(stats.last_outcome, SendOutcome::kNotSent);
  // One wait between consecutive attempts, none after the last.
  ASSERT_EQ(stats.delays_ms.size(), policy.max_attempts - 1);

  // Same policy (and seed) -> byte-identical delay sequence on a rerun.
  RetryStats again;
  EXPECT_FALSE(client.Do(Get(port, "/"), &again).ok());
  EXPECT_EQ(again.delays_ms, stats.delays_ms);

  // And the waits match the capped-exponential jitter windows.
  int64_t nominal = policy.base_backoff_ms;
  for (int delay : stats.delays_ms) {
    EXPECT_GE(delay, nominal / 2);
    EXPECT_LE(delay, nominal);
    nominal = std::min<int64_t>(nominal * 2, policy.max_backoff_ms);
  }
}

TEST(RetryingClientTest, NeverRetriesAcceptedNonIdempotentRequest) {
  std::atomic<int> hits{0};
  LiveServer server([&hits](const HttpRequest&) {
    hits.fetch_add(1);
    HttpResponse response;
    response.status = 500;  // the handler may have executed: unsafe to replay
    response.body = "{\"error\":\"boom\"}";
    return response;
  });

  RetryingClient client(HttpClient::Options{}, TestPolicy(), NoSleep());
  RetryStats stats;
  auto got = client.Do(Post(server.port(), "/v1/jobs", "{}"), &stats);
  ASSERT_TRUE(got.ok()) << got.status();  // a 500 is a response, not an error
  EXPECT_EQ(got->status, 500);
  EXPECT_EQ(stats.attempts, 1u);  // no second POST
  EXPECT_EQ(hits.load(), 1);

  // The same 500 IS retried for an idempotent method.
  RetryStats get_stats;
  auto get_got = client.Do(Get(server.port(), "/v1/jobs"), &get_stats);
  ASSERT_TRUE(get_got.ok());
  EXPECT_EQ(get_stats.attempts, TestPolicy().max_attempts);
}

TEST(RetryingClientTest, MaybeSentPostIsNotRetriedButMarkedIdempotentIs) {
  failpoint::DisarmAll();
  LiveServer server([](const HttpRequest&) {
    HttpResponse response;
    response.body = "{}";
    return response;
  });

  // The request bytes go out, then the read fails: the server may already
  // be acting on the POST.
  ASSERT_TRUE(failpoint::Arm(failpoint::kClientRead, "error").ok());
  RetryingClient client(HttpClient::Options{}, TestPolicy(), NoSleep());
  RetryStats stats;
  auto got = client.Do(Post(server.port(), "/v1/jobs", "{}"), &stats);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.last_outcome, SendOutcome::kMaybeSent);

  // Explicitly-idempotent POSTs (table registration) may retry through the
  // same failure.
  ClientRequest idempotent_post = Post(server.port(), "/v1/tables", "{}");
  idempotent_post.idempotent = true;
  RetryStats marked;
  EXPECT_FALSE(client.Do(idempotent_post, &marked).ok());
  EXPECT_EQ(marked.attempts, TestPolicy().max_attempts);
  failpoint::DisarmAll();
}

TEST(RetryingClientTest, RetriesBackpressureForAnyMethodHonoringRetryAfter) {
  std::atomic<int> hits{0};
  LiveServer server([&hits](const HttpRequest&) {
    HttpResponse response;
    if (hits.fetch_add(1) == 0) {
      response.status = 429;  // refused before acceptance: replay is safe
      response.headers.emplace_back("Retry-After", "2");
      response.body = "{\"error\":\"queue full\"}";
    } else {
      response.status = 202;
      response.body = "{\"id\":1}";
    }
    return response;
  });

  RetryingClient client(HttpClient::Options{}, TestPolicy(), NoSleep());
  RetryStats stats;
  auto got = client.Do(Post(server.port(), "/v1/jobs", "{}"), &stats);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->status, 202);
  EXPECT_EQ(stats.attempts, 2u);
  // The server asked for 2s; the jittered backoff (<=100ms) is raised to it.
  ASSERT_EQ(stats.delays_ms.size(), 1u);
  EXPECT_EQ(stats.delays_ms[0], 2000);
}

TEST(RetryingClientTest, RetryAfterIsCappedByPolicy) {
  std::atomic<int> hits{0};
  LiveServer server([&hits](const HttpRequest&) {
    HttpResponse response;
    if (hits.fetch_add(1) == 0) {
      response.status = 503;
      response.headers.emplace_back("Retry-After", "999");  // hostile park
      response.body = "{\"status\":\"draining\"}";
    } else {
      response.body = "{}";
    }
    return response;
  });

  RetryPolicy policy = TestPolicy();
  policy.max_retry_after_ms = 250;
  RetryingClient client(HttpClient::Options{}, policy, NoSleep());
  RetryStats stats;
  auto got = client.Do(Get(server.port(), "/"), &stats);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(stats.delays_ms.size(), 1u);
  EXPECT_EQ(stats.delays_ms[0], 250);
}

TEST(RetryingClientTest, ConnectFailpointExhaustsRetries) {
  failpoint::DisarmAll();
  LiveServer server([](const HttpRequest&) {
    HttpResponse response;
    response.body = "{}";
    return response;
  });

  ASSERT_TRUE(failpoint::Arm(failpoint::kClientConnect, "error").ok());
  RetryingClient client(HttpClient::Options{}, TestPolicy(), NoSleep());
  RetryStats stats;
  auto got = client.Do(Get(server.port(), "/"), &stats);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(stats.attempts, TestPolicy().max_attempts);
  EXPECT_EQ(stats.last_outcome, SendOutcome::kNotSent);

  failpoint::DisarmAll();
  EXPECT_TRUE(client.Do(Get(server.port(), "/")).ok());
}

TEST(RetryingClientTest, ReadDelayFailpointIsSurvivable) {
  failpoint::DisarmAll();
  LiveServer server([](const HttpRequest&) {
    HttpResponse response;
    response.body = "{\"slow\":true}";
    return response;
  });

  // Every 2nd receive stalls 50ms — the response still completes.
  ASSERT_TRUE(failpoint::Arm(failpoint::kClientRead, "delay:50ms@2").ok());
  HttpClient client;
  auto got = client.Do(Get(server.port(), "/"));
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->body, "{\"slow\":true}");
  failpoint::DisarmAll();
}

}  // namespace
}  // namespace mcsm::service
