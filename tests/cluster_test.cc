// Coverage for the cluster layer: member-list parsing, consistent-hash ring
// properties, health-gated membership transitions (up / draining / down),
// and an end-to-end pass through ClusterRouter over two live replicas —
// including a replica kill with job replay on the surviving peer, asserting
// the replayed result is byte-identical (the determinism contract).

#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "service/client.h"
#include "service/cluster.h"
#include "service/http.h"
#include "service/json.h"
#include "service/service.h"

namespace mcsm::service {
namespace {

// ------------------------------------------------------------- members ----

TEST(MemberListTest, ParsesHostPortList) {
  auto members = ParseMemberList("127.0.0.1:9001, 127.0.0.1:9002,10.0.0.3:80");
  ASSERT_TRUE(members.ok()) << members.status();
  ASSERT_EQ(members->size(), 3u);
  EXPECT_EQ((*members)[0].Key(), "127.0.0.1:9001");
  EXPECT_EQ((*members)[2].host, "10.0.0.3");
  EXPECT_EQ((*members)[2].port, 80);
}

TEST(MemberListTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseMemberList("").ok());
  EXPECT_FALSE(ParseMemberList(",,,").ok());
  EXPECT_FALSE(ParseMemberList("hostonly").ok());
  EXPECT_FALSE(ParseMemberList("127.0.0.1:").ok());
  EXPECT_FALSE(ParseMemberList(":8080").ok());
  EXPECT_FALSE(ParseMemberList("127.0.0.1:abc").ok());
  EXPECT_FALSE(ParseMemberList("127.0.0.1:70000").ok());
  // Duplicates are a config error, not a capacity boost.
  EXPECT_FALSE(ParseMemberList("a:1,a:1").ok());
}

// ---------------------------------------------------------------- ring ----

std::vector<Member> ThreeMembers() {
  return {{"127.0.0.1", 9001}, {"127.0.0.1", 9002}, {"127.0.0.1", 9003}};
}

TEST(HashRingTest, OwnerIsDeterministic) {
  HashRing a(ThreeMembers());
  HashRing b(ThreeMembers());
  for (uint64_t key = 0; key < 64; ++key) {
    EXPECT_EQ(a.OwnerIndex(key * 0x9E3779B97F4A7C15ULL),
              b.OwnerIndex(key * 0x9E3779B97F4A7C15ULL));
  }
}

TEST(HashRingTest, KeysSpreadAcrossMembers) {
  HashRing ring(ThreeMembers());
  std::vector<int> hits(3, 0);
  for (uint64_t key = 0; key < 3000; ++key) {
    ++hits[ring.OwnerIndex(key * 0x9E3779B97F4A7C15ULL)];
  }
  // With 64 vnodes per member no replica should own a trivial share.
  for (int count : hits) EXPECT_GT(count, 300);
}

TEST(HashRingTest, SuccessionVisitsEveryMemberOnceOwnerFirst) {
  HashRing ring(ThreeMembers());
  for (uint64_t key : {0ULL, 17ULL, 0xDEADBEEFULL, ~0ULL}) {
    std::vector<size_t> order = ring.Succession(key);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], ring.OwnerIndex(key));
    EXPECT_EQ(std::set<size_t>(order.begin(), order.end()).size(), 3u);
  }
}

TEST(HashRingTest, SingleMemberOwnsEverything) {
  HashRing ring({{"127.0.0.1", 9001}});
  EXPECT_EQ(ring.OwnerIndex(123), 0u);
  EXPECT_EQ(ring.Succession(123), std::vector<size_t>{0});
}

// -------------------------------------------------------------- health ----

/// A replica on an ephemeral port, with its own DiscoveryService.
struct Replica {
  static DiscoveryService::Options DefaultOptions() {
    DiscoveryService::Options options;
    options.job_workers = 2;
    options.max_queue = 4;
    options.cache_bytes = 16 << 20;
    return options;
  }

  explicit Replica(DiscoveryService::Options options = DefaultOptions())
      : service(options),
        server(ServerOptions(), [this](const HttpRequest& request) {
          return service.Handle(request);
        }) {
    Status started = server.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  static HttpServer::Options ServerOptions() {
    HttpServer::Options options;
    options.port = 0;
    options.workers = 2;
    return options;
  }

  Member member() const { return Member{"127.0.0.1", server.port()}; }

  DiscoveryService service;
  HttpServer server;
};

HealthChecker::Options FastProbes() {
  HealthChecker::Options options;
  options.interval_ms = 50;
  options.timeout_ms = 300;
  options.down_after = 2;
  return options;
}

TEST(HealthCheckerTest, MarksUpDrainingAndDown) {
  Replica healthy;
  Replica draining;
  draining.service.BeginDrain();

  // A member nobody listens on: bind + release an ephemeral port.
  int dead_port = 0;
  {
    Replica probe;
    dead_port = probe.server.port();
    probe.server.Shutdown();
  }

  HealthChecker checker(
      {healthy.member(), draining.member(), Member{"127.0.0.1", dead_port}},
      FastProbes());

  checker.ProbeOnce();
  EXPECT_EQ(checker.state(0), MemberState::kUp);
  EXPECT_EQ(checker.state(1), MemberState::kDraining);
  // Never-seen-healthy member is down immediately (don't route to it).
  EXPECT_EQ(checker.state(2), MemberState::kDown);

  // A healthy member that dies flips to kDown only after down_after
  // consecutive failures (one dropped probe must not flap it).
  healthy.server.Shutdown();
  checker.ProbeOnce();
  EXPECT_EQ(checker.state(0), MemberState::kUp) << "streak 1 of 2";
  checker.ProbeOnce();
  EXPECT_EQ(checker.state(0), MemberState::kDown);
}

TEST(HealthCheckerTest, BackgroundThreadSweeps) {
  Replica replica;
  HealthChecker checker({replica.member()}, FastProbes());
  checker.Start();
  for (int i = 0; i < 100 && checker.state(0) != MemberState::kUp; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(checker.state(0), MemberState::kUp);
  EXPECT_GT(checker.probes(), 0u);
  checker.Stop();
  checker.Stop();  // idempotent
}

// -------------------------------------------------------------- router ----

constexpr const char* kSourceCsv =
    "first,last\nhenry,warner\nanna,smith\nbob,jones\n";
constexpr const char* kTargetCsv = "login\nhwarner\nasmith\nbjones\n";

class RouterTest : public ::testing::Test {
 protected:
  RouterTest() {
    replicas_.push_back(std::make_unique<Replica>());
    replicas_.push_back(std::make_unique<Replica>());
    std::vector<Member> members;
    for (const auto& replica : replicas_) {
      members.push_back(replica->member());
    }
    health_ = std::make_unique<HealthChecker>(members, FastProbes());
    health_->ProbeOnce();
    ClusterRouter::Options options;
    options.retry.max_attempts = 3;
    options.retry.base_backoff_ms = 10;
    options.retry.max_backoff_ms = 50;
    router_ = std::make_unique<ClusterRouter>(members, health_.get(),
                                              options);
  }

  HttpResponse Call(const std::string& method, const std::string& path,
                    const std::string& body = "") {
    HttpRequest request;
    request.method = method;
    request.path = path;
    request.body = body;
    return router_->Handle(request);
  }

  void RegisterTables() {
    Json source = Json::Object();
    source.Set("name", Json::Str("people"));
    source.Set("csv", Json::Str(kSourceCsv));
    ASSERT_EQ(Call("POST", "/v1/tables", source.Dump()).status, 200);
    Json target = Json::Object();
    target.Set("name", Json::Str("logins"));
    target.Set("csv", Json::Str(kTargetCsv));
    ASSERT_EQ(Call("POST", "/v1/tables", target.Dump()).status, 200);
  }

  /// Submits a job; returns its router id and (optionally) which member
  /// key the router assigned it to.
  std::string SubmitJob(std::string* assigned_member = nullptr) {
    Json job = Json::Object();
    job.Set("source_table", Json::Str("people"));
    job.Set("target_table", Json::Str("logins"));
    job.Set("target_column", Json::Number(0));
    HttpResponse response = Call("POST", "/v1/jobs", job.Dump());
    EXPECT_EQ(response.status, 202) << response.body;
    auto body = Json::Parse(response.body);
    EXPECT_TRUE(body.ok());
    const Json* id = body->Find("id");
    EXPECT_NE(id, nullptr);
    if (assigned_member != nullptr) {
      const Json* member = body->Find("member");
      *assigned_member = member != nullptr ? member->AsString("") : "";
    }
    return StrFormat("%.0f", id->AsNumber(0));
  }

  /// Polls through the router until the job is terminal.
  Json WaitForJob(const std::string& id) {
    for (int i = 0; i < 2000; ++i) {
      HttpResponse response = Call("GET", "/v1/jobs/" + id);
      auto body = Json::Parse(response.body);
      if (body.ok()) {
        const Json* state = body->Find("state");
        std::string name = state != nullptr ? state->AsString("") : "";
        if (name == "done" || name == "failed" || name == "cancelled") {
          return body.value();
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return Json();
  }

  std::vector<std::unique_ptr<Replica>> replicas_;
  std::unique_ptr<HealthChecker> health_;
  std::unique_ptr<ClusterRouter> router_;
};

TEST_F(RouterTest, RegistersTablesOnOwnerAndListsCatalog) {
  RegisterTables();
  // The router catalog has both; each replica got only what it owns so far
  // (lazy push means a replica may have 0, 1 or 2 of them — but at least
  // one replica holds each owned table).
  HttpResponse listed = Call("GET", "/v1/tables");
  EXPECT_EQ(listed.status, 200);
  EXPECT_NE(listed.body.find("people"), std::string::npos);
  EXPECT_NE(listed.body.find("logins"), std::string::npos);

  int registered = 0;
  for (const auto& replica : replicas_) {
    HttpRequest request;
    request.method = "GET";
    request.path = "/v1/tables";
    std::string body = replica->service.Handle(request).body;
    if (body.find("people") != std::string::npos) ++registered;
  }
  EXPECT_GE(registered, 1);
}

TEST_F(RouterTest, JobForUnknownTableIs404) {
  Json job = Json::Object();
  job.Set("source_table", Json::Str("nope"));
  job.Set("target_table", Json::Str("nada"));
  job.Set("target_column", Json::Number(0));
  EXPECT_EQ(Call("POST", "/v1/jobs", job.Dump()).status, 404);
}

TEST_F(RouterTest, RunsJobEndToEnd) {
  RegisterTables();
  std::string id = SubmitJob();
  Json done = WaitForJob(id);
  ASSERT_TRUE(done.is_object()) << "job never reached a terminal state";
  EXPECT_EQ(done.Find("state")->AsString(""), "done");
  const Json* formula = done.Find("formula");
  ASSERT_NE(formula, nullptr);
  EXPECT_FALSE(formula->AsString("").empty());
  // The snapshot id is the router's, not the replica-local one.
  EXPECT_EQ(StrFormat("%.0f", done.Find("id")->AsNumber(0)), id);

  // Terminal snapshots are cached: the same body comes back replica-free.
  HttpResponse cached = Call("GET", "/v1/jobs/" + id);
  EXPECT_EQ(cached.status, 200);
  EXPECT_EQ(cached.body, Call("GET", "/v1/jobs/" + id).body);
}

TEST_F(RouterTest, FailoverReplaysOnSurvivorWithIdenticalFormula) {
  RegisterTables();

  // Baseline: run the job once to learn the formula both replicas agree on
  // (determinism contract: same tables + options = byte-identical result).
  std::string baseline_id = SubmitJob();
  Json baseline = WaitForJob(baseline_id);
  ASSERT_TRUE(baseline.is_object());
  const std::string expected_formula =
      baseline.Find("formula")->AsString("");
  ASSERT_FALSE(expected_formula.empty());

  // Submit another job and kill its assignee. Whether the assignee already
  // finished (cached terminal snapshot serves it) or not (the survivor
  // replays it), the poll must converge on the same bytes.
  std::string assignee;
  std::string id = SubmitJob(&assignee);
  ASSERT_FALSE(assignee.empty());
  for (auto& replica : replicas_) {
    if (replica->member().Key() == assignee) replica->server.Shutdown();
  }
  health_->ProbeOnce();
  health_->ProbeOnce();  // down_after=2 -> the assignee is now kDown

  Json done = WaitForJob(id);
  ASSERT_TRUE(done.is_object()) << "job lost after replica kill";
  EXPECT_EQ(done.Find("state")->AsString(""), "done");
  // Byte-identical replay: the formula matches the pre-kill baseline.
  EXPECT_EQ(done.Find("formula")->AsString(""), expected_formula);

  // Router metrics reflect the cluster's life so far.
  std::string metrics = Call("GET", "/v1/metrics").body;
  EXPECT_NE(metrics.find("mcsm_router_requests_total"), std::string::npos);
  EXPECT_NE(metrics.find("mcsm_cluster_member_state"), std::string::npos);
}

TEST_F(RouterTest, HealthzAndUnknownRoutes) {
  HttpResponse health = Call("GET", "/v1/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"role\":\"router\""), std::string::npos);
  EXPECT_EQ(Call("GET", "/v1/nothing").status, 404);
  EXPECT_EQ(Call("PATCH", "/v1/tables").status, 405);
  EXPECT_EQ(Call("GET", "/v1/jobs/abc").status, 400);
  EXPECT_EQ(Call("GET", "/v1/jobs/999").status, 404);
}

}  // namespace
}  // namespace mcsm::service
