#include "relational/column_index.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "relational/sampler.h"

namespace mcsm::relational {
namespace {

Table MakeTable(const std::vector<std::string>& values) {
  Table t = Table::WithTextColumns({"a"});
  for (const auto& v : values) EXPECT_TRUE(t.AppendTextRow({v}).ok());
  return t;
}

ColumnIndex::Options WithPostings() {
  ColumnIndex::Options o;
  o.build_postings = true;
  return o;
}

TEST(ColumnIndexTest, DistinctValuesSortedAndDeduplicated) {
  Table t = MakeTable({"pear", "apple", "pear", "fig"});
  ColumnIndex idx(t, 0, {});
  EXPECT_EQ(idx.distinct_count(), 3u);
  EXPECT_EQ(idx.sorted_distinct(),
            (std::vector<std::string>{"apple", "fig", "pear"}));
}

TEST(ColumnIndexTest, NullsIgnored) {
  Table t = Table::WithTextColumns({"a"});
  ASSERT_TRUE(t.AppendRow({Value("x")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::MakeNull()}).ok());
  ColumnIndex idx(t, 0, {});
  EXPECT_EQ(idx.distinct_count(), 1u);
  EXPECT_DOUBLE_EQ(idx.avg_length(), 1.0);
}

TEST(ColumnIndexTest, DocumentFrequencyCountsRows) {
  Table t = MakeTable({"banana", "bandana", "fig"});
  ColumnIndex idx(t, 0, {});
  EXPECT_EQ(idx.DocumentFrequency("an"), 2);  // once per row despite repeats
  EXPECT_EQ(idx.DocumentFrequency("fi"), 1);
  EXPECT_EQ(idx.DocumentFrequency("zz"), 0);
}

TEST(ColumnIndexTest, PostingsCarryTermFrequency) {
  Table t = MakeTable({"banana", "fig"});
  ColumnIndex idx(t, 0, WithPostings());
  const std::vector<ColumnIndex::Posting> plist = idx.DecodedPostings("an");
  ASSERT_EQ(plist.size(), 1u);
  EXPECT_EQ(plist[0].row, 0u);
  EXPECT_EQ(plist[0].tf, 2u);
  EXPECT_TRUE(idx.DecodedPostings("zz").empty());
}

TEST(ColumnIndexTest, TotalQGramHitsSumsDf) {
  Table t = MakeTable({"abx", "aby", "cd"});
  ColumnIndex idx(t, 0, {});
  // "ab" grams of key "ab": df(ab) = 2.
  EXPECT_EQ(idx.TotalQGramHits("ab"), 2);
  // key "abx": ab (2) + bx (1) = 3.
  EXPECT_EQ(idx.TotalQGramHits("abx"), 3);
  EXPECT_EQ(idx.TotalQGramHits("a"), 0);  // shorter than q
}

TEST(ColumnIndexTest, RowsWithAnyQGram) {
  Table t = MakeTable({"abx", "aby", "cd"});
  ColumnIndex idx(t, 0, WithPostings());
  EXPECT_EQ(idx.RowsWithAnyQGram("ab"), 2u);
  EXPECT_EQ(idx.RowsWithAnyQGram("cd"), 1u);
  EXPECT_EQ(idx.RowsWithAnyQGram("zz"), 0u);
}

TEST(ColumnIndexTest, FixedWidthDetection) {
  EXPECT_TRUE(ColumnIndex(MakeTable({"ab", "cd", "ef"}), 0, {}).fixed_width());
  EXPECT_FALSE(ColumnIndex(MakeTable({"ab", "abc"}), 0, {}).fixed_width());
  EXPECT_FALSE(ColumnIndex(MakeTable({}), 0, {}).fixed_width());
}

TEST(ColumnIndexTest, RowsMatchingPatternAgreesWithScan) {
  Rng rng(17);
  std::vector<std::string> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.RandomString(6, "abc"));
  Table t = MakeTable(values);
  ColumnIndex indexed(t, 0, WithPostings());
  ColumnIndex scanned(t, 0, {});  // no postings: falls back to scanning
  for (const char* like : {"%ab", "ab%", "%abc%", "a%c", "%zz%"}) {
    auto pattern = SearchPattern::FromLikeString(like);
    auto a = indexed.RowsMatchingPattern(pattern);
    auto b = scanned.RowsMatchingPattern(pattern);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << like;
    // Cross-check against direct evaluation.
    for (uint32_t row : a) {
      EXPECT_TRUE(pattern.Matches(values[row]));
    }
  }
}

TEST(ColumnIndexTest, SimilarRowsRanksExactMatchFirst) {
  Table t = MakeTable({"rhwarner", "klwarder", "zzzzzz", "warner"});
  ColumnIndex idx(t, 0, WithPostings());
  auto rows = idx.SimilarRows("warner", 0.0, 10);
  ASSERT_GE(rows.size(), 2u);
  // "warner" and "rhwarner" both contain every gram of the key and tie for
  // the top score; both must precede the partial match.
  std::set<uint32_t> top = {rows[0].row, rows[1].row};
  EXPECT_TRUE(top.count(3u) == 1 && top.count(0u) == 1);
  EXPECT_DOUBLE_EQ(rows[0].score, rows[1].score);
  // The disjoint instance must not appear.
  for (const auto& r : rows) EXPECT_NE(r.row, 2u);
}

TEST(ColumnIndexTest, SimilarRowsHonorsTopR) {
  // Varied suffixes keep the shared grams informative (a gram occurring in
  // every instance has idf 0 and is rightly ignored).
  std::vector<std::string> values;
  for (int i = 0; i < 20; ++i) values.push_back("abc" + std::to_string(i));
  values.push_back("zzzz");
  Table t = MakeTable(values);
  ColumnIndex idx(t, 0, WithPostings());
  EXPECT_EQ(idx.SimilarRows("abc", 0.0, 5).size(), 5u);
}

TEST(ColumnIndexTest, SimilarRowsIgnoresUbiquitousGrams) {
  // Every instance identical: all grams have idf 0 and nothing is retrieved
  // — trivial overlap carries no linkage information.
  std::vector<std::string> values(20, "abcab");
  Table t = MakeTable(values);
  ColumnIndex idx(t, 0, WithPostings());
  EXPECT_TRUE(idx.SimilarRows("abc", 0.0, 5).empty());
}

TEST(ColumnIndexTest, SimilarRowsExcludesSeparatorGrams) {
  Table t = MakeTable({"11:45", "45:11", "xx:yy"});
  ColumnIndex idx(t, 0, WithPostings());
  // Excluding ':' drops the ":4"/"5:"-style grams; "45" still retrieves.
  auto rows = idx.SimilarRows("45", 0.0, 10, ":");
  ASSERT_FALSE(rows.empty());
  for (const auto& r : rows) EXPECT_NE(r.row, 2u);
}

TEST(ColumnIndexTest, SimilarRowsByCountUsesRawCounts) {
  Table t = MakeTable({"abcd", "abxx", "zzzz"});
  ColumnIndex idx(t, 0, WithPostings());
  auto rows = idx.SimilarRowsByCount("abcd", 1.0, 10);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].row, 0u);
  EXPECT_DOUBLE_EQ(rows[0].score, 3.0);  // ab, bc, cd
  EXPECT_DOUBLE_EQ(rows[1].score, 1.0);  // ab
}

TEST(ColumnIndexTest, SampleDistinctValuesUsesSortedOrder) {
  Table t = MakeTable({"d", "b", "a", "c", "e", "f"});
  ColumnIndex idx(t, 0, {});
  auto sample = SampleDistinctValues(idx, 0.5, 1);
  ASSERT_EQ(sample.size(), 3u);
  EXPECT_EQ(sample[0], "a");  // equidistant over sorted distinct values
  EXPECT_EQ(sample[1], "c");
  EXPECT_EQ(sample[2], "e");
}

}  // namespace
}  // namespace mcsm::relational
