#include "core/column_scorer.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/corpus.h"
#include "datagen/noise.h"

namespace mcsm::core {
namespace {

using relational::ColumnIndex;
using relational::Table;

// Source columns: last names (contained in the target), random noise.
// Target: "<first-initial><last>" logins.
struct ScoringFixture {
  Table source = Table::WithTextColumns({"last", "noise"});
  Table target = Table::WithTextColumns({"login"});

  explicit ScoringFixture(size_t rows) {
    Rng rng(42);
    const auto& firsts = datagen::FirstNames();
    const auto& lasts = datagen::LastNames();
    for (size_t i = 0; i < rows; ++i) {
      std::string first = firsts[rng.Uniform(firsts.size())];
      std::string last = lasts[rng.Uniform(lasts.size())];
      EXPECT_TRUE(
          source.AppendTextRow({last, datagen::RandomText(rng)}).ok());
      EXPECT_TRUE(target.AppendTextRow({first.substr(0, 1) + last}).ok());
    }
  }
};

TEST(ColumnScorerTest, RelatedColumnOutscoresNoise) {
  ScoringFixture data(400);
  ColumnIndex::Options opts;
  ColumnIndex target_index(data.target, 0, opts);
  ColumnIndex last_index(data.source, 0, opts);
  ColumnIndex noise_index(data.source, 1, opts);

  ColumnScorer::Options scorer;
  double last_score =
      ColumnScorer::ScoreColumn(last_index, target_index, scorer);
  double noise_score =
      ColumnScorer::ScoreColumn(noise_index, target_index, scorer);
  EXPECT_GT(last_score, 10 * noise_score);
}

TEST(ColumnScorerTest, RowsHitModeAlsoRanksCorrectly) {
  ScoringFixture data(400);
  ColumnIndex::Options opts;
  opts.build_postings = true;  // kRowsHit needs postings
  ColumnIndex target_index(data.target, 0, opts);
  ColumnIndex last_index(data.source, 0, {});
  ColumnIndex noise_index(data.source, 1, {});

  ColumnScorer::Options scorer;
  scorer.mode = ColumnScorer::CountMode::kRowsHit;
  double last_score =
      ColumnScorer::ScoreColumn(last_index, target_index, scorer);
  double noise_score =
      ColumnScorer::ScoreColumn(noise_index, target_index, scorer);
  EXPECT_GT(last_score, noise_score);
}

TEST(ColumnScorerTest, EmptyKeysScoreZero) {
  ScoringFixture data(50);
  ColumnIndex target_index(data.target, 0, {});
  EXPECT_DOUBLE_EQ(ColumnScorer::ScoreKeys({}, target_index, {}), 0.0);
  EXPECT_DOUBLE_EQ(ColumnScorer::ScoreKeys({""}, target_index, {}), 0.0);
}

TEST(ColumnScorerTest, ScoreGrowsWithSampleOnlySlowly) {
  // Figure 1's stability claim: the score is roughly flat in the sample
  // fraction once a handful of keys are used.
  ScoringFixture data(600);
  ColumnIndex target_index(data.target, 0, {});
  ColumnIndex last_index(data.source, 0, {});
  ColumnScorer::Options small, large;
  small.sample_fraction = 0.10;
  large.sample_fraction = 0.50;
  double s = ColumnScorer::ScoreColumn(last_index, target_index, small);
  double l = ColumnScorer::ScoreColumn(last_index, target_index, large);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(std::abs(s - l) / std::max(s, l), 0.5);
}

TEST(ColumnScorerTest, ExcludedCharactersSkipSeparatorGrams) {
  Table target = Table::WithTextColumns({"t"});
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(target.AppendTextRow({"ab:cd"}).ok());
  }
  ColumnIndex target_index(target, 0, {});
  ColumnScorer::Options with_exclusion;
  with_exclusion.excluded_chars = ":";
  // Key "b:c" has grams b:, :c — all contain ':' and are excluded.
  double excluded =
      ColumnScorer::ScoreKeys({"b:c"}, target_index, with_exclusion);
  EXPECT_DOUBLE_EQ(excluded, 0.0);
  double included = ColumnScorer::ScoreKeys({"b:c"}, target_index, {});
  EXPECT_GT(included, 0.0);
}

}  // namespace
}  // namespace mcsm::core
